//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning
//! API (guards are returned directly, not inside a `Result`). A
//! poisoned std lock — a panic while holding it — is escalated to a
//! panic here, matching the way `parking_lot` simply does not poison.

#![warn(missing_docs)]

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutex.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
