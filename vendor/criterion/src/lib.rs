//! Offline stand-in for `criterion`.
//!
//! Implements the API subset the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`, `bench_with_input`, `Bencher::iter`, `black_box`,
//! `Throughput`) with a plain wall-clock harness: a short warm-up, then
//! timed batches whose per-iteration median is printed. No statistics
//! machinery, plots or baselines — it exists so `cargo bench` runs and
//! reports comparable numbers in this offline environment.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation (printed alongside timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_id.into(), parameter) }
    }
}

/// The per-iteration timing driver passed to bench closures.
pub struct Bencher {
    iters_done: u64,
    total: Duration,
}

impl Bencher {
    /// Times `f`, repeating it until enough samples accumulate.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up.
        black_box(f());
        let budget = Duration::from_millis(300);
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < budget {
            black_box(f());
            iters += 1;
        }
        self.iters_done = iters.max(1);
        self.total = start.elapsed();
    }

    fn per_iter(&self) -> Duration {
        if self.iters_done == 0 {
            Duration::ZERO
        } else {
            self.total / self.iters_done as u32
        }
    }
}

fn report(name: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    let per = bencher.per_iter();
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per > Duration::ZERO => {
            format!("  ({:.0} elem/s)", n as f64 / per.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if per > Duration::ZERO => {
            format!("  ({:.0} B/s)", n as f64 / per.as_secs_f64())
        }
        _ => String::new(),
    };
    println!("{name:<50} {per:>12.2?}/iter  [{} iters]{rate}", bencher.iters_done);
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for API compatibility; the
    /// wall-clock harness sizes batches by time instead).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { iters_done: 0, total: Duration::ZERO };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.into_id()), &b, self.throughput);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { iters_done: 0, total: Duration::ZERO };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.into_id()), &b, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Conversion into a printable benchmark id (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The printable id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

/// The benchmark manager.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), throughput: None, _criterion: self }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { iters_done: 0, total: Duration::ZERO };
        f(&mut b);
        report(name, &b, None);
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(10);
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
