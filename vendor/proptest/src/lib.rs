//! Offline, deterministic stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the slice of the proptest API its tests use: the
//! [`proptest!`] macro (with `#![proptest_config(..)]`), range and tuple
//! strategies, [`collection::vec`] / [`collection::btree_set`],
//! [`option::of`], [`Strategy::prop_map`], `bool::ANY`, and the
//! `prop_assert*` macros.
//!
//! ## Determinism and reproduction
//!
//! Unlike upstream proptest (OS entropy + shrinking + persisted failure
//! seeds), this engine derives every case from a fixed per-test stream:
//! the RNG is seeded from the FNV-1a hash of the test's
//! `module_path!()::name`, so a failing case reproduces bit-for-bit by
//! simply re-running the test. Set `PROPTEST_SEED=<u64>` to explore a
//! different stream, and `PROPTEST_CASES=<n>` to override the per-test
//! case count. There is no shrinking: the failure report prints the
//! exact inputs of the failing case instead. Files under
//! `proptest-regressions/` from the upstream engine are kept for
//! provenance but are not replayed — every stream here is already
//! reproducible from the test name alone.

#![warn(missing_docs)]

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Per-test configuration (field-compatible subset of upstream's
/// `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases =
            std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// A failed test-case assertion (returned by the `prop_assert*` macros).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// The deterministic case RNG (xoshiro256++ seeded from the test path).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds the stream from a test path, XORed with `PROPTEST_SEED`
    /// when set.
    pub fn deterministic(test_path: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        if let Ok(extra) = std::env::var("PROPTEST_SEED") {
            if let Ok(x) = extra.parse::<u64>() {
                h ^= x;
            }
        }
        // SplitMix64 expansion.
        let mut state = h;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng { s: [next(), next(), next(), next()] }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let out = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        out
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

// Strategies are sampled by shared reference, so a reference to a
// strategy is itself a strategy.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always-`value` strategy (upstream's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty strategy range");
        lo + rng.unit_f64() * (hi - lo)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        let v = self.start + rng.unit_f64() as f32 * (self.end - self.start);
        if v >= self.end {
            self.end - (self.end - self.start) * f32::EPSILON
        } else {
            v
        }
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),* $(,)?) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, G),
    (A, B, C, D, E, G, H),
    (A, B, C, D, E, G, H, I),
);

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// The strategy type behind [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// A collection size specification (upstream's `SizeRange`): built
    /// from `usize` ranges or an exact count.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl SizeRange {
        fn draw(&self, rng: &mut TestRng) -> usize {
            let span = self.hi_inclusive - self.lo;
            self.lo + rng.below(span as u64 + 1) as usize
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    /// `Vec` strategy with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `BTreeSet` strategy; the set may come out smaller than the drawn
    /// size when duplicates collide (same as upstream).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    /// See [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord + Debug,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Option strategies (`prop::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// `Some` with high probability (~90 %), `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.unit_f64() < 0.9 {
                Some(self.inner.sample(rng))
            } else {
                None
            }
        }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case
/// (with the exact inputs reported) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {{
        // Bind to a bool before negating so clippy judges the caller's
        // expression as written, not the macro's rewrite of it.
        let cond: bool = $cond;
        if !cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), lhs, rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(*lhs == *rhs) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}", format!($($fmt)*), lhs, rhs
            )));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            lhs
        );
    }};
}

/// Declares property tests.
///
/// Supports the upstream surface this workspace uses: an optional
/// `#![proptest_config(expr)]` header and one or more
/// `#[test] fn name(arg in strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let described = format!(concat!($(stringify!($arg), " = {:?}\n",)+), $(&$arg),+);
                let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest '{}' failed at case {}/{}: {}\ninputs:\n{}(deterministic stream; rerun the test to reproduce, set PROPTEST_SEED to vary)",
                        stringify!($name), case + 1, config.cases, e, described
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn shifted() -> impl Strategy<Value = (f64, f64)> {
        (0.0f64..10.0, 0.0f64..1.0).prop_map(|(a, b)| (a + 100.0, b))
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in -5.0f64..5.0, z in 1usize..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5.0..5.0).contains(&y));
            prop_assert!((1..=4).contains(&z));
        }

        #[test]
        fn vec_respects_size(v in prop::collection::vec(0i64..100, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            for e in &v {
                prop_assert!((0..100).contains(e));
            }
        }

        #[test]
        fn map_applies(p in shifted()) {
            prop_assert!(p.0 >= 100.0, "mapped value {}", p.0);
        }

        #[test]
        fn bools_and_sets(b in prop::bool::ANY,
                          s in prop::collection::btree_set(0u32..5, 0..10)) {
            prop_assert!(usize::from(b) <= 1);
            prop_assert!(s.len() <= 5);
        }

        #[test]
        fn options_mix(o in prop::option::of(1u32..3)) {
            if let Some(v) = o {
                prop_assert!(v == 1 || v == 2);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(17))]
        #[test]
        fn config_header_accepted(x in 0u64..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn deterministic_stream_is_stable() {
        let mut a = crate::TestRng::deterministic("some::test");
        let mut b = crate::TestRng::deterministic("some::test");
        let mut c = crate::TestRng::deterministic("other::test");
        let xa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let xb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let xc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn failing_case_reports_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(5))]
            #[allow(dead_code)]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        let err = std::panic::catch_unwind(always_fails).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("failed at case 1/5"), "message: {msg}");
        assert!(msg.contains("x = "), "message: {msg}");
    }
}
