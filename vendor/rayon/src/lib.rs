//! Offline stand-in for `rayon`.
//!
//! The build environment has no crates.io access, so this crate provides
//! the `into_par_iter().map(..).collect()` shape the workspace uses,
//! executing on scoped `std::thread` workers (one chunk per available
//! core) instead of a work-stealing pool. Output order is identical to
//! the serial order — chunks are rejoined in sequence — so results are
//! deterministic regardless of scheduling.

#![warn(missing_docs)]

/// Common traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

/// Marker for the parallel-iterator family (method resolution happens on
/// the concrete types below).
pub trait ParallelIterator {}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Concrete parallel iterator.
    type Iter;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParIter<T>;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Parallel iterator over an owned vector.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T> ParallelIterator for ParIter<T> {}

impl<T: Send> ParIter<T> {
    /// Maps every element through `f`, to be executed in parallel at the
    /// terminal operation.
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap { items: self.items, f }
    }
}

/// A mapped parallel iterator (the only combinator the workspace needs).
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, F> ParallelIterator for ParMap<T, F> {}

impl<T: Send, F> ParMap<T, F> {
    /// Runs the map on scoped threads and collects results in input
    /// order.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        C: From<Vec<R>>,
    {
        let n = self.items.len();
        let workers = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
        let f = &self.f;
        if n <= 1 || workers <= 1 {
            return self.items.into_iter().map(f).collect::<Vec<R>>().into();
        }
        let chunk_len = n.div_ceil(workers.min(n));
        let mut chunks: Vec<Vec<T>> = Vec::new();
        let mut it = self.items.into_iter();
        loop {
            let chunk: Vec<T> = it.by_ref().take(chunk_len).collect();
            if chunk.is_empty() {
                break;
            }
            chunks.push(chunk);
        }
        let mapped: Vec<Vec<R>> = std::thread::scope(|scope| {
            // The intermediate collect is load-bearing: every worker must be
            // spawned before the first join, or the map would run the chunks
            // one at a time.
            #[allow(clippy::needless_collect)]
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
                .collect();
            handles.into_iter().map(|h| h.join().expect("rayon-shim worker panicked")).collect()
        });
        mapped.into_iter().flatten().collect::<Vec<R>>().into()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = v.clone().into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, v.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
        let one: Vec<u32> = vec![7].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![8]);
    }
}
