//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the `rand` 0.8 API it actually uses:
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`], [`Rng::gen_bool`]
//! and [`Rng::gen`], with [`rngs::StdRng`] / [`rngs::SmallRng`] backed by
//! xoshiro256++ seeded through SplitMix64.
//!
//! Everything here is deterministic in the seed — there is deliberately
//! no `thread_rng()` and no OS entropy source, so any code compiled
//! against this shim is reproducible by construction (the accuracy
//! harness in `crates/eval` depends on that). Streams differ from
//! upstream `rand` (which uses ChaCha12 for `StdRng`); only the
//! distributional contract is preserved.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// The next pseudo-random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    /// The next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates the RNG from a raw byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates the RNG from a `u64`, expanding it with SplitMix64 — the
    /// same convention upstream `rand` documents for this method.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let w = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&w[..n]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 — the standard seed expander.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ core shared by [`rngs::StdRng`] and [`rngs::SmallRng`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_bytes(seed: [u8; 32]) -> Self {
        let mut s = [0u64; 4];
        for (k, w) in s.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&seed[k * 8..k * 8 + 8]);
            *w = u64::from_le_bytes(b);
        }
        // An all-zero state is a fixed point; SplitMix64 expansion never
        // produces one from `seed_from_u64`, but guard `from_seed` anyway.
        if s == [0, 0, 0, 0] {
            s = [0x9E37_79B9_7F4A_7C15, 0xD1B5_4A32_D192_ED03, 0xAEF1_7502_B3B4_B2C7, 1];
        }
        Xoshiro256 { s }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let out = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        out
    }
}

impl SeedableRng for Xoshiro256 {
    type Seed = [u8; 32];
    fn from_seed(seed: Self::Seed) -> Self {
        Xoshiro256::from_bytes(seed)
    }
}

/// The concrete RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// Deterministic stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng(Xoshiro256);

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];
        fn from_seed(seed: Self::Seed) -> Self {
            StdRng(Xoshiro256::from_seed(seed))
        }
    }

    /// Deterministic stand-in for `rand::rngs::SmallRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng(Xoshiro256);

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];
        fn from_seed(seed: Self::Seed) -> Self {
            SmallRng(Xoshiro256::from_seed(seed))
        }
    }
}

/// Types producible by [`Rng::gen`] (upstream's `Standard` distribution).
pub trait StandardValue: Sized {
    /// Draws one value from the standard distribution of the type.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardValue for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardValue for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardValue for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardValue for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardValue for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, n)` via 128-bit widening multiply (bias ≤ 2⁻⁶⁴).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add(uniform_u64(rng, span) as $wide) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as $wide).wrapping_add(uniform_u64(rng, span + 1) as $wide) as $t
            }
        }
    )*};
}

int_sample_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::standard(rng);
        let v = self.start + u * (self.end - self.start);
        // Floating rounding can land exactly on `end`; clamp back inside.
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f32::standard(rng);
        let v = self.start + u * (self.end - self.start);
        if v >= self.end {
            self.end - (self.end - self.start) * f32::EPSILON
        } else {
            v
        }
    }
}

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        f64::standard(self) < p
    }

    /// A value from the type's standard distribution (`[0, 1)` for
    /// floats).
    fn gen<T: StandardValue>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xa: Vec<u32> = (0..16).map(|_| a.gen_range(0u32..1000)).collect();
        let xb: Vec<u32> = (0..16).map(|_| b.gen_range(0u32..1000)).collect();
        let xc: Vec<u32> = (0..16).map(|_| c.gen_range(0u32..1000)).collect();
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5i64..=9);
            assert!((5..=9).contains(&w));
            let f = rng.gen_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&f));
            let n: f64 = rng.gen();
            assert!((0.0..1.0).contains(&n));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(99);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn mean_of_uniform_is_centered() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
