//! Scheduling-change identification (paper Sec. VII, Fig. 12): monitor a
//! pre-programmed light through a peak/off-peak programme switch by
//! re-estimating its cycle length periodically, then detect the switch
//! from the cleaned series.
//!
//! ```text
//! cargo run --release --example monitoring
//! ```

use taxilight::core::monitor::ScheduleMonitor;
use taxilight::core::{Identifier, IdentifyConfig, IdentifyRequest, Preprocessor};
use taxilight::roadnet::generators::{grid_city, GridConfig};
use taxilight::sim::lights::{DailyProgram, IntersectionPlan, PhasePlan, Schedule, SignalMap};
use taxilight::sim::{SimConfig, Simulator};
use taxilight::trace::Timestamp;

fn main() {
    // A small city whose lights switch from a 90 s to a 150 s programme at
    // 07:00 and back at 09:00 — the pre-programmed category.
    let city =
        grid_city(&GridConfig { rows: 3, cols: 3, spacing_m: 600.0, ..GridConfig::default() });
    let off_peak = PhasePlan::new(90, 40, 10);
    let peak = PhasePlan::new(150, 70, 10);
    let mut signals = SignalMap::new();
    for &ix in &city.intersections {
        signals.install_intersection_with(
            &city.net,
            ix,
            IntersectionPlan { ns: off_peak },
            |plan| {
                let peak_plan = if plan == off_peak { peak } else { peak.antiphase() };
                Schedule::PreProgrammed(DailyProgram::new(vec![
                    (0, plan),
                    (7 * 3600, peak_plan),
                    (9 * 3600, plan),
                ]))
            },
        );
    }

    // Simulate 05:00 → 11:00, through both programme switches.
    let start = Timestamp::civil(2014, 5, 21, 5, 0, 0);
    let horizon_s: i64 = 6 * 3600;
    println!("simulating 6 h of traffic through the 07:00 and 09:00 programme switches…");
    let mut sim = Simulator::new(
        &city.net,
        &signals,
        SimConfig {
            taxi_count: 90,
            start,
            seed: 3,
            hourly_activity: [1.0; 24],
            ..SimConfig::default()
        },
    );
    sim.run(horizon_s as u64);
    let (mut log, _) = sim.into_log();

    let cfg = IdentifyConfig { window_s: 1800, ..IdentifyConfig::default() };
    let pre = Preprocessor::new(&city.net, cfg.clone());
    let engine = Identifier::new(&city.net, cfg.clone()).expect("default config is valid");
    let (parts, _) = pre.preprocess(&mut log);

    // Monitor the busiest light: re-estimate every 10 minutes (the paper
    // uses 5; the window is the limiting factor either way).
    let light = parts
        .lights_with_data()
        .into_iter()
        .max_by_key(|&l| parts.observations(l).len())
        .expect("some light has data");
    println!("monitoring light {:?}\n", light);

    let mut monitor = ScheduleMonitor::new(600);
    println!("{:>8} {:>12} {:>12}", "time", "est cycle", "truth");
    let mut t = start.offset(cfg.window_s as i64);
    while t <= start.offset(horizon_s) {
        let estimate = engine.run(&parts, &IdentifyRequest::one(t, light)).into_single().ok();
        let cycle = estimate.map(|e| e.cycle_s);
        monitor.push(t, cycle);
        let truth = signals.plan(light, t).cycle_s;
        let shown = cycle.map(|c| format!("{c:.1}")).unwrap_or_else(|| "--".into());
        println!("{:>8} {:>12} {:>12}", t.format()[11..16].to_string(), shown, truth);
        t = t.offset(600);
    }

    // Detect the programme switches from the monitored series.
    let events = monitor.detect_changes(20.0, 2);
    println!("\ndetected scheduling changes:");
    if events.is_empty() {
        println!("  (none)");
    }
    for e in &events {
        println!("  at {}: cycle {:.0} s → {:.0} s", e.at.format(), e.from_cycle_s, e.to_cycle_s);
    }
}
