//! City-scale evaluation in the style of the paper's Figs. 13–14: identify
//! the schedules of every approach light of the nine monitored
//! intersections at an instant, compare against ground truth, and print
//! the error CDFs over repeated random evaluation instants.
//!
//! ```text
//! cargo run --release --example city_scale
//! ```

use taxilight::core::evaluate::{compare, ScheduleTruth};
use taxilight::core::{Identifier, IdentifyConfig, IdentifyRequest, Preprocessor};
use taxilight::signal::histogram::Ecdf;
use taxilight::sim::paper_city;
use taxilight::trace::Timestamp;

fn main() {
    let scenario = paper_city(21, 180);
    println!(
        "evaluation city: {} intersections ({} monitored), {} lights, {} taxis",
        scenario.net.intersections().len(),
        scenario.monitored.len(),
        scenario.net.light_count(),
        scenario.sim_config.taxi_count,
    );

    let cfg = IdentifyConfig::default();
    let pre = Preprocessor::new(&scenario.net, cfg.clone());
    let engine = Identifier::new(&scenario.net, cfg.clone()).expect("default config is valid");

    let mut cycle_errs = Vec::new();
    let mut red_errs = Vec::new();
    let mut change_errs = Vec::new();
    let mut failures = 0usize;

    // Several random evaluation instants (the paper repeats "for over
    // 1,000 times"; a handful of instants × dozens of lights keeps this
    // example fast — the bench harness does the full sweep).
    let instants = 3;
    for k in 0..instants {
        let start = Timestamp::civil(2014, 12, 5, 9 + 2 * k as u8, 15, 0);
        let window = cfg.window_s as u64 + 600;
        let (mut log, _) = scenario.run_from(start, window);
        let (parts, _) = pre.preprocess(&mut log);
        let at = start.offset(window as i64);
        for (light, result) in engine.run(&parts, &IdentifyRequest::all(at)).results {
            let plan = scenario.signals.plan(light, at);
            let truth = ScheduleTruth {
                cycle_s: plan.cycle_s as f64,
                red_s: plan.red_s as f64,
                red_start_mod_cycle_s: plan.offset_s as f64,
            };
            match result {
                Ok(est) => {
                    let err = compare(&est, &truth);
                    cycle_errs.push(err.cycle_err_s);
                    red_errs.push(err.red_err_s);
                    change_errs.push(err.change_err_s);
                }
                Err(_) => failures += 1,
            }
        }
        println!("instant {}: {} identifications so far", k + 1, cycle_errs.len());
    }

    println!("\nidentified {} light-instants ({} failures)\n", cycle_errs.len(), failures);

    let print_cdf = |name: &str, errs: &[f64]| {
        let ecdf = Ecdf::new(errs);
        print!("{name:<18}");
        for within in [2.0, 4.0, 6.0, 10.0, 20.0] {
            print!("  ≤{within:>4.0}s: {:>5.1}%", 100.0 * ecdf.fraction_at_or_below(within));
        }
        println!();
    };
    println!("error CDFs (paper Fig. 14 shape: cycle bimodal, red/change ~80% within 6s):");
    print_cdf("cycle length", &cycle_errs);
    print_cdf("red duration", &red_errs);
    print_cdf("signal change", &change_errs);
}
