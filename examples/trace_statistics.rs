//! Reproduces the paper's Sec. II / Fig. 2 trace analysis on a simulated
//! day of fleet operation: record-count day profile, update-interval
//! distribution, consecutive-update distances, and speed-difference
//! normality.
//!
//! ```text
//! cargo run --release --example trace_statistics
//! ```

use taxilight::sim::paper_city;
use taxilight::trace::stats::TraceStatistics;

fn main() {
    let scenario = paper_city(5, 150);
    // One full day — the Fig. 2(a) profile needs 24 h coverage.
    println!("simulating 24 h of fleet operation ({} taxis)…", scenario.sim_config.taxi_count);
    let (mut log, _fleet) = scenario.run(24 * 3600);
    let stats = TraceStatistics::compute(&mut log);

    println!("\n== headline statistics (paper values in parentheses) ==");
    println!("records:                 {:>10}", stats.record_count);
    println!("taxis:                   {:>10}", stats.taxi_count);
    println!(
        "records/minute:          {:>10.0}   (52,000 at Shenzhen scale)",
        stats.records_per_minute
    );
    println!(
        "mean update interval:    {:>8.2} s   (20.41 s), σ = {:.2} ({:.2})",
        stats.interval.mean, stats.interval.stddev, 20.54
    );
    println!("stationary pairs:        {:>9.1} %   (42.66 %)", 100.0 * stats.stationary_fraction);
    println!("mean moving distance:    {:>8.1} m   (100.69 m)", stats.moving_distance.mean);
    let (mu, sigma) = stats.speed_diff_normal;
    println!("speed diff fit:         N({mu:>5.2}, {sigma:>5.1})   (N(0, 40) at 1-min intervals)");
    if let Some(imbalance) = stats.slot_imbalance() {
        println!("slot imbalance (max/min):{imbalance:>10.1}x");
    }

    // Fig. 2(a): records per 10-minute slot as an ASCII profile.
    println!("\n== Fig. 2(a): records per 10-minute slot of day ==");
    let max = *stats.slot_counts.iter().max().unwrap_or(&1) as f64;
    for hour in 0..24 {
        let total: u64 = (0..6).map(|k| stats.slot_counts[hour * 6 + k]).sum();
        let bar_len = (total as f64 / (6.0 * max) * 60.0) as usize;
        println!("{hour:02}:00 {:>7} |{}", total, "#".repeat(bar_len));
    }
}
