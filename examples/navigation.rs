//! The paper's navigation demo (Sec. VIII-B, Figs. 15–16): on a grid of
//! 1 km blocks with a light at every intersection, compare conventional
//! shortest-time navigation against schedule-aware routing that bypasses
//! red lights.
//!
//! ```text
//! cargo run --release --example navigation
//! ```

use taxilight::navsim::experiment::{overall_saving, run_fig16, Fig16Config};
use taxilight::navsim::routing::Strategy;

fn main() {
    let cfg = Fig16Config::default();
    println!(
        "world: {}×{} grid, {:.0} m blocks, cycles {}–{} s (red = green), {} worlds × {} trips/cell",
        cfg.world.dim,
        cfg.world.dim,
        cfg.world.segment_m,
        cfg.world.cycle_range_s.0,
        cfg.world.cycle_range_s.1,
        cfg.worlds,
        cfg.trips_per_cell,
    );
    println!("schedule-aware strategy: {:?}\n", cfg.strategy);

    let rows = run_fig16(&cfg);
    println!(
        "{:>9} {:>6} {:>14} {:>14} {:>9}",
        "dist (km)", "trips", "baseline (s)", "aware (s)", "saved"
    );
    println!("{}", "-".repeat(58));
    for row in &rows {
        println!(
            "{:>9} {:>6} {:>14.1} {:>14.1} {:>8.1}%",
            row.distance_hops,
            row.trips,
            row.baseline_s,
            row.aware_s,
            100.0 * row.saving()
        );
    }
    println!(
        "\noverall saving: {:.1}% (paper: \"about 15% driving time can be saved\")",
        100.0 * overall_saving(&rows)
    );

    // The paper's own strategy (bounded enumeration with re-planning)
    // should land close to the exact optimum.
    let enum_rows = run_fig16(&Fig16Config {
        strategy: Strategy::Enumerate { extra_hops: 2 },
        worlds: 2,
        trips_per_cell: 6,
        ..Fig16Config::default()
    });
    println!(
        "bounded enumeration (+2 hops): overall saving {:.1}%",
        100.0 * overall_saving(&enum_rows)
    );
}
