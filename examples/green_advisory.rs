//! Green-driving advisory on an *identified* schedule: identify one
//! light's timing from taxi traces, then advise approach speeds that
//! catch the green — the paper's "pass the intersections smoothly"
//! application built on the paper's identification pipeline.
//!
//! ```text
//! cargo run --release --example green_advisory
//! ```

use taxilight::core::{Identifier, IdentifyConfig, IdentifyRequest, Preprocessor};
use taxilight::navsim::advisory::green_window_advice;
use taxilight::roadnet::generators::{grid_city, GridConfig};
use taxilight::sim::lights::{IntersectionPlan, LightState, PhasePlan, SignalMap};
use taxilight::sim::{SimConfig, Simulator};
use taxilight::trace::Timestamp;

fn main() {
    // One signalized intersection, 100/45 s plan.
    let city =
        grid_city(&GridConfig { rows: 3, cols: 3, spacing_m: 600.0, ..GridConfig::default() });
    let truth = PhasePlan::new(100, 45, 20);
    let mut signals = SignalMap::new();
    for &ix in &city.intersections {
        signals.install_intersection(&city.net, ix, IntersectionPlan { ns: truth });
    }

    // Identify the busiest approach from one hour of traces.
    let start = Timestamp::civil(2014, 12, 5, 10, 0, 0);
    let mut sim = Simulator::new(
        &city.net,
        &signals,
        SimConfig {
            taxi_count: 150,
            start,
            seed: 9,
            hourly_activity: [1.0; 24],
            ..SimConfig::default()
        },
    );
    sim.run(3700);
    let (mut log, _) = sim.into_log();
    let cfg = IdentifyConfig::default();
    let pre = Preprocessor::new(&city.net, cfg.clone());
    let (parts, _) = pre.preprocess(&mut log);
    let at = start.offset(3700);
    let light = parts
        .lights_with_data()
        .into_iter()
        .max_by_key(|&l| parts.observations(l).len())
        .expect("a light has data");
    let engine = Identifier::new(&city.net, cfg).expect("default config is valid");
    let est =
        engine.run(&parts, &IdentifyRequest::one(at, light)).into_single().expect("identification");
    let truth_plan = signals.plan(light, at);
    println!(
        "identified light {:?}: cycle {:.1}s red {:.1}s (truth {}s/{}s)\n",
        light, est.cycle_s, est.red_s, truth_plan.cycle_s, truth_plan.red_s
    );

    // Build the advisory plan from the ESTIMATE (rounded for PhasePlan).
    let cycle = est.cycle_s.round() as u32;
    let red = (est.red_s.round() as u32).clamp(1, cycle - 1);
    let offset = (est.red_start_s.round() as i64).rem_euclid(cycle as i64) as u32;
    let identified_plan = PhasePlan::new(cycle, red, offset);

    // A car 800 m out, preferring 55 km/h within a 40–70 band: advise for
    // a spread of departure instants and score against the TRUE light.
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>14}",
        "depart", "advice km/h", "adjusted", "true state", "wait (truth)"
    );
    let mut baseline_wait = 0.0;
    let mut advised_wait = 0.0;
    let n = 20;
    for k in 0..n {
        let depart = at.offset(k * 23 + 7);
        let advice = green_window_advice(800.0, 55.0, (40.0, 70.0), &identified_plan, depart);
        // Evaluate against the truth.
        let advised_arrival =
            depart.offset((800.0 / (advice.target_speed_kmh / 3.6)).round() as i64);
        let cruise_arrival = depart.offset((800.0_f64 / (55.0 / 3.6)).round() as i64);
        let wait_advised = truth_plan.wait_for_green(advised_arrival) as f64;
        let wait_cruise = truth_plan.wait_for_green(cruise_arrival) as f64;
        baseline_wait += wait_cruise;
        advised_wait += wait_advised;
        println!(
            "{:>10} {:>12.1} {:>12} {:>12} {:>10.0} s",
            &depart.format()[11..19],
            advice.target_speed_kmh,
            if advice.adjusted { "yes" } else { "no" },
            match truth_plan.state_at(advised_arrival) {
                LightState::Green => "green",
                LightState::Red => "red",
            },
            wait_advised,
        );
    }
    println!(
        "\nmean red wait: cruising {:.1} s → advised {:.1} s ({} departures)",
        baseline_wait / n as f64,
        advised_wait / n as f64,
        n
    );
}
