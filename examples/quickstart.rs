//! Quickstart: simulate a small signalized city, then identify every
//! traffic light's schedule from nothing but the taxi GPS traces.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use taxilight::core::evaluate::{compare, ScheduleTruth};
use taxilight::core::{Identifier, IdentifyConfig, IdentifyRequest, Preprocessor};
use taxilight::sim::small_city;

fn main() {
    // A 4×4-grid city with 4 signalized intersections and 80 taxis.
    let scenario = small_city(7, 80);
    println!(
        "city: {} nodes, {} segments, {} lights, {} taxis",
        scenario.net.node_count(),
        scenario.net.segment_count(),
        scenario.net.light_count(),
        scenario.sim_config.taxi_count,
    );

    // 90 minutes of traffic.
    let duration = 90 * 60;
    let (mut log, _fleet) = scenario.run(duration);
    println!("simulated {} taxi records over {} minutes\n", log.len(), duration / 60);

    // The identification pipeline: map matching → partitioning → cycle /
    // red / change-point identification, in parallel over lights.
    let cfg = IdentifyConfig::default();
    let pre = Preprocessor::new(&scenario.net, cfg.clone());
    let (parts, stats) = pre.preprocess(&mut log);
    println!(
        "preprocessing: {} records in, {} partitioned to lights, {} implausible, {} unmatched",
        stats.input, stats.partitioned, stats.implausible, stats.unmatched
    );

    let at = scenario.sim_config.start.offset(duration as i64);
    let engine = Identifier::new(&scenario.net, cfg).expect("default config is valid");
    let results = engine.run(&parts, &IdentifyRequest::all(at)).results;

    println!(
        "\n{:<8} {:>12} {:>12} {:>12} {:>10}",
        "light", "cycle (s)", "red (s)", "change err", "verdict"
    );
    println!("{}", "-".repeat(60));
    for (light, result) in &results {
        let truth_plan = scenario.signals.plan(*light, at);
        match result {
            Ok(est) => {
                let truth = ScheduleTruth {
                    cycle_s: truth_plan.cycle_s as f64,
                    red_s: truth_plan.red_s as f64,
                    red_start_mod_cycle_s: truth_plan.offset_s as f64,
                };
                let err = compare(est, &truth);
                let verdict = if err.cycle_err_s < 5.0 { "ok" } else { "off" };
                println!(
                    "{:<8} {:>6.1}/{:<5} {:>6.1}/{:<5} {:>9.1}s {:>10}",
                    format!("{:?}", light.0),
                    est.cycle_s,
                    truth_plan.cycle_s,
                    est.red_s,
                    truth_plan.red_s,
                    err.change_err_s,
                    verdict
                );
            }
            Err(e) => println!("{:<8} identification failed: {e}", format!("{:?}", light.0)),
        }
    }
    println!("\n(format: estimated/truth)");
}
