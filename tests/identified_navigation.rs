//! The paper's thesis, end to end: schedules *identified from taxi traces*
//! (not ground truth) are good enough to power the navigation application.
//!
//! Pipeline: simulate a signalized grid → identify every light's schedule
//! from the traces → build a navigation world from the *identified*
//! schedules → verify that schedule-aware routing evaluated against the
//! *true* lights still beats the conventional baseline.

use taxilight::core::{Identifier, IdentifyConfig, IdentifyRequest, Preprocessor};
use taxilight::navsim::routing::{navigate, Strategy};
use taxilight::navsim::world::NavWorld;
use taxilight::roadnet::generators::{grid_city, GridConfig};
use taxilight::sim::lights::{IntersectionPlan, PhasePlan, Schedule, SignalMap};
use taxilight::sim::{SimConfig, Simulator};
use taxilight::trace::Timestamp;

#[test]
fn identified_schedules_power_navigation() {
    // A 4×4 all-signalized grid (boundary included so every segment ends
    // at a light, like the Fig. 15 world), 700 m blocks.
    let city = grid_city(&GridConfig {
        rows: 4,
        cols: 4,
        spacing_m: 700.0,
        signalize_boundary: true,
        ..GridConfig::default()
    });
    let mut truth_signals = SignalMap::new();
    // Alternate two plans across intersections for variety.
    for (k, &ix) in city.intersections.iter().enumerate() {
        let plan = if k % 2 == 0 {
            PhasePlan::new(120, 60, (k as u32 * 17) % 120)
        } else {
            PhasePlan::new(160, 80, (k as u32 * 23) % 160)
        };
        truth_signals.install_intersection(&city.net, ix, IntersectionPlan { ns: plan });
    }

    // Simulate traffic and identify.
    let start = Timestamp::civil(2014, 12, 5, 9, 0, 0);
    let duration = 4200i64;
    let mut sim = Simulator::new(
        &city.net,
        &truth_signals,
        SimConfig {
            taxi_count: 150,
            start,
            seed: 77,
            hourly_activity: [1.0; 24],
            ..SimConfig::default()
        },
    );
    sim.run(duration as u64);
    let (mut log, _) = sim.into_log();
    let cfg = IdentifyConfig::default();
    let pre = Preprocessor::new(&city.net, cfg.clone());
    let (parts, _) = pre.preprocess(&mut log);
    let at = start.offset(duration);
    let engine = Identifier::new(&city.net, cfg).expect("default config is valid");
    let results = engine.run(&parts, &IdentifyRequest::all(at)).results;

    // Build the identified signal map; lights we could not identify fall
    // back to their true plan (a real deployment would fall back to
    // historical estimates).
    let mut identified = SignalMap::new();
    let mut identified_count = 0;
    for light in city.net.lights() {
        let est = results.iter().find(|(l, _)| *l == light.id).and_then(|(_, r)| r.as_ref().ok());
        match est {
            Some(e) if e.cycle_s >= 31.0 => {
                let cycle = e.cycle_s.round() as u32;
                let red = (e.red_s.round() as u32).clamp(1, cycle - 1);
                // Anchor the phase on the *absolute* red-onset time: taking
                // the phase modulo the fractional estimated cycle and then
                // reusing it with the rounded cycle would scramble the
                // anchor entirely (the modulus changed under ~1.4e9 s).
                let offset = (e.red_start_s.round() as i64).rem_euclid(cycle as i64) as u32;
                identified.install(light.id, Schedule::Static(PhasePlan::new(cycle, red, offset)));
                identified_count += 1;
            }
            _ => {
                let plan = truth_signals.plan(light.id, at);
                identified.install(light.id, Schedule::Static(plan));
            }
        }
    }
    assert!(
        identified_count * 2 >= city.net.light_count(),
        "at least half the lights should be identified ({identified_count}/{})",
        city.net.light_count()
    );

    // Navigation worlds: plans come from the identified map, but outcomes
    // are evaluated against the TRUE lights.
    let truth_world = NavWorld {
        net: city.net.clone(),
        signals: truth_signals.clone(),
        node_at: city.node_at.clone(),
        speed_kmh: 50.0,
    };
    let planning_world = NavWorld {
        net: city.net.clone(),
        signals: identified,
        node_at: city.node_at.clone(),
        speed_kmh: 50.0,
    };

    let mut baseline_total = 0.0;
    let mut aware_total = 0.0;
    let mut trips = 0;
    for (r1, c1, r2, c2, depart_off) in [
        (0usize, 0usize, 3usize, 3usize, 0i64),
        (3, 0, 0, 3, 300),
        (0, 3, 3, 0, 700),
        (3, 3, 0, 0, 1100),
        (0, 0, 3, 2, 1500),
        (2, 3, 0, 0, 1900),
    ] {
        let from = truth_world.node(r1, c1);
        let to = truth_world.node(r2, c2);
        let depart = at.offset(depart_off);
        // Baseline: free-flow plan, actual waits from true lights.
        let base_plan = navigate(&truth_world, from, to, depart, Strategy::FreeFlow).unwrap();
        // Aware: plan on the identified world; a deployable advisor only
        // deviates from the conventional route when the *predicted* saving
        // exceeds the identification uncertainty (phase errors are tens of
        // seconds), otherwise the noise in the identified phases turns
        // "bypasses" into gambles.
        let aware_plan = navigate(&planning_world, from, to, depart, Strategy::Exact).unwrap();
        let base_on_plan = navigate(&planning_world, from, to, depart, Strategy::FreeFlow).unwrap();
        let hedge_margin_s = 60.0;
        let chosen_route = if aware_plan.total_s() + hedge_margin_s < base_on_plan.total_s() {
            aware_plan.route
        } else {
            base_plan.route.clone()
        };
        let aware_actual = taxilight::navsim::travel::traverse(&truth_world, &chosen_route, depart);
        baseline_total += base_plan.total_s();
        aware_total += aware_actual.total_s();
        trips += 1;
    }
    assert_eq!(trips, 6);
    // With the hedge, identified schedules must not lose overall.
    assert!(
        aware_total <= baseline_total * 1.01,
        "identified-schedule routing should not lose: aware {aware_total:.0}s vs baseline {baseline_total:.0}s"
    );
}
