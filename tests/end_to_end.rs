//! End-to-end integration: city simulation → Table-I CSV wire round-trip
//! → preprocessing → identification → comparison against ground truth.
//! This is the full life of a record, across every crate in the workspace.

use taxilight::core::evaluate::{compare, ScheduleTruth};
use taxilight::core::{Identifier, IdentifyConfig, IdentifyRequest, Preprocessor};
use taxilight::sim::small_city;
use taxilight::trace::csv::{decode_log, encode_log};
use taxilight::trace::record::Fleet;
use taxilight::trace::stream::TraceLog;

#[test]
fn simulate_serialize_identify() {
    let scenario = small_city(99, 90);
    let duration = 3900u64;
    let (log, fleet) = scenario.run(duration);

    // Ship the records over the Table-I wire format and back, as if they
    // came from the taxi company's data centre.
    let records = log.into_records();
    let text = encode_log(&records, &fleet).expect("encode");
    let mut fleet2 = Fleet::new();
    let (decoded, errors) = decode_log(&text, &mut fleet2);
    assert!(errors.is_empty(), "wire round-trip must be clean: {errors:?}");
    assert_eq!(decoded.len(), records.len());
    assert_eq!(fleet2.len(), fleet.len());

    // Identify from the decoded feed.
    let cfg = IdentifyConfig::default();
    let pre = Preprocessor::new(&scenario.net, cfg.clone());
    let mut log2 = TraceLog::from_records(decoded);
    let (parts, stats) = pre.preprocess(&mut log2);
    assert!(stats.partitioned > 0, "some records must reach lights");

    let at = scenario.sim_config.start.offset(duration as i64);
    let engine = Identifier::new(&scenario.net, cfg).expect("default config is valid");
    let results = engine.run(&parts, &IdentifyRequest::all(at)).results;
    assert!(!results.is_empty());

    // Statistical acceptance: at least half of the confidently identified
    // lights land within a few seconds of the true cycle.
    let mut errs: Vec<f64> = Vec::new();
    for (light, result) in &results {
        let Ok(est) = result else { continue };
        let plan = scenario.signals.plan(*light, at);
        let truth = ScheduleTruth {
            cycle_s: plan.cycle_s as f64,
            red_s: plan.red_s as f64,
            red_start_mod_cycle_s: plan.offset_s as f64,
        };
        errs.push(compare(est, &truth).cycle_err_s);
    }
    assert!(errs.len() >= 4, "need several identified lights, got {}", errs.len());
    errs.sort_by(f64::total_cmp);
    let median = errs[(errs.len() - 1) / 2];
    assert!(median < 6.0, "median cycle error {median} (all: {errs:?})");
}

#[test]
fn quantization_of_wire_format_does_not_change_results() {
    // Positions are quantized to micro-degrees (~0.1 m) on the wire; the
    // pipeline must be insensitive to that.
    let scenario = small_city(41, 40);
    let (log, fleet) = scenario.run(1900);
    let records = log.into_records();

    let cfg = IdentifyConfig::default();
    let pre = Preprocessor::new(&scenario.net, cfg.clone());
    let engine = Identifier::new(&scenario.net, cfg).expect("default config is valid");
    let at = scenario.sim_config.start.offset(1900);

    let mut direct_log = TraceLog::from_records(records.clone());
    let (direct_parts, _) = pre.preprocess(&mut direct_log);
    let direct = engine.run(&direct_parts, &IdentifyRequest::all(at)).results;

    let text = encode_log(&records, &fleet).unwrap();
    let mut fleet2 = Fleet::new();
    let (decoded, _) = decode_log(&text, &mut fleet2);
    let mut wire_log = TraceLog::from_records(decoded);
    let (wire_parts, _) = pre.preprocess(&mut wire_log);
    let wire = engine.run(&wire_parts, &IdentifyRequest::all(at)).results;

    assert_eq!(direct.len(), wire.len());
    for ((l1, r1), (l2, r2)) in direct.iter().zip(&wire) {
        assert_eq!(l1, l2);
        match (r1, r2) {
            (Ok(a), Ok(b)) => {
                assert!((a.cycle_s - b.cycle_s).abs() < 1.5, "{a:?} vs {b:?}");
                assert!((a.red_s - b.red_s).abs() < 6.0, "{a:?} vs {b:?}");
            }
            (Err(_), Err(_)) => {}
            (a, b) => panic!("wire format changed outcome for {l1:?}: {a:?} vs {b:?}"),
        }
    }
}
