//! Integration: the continuous monitor detects a pre-programmed programme
//! switch from simulated traces (the paper's Sec. VII / Fig. 12 behaviour),
//! and the day-over-day historical correction vetoes outliers.

use taxilight::core::monitor::ScheduleMonitor;
use taxilight::core::{Identifier, IdentifyConfig, IdentifyRequest, Preprocessor};
use taxilight::roadnet::generators::{grid_city, GridConfig};
use taxilight::sim::lights::{DailyProgram, IntersectionPlan, PhasePlan, Schedule, SignalMap};
use taxilight::sim::{SimConfig, Simulator};
use taxilight::trace::Timestamp;

#[test]
fn detects_preprogrammed_switch_from_traces() {
    let city =
        grid_city(&GridConfig { rows: 3, cols: 3, spacing_m: 600.0, ..GridConfig::default() });
    let off_peak = PhasePlan::new(80, 36, 5);
    let peak = PhasePlan::new(140, 64, 5);
    let mut signals = SignalMap::new();
    for &ix in &city.intersections {
        signals.install_intersection_with(&city.net, ix, IntersectionPlan { ns: off_peak }, |p| {
            let peak_plan = if p == off_peak { peak } else { peak.antiphase() };
            Schedule::PreProgrammed(DailyProgram::new(vec![(0, p), (8 * 3600, peak_plan)]))
        });
    }

    // Simulate 06:30 → 10:00, across the 08:00 switch.
    let start = Timestamp::civil(2014, 5, 21, 6, 30, 0);
    let horizon = 12_600i64; // 3.5 h
    let mut sim = Simulator::new(
        &city.net,
        &signals,
        SimConfig {
            taxi_count: 110,
            start,
            seed: 13,
            hourly_activity: [1.0; 24],
            ..SimConfig::default()
        },
    );
    sim.run(horizon as u64);
    let (mut log, _) = sim.into_log();

    let cfg = IdentifyConfig { window_s: 1800, ..IdentifyConfig::default() };
    let pre = Preprocessor::new(&city.net, cfg.clone());
    let engine = Identifier::new(&city.net, cfg.clone()).expect("config is valid");
    let (parts, _) = pre.preprocess(&mut log);
    let light = parts
        .lights_with_data()
        .into_iter()
        .max_by_key(|&l| parts.observations(l).len())
        .expect("a light has data");

    let mut monitor = ScheduleMonitor::new(600);
    let mut t = start.offset(cfg.window_s as i64);
    while t <= start.offset(horizon) {
        let cycle = engine
            .run(&parts, &IdentifyRequest::one(t, light))
            .into_single()
            .ok()
            .map(|e| e.cycle_s);
        monitor.push(t, cycle);
        t = t.offset(600);
    }

    let events = monitor.detect_changes(25.0, 2);
    assert!(
        !events.is_empty(),
        "the 80→140 s switch must be detected; history: {:?}",
        monitor.history()
    );
    let switch = &events[0];
    assert!(
        switch.to_cycle_s > switch.from_cycle_s,
        "first change must be the morning increase: {switch:?}"
    );
    // Detection latency is bounded by the analysis window plus the
    // monitoring interval.
    let switch_truth = Timestamp::civil(2014, 5, 21, 8, 0, 0);
    let latency = switch.at.delta(switch_truth);
    assert!(
        (-600..=(cfg.window_s as i64 + 1200)).contains(&latency),
        "detection at {} is {}s from the true switch",
        switch.at,
        latency
    );
    // Levels are near the truth.
    assert!((switch.from_cycle_s - 80.0).abs() < 12.0, "from level {}", switch.from_cycle_s);
    assert!((switch.to_cycle_s - 140.0).abs() < 12.0, "to level {}", switch.to_cycle_s);
}
