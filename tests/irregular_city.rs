//! Integration on irregular topology: every other end-to-end test runs on
//! Manhattan grids, where headings are exactly 0/90/180/270 and all
//! segments are equal. The irregular generator (jittered geometry, mixed
//! road classes, missing links) exercises map matching, intersection
//! coordination and the pipeline under realistic street geometry.

use taxilight::core::evaluate::{compare, ScheduleTruth};
use taxilight::core::{Identifier, IdentifyConfig, IdentifyRequest, Preprocessor};
use taxilight::roadnet::generators::{irregular_city, IrregularConfig};
use taxilight::sim::{generate_signal_map, ScheduleGenConfig, SimConfig, Simulator};
use taxilight::trace::Timestamp;

#[test]
fn pipeline_works_on_irregular_topology() {
    let city = irregular_city(&IrregularConfig::default(), 2024);
    assert!(!city.intersections.is_empty(), "irregular city must have junctions");

    let start = Timestamp::civil(2014, 12, 5, 10, 0, 0);
    // Static-only schedules keep ground truth single-valued in the window.
    let (signals, _) = generate_signal_map(
        &city.net,
        &ScheduleGenConfig {
            preprogrammed_fraction: 0.0,
            manual_fraction: 0.0,
            ..ScheduleGenConfig::default()
        },
        start,
        5,
    );

    let mut sim = Simulator::new(
        &city.net,
        &signals,
        SimConfig {
            taxi_count: 160,
            start,
            seed: 88,
            hourly_activity: [1.0; 24],
            ..SimConfig::default()
        },
    );
    sim.run(4200);
    let (mut log, _) = sim.into_log();

    let cfg = IdentifyConfig::default();
    let pre = Preprocessor::new(&city.net, cfg.clone());
    let (parts, stats) = pre.preprocess(&mut log);
    assert!(
        stats.partitioned as f64 >= 0.05 * stats.input as f64,
        "map matching on jittered geometry partitioned only {}/{}",
        stats.partitioned,
        stats.input
    );

    let at = start.offset(4200);
    let engine = Identifier::new(&city.net, cfg).expect("default config is valid");
    let results = engine.run(&parts, &IdentifyRequest::all(at)).results;
    let mut cycle_errs: Vec<f64> = Vec::new();
    for (light, result) in &results {
        let Ok(est) = result else { continue };
        if est.snr < 2.0 {
            continue;
        }
        let plan = signals.plan(*light, at);
        let truth = ScheduleTruth {
            cycle_s: plan.cycle_s as f64,
            red_s: plan.red_s as f64,
            red_start_mod_cycle_s: plan.offset_s as f64,
        };
        cycle_errs.push(compare(est, &truth).cycle_err_s);
    }
    assert!(
        cycle_errs.len() >= 3,
        "need several confident lights on irregular topology, got {}",
        cycle_errs.len()
    );
    cycle_errs.sort_by(f64::total_cmp);
    let median = cycle_errs[(cycle_errs.len() - 1) / 2];
    assert!(median < 8.0, "median cycle error on irregular topology {median} ({cycle_errs:?})");
}

#[test]
fn irregular_headings_still_coordinate_antiphase() {
    use taxilight::sim::lights::{is_north_south, LightState};
    // Jittered approaches must still classify onto an axis and alternate.
    let city = irregular_city(&IrregularConfig::default(), 7);
    let start = Timestamp::civil(2014, 12, 5, 10, 0, 0);
    let (signals, _) = generate_signal_map(&city.net, &ScheduleGenConfig::default(), start, 3);
    for intersection in city.net.intersections() {
        let ns: Vec<_> =
            intersection.lights.iter().filter(|l| is_north_south(l.heading_deg)).collect();
        let ew: Vec<_> =
            intersection.lights.iter().filter(|l| !is_north_south(l.heading_deg)).collect();
        if ns.is_empty() || ew.is_empty() {
            continue; // a T-junction with one axis only
        }
        // One representative pair alternates at every probed second.
        let mut saw_red = false;
        let mut saw_green = false;
        for s in 0..240 {
            let t = start.offset(s);
            let a = signals.state(ns[0].id, t);
            let b = signals.state(ew[0].id, t);
            assert_ne!(a, b, "coordination broken at {:?} second {s}", intersection.id);
            match a {
                LightState::Red => saw_red = true,
                LightState::Green => saw_green = true,
            }
        }
        assert!(saw_red && saw_green, "light never changed in 240 s");
    }
}
