#!/usr/bin/env bash
# Fails if any in-repo code calls the deprecated identification entry
# points (identify_all / identify_light / identify_light_with_cycle /
# try_identify) outside the explicit allowlist below. The shims exist
# for downstream users during the 0.2 deprecation window; in-repo code
# must use the Identifier facade (see docs/api.md).
set -euo pipefail
cd "$(dirname "$0")/.."

# Files allowed to mention the deprecated names: the shim definitions,
# their re-exports, the shim-equivalence compatibility test, and docs
# that describe the deprecation itself.
ALLOW='^crates/core/src/pipeline\.rs:|^crates/core/src/realtime\.rs:|^crates/core/src/lib\.rs:|^docs/api\.md:|^README\.md:|^CHANGES\.md:|^ISSUE\.md:|^ci/check_deprecated\.sh:'

# Call sites look like `identify_all(` / `.try_identify(`; the _impl /
# _seq internals and identify_now are distinct names and don't match.
PATTERN='\b(identify_all|identify_light|identify_light_with_cycle|try_identify)\('

hits=$(grep -rEn "$PATTERN" \
    --include='*.rs' --include='*.md' \
    src crates examples tests benches 2>/dev/null \
    | grep -Ev "$ALLOW" || true)

if [[ -n "$hits" ]]; then
    echo "error: new callers of deprecated identification entry points:" >&2
    echo "$hits" >&2
    echo >&2
    echo "Use the Identifier facade instead (docs/api.md)." >&2
    exit 1
fi
echo "ok: no in-repo callers of deprecated identification entry points"

# PlanCacheStats is now a read-only view over the taxilight-obs metrics
# registry; its public fields stay only for serialization compatibility.
# In-repo code must go through the hits()/misses()/total() accessors —
# direct field reads are allowed only inside the defining module.
STATS_ALLOW='^crates/signal/src/plan\.rs:|^docs/observability\.md:|^ci/check_deprecated\.sh:'

# Field reads look like `stats.hits` / `.plan_cache.misses` with no call
# parens; the hits()/misses() accessors and unrelated identifiers like
# `cache_hits` don't match.
STATS_PATTERN='\.(hits|misses)([^(_[:alnum:]]|$)'

stat_hits=$(grep -rEn "$STATS_PATTERN" \
    --include='*.rs' \
    src crates examples tests benches 2>/dev/null \
    | grep -Ev "$STATS_ALLOW" || true)

if [[ -n "$stat_hits" ]]; then
    echo "error: direct reads of PlanCacheStats fields outside signal::plan:" >&2
    echo "$stat_hits" >&2
    echo >&2
    echo "Use PlanCacheStats::hits()/misses()/total() (docs/observability.md)." >&2
    exit 1
fi
echo "ok: no direct PlanCacheStats field reads outside signal::plan"
