#!/usr/bin/env bash
# Fails if any in-repo code mentions the removed 0.2-era identification
# entry points (identify_all / identify_light / identify_light_with_cycle
# / try_identify). Their deprecation window closed in 0.3: the functions
# were deleted, so any call site — or a reintroduced definition — is an
# error. Code must use the Identifier facade (see docs/api.md).
set -euo pipefail
cd "$(dirname "$0")/.."

# Only docs describing the removal (and this script) may mention the
# names; no source-file allowlist remains because the names no longer
# exist in code.
ALLOW='^docs/api\.md:|^docs/serving\.md:|^README\.md:|^CHANGES\.md:|^ISSUE\.md:|^ci/check_deprecated\.sh:'

# Call sites look like `identify_all(` / `.try_identify(`; the _impl /
# _seq internals and identify_now are distinct names and don't match.
PATTERN='\b(identify_all|identify_light|identify_light_with_cycle|try_identify)\('

hits=$(grep -rEn "$PATTERN" \
    --include='*.rs' --include='*.md' \
    src crates examples tests benches 2>/dev/null \
    | grep -Ev "$ALLOW" || true)

if [[ -n "$hits" ]]; then
    echo "error: the 0.2-era identification entry points were removed in 0.3:" >&2
    echo "$hits" >&2
    echo >&2
    echo "Use the Identifier facade instead (docs/api.md)." >&2
    exit 1
fi
echo "ok: no mentions of the removed identification entry points"

# The chained RealtimeIdentifier::with_* constructors are deprecated in
# favour of the validating builder (RealtimeIdentifier::builder, see
# docs/api.md). The shims live in crates/core/src/realtime.rs (with
# their shim-equivalence test) for downstream users; in-repo callers
# must use the builder.
BUILDER_ALLOW='^crates/core/src/realtime\.rs:|^docs/api\.md:|^docs/serving\.md:|^CHANGES\.md:|^ISSUE\.md:|^ci/check_deprecated\.sh:'

BUILDER_PATTERN='\.(with_reorder_grace|with_exec_mode)\('

builder_hits=$(grep -rEn "$BUILDER_PATTERN" \
    --include='*.rs' --include='*.md' \
    src crates examples tests benches 2>/dev/null \
    | grep -Ev "$BUILDER_ALLOW" || true)

if [[ -n "$builder_hits" ]]; then
    echo "error: new callers of the deprecated with_* realtime constructors:" >&2
    echo "$builder_hits" >&2
    echo >&2
    echo "Use RealtimeIdentifier::builder(net)...build() (docs/api.md)." >&2
    exit 1
fi
echo "ok: no in-repo callers of the deprecated with_* realtime constructors"

# PlanCacheStats is now a read-only view over the taxilight-obs metrics
# registry; its public fields stay only for serialization compatibility.
# In-repo code must go through the hits()/misses()/total() accessors —
# direct field reads are allowed only inside the defining module.
STATS_ALLOW='^crates/signal/src/plan\.rs:|^docs/observability\.md:|^ci/check_deprecated\.sh:'

# Field reads look like `stats.hits` / `.plan_cache.misses` with no call
# parens; the hits()/misses() accessors and unrelated identifiers like
# `cache_hits` don't match.
STATS_PATTERN='\.(hits|misses)([^(_[:alnum:]]|$)'

stat_hits=$(grep -rEn "$STATS_PATTERN" \
    --include='*.rs' \
    src crates examples tests benches 2>/dev/null \
    | grep -Ev "$STATS_ALLOW" || true)

if [[ -n "$stat_hits" ]]; then
    echo "error: direct reads of PlanCacheStats fields outside signal::plan:" >&2
    echo "$stat_hits" >&2
    echo >&2
    echo "Use PlanCacheStats::hits()/misses()/total() (docs/observability.md)." >&2
    exit 1
fi
echo "ok: no direct PlanCacheStats field reads outside signal::plan"
