//! The city-day ingestion benchmark: a seed-deterministic synthetic
//! Shenzhen-scale day — 28 000 taxis reporting every 30 s for 24 h,
//! 80 640 000 records — generated on the fly as a [`RecordSource`] and
//! replayed through the streaming [`RealtimeIdentifier`] under a fixed
//! memory budget. Reports `BENCH_ingest.json` (records/s, peak RSS vs
//! budget, feed-clock ingest lag).
//!
//! The point is the bound, not the speed: no stage of the lap ever holds
//! the day — the generator emits bounded batches, the engine's window
//! eviction caps per-light buffers — so peak RSS stays flat while record
//! count grows 1000× over the 22 k-record replay lap. The differential
//! harness (`trace-model` proptests, `core/tests/stream_equivalence.rs`)
//! proves the streaming path bit-identical to in-memory; this module's
//! `verify_in_memory` mode re-proves it end to end on the quick workload
//! inside the benchmark itself.
//!
//! Like [`crate::throughput`], the report has a **workload** section —
//! derived from the seed and the feed clock alone, byte-identical across
//! runs — and a **timing** section of honest wall-clock/RSS measurements.
//!
//! ```text
//! cargo run --release -p taxilight-bench --bin throughput -- --city-day --json BENCH_ingest.json
//! cargo run --release -p taxilight-bench --bin throughput -- --city-day --quick --budget-mb 256
//! ```

use taxilight_core::preprocess::PreprocessStats;
use taxilight_core::realtime::RealtimeIdentifier;
use taxilight_core::IdentifyConfig;
use taxilight_eval::JsonWriter;
use taxilight_obs::metrics::{self, MetricClass};
use taxilight_obs::span;
use taxilight_roadnet::graph::RoadNetwork;
use taxilight_sim::paper_city;
use taxilight_trace::record::{GpsCondition, PassengerState, TaxiId, TaxiRecord};
use taxilight_trace::source::{RecordBatch, RecordSource};
use taxilight_trace::time::Timestamp;
use taxilight_trace::GeoPoint;

/// Workload shape for one city-day lap. Everything in the report's
/// workload section is deterministic in `seed` and these knobs.
#[derive(Debug, Clone)]
pub struct CityDayConfig {
    /// Feed seed (taxi routes, speeds, jitter, reject injection).
    pub seed: u64,
    /// Fleet size (the paper's Shenzhen feed: ~28 000).
    pub taxis: u32,
    /// Per-taxi reporting period, seconds (the paper's ~30 s uploads).
    pub period_s: u32,
    /// Feed length, seconds (86 400 = one day).
    pub day_s: u32,
    /// Records per generated batch (the streaming chunk size).
    pub chunk_records: usize,
    /// Re-identification cadence, seconds.
    pub interval_s: u32,
    /// Analysis-window length, seconds (also the eviction horizon).
    pub window_s: u32,
    /// Peak-RSS budget, bytes. The lap *measures* against this; the
    /// driver exits non-zero when exceeded.
    pub budget_bytes: u64,
    /// After the streaming lap, regenerate the whole feed in memory,
    /// replay it as one giant batch and require bit-identical schedules
    /// and round report. Only sane on reduced workloads — it gives up
    /// the memory bound on purpose (and runs *after* the streaming lap's
    /// RSS snapshot, so it cannot pollute the measurement).
    pub verify_in_memory: bool,
}

impl Default for CityDayConfig {
    fn default() -> Self {
        Self {
            seed: 77,
            taxis: 28_000,
            period_s: 30,
            day_s: 86_400,
            chunk_records: 65_536,
            interval_s: 1_800,
            window_s: 1_800,
            budget_bytes: 512 << 20,
            verify_in_memory: false,
        }
    }
}

impl CityDayConfig {
    /// A reduced lap for CI: ~480 k records in a few seconds, small
    /// enough to afford the in-memory differential verification.
    pub fn quick() -> Self {
        Self {
            taxis: 2_000,
            day_s: 7_200,
            interval_s: 900,
            budget_bytes: 256 << 20,
            verify_in_memory: true,
            ..Self::default()
        }
    }

    /// A tiny lap for unit tests (~36 k records, sub-second in debug).
    pub fn smoke() -> Self {
        Self { taxis: 300, day_s: 3_600, interval_s: 900, ..Self::quick() }
    }

    /// Exact record count the generator will emit: taxi `i` reports at
    /// every second `t ≡ i (mod period_s)`.
    pub fn expected_records(&self) -> u64 {
        let full_cycles = (self.day_s / self.period_s) as u64;
        let mut total = full_cycles * self.taxis as u64;
        for r in 0..self.day_s % self.period_s {
            total += self.reporters_at(r) as u64;
        }
        total
    }

    /// Taxis reporting in a second with residue `r = t % period_s`.
    fn reporters_at(&self, r: u32) -> u32 {
        self.taxis / self.period_s + u32::from(r < self.taxis % self.period_s)
    }
}

/// splitmix64 — the stateless mixer behind every draw, so any record is
/// a pure function of `(seed, taxi, second)` and the stream is identical
/// for every chunk size.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform draw in `[0, 1)` from a hash.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Per-segment geometry cached once so record generation is pure
/// arithmetic plus two `destination` calls.
#[derive(Debug, Clone, Copy)]
struct SegAnchor {
    from: GeoPoint,
    heading_deg: f64,
    length_m: f64,
}

/// The synthetic city-day feed as a bounded-memory [`RecordSource`].
///
/// Records arrive in strict feed-clock order, one batch of
/// `chunk_records` at a time, and every record is a pure function of
/// `(seed, taxi, second)` — the cursor is just `(second, reporter
/// index)`, so the emitted sequence is independent of the chunk size
/// (pinned by tests). The feed exercises every reject reason: each taxi
/// shuttles along a hash-assigned road segment (sawtooth, slowing near
/// the stop line — partitioned, or unsignalized on boundary segments),
/// ~9 % of the fleet wanders off-network (unmatched), and ~1 % of
/// records report GPS loss (implausible).
pub struct SyntheticCityDay {
    cfg: CityDayConfig,
    segs: Vec<SegAnchor>,
    /// Off-network anchor for wandering taxis, well outside the match
    /// radius of every segment.
    far: GeoPoint,
    start: Timestamp,
    /// Cursor: current feed second (relative) and reporter index in it.
    t: u32,
    j: u32,
}

impl SyntheticCityDay {
    /// Builds the feed over `net`'s segments, starting at `start`.
    pub fn new(net: &RoadNetwork, cfg: CityDayConfig, start: Timestamp) -> Self {
        assert!(cfg.period_s > 0, "reporting period must be positive");
        let segs: Vec<SegAnchor> = net
            .segments()
            .iter()
            .map(|s| SegAnchor {
                from: net.node(s.from).position,
                heading_deg: s.heading_deg,
                length_m: s.length_m,
            })
            .collect();
        assert!(!segs.is_empty(), "city-day feed needs a road network");
        let (_, ne) = net.bounding_box().expect("non-empty network");
        let far = ne.destination(45.0, 10_000.0);
        SyntheticCityDay { cfg, segs, far, start, t: 0, j: 0 }
    }

    /// The record taxi `i` uploads at relative second `t`.
    fn gen(&self, i: u32, t: u32) -> TaxiRecord {
        let stat = mix(self.cfg.seed ^ (i as u64).wrapping_mul(0xA076_1D64_78BD_642F));
        let dynamic = mix(stat ^ (t as u64).wrapping_mul(0xE703_7ED1_A0B4_28DB));
        let seg_idx = (stat % self.segs.len() as u64) as usize;
        let seg = self.segs[seg_idx];
        // Each segment is gated by a synthetic signal — a fixed 90 s
        // cycle with a 40 s red, phase-offset per segment — and traffic
        // moves only during green. Movement is closed-form (green seconds
        // elapsed × cruise speed, modulo the segment), so a record is
        // still a pure function of (seed, taxi, second) and the speed
        // signal at every light is periodic at the cycle the identifier
        // is supposed to recover.
        const CYCLE_S: f64 = 90.0;
        const RED_S: f64 = 40.0;
        let gate_phase =
            (mix(self.cfg.seed ^ 0x5EC0_17D5 ^ (seg_idx as u64) << 7) % CYCLE_S as u64) as f64;
        let tt = t as f64 + gate_phase;
        let in_red = tt % CYCLE_S < RED_S;
        // Green seconds since the epoch: whole cycles plus the part of
        // the current cycle past the red.
        let green_elapsed =
            (tt / CYCLE_S).floor() * (CYCLE_S - RED_S) + (tt % CYCLE_S - RED_S).max(0.0);
        let speed_mps = 6.0 + 8.0 * unit(stat.rotate_left(17));
        let phase_m = unit(stat.rotate_left(34)) * seg.length_m;
        let along_m = (green_elapsed * speed_mps + phase_m).rem_euclid(seg.length_m);
        let wanderer = stat % 11 == 0;
        let position = if wanderer {
            // Off-network: a few km of scatter around the far anchor.
            self.far.destination(360.0 * unit(dynamic.rotate_left(7)), 3_000.0 * unit(dynamic))
        } else {
            seg.from
                .destination(seg.heading_deg, along_m)
                .destination(seg.heading_deg + 90.0, 12.0 * (unit(dynamic) - 0.5))
        };
        // Stopped at red, cruising (with a little jitter) at green.
        let kmh = if in_red {
            0.0
        } else {
            speed_mps * 3.6 * (0.9 + 0.2 * unit(dynamic.rotate_left(53)))
        };
        let heading =
            (seg.heading_deg + 16.0 * (unit(dynamic.rotate_left(23)) - 0.5)).rem_euclid(360.0);
        TaxiRecord {
            taxi: TaxiId(i),
            position,
            time: self.start.offset(t as i64),
            speed_kmh: kmh,
            heading_deg: heading,
            gps: if dynamic % 101 == 0 {
                GpsCondition::Unavailable
            } else {
                GpsCondition::Available
            },
            overspeed: false,
            passenger: if stat.rotate_left(41) % 2 == 0 {
                PassengerState::Occupied
            } else {
                PassengerState::Vacant
            },
        }
    }
}

impl RecordSource for SyntheticCityDay {
    fn next_batch(
        &mut self,
        batch: &mut RecordBatch,
    ) -> Result<bool, taxilight_trace::io::TraceFileError> {
        batch.clear();
        if self.t >= self.cfg.day_s {
            return Ok(false);
        }
        while batch.records.len() < self.cfg.chunk_records && self.t < self.cfg.day_s {
            let residue = self.t % self.cfg.period_s;
            if self.j < self.cfg.reporters_at(residue) {
                // Taxi ids with residue `r` are `r, r+period, r+2·period…`
                batch.records.push(self.gen(residue + self.cfg.period_s * self.j, self.t));
                self.j += 1;
            } else {
                self.j = 0;
                self.t += 1;
            }
        }
        Ok(true)
    }
}

/// Peak resident set of this process, bytes (`VmHWM` from
/// `/proc/self/status`). `None` where procfs is unavailable.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Outcome of the optional in-memory differential verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyOutcome {
    /// Not requested (the full-day lap cannot afford it by design).
    Skipped,
    /// Streaming and in-memory replay were bit-identical.
    Identical,
    /// They diverged — a correctness failure the driver must surface.
    Diverged,
}

impl VerifyOutcome {
    fn as_str(&self) -> &'static str {
        match self {
            VerifyOutcome::Skipped => "skipped",
            VerifyOutcome::Identical => "identical",
            VerifyOutcome::Diverged => "diverged",
        }
    }
}

/// The city-day ingest report. Workload fields are seed-deterministic;
/// timing fields are measured.
#[derive(Debug, Clone)]
pub struct CityDayReport {
    /// The configuration replayed.
    pub cfg: CityDayConfig,
    /// Records the streaming engine consumed (equals
    /// [`CityDayConfig::expected_records`]).
    pub records: u64,
    /// Map-matching outcome totals over the whole day.
    pub stats: PreprocessStats,
    /// Re-identification rounds fired.
    pub rounds: u64,
    /// Lights attempted / identified by the final round.
    pub lights_attempted: usize,
    /// Lights identified by the final round.
    pub lights_identified: usize,
    /// Matched records dropped as duplicates (0 for the clean feed).
    pub deduped_total: u64,
    /// Matched records dropped as out-of-grace (0 for the in-order feed).
    pub out_of_grace_total: u64,
    /// Feed-clock lag between the watermark and the last round, seconds.
    pub watermark_lag_s: f64,
    /// Observations still buffered after the lap — the number the memory
    /// bound rides on.
    pub buffered_observations: usize,
    /// FNV-1a digest of every identified schedule's exact bits.
    pub schedule_digest: u64,
    /// The in-memory differential verdict.
    pub verified: VerifyOutcome,
    /// Streaming lap wall-clock, seconds.
    pub elapsed_s: f64,
    /// Peak RSS after the streaming lap, bytes (0 when unmeasurable).
    pub peak_rss_bytes: u64,
}

/// Exact bit patterns of the engine's current schedules, digested —
/// [`ScheduleView::digest`] reproduces this report's historical byte
/// sequence exactly, so the delegation changes no recorded digest.
///
/// [`ScheduleView::digest`]: taxilight_core::ScheduleView::digest
fn schedule_digest(engine: &RealtimeIdentifier) -> u64 {
    engine.view().digest()
}

/// Runs the city-day lap: stream the synthetic day through the realtime
/// engine, snapshot peak RSS, then (optionally) re-run in memory and
/// compare bit-for-bit.
pub fn run_city_day(cfg: &CityDayConfig) -> CityDayReport {
    // The network only — the feed is synthetic, no simulation runs.
    let scenario = paper_city(cfg.seed, 1);
    let start = Timestamp::civil(2014, 12, 5, 0, 0, 0);
    let identify_cfg = IdentifyConfig { window_s: cfg.window_s, ..IdentifyConfig::default() };

    let mut engine = RealtimeIdentifier::new(&scenario.net, identify_cfg.clone(), cfg.interval_s);
    let mut feed = SyntheticCityDay::new(&scenario.net, cfg.clone(), start);
    let (records, elapsed_s) = crate::summary::time(|| {
        let _lap = span!("cityday.stream_lap", taxis = cfg.taxis, day_s = cfg.day_s);
        engine.extend_source(&mut feed).expect("synthetic feed cannot fail")
    });
    // VmHWM is monotonic: snapshot *before* any in-memory verification
    // lap so the measurement reflects the streaming path alone.
    let peak = peak_rss_bytes().unwrap_or(0);

    let report = engine.round_report();
    let digest = schedule_digest(&engine);
    let stats = engine.preprocessor().cumulative_stats();
    let buffered = engine.buffered_observations();

    let verified = if cfg.verify_in_memory {
        let all = {
            let mut src = SyntheticCityDay::new(&scenario.net, cfg.clone(), start);
            let (records, bad) =
                taxilight_trace::source::collect_source(&mut src).expect("cannot fail");
            assert!(bad.is_empty(), "synthetic feed produced undecodable rows");
            records
        };
        let mut reference = RealtimeIdentifier::new(&scenario.net, identify_cfg, cfg.interval_s);
        reference.extend(all.iter());
        let same = reference.round_report() == report && schedule_digest(&reference) == digest;
        if same {
            VerifyOutcome::Identical
        } else {
            VerifyOutcome::Diverged
        }
    } else {
        VerifyOutcome::Skipped
    };

    // Registry mirrors, same split as the throughput bench.
    let reg = metrics::global();
    let det = MetricClass::Deterministic;
    let vol = MetricClass::Volatile;
    reg.gauge("taxilight_cityday_records", &[], det, "Records streamed through the city-day lap")
        .set(records as f64);
    reg.gauge("taxilight_cityday_rounds", &[], det, "Re-identification rounds fired")
        .set(report.rounds as f64);
    reg.gauge(
        "taxilight_cityday_buffered_observations",
        &[],
        det,
        "Observations resident after the lap (the memory bound)",
    )
    .set(buffered as f64);
    reg.gauge("taxilight_cityday_elapsed_s", &[], vol, "Streaming lap wall-clock seconds")
        .set(elapsed_s);
    reg.gauge("taxilight_cityday_peak_rss_bytes", &[], vol, "Peak RSS after the streaming lap")
        .set(peak as f64);

    CityDayReport {
        cfg: cfg.clone(),
        records,
        stats,
        rounds: report.rounds,
        lights_attempted: report.lights_attempted,
        lights_identified: report.lights_identified,
        deduped_total: report.records_deduped_total,
        out_of_grace_total: report.out_of_grace_total,
        watermark_lag_s: report.watermark_lag_s,
        buffered_observations: buffered,
        schedule_digest: digest,
        verified,
        elapsed_s,
        peak_rss_bytes: peak,
    }
}

impl CityDayReport {
    /// True when peak RSS stayed under the budget (vacuously true where
    /// RSS is unmeasurable).
    pub fn within_budget(&self) -> bool {
        self.peak_rss_bytes <= self.cfg.budget_bytes
    }

    /// The seed-deterministic workload section (shared by
    /// [`Self::to_json`] and [`Self::deterministic_json`]).
    fn write_workload(&self, w: &mut JsonWriter) {
        w.key("workload");
        w.raw("{");
        w.key("seed");
        w.raw(&self.cfg.seed.to_string());
        w.raw(",");
        w.key("taxis");
        w.raw(&self.cfg.taxis.to_string());
        w.raw(",");
        w.key("period_s");
        w.raw(&self.cfg.period_s.to_string());
        w.raw(",");
        w.key("day_s");
        w.raw(&self.cfg.day_s.to_string());
        w.raw(",");
        w.key("chunk_records");
        w.raw(&self.cfg.chunk_records.to_string());
        w.raw(",");
        w.key("window_s");
        w.raw(&self.cfg.window_s.to_string());
        w.raw(",");
        w.key("interval_s");
        w.raw(&self.cfg.interval_s.to_string());
        w.raw(",");
        w.key("records");
        w.raw(&self.records.to_string());
        w.raw(",");
        w.key("match_outcomes");
        w.raw("{");
        w.key("implausible");
        w.raw(&self.stats.implausible.to_string());
        w.raw(",");
        w.key("unmatched");
        w.raw(&self.stats.unmatched.to_string());
        w.raw(",");
        w.key("unsignalized");
        w.raw(&self.stats.unsignalized.to_string());
        w.raw(",");
        w.key("partitioned");
        w.raw(&self.stats.partitioned.to_string());
        w.raw("},");
        w.key("rounds");
        w.raw(&self.rounds.to_string());
        w.raw(",");
        w.key("lights_attempted");
        w.raw(&self.lights_attempted.to_string());
        w.raw(",");
        w.key("lights_identified");
        w.raw(&self.lights_identified.to_string());
        w.raw(",");
        w.key("deduped_total");
        w.raw(&self.deduped_total.to_string());
        w.raw(",");
        w.key("out_of_grace_total");
        w.raw(&self.out_of_grace_total.to_string());
        w.raw(",");
        w.key("ingest_lag_s");
        w.f64(self.watermark_lag_s);
        w.raw(",");
        w.key("buffered_observations");
        w.raw(&self.buffered_observations.to_string());
        w.raw(",");
        w.key("schedule_digest");
        w.string(&format!("{:#018x}", self.schedule_digest));
        w.raw(",");
        w.key("verified_in_memory");
        w.string(self.verified.as_str());
        w.raw("}");
    }

    /// The full report: workload plus wall-clock/RSS measurements.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.raw("{");
        w.key("schema");
        w.string("taxilight-ingest/1");
        w.raw(",");
        self.write_workload(&mut w);
        w.raw(",");
        w.key("timing");
        w.raw("{");
        w.key("elapsed_s");
        w.f64(self.elapsed_s);
        w.raw(",");
        w.key("records_per_s");
        w.f64(if self.elapsed_s > 0.0 { self.records as f64 / self.elapsed_s } else { 0.0 });
        w.raw(",");
        w.key("peak_rss_bytes");
        w.raw(&self.peak_rss_bytes.to_string());
        w.raw(",");
        w.key("budget_bytes");
        w.raw(&self.cfg.budget_bytes.to_string());
        w.raw(",");
        w.key("rss_within_budget");
        w.raw(if self.within_budget() { "true" } else { "false" });
        w.raw("}");
        w.raw("}");
        w.finish()
    }

    /// Only the seed-deterministic section — byte-identical across runs
    /// of the same configuration, and a literal byte prefix of
    /// [`Self::to_json`].
    pub fn deterministic_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.raw("{");
        w.key("schema");
        w.string("taxilight-ingest/1");
        w.raw(",");
        self.write_workload(&mut w);
        w.raw("}");
        w.finish()
    }

    /// Human-readable summary lines for the console.
    pub fn summary_lines(&self) -> Vec<String> {
        vec![
            format!(
                "city-day: seed {}  {} taxis × {} s period × {} s → {} records ({} chunk)",
                self.cfg.seed,
                self.cfg.taxis,
                self.cfg.period_s,
                self.cfg.day_s,
                self.records,
                self.cfg.chunk_records
            ),
            format!(
                "matching: {} partitioned / {} unsignalized / {} unmatched / {} implausible",
                self.stats.partitioned,
                self.stats.unsignalized,
                self.stats.unmatched,
                self.stats.implausible
            ),
            format!(
                "rounds: {} fired, last {}/{} lights identified, ingest lag {:.0} s, {} obs buffered",
                self.rounds,
                self.lights_identified,
                self.lights_attempted,
                self.watermark_lag_s,
                self.buffered_observations
            ),
            format!(
                "stream: {:.2} s  ({:.0} records/s)  schedule digest {:#018x}  verify: {}",
                self.elapsed_s,
                if self.elapsed_s > 0.0 { self.records as f64 / self.elapsed_s } else { 0.0 },
                self.schedule_digest,
                self.verified.as_str()
            ),
            format!(
                "memory: peak RSS {:.1} MiB vs budget {:.0} MiB → {}",
                self.peak_rss_bytes as f64 / (1 << 20) as f64,
                self.cfg.budget_bytes as f64 / (1 << 20) as f64,
                if self.within_budget() { "WITHIN BUDGET" } else { "OVER BUDGET" }
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxilight_trace::source::collect_source;

    #[test]
    fn expected_record_counts() {
        assert_eq!(CityDayConfig::default().expected_records(), 80_640_000);
        let quick = CityDayConfig::quick();
        assert_eq!(quick.expected_records(), 2_000 * 7_200 / 30);
        // Non-divisible fleet/period still sums exactly.
        let odd = CityDayConfig { taxis: 28_001, day_s: 100, period_s: 30, ..quick };
        let mut src = SyntheticCityDay::new(
            &paper_city(7, 1).net,
            odd.clone(),
            Timestamp::civil(2014, 12, 5, 0, 0, 0),
        );
        let (records, _) = collect_source(&mut src).unwrap();
        assert_eq!(records.len() as u64, odd.expected_records());
    }

    #[test]
    fn generator_is_chunk_invariant_and_time_ordered() {
        let net = &paper_city(7, 1).net;
        let start = Timestamp::civil(2014, 12, 5, 0, 0, 0);
        let cfg = CityDayConfig { chunk_records: 4096, ..CityDayConfig::smoke() };
        let (a, _) = collect_source(&mut SyntheticCityDay::new(net, cfg.clone(), start)).unwrap();
        let cfg_b = CityDayConfig { chunk_records: 777, ..cfg };
        let (b, _) = collect_source(&mut SyntheticCityDay::new(net, cfg_b, start)).unwrap();
        assert_eq!(a, b, "chunk size changed the generated feed");
        assert_eq!(a.len() as u64, cfg.expected_records());
        assert!(a.windows(2).all(|w| w[0].time <= w[1].time), "feed not time-ordered");
        // No (taxi, time) duplicates: the dedup counter must stay 0.
        let mut seen = std::collections::HashSet::new();
        assert!(a.iter().all(|r| seen.insert((r.taxi, r.time))), "duplicate (taxi, time)");
    }

    #[test]
    fn smoke_lap_is_deterministic_and_bounded() {
        let cfg = CityDayConfig::smoke();
        let a = run_city_day(&cfg);
        assert_eq!(a.records, cfg.expected_records());
        assert!(a.rounds >= 2, "smoke lap fired {} rounds", a.rounds);
        assert_eq!(a.verified, VerifyOutcome::Identical, "streaming diverged from in-memory");
        assert_eq!(a.deduped_total, 0);
        assert_eq!(a.out_of_grace_total, 0);
        // Every reject reason exercised.
        assert!(a.stats.partitioned > 0, "{:?}", a.stats);
        assert!(a.stats.unmatched > 0, "{:?}", a.stats);
        assert!(a.stats.unsignalized > 0, "{:?}", a.stats);
        assert!(a.stats.implausible > 0, "{:?}", a.stats);
        assert_eq!(
            a.stats.input as u64,
            // extend_source matches every record once; the in-memory
            // verification lap doubles the preprocessor's input but uses
            // its own engine (and preprocessor), so `stats` here counts
            // the streaming lap alone.
            a.records,
        );
        // The buffer bound: at most a window's worth of matched records.
        let window_matched = (cfg.window_s / cfg.period_s + 2) as usize * cfg.taxis as usize;
        assert!(a.buffered_observations < window_matched, "buffers exceed the window bound");
        let b = run_city_day(&cfg);
        assert_eq!(
            a.deterministic_json(),
            b.deterministic_json(),
            "same seed, different workload bytes — determinism regression"
        );
    }

    #[test]
    fn report_contract_holds() {
        let r = run_city_day(&CityDayConfig::smoke());
        let det = r.deterministic_json();
        let full = r.to_json();
        assert!(det.ends_with('}') && full.starts_with(&det[..det.len() - 1]));
        for key in [
            "\"schema\":\"taxilight-ingest/1\"",
            "\"workload\"",
            "\"match_outcomes\"",
            "\"rounds\"",
            "\"ingest_lag_s\"",
            "\"schedule_digest\"",
            "\"verified_in_memory\":\"identical\"",
            "\"timing\"",
            "\"records_per_s\"",
            "\"peak_rss_bytes\"",
            "\"budget_bytes\"",
            "\"rss_within_budget\"",
        ] {
            assert!(full.contains(key), "ingest JSON missing {key}");
        }
    }
}
