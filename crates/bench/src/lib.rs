//! Shared workloads and evaluation harnesses for the figure/table
//! regeneration binary (`figures`) and the Criterion benches.
//!
//! Everything here is deterministic in the seeds it is given, so the
//! printed tables in EXPERIMENTS.md are reproducible.

#![warn(missing_docs)]

pub mod cityday;
pub mod kernels;
pub mod serving;
pub mod summary;
pub mod throughput;

use taxilight_core::evaluate::{compare, ScheduleErrors, ScheduleTruth};
use taxilight_core::{Identifier, IdentifyConfig, IdentifyRequest, LightSchedule, Preprocessor};
use taxilight_roadnet::graph::LightId;
use taxilight_sim::{paper_city, CityScenario};
use taxilight_trace::time::Timestamp;

/// One light's evaluation at one instant.
#[derive(Debug, Clone)]
pub struct LightEval {
    /// Which light.
    pub light: LightId,
    /// Evaluation instant.
    pub at: Timestamp,
    /// Ground truth at that instant.
    pub truth: ScheduleTruth,
    /// The estimate when identification succeeded; `None` on failure.
    pub estimate: Option<LightSchedule>,
    /// Errors when identification succeeded; `None` on failure.
    pub errors: Option<ScheduleErrors>,
    /// Periodogram confidence (0 on failure).
    pub snr: f64,
    /// Observations in the window (0 on failure).
    pub samples: usize,
}

/// City-scale evaluation: simulate analysis windows at several instants
/// and identify every light each time (the Figs. 13–14 workload).
pub struct CityEval {
    /// The scenario evaluated.
    pub scenario: CityScenario,
    /// All per-(light, instant) outcomes.
    pub evals: Vec<LightEval>,
}

/// Runs the city evaluation. `instants` analysis instants are spread over
/// the simulated day starting 09:00.
pub fn run_city_eval(seed: u64, taxis: usize, instants: usize, cfg: &IdentifyConfig) -> CityEval {
    let scenario = paper_city(seed, taxis);
    let pre = Preprocessor::new(&scenario.net, cfg.clone());
    let engine = Identifier::new(&scenario.net, cfg.clone()).expect("eval config is valid");
    let mut evals = Vec::new();
    for k in 0..instants {
        // Stable-plan windows: 09:30 onward keeps every window clear of
        // the 07–09 h peak programmes, so ground truth is single-valued
        // inside the analysis window. (Windows straddling a programme
        // switch are the monitor's job — Fig. 12 — not Fig. 13/14's.)
        let start = Timestamp::civil(2014, 12, 5, 9, 30, 0).offset((k as i64) * 4271);
        let window = cfg.window_s as u64 + 300;
        let (mut log, _) = scenario.run_from(start, window);
        let (parts, _) = pre.preprocess(&mut log);
        let at = start.offset(window as i64);
        for (light, result) in engine.run(&parts, &IdentifyRequest::all(at)).results {
            let plan = scenario.signals.plan(light, at);
            let truth = ScheduleTruth {
                cycle_s: plan.cycle_s as f64,
                red_s: plan.red_s as f64,
                red_start_mod_cycle_s: plan.offset_s as f64,
            };
            let (estimate, errors, snr, samples) = match result {
                Ok(est) => (Some(est), Some(compare(&est, &truth)), est.snr, est.samples),
                Err(_) => (None, None, 0.0, 0),
            };
            evals.push(LightEval { light, at, truth, estimate, errors, snr, samples });
        }
    }
    CityEval { scenario, evals }
}

impl CityEval {
    /// Successful identifications.
    pub fn ok(&self) -> impl Iterator<Item = (&LightEval, &ScheduleErrors)> {
        self.evals.iter().filter_map(|e| e.errors.as_ref().map(|err| (e, err)))
    }

    /// Fraction of attempts that produced an estimate.
    pub fn success_rate(&self) -> f64 {
        if self.evals.is_empty() {
            return 0.0;
        }
        self.ok().count() as f64 / self.evals.len() as f64
    }

    /// Error vectors `(cycle, red, change)` over successful attempts.
    pub fn error_vectors(&self) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let mut cycle = Vec::new();
        let mut red = Vec::new();
        let mut change = Vec::new();
        for (_, err) in self.ok() {
            cycle.push(err.cycle_err_s);
            red.push(err.red_err_s);
            change.push(err.change_err_s);
        }
        (cycle, red, change)
    }
}

/// Formats a CDF row: fraction of `errs` at or below each threshold.
pub fn cdf_row(name: &str, errs: &[f64], thresholds: &[f64]) -> String {
    use taxilight_signal::histogram::Ecdf;
    let ecdf = Ecdf::new(errs);
    let mut out = format!("{name:<16}");
    for &t in thresholds {
        out.push_str(&format!(" ≤{t:>3.0}s:{:>6.1}%", 100.0 * ecdf.fraction_at_or_below(t)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn city_eval_produces_outcomes() {
        let cfg = IdentifyConfig::default();
        let eval = run_city_eval(3, 60, 1, &cfg);
        assert!(!eval.evals.is_empty());
        assert!(eval.success_rate() > 0.0);
        let (cycle, red, change) = eval.error_vectors();
        assert_eq!(cycle.len(), red.len());
        assert_eq!(red.len(), change.len());
        assert_eq!(cycle.len(), eval.ok().count());
    }

    #[test]
    fn cdf_row_formats() {
        let row = cdf_row("cycle", &[1.0, 3.0, 100.0], &[2.0, 10.0]);
        assert!(row.contains("cycle"));
        assert!(row.contains("33.3%"));
        assert!(row.contains("66.7%"));
    }
}
