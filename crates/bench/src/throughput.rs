//! The throughput benchmark axis: replays a seeded city-scale trace
//! through the serial and sharded identification engines and reports
//! records/s, lights/s, p50/p95 per-light identify latency and the
//! thread-scaling curve as `BENCH_throughput.json`.
//!
//! The report has two layers with different contracts:
//!
//! * **workload** — everything derived from the seed alone (record and
//!   light counts, the FNV digest of the shard schedule, the
//!   serial-vs-sharded equivalence verdict). Byte-identical across runs
//!   of the same seed on any machine; pinned by tests.
//! * **timing** — wall-clock measurements. Honest and machine-dependent;
//!   the scaling curve only shows speedup on hardware that actually has
//!   the cores (single-core CI runners report ≈1×).
//!
//! ```text
//! cargo run --release -p taxilight-bench --bin throughput -- --json BENCH_throughput.json
//! ```

use taxilight_obs::metrics::{self, MetricClass};
use taxilight_obs::span;

use crate::summary::{self, SampleSummary};

use taxilight_core::engine::{shard_of, ExecMode, Identifier, IdentifyRequest};
use taxilight_core::pipeline::{IdentifyError, LightSchedule};
use taxilight_core::realtime::RealtimeIdentifier;
use taxilight_core::IdentifyConfig;
use taxilight_eval::JsonWriter;
use taxilight_roadnet::graph::LightId;
use taxilight_sim::{custom_city, paper_city, CityScenario, CityTopology, ScenarioSpec};
use taxilight_trace::time::Timestamp;

/// Workload shape for one throughput run. Everything downstream is
/// deterministic in `seed`.
#[derive(Debug, Clone)]
pub struct ThroughputConfig {
    /// Scenario seed (street grid, schedules, demand, GPS noise).
    pub seed: u64,
    /// Fleet size (before the scale factor).
    pub taxis: usize,
    /// Analysis-window length, seconds.
    pub window_s: u32,
    /// Shard count for every sharded lap (fixed so the shard schedule —
    /// and its digest — is independent of the thread ladder).
    pub shards: usize,
    /// Workload scale factor. `1` is the paper's evaluation city;
    /// `k > 1` grows the grid to ≈`k`× the intersections and the fleet to
    /// `k`× the taxis, so the thread ladder has enough work per shard for
    /// parallel laps to be meaningful on multi-core hardware.
    pub scale: usize,
    /// Serial laps in the measurement bin (median/IQR/min/max are
    /// reported; each lap is also checked bit-identical to the first).
    pub samples: usize,
    /// Thread counts for the scaling curve.
    pub thread_ladder: Vec<usize>,
}

impl Default for ThroughputConfig {
    fn default() -> Self {
        Self {
            seed: 77,
            taxis: 150,
            window_s: 3600,
            shards: 32,
            scale: 1,
            samples: 3,
            thread_ladder: vec![1, 2, 4, 8],
        }
    }
}

impl ThroughputConfig {
    /// A reduced workload for smoke tests and `--quick` runs.
    pub fn quick() -> Self {
        Self {
            seed: 77,
            taxis: 60,
            window_s: 1200,
            shards: 8,
            scale: 1,
            samples: 2,
            thread_ladder: vec![1, 2],
        }
    }

    /// The scenario this config replays: the paper city at scale 1, a
    /// proportionally larger grid and fleet at higher scales.
    pub fn scenario(&self) -> CityScenario {
        if self.scale <= 1 {
            return paper_city(self.seed, self.taxis);
        }
        // Grid area grows linearly with scale (side × √scale), fleet
        // linearly with scale, keeping taxis-per-intersection roughly
        // constant.
        let dim = ((6.0 * (self.scale as f64).sqrt()).round() as usize).max(6);
        custom_city(&ScenarioSpec {
            seed: self.seed,
            taxi_count: self.taxis * self.scale,
            topology: CityTopology::Grid { dim, spacing_m: 700.0 },
            ..ScenarioSpec::default()
        })
    }
}

/// One timed lap of the sharded engine.
#[derive(Debug, Clone)]
pub struct LapTiming {
    /// Worker threads requested.
    pub threads: usize,
    /// Wall-clock seconds for the full-city identify pass.
    pub elapsed_s: f64,
    /// True when the rung requested more threads than the machine has
    /// logical CPUs — its speedup cannot exceed the smaller rungs', so
    /// readers must not interpret it as a scaling plateau of the engine.
    pub saturated: bool,
}

/// The full throughput report. See the module docs for which fields are
/// deterministic and which are measured.
#[derive(Debug, Clone)]
pub struct ThroughputReport {
    /// Scenario seed.
    pub seed: u64,
    /// Fleet size (before the scale factor).
    pub taxis: usize,
    /// Analysis-window length, seconds.
    pub window_s: u32,
    /// Shard count used by every sharded lap.
    pub shards: usize,
    /// Workload scale factor (1 = the paper city).
    pub scale: usize,
    /// Records replayed (simulated GPS fixes).
    pub records: usize,
    /// Lights with data in the analysis window.
    pub lights: usize,
    /// Lights the serial engine identified.
    pub identified: usize,
    /// FNV-1a digest of the `(light, shard)` schedule, ascending by id.
    pub shard_digest: u64,
    /// Whether every sharded lap was bit-identical to the serial pass.
    pub sharded_matches_serial: bool,
    /// Serial full-city identify pass: the median of the
    /// [`Self::serial_bin`] laps, wall-clock seconds.
    pub serial_elapsed_s: f64,
    /// The serial measurement bin: every lap's elapsed seconds summarised
    /// as median/IQR/min/max (each lap bit-checked against the first).
    pub serial_bin: SampleSummary,
    /// Logical CPUs of the machine that produced the timing section.
    pub nproc: usize,
    /// Cycle-identification stage time within the first serial lap,
    /// seconds.
    pub stage_cycle_s: f64,
    /// Red-duration stage time within the first serial lap, seconds.
    pub stage_red_s: f64,
    /// Change-point/fusion stage time within the first serial lap,
    /// seconds.
    pub stage_change_s: f64,
    /// Time inside dispatched `taxilight-signal` kernels during the first
    /// serial lap — a subset of [`Self::stage_cycle_s`] plus the resample
    /// work of stage 3, seconds.
    pub stage_kernel_s: f64,
    /// FFT plan-cache hits during the serial lap.
    pub plan_hits: u64,
    /// FFT plan-cache misses during the serial lap.
    pub plan_misses: u64,
    /// Median single-light identify latency, milliseconds.
    pub latency_ms_p50: f64,
    /// 95th-percentile single-light identify latency, milliseconds.
    pub latency_ms_p95: f64,
    /// Batched real-time ingest (map-matching + buffering), seconds.
    pub ingest_elapsed_s: f64,
    /// One lap per thread-ladder entry.
    pub scaling: Vec<LapTiming>,
}

/// FNV-1a over a byte stream — the same function the engine uses per
/// light, here extended over the whole schedule.
pub(crate) fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

pub use crate::summary::percentile;

/// Exact bit patterns of one result set, for tolerance-free comparison.
fn bits(
    results: &[(LightId, Result<LightSchedule, IdentifyError>)],
) -> Vec<(u32, Result<[u64; 5], String>)> {
    results
        .iter()
        .map(|(l, r)| {
            (
                l.0,
                r.as_ref()
                    .map(|s| {
                        [
                            s.cycle_s.to_bits(),
                            s.red_s.to_bits(),
                            s.green_s.to_bits(),
                            s.red_start_s.to_bits(),
                            s.snr.to_bits(),
                        ]
                    })
                    .map_err(|e| format!("{e:?}")),
            )
        })
        .collect()
}

/// Runs the full throughput workload: simulate, preprocess, one serial
/// lap, a per-light latency sweep, one sharded lap per ladder entry
/// (each checked bit-identical to serial), and a batched ingest lap.
pub fn run_throughput(cfg: &ThroughputConfig) -> ThroughputReport {
    let scenario = cfg.scenario();
    let start = Timestamp::civil(2014, 12, 5, 9, 30, 0);
    let duration = cfg.window_s as u64 + 300;
    let (mut log, _) = scenario.run_from(start, duration);
    let at = start.offset(duration as i64);

    let identify_cfg = IdentifyConfig { window_s: cfg.window_s, ..IdentifyConfig::default() };
    let pre = taxilight_core::Preprocessor::new(&scenario.net, identify_cfg.clone());
    let (parts, _) = pre.preprocess(&mut log);
    let engine =
        Identifier::new(&scenario.net, identify_cfg.clone()).expect("default config is valid");

    // Serial reference bin: `samples` laps, each bit-checked against the
    // first (a lap that diverged from its siblings would invalidate the
    // whole bin, not just the scaling comparisons).
    let (mut serial_laps, serial_bin) = summary::time_n(cfg.samples.max(1), |k| {
        let _lap = span!("bench.serial_lap", sample = k);
        engine.run(&parts, &IdentifyRequest { exec: ExecMode::Serial, ..IdentifyRequest::all(at) })
    });
    let serial = serial_laps.remove(0);
    let serial_elapsed_s = serial_bin.median;
    let serial_bits = bits(&serial.results);
    let mut sharded_matches_serial =
        serial_laps.iter().all(|lap| bits(&lap.results) == serial_bits);
    let identified = serial.ok_count();
    let stage = serial.stats.stage_timings;
    let plan = serial.stats.plan_cache;

    // Per-light latency sweep: one single-light request per light.
    let mut latencies_ms = Vec::with_capacity(serial.results.len());
    for (light, _) in &serial.results {
        let (_, elapsed_s) =
            summary::time(|| engine.run(&parts, &IdentifyRequest::one(at, *light).serial()));
        latencies_ms.push(elapsed_s * 1e3);
    }

    // Scaling ladder, every lap checked bit-identical to serial. Rungs
    // above the machine's logical CPU count are flagged saturated — they
    // measure oversubscription, not the engine's scaling.
    let nproc = summary::nproc();
    let mut scaling = Vec::with_capacity(cfg.thread_ladder.len());
    for &threads in &cfg.thread_ladder {
        let (out, elapsed_s) = summary::time(|| {
            let _lap = span!("bench.sharded_lap", threads = threads);
            engine.run(&parts, &IdentifyRequest::all(at).sharded(cfg.shards, threads))
        });
        sharded_matches_serial &= bits(&out.results) == serial_bits;
        scaling.push(LapTiming { threads, elapsed_s, saturated: threads > nproc });
    }

    // Batched real-time ingest lap over the same records in feed order.
    let mut records = log.into_records();
    records.sort_by_key(|r| r.time);
    let record_count = records.len();
    let mut rt = RealtimeIdentifier::new(&scenario.net, identify_cfg, cfg.window_s);
    let (_, ingest_elapsed_s) = summary::time(|| {
        let _lap = span!("bench.ingest_lap", records = record_count);
        rt.extend(records.iter());
    });

    // Shard-schedule digest: ascending (light, shard) pairs.
    let mut lights: Vec<LightId> = serial.results.iter().map(|(l, _)| *l).collect();
    lights.sort_by_key(|l| l.0);
    let shard_digest = fnv1a(lights.iter().flat_map(|l| {
        l.0.to_le_bytes().into_iter().chain((shard_of(*l, cfg.shards) as u32).to_le_bytes())
    }));

    // Mirror the run's outcome into the metrics registry: seed-fixed
    // counts are deterministic, wall-clock measurements volatile.
    let reg = metrics::global();
    let det = MetricClass::Deterministic;
    let vol = MetricClass::Volatile;
    reg.gauge("taxilight_bench_lights", &[], det, "Lights in the serial lap")
        .set(serial.results.len() as f64);
    reg.gauge("taxilight_bench_lights_identified", &[], det, "Successfully identified lights")
        .set(identified as f64);
    reg.gauge("taxilight_bench_records", &[], det, "Records replayed").set(record_count as f64);
    reg.gauge(
        "taxilight_bench_sharded_matches_serial",
        &[],
        det,
        "1 when every sharded lap was bit-identical to serial",
    )
    .set(if sharded_matches_serial { 1.0 } else { 0.0 });
    reg.gauge("taxilight_bench_serial_elapsed_s", &[], vol, "Serial lap wall-clock seconds")
        .set(serial_elapsed_s);
    let latency_hist = reg.histogram(
        "taxilight_bench_identify_latency_ms",
        &[],
        vol,
        &[1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 250.0],
        "Per-light single-request identify latency",
    );
    for &ms in &latencies_ms {
        latency_hist.observe(ms);
    }

    ThroughputReport {
        seed: cfg.seed,
        taxis: cfg.taxis,
        window_s: cfg.window_s,
        shards: cfg.shards,
        scale: cfg.scale,
        records: record_count,
        lights: serial.results.len(),
        identified,
        shard_digest,
        sharded_matches_serial,
        serial_elapsed_s,
        serial_bin,
        nproc,
        stage_cycle_s: stage.cycle_s(),
        stage_red_s: stage.red_s(),
        stage_change_s: stage.change_s(),
        stage_kernel_s: stage.kernel_s(),
        plan_hits: plan.hits(),
        plan_misses: plan.misses(),
        latency_ms_p50: percentile(&latencies_ms, 0.50),
        latency_ms_p95: percentile(&latencies_ms, 0.95),
        ingest_elapsed_s,
        scaling,
    }
}

fn rate(count: usize, elapsed_s: f64) -> f64 {
    if elapsed_s > 0.0 {
        count as f64 / elapsed_s
    } else {
        0.0
    }
}

impl ThroughputReport {
    /// Plan-cache hit rate over the serial lap; 0 when no lookups happened.
    pub fn plan_hit_rate(&self) -> f64 {
        let total = self.plan_hits + self.plan_misses;
        if total == 0 {
            0.0
        } else {
            self.plan_hits as f64 / total as f64
        }
    }

    /// Writes the seed-deterministic workload section into `w` (shared by
    /// [`Self::to_json`] and [`Self::deterministic_json`]).
    fn write_workload(&self, w: &mut JsonWriter) {
        w.key("workload");
        w.raw("{");
        w.key("seed");
        w.raw(&self.seed.to_string());
        w.raw(",");
        w.key("taxis");
        w.raw(&self.taxis.to_string());
        w.raw(",");
        w.key("scale");
        w.raw(&self.scale.to_string());
        w.raw(",");
        w.key("window_s");
        w.raw(&self.window_s.to_string());
        w.raw(",");
        w.key("shards");
        w.raw(&self.shards.to_string());
        w.raw(",");
        w.key("records");
        w.raw(&self.records.to_string());
        w.raw(",");
        w.key("lights");
        w.raw(&self.lights.to_string());
        w.raw(",");
        w.key("identified");
        w.raw(&self.identified.to_string());
        w.raw(",");
        w.key("shard_digest");
        w.string(&format!("{:#018x}", self.shard_digest));
        w.raw(",");
        w.key("sharded_matches_serial");
        w.raw(if self.sharded_matches_serial { "true" } else { "false" });
        w.raw("}");
    }

    /// The full report: workload section plus wall-clock timing.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.raw("{");
        w.key("schema");
        w.string("taxilight-throughput/3");
        w.raw(",");
        self.write_workload(&mut w);
        w.raw(",");
        w.key("timing");
        w.raw("{");
        w.key("env");
        w.raw("{");
        w.key("nproc");
        w.raw(&self.nproc.to_string());
        w.raw(",");
        w.key("arch");
        w.string(std::env::consts::ARCH);
        w.raw(",");
        w.key("kernel_path");
        w.string(taxilight_signal::kernels::active_path_name());
        w.raw("},");
        w.key("serial");
        w.raw("{");
        w.key("elapsed_s");
        w.f64(self.serial_elapsed_s);
        w.raw(",");
        w.key("records_per_s");
        w.f64(rate(self.records, self.serial_elapsed_s));
        w.raw(",");
        w.key("lights_per_s");
        w.f64(rate(self.lights, self.serial_elapsed_s));
        w.raw(",");
        w.key("bin");
        self.serial_bin.write_json(&mut w, "s");
        w.raw(",");
        w.key("stages");
        w.raw("{");
        w.key("cycle_s");
        w.f64(self.stage_cycle_s);
        w.raw(",");
        w.key("red_s");
        w.f64(self.stage_red_s);
        w.raw(",");
        w.key("change_s");
        w.f64(self.stage_change_s);
        w.raw(",");
        w.key("kernel_s");
        w.f64(self.stage_kernel_s);
        w.raw("},");
        w.key("plan_cache");
        w.raw("{");
        w.key("hits");
        w.raw(&self.plan_hits.to_string());
        w.raw(",");
        w.key("misses");
        w.raw(&self.plan_misses.to_string());
        w.raw(",");
        w.key("hit_rate");
        w.f64(self.plan_hit_rate());
        w.raw("}");
        w.raw("},");
        w.key("latency_ms");
        w.raw("{");
        w.key("p50");
        w.f64(self.latency_ms_p50);
        w.raw(",");
        w.key("p95");
        w.f64(self.latency_ms_p95);
        w.raw("},");
        w.key("ingest");
        w.raw("{");
        w.key("elapsed_s");
        w.f64(self.ingest_elapsed_s);
        w.raw(",");
        w.key("records_per_s");
        w.f64(rate(self.records, self.ingest_elapsed_s));
        w.raw("},");
        w.key("scaling");
        w.raw("[");
        for (i, lap) in self.scaling.iter().enumerate() {
            if i > 0 {
                w.raw(",");
            }
            w.raw("{");
            w.key("threads");
            w.raw(&lap.threads.to_string());
            w.raw(",");
            w.key("elapsed_s");
            w.f64(lap.elapsed_s);
            w.raw(",");
            w.key("records_per_s");
            w.f64(rate(self.records, lap.elapsed_s));
            w.raw(",");
            w.key("lights_per_s");
            w.f64(rate(self.lights, lap.elapsed_s));
            w.raw(",");
            w.key("speedup");
            w.f64(if lap.elapsed_s > 0.0 { self.serial_elapsed_s / lap.elapsed_s } else { 0.0 });
            w.raw(",");
            w.key("saturated");
            w.raw(if lap.saturated { "true" } else { "false" });
            w.raw("}");
        }
        w.raw("]");
        w.raw("}");
        w.raw("}");
        w.finish()
    }

    /// Only the seed-deterministic section — the part that must be
    /// byte-identical across two runs of the same seed on any machine.
    pub fn deterministic_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.raw("{");
        w.key("schema");
        w.string("taxilight-throughput/3");
        w.raw(",");
        self.write_workload(&mut w);
        w.raw("}");
        w.finish()
    }

    /// Human-readable summary lines for the console.
    pub fn summary_lines(&self) -> Vec<String> {
        let mut out = vec![
            format!(
                "workload: seed {}  taxis {}  scale {}  window {} s → {} records, {} lights ({} identified)",
                self.seed,
                self.taxis,
                self.scale,
                self.window_s,
                self.records,
                self.lights,
                self.identified
            ),
            format!(
                "shard schedule: {} shards, digest {:#018x}, sharded==serial: {}",
                self.shards, self.shard_digest, self.sharded_matches_serial
            ),
            format!(
                "serial: median {:.3} s over {} laps (IQR {:.3} s, min {:.3}, max {:.3})  ({:.0} records/s, {:.1} lights/s)  latency p50 {:.2} ms  p95 {:.2} ms",
                self.serial_elapsed_s,
                self.serial_bin.samples,
                self.serial_bin.iqr(),
                self.serial_bin.min,
                self.serial_bin.max,
                rate(self.records, self.serial_elapsed_s),
                rate(self.lights, self.serial_elapsed_s),
                self.latency_ms_p50,
                self.latency_ms_p95
            ),
            format!(
                "stages: cycle {:.3} s  red {:.3} s  change {:.3} s  (kernels {:.3} s)   plan cache: {} hits / {} misses ({:.1}% hit rate)",
                self.stage_cycle_s,
                self.stage_red_s,
                self.stage_change_s,
                self.stage_kernel_s,
                self.plan_hits,
                self.plan_misses,
                100.0 * self.plan_hit_rate()
            ),
            format!(
                "ingest: {:.3} s  ({:.0} records/s batched real-time extend)",
                self.ingest_elapsed_s,
                rate(self.records, self.ingest_elapsed_s)
            ),
        ];
        for lap in &self.scaling {
            out.push(format!(
                "sharded x{} threads: {:.3} s  ({:.0} records/s, speedup {:.2}x){}",
                lap.threads,
                lap.elapsed_s,
                rate(self.records, lap.elapsed_s),
                if lap.elapsed_s > 0.0 { self.serial_elapsed_s / lap.elapsed_s } else { 0.0 },
                if lap.saturated {
                    format!("  [saturated: only {} logical CPUs]", self.nproc)
                } else {
                    String::new()
                }
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic() -> ThroughputReport {
        ThroughputReport {
            seed: 77,
            taxis: 150,
            window_s: 3600,
            shards: 32,
            scale: 1,
            records: 12345,
            lights: 24,
            identified: 22,
            shard_digest: 0x0123456789abcdef,
            sharded_matches_serial: true,
            serial_elapsed_s: 2.5,
            serial_bin: SampleSummary::from_samples(&[2.5, 2.4, 2.9]),
            nproc: 2,
            stage_cycle_s: 1.75,
            stage_red_s: 0.4,
            stage_change_s: 0.3,
            stage_kernel_s: 0.6,
            plan_hits: 46,
            plan_misses: 2,
            latency_ms_p50: 10.25,
            latency_ms_p95: 42.0,
            ingest_elapsed_s: 0.5,
            scaling: vec![
                LapTiming { threads: 1, elapsed_s: 2.5, saturated: false },
                LapTiming { threads: 4, elapsed_s: 0.7, saturated: true },
            ],
        }
    }

    /// Satellite contract: the serializer is byte-stable — the same
    /// report data always produces the same bytes.
    #[test]
    fn serialization_is_byte_stable() {
        let r = synthetic();
        assert_eq!(r.to_json(), r.to_json());
        assert_eq!(r.deterministic_json(), r.deterministic_json());
    }

    #[test]
    fn json_schema_is_complete() {
        let json = synthetic().to_json();
        for key in [
            "\"schema\":\"taxilight-throughput/3\"",
            "\"workload\"",
            "\"scale\":1",
            "\"shard_digest\":\"0x0123456789abcdef\"",
            "\"sharded_matches_serial\":true",
            "\"timing\"",
            "\"env\"",
            "\"nproc\":2",
            "\"arch\"",
            "\"kernel_path\"",
            "\"serial\"",
            "\"records_per_s\"",
            "\"bin\"",
            "\"samples\":3",
            "\"median_s\"",
            "\"p25_s\"",
            "\"p75_s\"",
            "\"stages\"",
            "\"cycle_s\"",
            "\"kernel_s\"",
            "\"plan_cache\"",
            "\"hits\":46",
            "\"misses\":2",
            "\"hit_rate\"",
            "\"latency_ms\"",
            "\"ingest\"",
            "\"scaling\"",
            "\"speedup\"",
            "\"saturated\":false",
            "\"saturated\":true",
        ] {
            assert!(json.contains(key), "throughput JSON missing {key}");
        }
        // The deterministic section is a literal prefix-slice of the full
        // report, so the two can never drift apart.
        let det = synthetic().deterministic_json();
        assert!(det.ends_with('}') && json.starts_with(&det[..det.len() - 1]));
    }

    /// `--scale k` must actually grow the workload: more intersections
    /// and a larger fleet, while scale 1 stays the paper city.
    #[test]
    fn scale_grows_the_workload() {
        let base = ThroughputConfig::default();
        let scaled = ThroughputConfig { scale: 4, ..ThroughputConfig::default() };
        let a = base.scenario();
        let b = scaled.scenario();
        assert!(
            b.net.light_count() > a.net.light_count(),
            "scale 4 grid ({} lights) not larger than scale 1 ({} lights)",
            b.net.light_count(),
            a.net.light_count()
        );
        assert_eq!(b.sim_config.taxi_count, 4 * a.sim_config.taxi_count);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&xs, 0.5), 3.0);
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 1.0), 5.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    /// The real acceptance criteria, on the quick workload: the sharded
    /// engine is bit-identical to serial, and the deterministic section
    /// of the report is byte-identical across two runs of the same seed.
    #[test]
    fn quick_workload_is_deterministic_and_equivalent() {
        let cfg = ThroughputConfig::quick();
        let a = run_throughput(&cfg);
        assert!(a.records > 0 && a.lights > 0, "quick workload produced no data");
        assert!(a.identified > 0, "quick workload identified nothing");
        assert!(a.sharded_matches_serial, "sharded engine diverged from serial");
        assert!(a.plan_hits > 0, "serial lap never hit the FFT plan cache");
        assert!(a.stage_cycle_s > 0.0, "serial lap recorded no cycle-stage time");
        assert!(a.stage_kernel_s > 0.0, "serial lap recorded no kernel time");
        assert!(
            a.stage_kernel_s < a.stage_cycle_s + a.stage_change_s,
            "kernel time exceeds stages"
        );
        assert_eq!(a.serial_bin.samples, cfg.samples, "serial bin lost laps");
        assert!(a.serial_bin.min <= a.serial_elapsed_s && a.serial_elapsed_s <= a.serial_bin.max);
        assert!(a.nproc >= 1);
        for (lap, &threads) in a.scaling.iter().zip(&cfg.thread_ladder) {
            assert_eq!(lap.saturated, threads > a.nproc, "saturated flag wrong at x{threads}");
        }
        let b = run_throughput(&cfg);
        assert_eq!(
            a.deterministic_json(),
            b.deterministic_json(),
            "same seed, different workload bytes — determinism regression"
        );
    }
}
