//! The serving benchmark: a load generator against a live, in-process
//! `taxilightd` — real TCP on both sides — reporting `BENCH_serving.json`.
//!
//! Three phases per lap:
//!
//! 1. **Feed** — the seeded city feed is streamed to the daemon's feed
//!    socket in bursts, sampling `/stats` between bursts so the report
//!    records how far the identifier fell behind (feed-clock ingest lag)
//!    and how long the backlog took to drain.
//! 2. **Replay check** — once drained, the daemon's published schedule
//!    digest must be **bit-identical** to an offline
//!    [`RealtimeIdentifier`] replay of the same wire bytes. This is the
//!    gate: a daemon that serves fast but wrong fails the lap.
//! 3. **QPS ladder** — closed-loop query load at each target rate down
//!    one keep-alive connection, mixing `/schedule/{light}`,
//!    `/green_wait/{light}?t=` and `/stats`; nearest-rank p50/p99
//!    latencies per level.
//!
//! Like [`crate::cityday`], the report separates a seed-**deterministic
//! workload** section (byte-identical across runs — record counts,
//! rounds, lights, digest, replay verdict) from honest **timing**
//! measurements (latencies, lag, QPS), and the deterministic section is
//! a byte prefix of the full report.
//!
//! ```text
//! cargo run --release -p taxilight-bench --bin serving -- --json BENCH_serving.json
//! cargo run --release -p taxilight-bench --bin serving -- --quick
//! ```

use std::io::{BufRead, BufReader, Cursor, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::summary::{self, SampleSummary};

use taxilight_core::realtime::RealtimeIdentifier;
use taxilight_eval::JsonWriter;
use taxilight_obs::flight::FlightRecorder;
use taxilight_obs::json::{self, validate_flight_dump, Json};
use taxilight_roadnet::graph::{LightId, RoadNetwork};
use taxilight_serve::ingest::encode_feed;
use taxilight_serve::{Daemon, DaemonConfig, FeedFormat, FeedSource};
use taxilight_sim::small_city;
use taxilight_trace::source::collect_source;
use taxilight_trace::time::Timestamp;

/// Workload shape for one serving lap. The workload section of the
/// report is deterministic in `seed` and these knobs.
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// Scenario seed (city, schedules, fleet, demand).
    pub seed: u64,
    /// Fleet size.
    pub taxis: usize,
    /// Feed length, seconds. The first identification round needs a full
    /// analysis window (3600 s) plus the reorder grace before it fires.
    pub feed_s: u64,
    /// Feed wire format.
    pub format: FeedFormat,
    /// Re-identification cadence, seconds.
    pub interval_s: u32,
    /// Reorder grace, seconds.
    pub reorder_grace_s: u32,
    /// Bursts the feed is split into (lag is sampled between bursts).
    pub bursts: usize,
    /// Target query rates for the ladder, queries/s.
    pub qps_ladder: Vec<u64>,
    /// Closed-loop queries issued per ladder level.
    pub queries_per_level: usize,
}

impl Default for ServingConfig {
    fn default() -> Self {
        ServingConfig {
            seed: 4242,
            taxis: 60,
            feed_s: 5100,
            format: FeedFormat::Csv,
            interval_s: 300,
            reorder_grace_s: 60,
            bursts: 16,
            qps_ladder: vec![500, 2_000, 5_000],
            queries_per_level: 2_000,
        }
    }
}

impl ServingConfig {
    /// A reduced lap for CI: same scenario, shorter ladder.
    pub fn quick() -> Self {
        ServingConfig {
            taxis: 40,
            bursts: 8,
            qps_ladder: vec![200, 1_000],
            queries_per_level: 400,
            ..Self::default()
        }
    }

    /// A tiny lap for unit tests (seconds in debug builds).
    pub fn smoke() -> Self {
        ServingConfig {
            taxis: 15,
            bursts: 4,
            qps_ladder: vec![200],
            queries_per_level: 50,
            ..Self::quick()
        }
    }
}

/// Outcome of the offline-replay equivalence gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayOutcome {
    /// Daemon digest == offline replay digest.
    Match,
    /// They differ — the lap must fail.
    Diverged,
}

impl ReplayOutcome {
    /// Stable string for reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            ReplayOutcome::Match => "match",
            ReplayOutcome::Diverged => "DIVERGED",
        }
    }
}

/// One QPS ladder level's measurements.
#[derive(Debug, Clone)]
pub struct LevelResult {
    /// Target rate, queries/s.
    pub target_qps: u64,
    /// Queries issued.
    pub queries: usize,
    /// Achieved closed-loop rate, queries/s.
    pub achieved_qps: f64,
    /// Request-latency bin: median/IQR/min/max, milliseconds.
    pub latency_ms: SampleSummary,
    /// 99th-percentile request latency, milliseconds (nearest rank).
    pub p99_ms: f64,
}

impl LevelResult {
    /// Median request latency, milliseconds.
    pub fn p50_ms(&self) -> f64 {
        self.latency_ms.median
    }
}

/// The serving lap's full result.
#[derive(Debug, Clone)]
pub struct ServingReport {
    /// The configuration that produced it.
    pub cfg: ServingConfig,
    /// Records streamed (deterministic in the seed).
    pub records: u64,
    /// Identification rounds fired == published view version.
    pub rounds: u64,
    /// Lights identified in the final snapshot.
    pub lights: usize,
    /// Schedule-change events accumulated.
    pub changes: usize,
    /// Final published schedule digest (FNV-1a over the view).
    pub schedule_digest: u64,
    /// The offline-replay gate verdict.
    pub replay: ReplayOutcome,
    /// Feed streaming wall time, seconds.
    pub feed_elapsed_s: f64,
    /// Largest feed-clock ingest lag sampled between bursts, seconds.
    pub max_ingest_lag_s: f64,
    /// Wall time from feed EOF to fully drained, seconds.
    pub drain_s: f64,
    /// Ladder measurements, in `qps_ladder` order.
    pub levels: Vec<LevelResult>,
    /// Whole-lap wall time, seconds.
    pub elapsed_s: f64,
}

/// A keep-alive HTTP/1.1 client for the load loop: one connection, many
/// framed request/response round trips.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let conn = TcpStream::connect(addr).expect("connect to daemon");
        conn.set_nodelay(true).ok();
        let writer = conn.try_clone().expect("clone connection");
        Client { writer, reader: BufReader::new(conn) }
    }

    /// One GET round trip; returns (status, body).
    fn get(&mut self, target: &str) -> (u16, String) {
        write!(self.writer, "GET {target} HTTP/1.1\r\nHost: b\r\n\r\n").expect("write request");
        self.writer.flush().expect("flush request");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read status line");
        let status: u16 = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad status line: {line:?}"));
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            self.reader.read_line(&mut header).expect("read header");
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some(v) = header
                .to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::trim)
                .and_then(|v| v.parse().ok())
            {
                content_length = v;
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).expect("read body");
        (status, String::from_utf8(body).expect("utf-8 body"))
    }

    fn get_json(&mut self, target: &str) -> Json {
        let (status, body) = self.get(target);
        assert_eq!(status, 200, "{target} answered {status}: {body}");
        json::parse(&body).unwrap_or_else(|e| panic!("{target}: bad JSON ({e})"))
    }
}

fn num(doc: &Json, key: &str) -> f64 {
    doc.get(key).and_then(Json::as_f64).unwrap_or_else(|| panic!("missing number {key}"))
}

/// Offline oracle over the same wire bytes the daemon will receive.
struct Oracle {
    records: u64,
    rounds: u64,
    digest: u64,
    lights: Vec<LightId>,
    changes: usize,
}

fn offline_replay(encoded: &str, net: &RoadNetwork, cfg: &ServingConfig) -> Oracle {
    let mut source = FeedSource::new(Cursor::new(encoded.as_bytes()), cfg.format, 64 * 1024);
    let (records, bad) = collect_source(&mut source).expect("decode generated feed");
    assert!(bad.is_empty(), "generated feed has undecodable lines: {bad:?}");
    let mut engine = RealtimeIdentifier::builder(net)
        .interval_s(cfg.interval_s)
        .reorder_grace_s(cfg.reorder_grace_s)
        .build()
        .expect("serving bench config is valid");
    engine.extend(records.iter());
    let view = engine.view();
    Oracle {
        records: records.len() as u64,
        rounds: view.version(),
        digest: view.digest(),
        lights: view.schedules().map(|(l, _)| l).collect(),
        changes: engine.take_changes().len(),
    }
}

/// Runs one serving lap: daemon up, feed in bursts, replay gate, QPS
/// ladder, daemon down.
pub fn run_serving(cfg: &ServingConfig) -> ServingReport {
    run_serving_with_flight(cfg, None)
}

/// [`run_serving`] with an optional flight recorder wired into the
/// daemon. When present, the lap also fires a `serving_lap` trigger
/// (and `gate_breach` on a replay divergence), fetches `/debug/flight`
/// and gates on the dump validating.
pub fn run_serving_with_flight(
    cfg: &ServingConfig,
    flight: Option<Arc<FlightRecorder>>,
) -> ServingReport {
    let lap_start = Instant::now();

    // ── workload generation + offline oracle ──────────────────────────
    let mut city = small_city(cfg.seed, cfg.taxis);
    city.sim_config.hourly_activity = [1.0; 24];
    let start = Timestamp::civil(2014, 12, 5, 9, 0, 0);
    let (log, fleet) = city.run_from(start, cfg.feed_s);
    let mut records = log.into_records();
    records.sort_by_key(|r| r.time);
    let encoded = encode_feed(&records, &fleet, cfg.format).expect("encode feed");
    let oracle = offline_replay(&encoded, &city.net, cfg);
    assert!(!oracle.lights.is_empty(), "serving workload identified no lights — feed too short");

    let daemon = Daemon::bind(DaemonConfig {
        format: cfg.format,
        interval_s: cfg.interval_s,
        reorder_grace_s: cfg.reorder_grace_s,
        flight: flight.clone(),
        ..DaemonConfig::default()
    })
    .expect("bind daemon on ephemeral ports");
    let handle = daemon.handle();
    let http_addr = handle.http_addr();

    let mut report = std::thread::scope(|scope| {
        let runner = scope.spawn(|| daemon.run(&city.net));

        // ── phase 1: burst the feed, sampling ingest lag ──────────────
        let mut max_lag = 0.0f64;
        let mut stats_client = Client::connect(http_addr);
        let (_, feed_elapsed_s) = summary::time(|| {
            let mut feed = TcpStream::connect(handle.feed_addr()).expect("connect feed socket");
            let bytes = encoded.as_bytes();
            let burst = bytes.len().div_ceil(cfg.bursts.max(1));
            for chunk in bytes.chunks(burst) {
                feed.write_all(chunk).expect("stream feed burst");
                feed.flush().expect("flush feed burst");
                let stats = stats_client.get_json("/stats");
                max_lag = max_lag.max(num(&stats, "ingest_lag_s"));
            }
        }); // closing the feed connection inside the lap: EOF

        // ── drain: wait until every record is through the engine ──────
        let (stats, drain_s) = summary::time(|| {
            let deadline = Instant::now() + Duration::from_secs(120);
            loop {
                let stats = stats_client.get_json("/stats");
                if num(&stats, "records_processed") as u64 == oracle.records {
                    break stats;
                }
                assert!(Instant::now() < deadline, "feed never drained: {stats:?}");
                std::thread::sleep(Duration::from_millis(20));
            }
        });

        // ── phase 2: the bit-identity gate ────────────────────────────
        let daemon_digest = stats.get("digest").and_then(Json::as_str).unwrap().to_string();
        let replay = if daemon_digest == format!("{:#018x}", oracle.digest)
            && num(&stats, "version") as u64 == oracle.rounds
        {
            ReplayOutcome::Match
        } else {
            if let Some(f) = &flight {
                let _ = f.trigger("gate_breach");
            }
            ReplayOutcome::Diverged
        };

        // ── observability gates: health, freshness, flight recorder ──
        let health = stats_client.get_json("/healthz");
        assert_eq!(
            health.get("status").and_then(Json::as_str),
            Some("ok"),
            "drained daemon is not healthy: {health:?}"
        );
        let lights = stats_client.get_json("/lights");
        assert_eq!(
            num(&lights, "identified") as usize,
            oracle.lights.len(),
            "/lights identified count diverged from the offline replay"
        );
        let (mstatus, metrics_text) = stats_client.get("/metrics");
        assert_eq!(mstatus, 200);
        for name in [
            "taxilight_http_request_duration_seconds_bucket",
            "taxilight_http_errors_total",
            "taxilight_build_info",
            "taxilight_schedule_age_seconds",
            "taxilight_lights_by_grade",
        ] {
            assert!(metrics_text.contains(name), "/metrics is missing {name}");
        }
        if let Some(f) = &flight {
            let _ = f.trigger("serving_lap");
            let (fstatus, dump) = stats_client.get("/debug/flight");
            assert_eq!(fstatus, 200);
            let summary = validate_flight_dump(&json::parse(&dump).expect("flight dump parses"))
                .expect("flight dump validates");
            assert_eq!(summary.reason, "serving_lap");
        }

        // ── phase 3: the QPS ladder ───────────────────────────────────
        let t_query = start.offset((cfg.feed_s / 2) as i64);
        let levels = cfg
            .qps_ladder
            .iter()
            .map(|&target_qps| {
                let mut client = Client::connect(http_addr);
                let mut latencies = Vec::with_capacity(cfg.queries_per_level);
                let interval = Duration::from_secs_f64(1.0 / target_qps.max(1) as f64);
                let level_start = Instant::now();
                for k in 0..cfg.queries_per_level {
                    // Closed-loop pacing: never ahead of schedule, never
                    // sleeping off accumulated lateness.
                    let due = level_start + interval * k as u32;
                    if let Some(wait) = due.checked_duration_since(Instant::now()) {
                        std::thread::sleep(wait);
                    }
                    let light = oracle.lights[k % oracle.lights.len()].0;
                    let target = match k % 3 {
                        0 => format!("/schedule/{light}"),
                        1 => format!("/green_wait/{light}?t={}", t_query.0 + k as i64),
                        _ => "/stats".to_string(),
                    };
                    let sent = Instant::now();
                    let (status, _) = client.get(&target);
                    latencies.push(sent.elapsed().as_secs_f64() * 1e3);
                    assert_eq!(status, 200, "{target} failed under load");
                }
                let elapsed = level_start.elapsed().as_secs_f64();
                LevelResult {
                    target_qps,
                    queries: cfg.queries_per_level,
                    achieved_qps: cfg.queries_per_level as f64 / elapsed.max(1e-9),
                    latency_ms: SampleSummary::from_samples(&latencies),
                    p99_ms: summary::percentile(&latencies, 0.99),
                }
            })
            .collect();

        handle.shutdown();
        runner.join().expect("daemon thread panicked").expect("daemon run failed");

        ServingReport {
            cfg: cfg.clone(),
            records: oracle.records,
            rounds: oracle.rounds,
            lights: oracle.lights.len(),
            changes: oracle.changes,
            schedule_digest: oracle.digest,
            replay,
            feed_elapsed_s,
            max_ingest_lag_s: max_lag,
            drain_s,
            levels,
            elapsed_s: 0.0,
        }
    });
    report.elapsed_s = lap_start.elapsed().as_secs_f64();
    report
}

impl ServingReport {
    /// The seed-deterministic workload section (shared by
    /// [`Self::to_json`] and [`Self::deterministic_json`]).
    fn write_workload(&self, w: &mut JsonWriter) {
        w.key("workload");
        w.raw("{");
        w.key("seed");
        w.raw(&self.cfg.seed.to_string());
        w.raw(",");
        w.key("taxis");
        w.raw(&self.cfg.taxis.to_string());
        w.raw(",");
        w.key("feed_s");
        w.raw(&self.cfg.feed_s.to_string());
        w.raw(",");
        w.key("format");
        w.string(match self.cfg.format {
            FeedFormat::Csv => "csv",
            FeedFormat::NdJson => "ndjson",
        });
        w.raw(",");
        w.key("interval_s");
        w.raw(&self.cfg.interval_s.to_string());
        w.raw(",");
        w.key("reorder_grace_s");
        w.raw(&self.cfg.reorder_grace_s.to_string());
        w.raw(",");
        w.key("records");
        w.raw(&self.records.to_string());
        w.raw(",");
        w.key("rounds");
        w.raw(&self.rounds.to_string());
        w.raw(",");
        w.key("lights");
        w.raw(&self.lights.to_string());
        w.raw(",");
        w.key("changes");
        w.raw(&self.changes.to_string());
        w.raw(",");
        w.key("schedule_digest");
        w.string(&format!("{:#018x}", self.schedule_digest));
        w.raw(",");
        w.key("replay");
        w.string(self.replay.as_str());
        w.raw("}");
    }

    /// The full report: workload plus latency/lag measurements.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.raw("{");
        w.key("schema");
        w.string("taxilight-serving/2");
        w.raw(",");
        self.write_workload(&mut w);
        w.raw(",");
        w.key("timing");
        w.raw("{");
        w.key("feed_elapsed_s");
        w.f64(self.feed_elapsed_s);
        w.raw(",");
        w.key("max_ingest_lag_s");
        w.f64(self.max_ingest_lag_s);
        w.raw(",");
        w.key("drain_s");
        w.f64(self.drain_s);
        w.raw(",");
        w.key("ladder");
        w.raw("[");
        for (k, level) in self.levels.iter().enumerate() {
            if k > 0 {
                w.raw(",");
            }
            w.raw("{");
            w.key("target_qps");
            w.raw(&level.target_qps.to_string());
            w.raw(",");
            w.key("queries");
            w.raw(&level.queries.to_string());
            w.raw(",");
            w.key("achieved_qps");
            w.f64(level.achieved_qps);
            w.raw(",");
            w.key("latency_ms");
            level.latency_ms.write_json(&mut w, "ms");
            w.raw(",");
            w.key("p99_ms");
            w.f64(level.p99_ms);
            w.raw("}");
        }
        w.raw("],");
        w.key("elapsed_s");
        w.f64(self.elapsed_s);
        w.raw("}");
        w.raw("}");
        w.finish()
    }

    /// Only the deterministic section — byte-identical across runs of
    /// the same configuration and a literal byte prefix of
    /// [`Self::to_json`].
    pub fn deterministic_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.raw("{");
        w.key("schema");
        w.string("taxilight-serving/2");
        w.raw(",");
        self.write_workload(&mut w);
        w.raw("}");
        w.finish()
    }

    /// Human-readable summary lines for the console.
    pub fn summary_lines(&self) -> Vec<String> {
        let mut lines = vec![
            format!(
                "serving: seed {}  {} taxis × {} s feed → {} records ({:?})",
                self.cfg.seed, self.cfg.taxis, self.cfg.feed_s, self.records, self.cfg.format
            ),
            format!(
                "identified: {} rounds, {} lights, {} changes, digest {:#018x}  replay: {}",
                self.rounds,
                self.lights,
                self.changes,
                self.schedule_digest,
                self.replay.as_str()
            ),
            format!(
                "ingest: fed in {:.2} s over {} bursts, max lag {:.0} s, drained in {:.2} s",
                self.feed_elapsed_s, self.cfg.bursts, self.max_ingest_lag_s, self.drain_s
            ),
        ];
        for level in &self.levels {
            lines.push(format!(
                "load: target {} qps → {:.0} qps achieved, p50 {:.3} ms, p99 {:.3} ms ({} queries)",
                level.target_qps,
                level.achieved_qps,
                level.p50_ms(),
                level.p99_ms,
                level.queries
            ));
        }
        lines.push(format!("lap: {:.2} s total", self.elapsed_s));
        lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_lap_matches_replay_and_reports_cleanly() {
        let report = run_serving(&ServingConfig::smoke());
        assert_eq!(report.replay, ReplayOutcome::Match);
        assert!(report.records > 0);
        assert!(report.lights > 0);
        assert_eq!(report.levels.len(), 1);
        let level = &report.levels[0];
        assert!(level.p99_ms >= level.p50_ms());
        assert_eq!(level.latency_ms.samples, level.queries);
        assert!(level.latency_ms.min <= level.latency_ms.median);
        assert!(level.latency_ms.median <= level.latency_ms.max);
        assert!(level.p99_ms <= level.latency_ms.max);
        // Deterministic section is a byte prefix of the full report.
        let det = report.deterministic_json();
        let full = report.to_json();
        assert!(det.ends_with('}'));
        assert!(full.starts_with(&det[..det.len() - 1]));
    }

    #[test]
    fn flight_armed_lap_passes_the_dump_gate() {
        // The in-lap gate already fetches /debug/flight and validates
        // the dump; this pins that the armed path runs end to end.
        let recorder = Arc::new(FlightRecorder::new());
        let report = run_serving_with_flight(&ServingConfig::smoke(), Some(Arc::clone(&recorder)));
        assert_eq!(report.replay, ReplayOutcome::Match);
        assert!(recorder.trigger_count() >= 1, "serving_lap trigger never fired");
    }

    #[test]
    fn percentiles_use_the_shared_nearest_rank() {
        // The ladder now derives p99 from the shared `summary` module:
        // rank = round((n−1)·q) of the ascending sort.
        let lat: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(summary::percentile(&lat, 0.99), 99.0);
        assert_eq!(summary::percentile(&[7.0], 0.99), 7.0);
        assert_eq!(summary::percentile(&[], 0.50), 0.0);
        let s = SampleSummary::from_samples(&lat);
        // Nearest-rank median of 100 laps: rank round(99·0.5) = 50 → 51.0.
        assert_eq!((s.median, s.min, s.max), (51.0, 1.0, 100.0));
    }
}
