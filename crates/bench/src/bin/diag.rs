//! Scratch diagnostic: per-light cycle estimates vs truth with sample
//! counts and confidence, for estimator tuning. Not part of the public
//! deliverables (see `figures` for those).

use taxilight_bench::run_city_eval;
use taxilight_core::IdentifyConfig;

fn main() {
    let cfg = IdentifyConfig::default();
    let eval = run_city_eval(33, 180, 2, &cfg);
    println!(
        "{:>6} {:>6} {:>6} {:>9} {:>9} {:>8} {:>8}",
        "light", "n", "snr", "cyc est", "cyc true", "cyc err", "red err"
    );
    let mut rows: Vec<_> = eval.evals.iter().collect();
    rows.sort_by(|a, b| {
        let ea = a.errors.as_ref().map(|e| e.cycle_err_s).unwrap_or(f64::INFINITY);
        let eb = b.errors.as_ref().map(|e| e.cycle_err_s).unwrap_or(f64::INFINITY);
        ea.total_cmp(&eb)
    });
    for e in rows {
        match (&e.estimate, &e.errors) {
            (Some(est), Some(err)) => {
                // Signed phase error in [-C/2, C/2).
                let c = e.truth.cycle_s;
                let mut ph = (est.red_start_s - e.truth.red_start_mod_cycle_s).rem_euclid(c);
                if ph >= c / 2.0 {
                    ph -= c;
                }
                println!(
                    "{:>6} {:>6} {:>6.2} {:>9.1} {:>9.0} {:>8.1} {:>8.1} {:>8.1} (red {:>5.1} vs {:>3.0})",
                    e.light.0, e.samples, e.snr, est.cycle_s, e.truth.cycle_s, err.cycle_err_s,
                    est.red_s - e.truth.red_s, ph, est.red_s, e.truth.red_s
                )
            }
            _ => println!(
                "{:>6} {:>6}     --        --  {:>9.0}     FAIL",
                e.light.0, e.samples, e.truth.cycle_s
            ),
        }
    }
}
