//! The throughput benchmark driver.
//!
//! ```text
//! cargo run --release -p taxilight-bench --bin throughput -- --json BENCH_throughput.json
//! cargo run --release -p taxilight-bench --bin throughput -- --quick
//! ```
//!
//! Replays the seeded city-scale workload through the serial and sharded
//! engines, prints the human-readable summary, optionally writes the
//! machine-readable report, and exits non-zero if any sharded lap
//! diverged from the serial reference — so CI can archive the artifact
//! *and* gate on engine equivalence with one invocation.

use taxilight_bench::throughput::{run_throughput, ThroughputConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path: Option<String> = None;
    let mut quick = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                i += 1;
                json_path =
                    Some(args.get(i).cloned().unwrap_or_else(|| usage("--json needs a path")));
            }
            "--quick" => quick = true,
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument '{other}'")),
        }
        i += 1;
    }

    let cfg = if quick { ThroughputConfig::quick() } else { ThroughputConfig::default() };
    eprintln!(
        "replaying seed {} ({} taxis, {} s window) over threads {:?}...",
        cfg.seed, cfg.taxis, cfg.window_s, cfg.thread_ladder
    );
    let report = run_throughput(&cfg);
    for line in report.summary_lines() {
        println!("{line}");
    }

    if let Some(path) = json_path {
        std::fs::write(&path, report.to_json()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("wrote {path}");
    }

    if !report.sharded_matches_serial {
        eprintln!("FAIL: a sharded lap diverged from the serial reference");
        std::process::exit(1);
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: throughput [--json <path>] [--quick]\n\
         \n\
         --json <path>  write the machine-readable BENCH_throughput.json report\n\
         --quick        reduced workload (smoke-test scale)"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
