//! The throughput benchmark driver.
//!
//! ```text
//! cargo run --release -p taxilight-bench --bin throughput -- --json BENCH_throughput.json
//! cargo run --release -p taxilight-bench --bin throughput -- --quick
//! cargo run --release -p taxilight-bench --bin throughput -- --scale 4
//! cargo run --release -p taxilight-bench --bin throughput -- --city-day --json BENCH_ingest.json
//! ```
//!
//! Replays the seeded city-scale workload through the serial and sharded
//! engines, prints the human-readable summary, optionally writes the
//! machine-readable report, and exits non-zero if any sharded lap
//! diverged from the serial reference or the deterministic section is
//! not a byte prefix of the full report — so CI can archive the artifact
//! *and* gate on engine equivalence with one invocation.
//!
//! `--city-day` switches to the memory-bounded streaming-ingestion lap
//! (`BENCH_ingest.json`): the synthetic 80 M-record day replayed through
//! the realtime engine under a peak-RSS budget. Exit status gates on the
//! budget and (with `--quick`) on the in-memory differential check.

use std::sync::Arc;

use taxilight_bench::cityday::{run_city_day, CityDayConfig, VerifyOutcome};
use taxilight_bench::throughput::{run_throughput, ThroughputConfig};
use taxilight_obs::chrome::ChromeTraceWriter;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut quick = false;
    let mut city_day = false;
    let mut budget_mb: Option<u64> = None;
    let mut scale: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                i += 1;
                json_path =
                    Some(args.get(i).cloned().unwrap_or_else(|| usage("--json needs a path")));
            }
            "--trace-out" => {
                i += 1;
                trace_out =
                    Some(args.get(i).cloned().unwrap_or_else(|| usage("--trace-out needs a path")));
            }
            "--metrics-out" => {
                i += 1;
                metrics_out = Some(
                    args.get(i).cloned().unwrap_or_else(|| usage("--metrics-out needs a path")),
                );
            }
            "--quick" => quick = true,
            "--city-day" => city_day = true,
            "--budget-mb" => {
                i += 1;
                let raw = args.get(i).cloned().unwrap_or_else(|| usage("--budget-mb needs a size"));
                match raw.parse::<u64>() {
                    Ok(n) if n >= 1 => budget_mb = Some(n),
                    _ => usage(&format!("--budget-mb needs a positive integer, got '{raw}'")),
                }
            }
            "--scale" => {
                i += 1;
                let raw = args.get(i).cloned().unwrap_or_else(|| usage("--scale needs a factor"));
                match raw.parse::<usize>() {
                    Ok(n) if n >= 1 => scale = Some(n),
                    _ => usage(&format!("--scale needs a positive integer, got '{raw}'")),
                }
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument '{other}'")),
        }
        i += 1;
    }

    // Tracing is opt-in: without --trace-out no subscriber is installed
    // and every span!/event! site in the pipeline stays a single atomic
    // load (the zero-cost contract the alloc-counter gate pins).
    let tracer = trace_out.as_ref().map(|_| {
        let w = Arc::new(ChromeTraceWriter::new());
        taxilight_obs::set_subscriber(w.clone()).expect("first subscriber install");
        taxilight_obs::set_track_name(|| "main".to_string());
        w
    });

    if city_day {
        if scale.is_some() {
            usage("--scale does not apply to --city-day");
        }
        let mut cfg = if quick { CityDayConfig::quick() } else { CityDayConfig::default() };
        if let Some(mb) = budget_mb {
            cfg.budget_bytes = mb << 20;
        }
        eprintln!(
            "streaming city-day seed {} ({} taxis, {} s period, {} s feed, {} MiB budget)...",
            cfg.seed,
            cfg.taxis,
            cfg.period_s,
            cfg.day_s,
            cfg.budget_bytes >> 20
        );
        let report = run_city_day(&cfg);
        for line in report.summary_lines() {
            println!("{line}");
        }
        if let Some(path) = &json_path {
            std::fs::write(path, report.to_json()).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(2);
            });
            eprintln!("wrote {path}");
        }
        if let (Some(path), Some(w)) = (&trace_out, &tracer) {
            w.save(std::path::Path::new(path)).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(2);
            });
            eprintln!("wrote {path} ({} trace events)", w.len());
        }
        if let Some(path) = &metrics_out {
            std::fs::write(path, taxilight_obs::metrics::global().snapshot_json()).unwrap_or_else(
                |e| {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(2);
                },
            );
            eprintln!("wrote {path}");
        }
        if report.verified == VerifyOutcome::Diverged {
            eprintln!("FAIL: streaming lap diverged from the in-memory reference");
            std::process::exit(1);
        }
        if !report.within_budget() {
            eprintln!(
                "FAIL: peak RSS {} bytes exceeds the {} byte budget",
                report.peak_rss_bytes, report.cfg.budget_bytes
            );
            std::process::exit(1);
        }
        let det = report.deterministic_json();
        let full = report.to_json();
        if !(det.ends_with('}') && full.starts_with(&det[..det.len() - 1])) {
            eprintln!("FAIL: deterministic section is not a byte prefix of the full report");
            std::process::exit(1);
        }
        return;
    }
    if budget_mb.is_some() {
        usage("--budget-mb only applies to --city-day");
    }

    let mut cfg = if quick { ThroughputConfig::quick() } else { ThroughputConfig::default() };
    if let Some(s) = scale {
        cfg.scale = s;
    }
    eprintln!(
        "replaying seed {} ({} taxis, scale {}, {} s window) over threads {:?}...",
        cfg.seed, cfg.taxis, cfg.scale, cfg.window_s, cfg.thread_ladder
    );
    let report = run_throughput(&cfg);
    for line in report.summary_lines() {
        println!("{line}");
    }

    if let Some(path) = json_path {
        std::fs::write(&path, report.to_json()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("wrote {path}");
    }

    if let (Some(path), Some(w)) = (&trace_out, &tracer) {
        w.save(std::path::Path::new(path)).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("wrote {path} ({} trace events)", w.len());
    }

    if let Some(path) = &metrics_out {
        std::fs::write(path, taxilight_obs::metrics::global().snapshot_json()).unwrap_or_else(
            |e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(2);
            },
        );
        eprintln!("wrote {path}");
    }

    if !report.sharded_matches_serial {
        eprintln!("FAIL: a sharded lap diverged from the serial reference");
        std::process::exit(1);
    }

    // Self-check the report-format contract: the deterministic section
    // must be a literal byte prefix of the full report.
    let det = report.deterministic_json();
    let full = report.to_json();
    if !(det.ends_with('}') && full.starts_with(&det[..det.len() - 1])) {
        eprintln!("FAIL: deterministic section is not a byte prefix of the full report");
        std::process::exit(1);
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: throughput [--json <path>] [--quick] [--scale <k>] [--city-day] \
         [--budget-mb <n>] [--trace-out <path>] [--metrics-out <path>]\n\
         \n\
         --json <path>         write the machine-readable report (BENCH_throughput.json,\n\
         \u{20}                     or BENCH_ingest.json with --city-day)\n\
         --quick               reduced workload (smoke-test scale)\n\
         --scale <k>           grow the city and fleet ~k x (default 1 = paper city)\n\
         --city-day            memory-bounded streaming-ingestion lap (synthetic 80 M-record\n\
         \u{20}                     day; --quick shrinks it and adds the in-memory differential)\n\
         --budget-mb <n>       peak-RSS budget for --city-day, MiB (exit 1 when exceeded)\n\
         --trace-out <path>    record a Chrome trace-event JSON profile (Perfetto-loadable)\n\
         --metrics-out <path>  write the metrics-registry snapshot JSON"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
