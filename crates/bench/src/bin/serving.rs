//! The serving benchmark driver.
//!
//! ```text
//! cargo run --release -p taxilight-bench --bin serving -- --json BENCH_serving.json
//! cargo run --release -p taxilight-bench --bin serving -- --quick --metrics-out serving-metrics.json
//! ```
//!
//! Boots an in-process `taxilightd`, streams the seeded feed to it over
//! TCP, runs the closed-loop QPS ladder, prints the summary, optionally
//! writes the machine-readable report and the metrics snapshot, and
//! exits non-zero when the daemon's answers diverge from the offline
//! replay or the deterministic report section is not a byte prefix of
//! the full report — one invocation for CI to archive and gate on.

use std::sync::Arc;

use taxilight_bench::serving::{run_serving_with_flight, ReplayOutcome, ServingConfig};
use taxilight_obs::flight::FlightRecorder;

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: serving [--quick] [--json <file.json>] [--metrics-out <file.json>] \
         [--flight-out <file.json>] [--format csv|ndjson]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut flight_out: Option<String> = None;
    let mut quick = false;
    let mut format: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                i += 1;
                json_path =
                    Some(args.get(i).cloned().unwrap_or_else(|| usage("--json needs a path")));
            }
            "--metrics-out" => {
                i += 1;
                metrics_out = Some(
                    args.get(i).cloned().unwrap_or_else(|| usage("--metrics-out needs a path")),
                );
            }
            "--flight-out" => {
                i += 1;
                flight_out = Some(
                    args.get(i).cloned().unwrap_or_else(|| usage("--flight-out needs a path")),
                );
            }
            "--format" => {
                i += 1;
                format =
                    Some(args.get(i).cloned().unwrap_or_else(|| usage("--format needs a value")));
            }
            "--quick" => quick = true,
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument '{other}'")),
        }
        i += 1;
    }

    let mut cfg = if quick { ServingConfig::quick() } else { ServingConfig::default() };
    if let Some(f) = format {
        cfg.format = taxilight_serve::FeedFormat::parse(&f)
            .unwrap_or_else(|| usage(&format!("unknown format '{f}'")));
    }
    eprintln!(
        "serving lap seed {} ({} taxis, {} s feed, ladder {:?})...",
        cfg.seed, cfg.taxis, cfg.feed_s, cfg.qps_ladder
    );
    let flight = flight_out.as_ref().map(|_| Arc::new(FlightRecorder::new()));
    let report = run_serving_with_flight(&cfg, flight.clone());
    for line in report.summary_lines() {
        println!("{line}");
    }

    if let (Some(path), Some(recorder)) = (&flight_out, &flight) {
        recorder.save(std::path::Path::new(path)).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("wrote {path}");
    }

    if let Some(path) = &json_path {
        std::fs::write(path, report.to_json()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("wrote {path}");
    }
    if let Some(path) = &metrics_out {
        std::fs::write(path, taxilight_obs::metrics::global().snapshot_json()).unwrap_or_else(
            |e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(2);
            },
        );
        eprintln!("wrote {path}");
    }

    if report.replay == ReplayOutcome::Diverged {
        eprintln!("FAIL: daemon answers diverged from the offline replay");
        std::process::exit(1);
    }
    let det = report.deterministic_json();
    let full = report.to_json();
    if !(det.ends_with('}') && full.starts_with(&det[..det.len() - 1])) {
        eprintln!("FAIL: deterministic section is not a byte prefix of the full report");
        std::process::exit(1);
    }
}
