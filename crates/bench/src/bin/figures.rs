//! Regenerates every table and figure of the paper's evaluation from the
//! simulated substrate. Each subcommand prints the rows/series the paper
//! reports; EXPERIMENTS.md records paper-vs-measured.
//!
//! ```text
//! cargo run --release -p taxilight-bench --bin figures -- all
//! cargo run --release -p taxilight-bench --bin figures -- fig14
//! ```

use taxilight_bench::{cdf_row, run_city_eval};
use taxilight_core::cycle::{identify_cycle, identify_cycle_from_samples, speed_samples};
use taxilight_core::enhance::mirror_enhance;
use taxilight_core::monitor::ScheduleMonitor;
use taxilight_core::red::{extract_stops, red_duration};
use taxilight_core::superpose::{bin_cycle, superpose};
use taxilight_core::{Identifier, IdentifyConfig, IdentifyRequest, Preprocessor};
use taxilight_navsim::experiment::{overall_saving, run_fig16, Fig16Config};
use taxilight_roadnet::generators::{grid_city, GridConfig};
use taxilight_roadnet::SegmentIndex;
use taxilight_signal::histogram::Ecdf;
use taxilight_signal::interpolate::Method;
use taxilight_signal::periodogram::{band_candidates, PeriodBand};
use taxilight_sim::lights::{DailyProgram, IntersectionPlan, PhasePlan, Schedule, SignalMap};
use taxilight_sim::{paper_city, SimConfig, Simulator};
use taxilight_trace::stats::TraceStatistics;
use taxilight_trace::time::Timestamp;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let run = |name: &str, f: fn()| {
        if arg == name || arg == "all" {
            println!("\n================= {name} =================");
            f();
        }
    };
    run("fig1", fig1);
    run("fig2", fig2);
    run("table2", table2);
    run("fig6", fig6);
    run("fig7", fig7);
    run("fig9", fig9);
    run("fig10", fig10);
    run("fig11", fig11);
    run("fig12", fig12);
    run("fig13", fig13);
    run("fig14", fig14);
    run("fig16", fig16);
    run("ablation", ablation);
    run("density", density);
    run("accuracy", accuracy);
    run("robustness", robustness);
    run("throughput", throughput);
    run("kernels", kernels);
    if !matches!(
        arg.as_str(),
        "all"
            | "fig1"
            | "fig2"
            | "table2"
            | "fig6"
            | "fig7"
            | "fig9"
            | "fig10"
            | "fig11"
            | "fig12"
            | "fig13"
            | "fig14"
            | "fig16"
            | "ablation"
            | "density"
            | "accuracy"
            | "robustness"
            | "throughput"
            | "kernels"
    ) {
        eprintln!(
            "unknown figure '{arg}'. One of: fig1 fig2 table2 fig6 fig7 fig9 fig10 fig11 fig12 fig13 fig14 fig16 ablation density accuracy robustness throughput kernels all"
        );
        std::process::exit(2);
    }
}

/// Throughput snapshot: replays the seeded city-scale workload through
/// the serial and sharded engines and archives the machine-readable
/// report as `BENCH_throughput.json` (the artifact CI uploads). Timing
/// fields are machine-dependent; the workload section is byte-identical
/// across runs of the same seed.
fn throughput() {
    use taxilight_bench::throughput::{run_throughput, ThroughputConfig};
    let report = run_throughput(&ThroughputConfig::default());
    for line in report.summary_lines() {
        println!("{line}");
    }
    let path = "BENCH_throughput.json";
    match std::fs::write(path, report.to_json()) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}

/// Kernel microbenchmark: times every `taxilight_signal::kernels` entry
/// point with dispatch forced scalar and then SIMD over identical seeded
/// inputs, proves the outputs bit-identical, and archives the
/// machine-readable report as `BENCH_kernels.json` (the artifact CI
/// uploads). Speedups are machine-dependent; the workload section
/// (seed, lengths, per-kernel bit-identity + checksum) is byte-identical
/// across runs of the same seed.
fn kernels() {
    use taxilight_bench::kernels::{run_kernel_bench, KernelBenchConfig};
    let cfg = if std::env::args().any(|a| a == "--quick") {
        KernelBenchConfig::quick()
    } else {
        KernelBenchConfig::default()
    };
    let report = run_kernel_bench(&cfg);
    for line in report.summary_lines() {
        println!("{line}");
    }
    let path = "BENCH_kernels.json";
    match std::fs::write(path, report.to_json()) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}

/// Accuracy-regression snapshot: runs the taxilight-eval fast conformance
/// matrix and archives the machine-readable report as
/// `BENCH_accuracy.json` (the artifact CI uploads).
fn accuracy() {
    let scenarios = taxilight_eval::matrix();
    let report = taxilight_eval::run_matrix(&scenarios);
    for s in &report.scenarios {
        println!("{}", s.summary_line());
        for f in &s.failures {
            println!("      gate: {f}");
        }
    }
    let path = "BENCH_accuracy.json";
    match std::fs::write(path, report.to_json()) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}

/// Fault-injection degradation curves: every corruption profile swept
/// over the full severity ladder, printed as `severity → success /
/// median cycle / median red` series and archived as
/// `BENCH_robustness.json` (the artifact CI uploads).
fn robustness() {
    let report = taxilight_eval::run_robustness(&taxilight_eval::robustness::FULL_SEVERITIES);
    for p in &report.profiles {
        println!("{}", p.summary_line());
        println!("      severity   ok     cycle_s  red_bins  change_s  spurious");
        for pt in &p.points {
            println!(
                "      {:>8.2}  {:>5.2}  {:>7.2}  {:>8.2}  {:>8.1}  {:>8.2}",
                pt.severity,
                pt.success_rate,
                pt.median_cycle_err_s,
                pt.median_red_bins,
                pt.median_change_err_s,
                pt.spurious_change_rate,
            );
        }
        for f in &p.failures {
            println!("      gate: {f}");
        }
    }
    let path = "BENCH_robustness.json";
    match std::fs::write(path, report.to_json()) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}

/// Fig. 1 — aggregated taxi updates vs. the road network. The paper's
/// visual comparison becomes a coverage statistic: how close reported
/// fixes lie to actual roads.
fn fig1() {
    let scenario = paper_city(1, 120);
    let (mut log, _) = scenario.run_from(Timestamp::civil(2014, 12, 5, 8, 0, 0), 3 * 3600);
    let index = SegmentIndex::build(&scenario.net, 250.0);
    let total = log.len();
    let mut within = [0usize; 4];
    let radii = [15.0, 30.0, 60.0, 120.0];
    for r in log.records() {
        for (k, &radius) in radii.iter().enumerate() {
            if index.nearest_segment(&scenario.net, r.position, radius).is_some() {
                within[k] += 1;
            }
        }
    }
    println!("3 h of updates ({total} records) vs. the road network:");
    for (k, &radius) in radii.iter().enumerate() {
        println!(
            "  within {radius:>5.0} m of a road: {:>5.1}%",
            100.0 * within[k] as f64 / total as f64
        );
    }
    println!("(paper: the aggregated plot visually traces the OSM road network)");
}

/// Fig. 2 — trace statistics over a simulated day.
fn fig2() {
    let scenario = paper_city(5, 120);
    let (mut log, _) = scenario.run(24 * 3600);
    let stats = TraceStatistics::compute(&mut log);
    println!("records {}  taxis {}", stats.record_count, stats.taxi_count);
    println!(
        "(b) update interval: mean {:.2} s, σ {:.2}   [paper 20.41 / 20.54]",
        stats.interval.mean, stats.interval.stddev
    );
    println!(
        "(c) stationary consecutive updates: {:.1}%   [paper 42.66%]; moving mean {:.1} m [paper 100.69]",
        100.0 * stats.stationary_fraction,
        stats.moving_distance.mean
    );
    let (mu, sigma) = stats.speed_diff_normal;
    println!("(d) speed differences fit N({mu:.2}, {sigma:.1})   [paper N(0, 40)]");
    println!("(a) records per 2-hour block:");
    let max: u64 = stats.slot_counts.iter().sum::<u64>().max(1);
    for block in 0..12 {
        let total: u64 = (0..12).map(|k| stats.slot_counts[block * 12 + k]).sum();
        println!(
            "  {:02}:00-{:02}:00 {:>7} {}",
            block * 2,
            block * 2 + 2,
            total,
            "#".repeat((total * 600 / max) as usize)
        );
    }
    if let Some(r) = stats.slot_imbalance() {
        println!("slot imbalance {r:.1}× (paper: pronounced night/day imbalance)");
    }
}

/// Table II — records per hour at the monitored intersections.
fn table2() {
    let scenario = paper_city(11, 150);
    let (mut log, _) = scenario.run_from(Timestamp::civil(2014, 12, 5, 10, 0, 0), 3600);
    println!("{:<4} {:>16} {:>18}", "ID", "records/hour", "(within 250 m)");
    let mut counts = Vec::new();
    for (k, &ix) in scenario.monitored.iter().enumerate() {
        let pos = scenario.net.intersection(ix).position(&scenario.net);
        let n = log.records().iter().filter(|r| r.position.distance_m(pos) < 250.0).count();
        counts.push(n);
        println!("{:<4} {:>16} {:>18}", k + 1, n, "");
    }
    let max = *counts.iter().max().unwrap_or(&0);
    let min = counts.iter().copied().filter(|&c| c > 0).min().unwrap_or(1);
    println!("busiest/idlest ratio: {:.1}×   [paper: 5071/198 ≈ 25.6×]", max as f64 / min as f64);
}

/// A simulated single-intersection world shared by Figs. 6–11.
fn single_light_world(
    cycle: u32,
    red: u32,
    offset: u32,
    taxis: usize,
    duration_s: u64,
) -> (
    taxilight_roadnet::generators::GeneratedCity,
    SignalMap,
    taxilight_core::PartitionedTraces,
    Timestamp,
    IdentifyConfig,
) {
    let city =
        grid_city(&GridConfig { rows: 3, cols: 3, spacing_m: 600.0, ..GridConfig::default() });
    let mut signals = SignalMap::new();
    let plan = PhasePlan::new(cycle, red, offset);
    for &ix in &city.intersections {
        signals.install_intersection(&city.net, ix, IntersectionPlan { ns: plan });
    }
    let start = Timestamp::civil(2014, 12, 5, 14, 0, 0);
    let mut sim = Simulator::new(
        &city.net,
        &signals,
        SimConfig {
            taxi_count: taxis,
            start,
            seed: 42,
            hourly_activity: [1.0; 24],
            ..SimConfig::default()
        },
    );
    sim.run(duration_s);
    let (mut log, _) = sim.into_log();
    let cfg = IdentifyConfig::default();
    let pre = Preprocessor::new(&city.net, cfg.clone());
    let (parts, _) = pre.preprocess(&mut log);
    (city, signals, parts, start.offset(duration_s as i64), cfg)
}

/// Fig. 6 — periodicity identification: raw samples → interpolated 1 Hz
/// signal → DFT spectrum with the winning bin.
fn fig6() {
    let truth_cycle = 98;
    // The paper's Fig. 6 shows a busy intersection (its Table-II leader
    // logs 5071 records/h); use a dense fleet for the same regime.
    let (_city, _signals, parts, at, cfg) = single_light_world(truth_cycle, 39, 0, 300, 3600);
    let light = parts
        .lights_with_data()
        .into_iter()
        .max_by_key(|&l| parts.observations(l).len())
        .expect("light with data");
    let t0 = at.offset(-3600);
    let obs = parts.window(light, t0, at);
    let samples = speed_samples(obs, t0, cfg.influence_radius_m);
    println!(
        "raw samples in 1 h window: {} (≈{:.1}/min)",
        samples.len(),
        samples.len() as f64 / 60.0
    );

    let grid =
        taxilight_signal::interpolate::resample(&samples, 0.0, 1.0, 3600, Method::CubicSpline)
            .expect("resample");
    println!("interpolated to 3600 × 1 Hz grid (spline; negative speeds tolerated)");
    let cands = band_candidates(&grid, 1.0, PeriodBand::TRAFFIC_LIGHTS, 5);
    println!("strongest DFT bins in the 30–300 s band:");
    for c in &cands {
        println!("  bin {:>3} → period {:>6.1} s  |x| = {:>7.2}", c.bin, c.period, c.magnitude);
    }
    match identify_cycle(obs, t0, at, &cfg) {
        Ok(est) => println!(
            "identified cycle: {:.1} s (bin {})   [truth {truth_cycle} s; paper example: bin 37 → 97 s vs truth 98 s]",
            est.cycle_s, est.bin
        ),
        Err(e) => println!("identification failed: {e}"),
    }
}

/// Fig. 7 — intersection-based enhancement on sparse data: cycle error
/// solo vs. enhanced at decreasing fleet sizes.
fn fig7() {
    println!("{:>7} {:>14} {:>14}", "taxis", "solo err (s)", "enhanced (s)");
    for taxis in [15usize, 25, 40, 80] {
        let truth = 110.0;
        let (city, _signals, parts, at, cfg) = single_light_world(110, 50, 20, taxis, 3600);
        let light = parts
            .lights_with_data()
            .into_iter()
            .max_by_key(|&l| parts.observations(l).len())
            .expect("light with data");
        let t0 = at.offset(-3600);
        let obs = parts.window(light, t0, at);
        let solo = identify_cycle(obs, t0, at, &cfg)
            .map(|e| (e.cycle_s - truth).abs())
            .map(|e| format!("{e:.1}"))
            .unwrap_or_else(|_| "fail".into());
        // Enhanced: pool the perpendicular approaches via Eq. (3).
        let this = city.net.light(light).unwrap();
        let mut primary = speed_samples(obs, t0, cfg.influence_radius_m);
        let mut perp = Vec::new();
        for l in &city.net.intersection(this.intersection).lights {
            if l.id == light {
                continue;
            }
            let w = parts.window(l.id, t0, at);
            let s = speed_samples(w, t0, cfg.influence_radius_m);
            let d = taxilight_trace::geo::heading_difference(l.heading_deg, this.heading_deg);
            if (45.0..=135.0).contains(&d) {
                perp.extend(s);
            } else {
                primary.extend(s);
            }
        }
        let merged = mirror_enhance(&primary, &perp);
        let enhanced = identify_cycle_from_samples(&merged, 3600, &cfg)
            .map(|e| format!("{:.1}", (e.cycle_s - truth).abs()))
            .unwrap_or_else(|_| "fail".into());
        println!("{taxis:>7} {solo:>14} {enhanced:>14}");
    }
    println!("(paper: either direction alone cannot reconstruct the cycle; mirrored data can)");
}

/// Fig. 9 — red-duration identification via the border interval.
fn fig9() {
    let truth_cycle = 106;
    let truth_red = 63;
    let (_city, _signals, parts, at, cfg) = single_light_world(truth_cycle, truth_red, 0, 80, 5400);
    let light = parts
        .lights_with_data()
        .into_iter()
        .max_by_key(|&l| parts.observations(l).len())
        .expect("light with data");
    let t0 = at.offset(-5400);
    let obs = parts.window(light, t0, at);
    let stops: Vec<_> = extract_stops(obs, cfg.stationary_threshold_m)
        .into_iter()
        .filter(|s| s.dist_to_stop_m <= cfg.influence_radius_m)
        .collect();
    println!("stops extracted near the light: {}", stops.len());
    let interval = taxilight_core::pipeline::mean_sample_interval(obs);
    println!("mean sample interval: {interval:.2} s (paper: 20.14 s)");
    let mut hist = taxilight_signal::histogram::Histogram::with_bin_width(
        0.0,
        truth_cycle as f64 + interval,
        interval,
    );
    for s in &stops {
        if !s.passenger_changed && s.duration_s <= truth_cycle as f64 {
            hist.add(s.duration_s);
        }
    }
    println!("stop-duration histogram (mean-interval bins):");
    for b in 0..hist.bins() {
        let (lo, hi) = hist.bin_range(b);
        println!(
            "  [{lo:>5.1},{hi:>5.1}) {:>4} {}",
            hist.count(b),
            "#".repeat(hist.count(b) as usize)
        );
    }
    match red_duration(&stops, truth_cycle as f64, interval) {
        Ok(est) => println!(
            "border bin {} → red = {:.1} s   [truth {truth_red} s; paper example: 63 s]",
            est.border_bin, est.red_s
        ),
        Err(e) => println!("red identification failed: {e}"),
    }
}

/// Fig. 10 — data superposition: samples per within-cycle second before
/// and after folding.
fn fig10() {
    // 15 min of warm-up traffic, then the 3 analysed cycles.
    let (_city, signals, parts, at, cfg) = single_light_world(98, 39, 0, 250, 900 + 3 * 98);
    let light = parts
        .lights_with_data()
        .into_iter()
        .max_by_key(|&l| parts.observations(l).len())
        .expect("light with data");
    let t0 = at.offset(-(3 * 98) as i64);
    let obs = parts.window(light, t0, at);
    // Fold by ABSOLUTE time shifted by this approach's red onset, so the
    // red phase occupies fold coordinates [0, red).
    let plan = signals.plan(light, at);
    let samples: Vec<(f64, f64)> = obs
        .iter()
        .filter(|o| o.dist_to_stop_m <= cfg.influence_radius_m)
        .map(|o| ((o.time.0 - plan.offset_s as i64) as f64, o.speed_kmh))
        .collect();
    println!("3 consecutive 98 s cycles, {} samples total", samples.len());
    let folded = superpose(&samples, 98.0);
    let binned = bin_cycle(&folded, 98);
    let filled = binned.iter().filter(|b| b.is_some()).count();
    println!("after superposition: {} of 98 within-cycle seconds hold at least one sample", filled);
    let red_len = plan.red_s as usize;
    let red_vals: Vec<f64> = (0..red_len).filter_map(|i| binned[i]).collect();
    let green_vals: Vec<f64> = (red_len..98).filter_map(|i| binned[i]).collect();
    let red_mean: f64 = red_vals.iter().sum::<f64>() / red_vals.len().max(1) as f64;
    let green_mean: f64 = green_vals.iter().sum::<f64>() / green_vals.len().max(1) as f64;
    println!(
        "folded mean speed: red phase {red_mean:.1} km/h vs green phase {green_mean:.1} km/h \
         [paper: the folded cycle separates into a slow red block and a fast green block]"
    );
}

/// Fig. 11 — sliding-window change-point identification.
fn fig11() {
    let truth_cycle = 98;
    let truth_red = 39;
    let offset = 41; // the paper's ground truth: green→red at 41 s
    let (city, signals, parts, at, cfg) =
        single_light_world(truth_cycle, truth_red, offset, 150, 5400);
    let engine = Identifier::new(&city.net, cfg).expect("default config is valid");
    let mut errors = Vec::new();
    for light in parts.lights_with_data() {
        let Ok(est) = engine.run(&parts, &IdentifyRequest::one(at, light)).into_single() else {
            continue;
        };
        let plan = signals.plan(light, at);
        let err = taxilight_core::circular_error_s(
            est.red_start_s,
            plan.offset_s as f64,
            plan.cycle_s as f64,
        );
        println!(
            "  light {:>2}: truth onset ≡ {:>3} (cycle {}, red {:>2}) → identified phase {:>5.1}, error {err:>5.1} s",
            light.0,
            plan.offset_s,
            plan.cycle_s,
            plan.red_s,
            est.red_start_mod_cycle(),
        );
        errors.push(err);
    }
    errors.sort_by(f64::total_cmp);
    if !errors.is_empty() {
        println!(
            "median change-time error over {} lights: {:.1} s   [paper example: 3 s]",
            errors.len(),
            errors[(errors.len() - 1) / 2]
        );
    }
}

/// Fig. 12 — continuous monitoring through programme switches.
fn fig12() {
    let city =
        grid_city(&GridConfig { rows: 3, cols: 3, spacing_m: 600.0, ..GridConfig::default() });
    let off_peak = PhasePlan::new(90, 40, 10);
    let peak = PhasePlan::new(150, 70, 10);
    let mut signals = SignalMap::new();
    for &ix in &city.intersections {
        signals.install_intersection_with(&city.net, ix, IntersectionPlan { ns: off_peak }, |p| {
            let peak_plan = if p == off_peak { peak } else { peak.antiphase() };
            Schedule::PreProgrammed(DailyProgram::new(vec![
                (0, p),
                (7 * 3600, peak_plan),
                (9 * 3600, p),
            ]))
        });
    }
    let start = Timestamp::civil(2014, 5, 21, 5, 30, 0);
    let mut sim = Simulator::new(
        &city.net,
        &signals,
        SimConfig {
            taxi_count: 90,
            start,
            seed: 3,
            hourly_activity: [1.0; 24],
            ..SimConfig::default()
        },
    );
    sim.run(5 * 3600);
    let (mut log, _) = sim.into_log();
    let cfg = IdentifyConfig { window_s: 1800, ..IdentifyConfig::default() };
    let pre = Preprocessor::new(&city.net, cfg.clone());
    let engine = Identifier::new(&city.net, cfg.clone()).expect("default config is valid");
    let (parts, _) = pre.preprocess(&mut log);
    let light = parts
        .lights_with_data()
        .into_iter()
        .max_by_key(|&l| parts.observations(l).len())
        .expect("light with data");
    let mut monitor = ScheduleMonitor::new(600);
    let mut t = start.offset(cfg.window_s as i64);
    while t <= start.offset(5 * 3600) {
        let cycle = engine
            .run(&parts, &IdentifyRequest::one(t, light))
            .into_single()
            .ok()
            .map(|e| e.cycle_s);
        monitor.push(t, cycle);
        t = t.offset(600);
    }
    println!("cycle re-estimates every 10 min (truth: 90 s, 150 s in 07:00–09:00):");
    for s in monitor.history() {
        let shown = s.cycle_s.map(|c| format!("{c:6.1}")).unwrap_or_else(|| "    --".into());
        println!("  {} {shown}", &s.at.format()[11..16]);
    }
    for e in monitor.detect_changes(20.0, 2) {
        println!(
            "detected change at {}: {:.0} s → {:.0} s",
            e.at.format(),
            e.from_cycle_s,
            e.to_cycle_s
        );
    }
}

/// Fig. 13 — truth vs. identified for the monitored lights at one instant.
fn fig13() {
    let cfg = IdentifyConfig::default();
    let eval = run_city_eval(21, 180, 1, &cfg);
    let monitored: std::collections::HashSet<_> = eval
        .scenario
        .monitored
        .iter()
        .flat_map(|&ix| eval.scenario.net.intersection(ix).lights.iter().map(|l| l.id))
        .collect();
    println!("{:>6} {:>14} {:>14} {:>12}", "light", "cycle est/true", "red est/true", "change err");
    let mut shown = 0;
    for e in &eval.evals {
        if !monitored.contains(&e.light) {
            continue;
        }
        match (&e.estimate, &e.errors) {
            (Some(est), Some(err)) => println!(
                "{:>6} {:>7.1}/{:<6.0} {:>7.1}/{:<6.0} {:>10.1}s",
                e.light.0, est.cycle_s, e.truth.cycle_s, est.red_s, e.truth.red_s, err.change_err_s
            ),
            _ => println!("{:>6}  identification failed", e.light.0),
        }
        shown += 1;
    }
    println!("({} monitored lights evaluated; paper: errors <5 s on average)", shown);
}

/// Fig. 14 — error CDFs over repeated identifications.
fn fig14() {
    let cfg = IdentifyConfig::default();
    let eval = run_city_eval(33, 180, 4, &cfg);
    let (cycle, red, change) = eval.error_vectors();
    println!("{} identifications, success rate {:.1}%", cycle.len(), 100.0 * eval.success_rate());
    let thresholds = [2.0, 4.0, 6.0, 10.0, 20.0];
    println!("{}", cdf_row("cycle length", &cycle, &thresholds));
    println!("{}", cdf_row("red duration", &red, &thresholds));
    println!("{}", cdf_row("signal change", &change, &thresholds));
    let gross = cycle.iter().filter(|&&e| e > 10.0).count() as f64 / cycle.len().max(1) as f64;
    println!("cycle gross-error share (>10 s): {:.1}%   [paper: ~7%]", 100.0 * gross);
    println!("[paper: red/change ~80% within 6 s]");
}

/// Fig. 16 — navigation savings vs. distance.
fn fig16() {
    let rows = run_fig16(&Fig16Config::default());
    println!(
        "{:>10} {:>8} {:>14} {:>14} {:>8}",
        "dist (km)", "trips", "baseline (s)", "aware (s)", "saved"
    );
    for row in &rows {
        println!(
            "{:>10} {:>8} {:>14.1} {:>14.1} {:>7.1}%",
            row.distance_hops,
            row.trips,
            row.baseline_s,
            row.aware_s,
            100.0 * row.saving()
        );
    }
    println!("overall: {:.1}%   [paper: ~15%]", 100.0 * overall_saving(&rows));
}

/// Beyond the paper: identification accuracy vs. fleet density. The
/// paper's Shenzhen feed delivers up to 5071 records/hour at one
/// intersection; this sweep shows the estimator's errors collapsing
/// toward the paper's as the feed approaches that density.
fn density() {
    println!(
        "{:>7} {:>9} {:>12} {:>12} {:>12} {:>12}",
        "taxis", "ok rate", "cycle ≤6s", "gross >10s", "red ≤6s", "change ≤6s"
    );
    for taxis in [80usize, 180, 400] {
        let eval = run_city_eval(33, taxis, 2, &IdentifyConfig::default());
        let (cycle, red, change) = eval.error_vectors();
        let frac = |xs: &[f64], t: f64| 100.0 * Ecdf::new(xs).fraction_at_or_below(t);
        println!(
            "{:>7} {:>8.1}% {:>11.1}% {:>11.1}% {:>11.1}% {:>11.1}%",
            taxis,
            100.0 * eval.success_rate(),
            frac(&cycle, 6.0),
            100.0 - frac(&cycle, 10.0),
            frac(&red, 6.0),
            frac(&change, 6.0),
        );
    }
}

/// DESIGN.md ablations: interpolation method, fold validation,
/// enhancement threshold, window length.
fn ablation() {
    let base = IdentifyConfig::default();
    let variants: Vec<(&str, IdentifyConfig)> = vec![
        ("baseline (spline+fold)", base.clone()),
        ("no fold validation", IdentifyConfig { fold_validate: false, ..base.clone() }),
        ("linear interpolation", IdentifyConfig { interpolation: Method::Linear, ..base.clone() }),
        (
            "zero-fill interpolation",
            IdentifyConfig { interpolation: Method::NearestOrZero, ..base.clone() },
        ),
        ("no enhancement", IdentifyConfig { enhance_below_samples: 0, ..base.clone() }),
        ("30 min window", IdentifyConfig { window_s: 1800, ..base.clone() }),
        ("refined peak", IdentifyConfig { refine_peak: true, ..base.clone() }),
        (
            "autocorrelation method",
            IdentifyConfig {
                cycle_method: taxilight_core::CycleMethod::Autocorrelation,
                ..base.clone()
            },
        ),
        ("no intersection consensus", IdentifyConfig { intersection_consensus: false, ..base }),
    ];
    println!(
        "{:<26} {:>8} {:>12} {:>12} {:>12}",
        "variant", "ok rate", "cycle ≤6s", "red ≤10s", "change ≤10s"
    );
    for (name, cfg) in variants {
        let eval = run_city_eval(33, 150, 2, &cfg);
        let (cycle, red, change) = eval.error_vectors();
        let frac = |xs: &[f64], t: f64| 100.0 * Ecdf::new(xs).fraction_at_or_below(t);
        println!(
            "{:<26} {:>7.1}% {:>11.1}% {:>11.1}% {:>11.1}%",
            name,
            100.0 * eval.success_rate(),
            frac(&cycle, 6.0),
            frac(&red, 10.0),
            frac(&change, 10.0)
        );
    }
}
