//! The kernel microbenchmark axis: every dispatched `taxilight-signal`
//! kernel timed under both dispatch paths — forced scalar and forced
//! SIMD — over seed-deterministic inputs, reported as
//! `BENCH_kernels.json`.
//!
//! Like the other axes, the report splits a seed-**deterministic
//! workload** section (input shape, per-kernel bit-identity verdicts and
//! output checksums — byte-identical across runs and across dispatch
//! paths, because every kernel's SIMD twin is bit-identical to its
//! scalar twin) from honest **timing** measurements (per-path N-lap bins
//! and the scalar/SIMD speedup). Speedups are reported as measured —
//! a kernel that does not gain on the measuring machine says so in the
//! artifact rather than being dropped.
//!
//! ```text
//! cargo run --release -p taxilight-bench --bin figures -- kernels
//! ```

use taxilight_eval::JsonWriter;
use taxilight_signal::complex::Complex64;
use taxilight_signal::kernels::{self, KernelDispatch};

use crate::summary::{self, SampleSummary};
use crate::throughput::fnv1a;

/// Workload shape for one kernel-bench run. The workload section of the
/// report is deterministic in `seed` and these knobs.
#[derive(Debug, Clone)]
pub struct KernelBenchConfig {
    /// Input seed (splitmix64-expanded into every buffer).
    pub seed: u64,
    /// Elements per input buffer (the FFT-shaped kernels round this to
    /// the nearest power of two).
    pub len: usize,
    /// Kernel invocations per timed lap.
    pub iters: usize,
    /// Timed laps per dispatch path (the measurement bin).
    pub laps: usize,
}

impl Default for KernelBenchConfig {
    fn default() -> Self {
        Self { seed: 77, len: 16_384, iters: 50, laps: 7 }
    }
}

impl KernelBenchConfig {
    /// A reduced run for CI and unit tests.
    pub fn quick() -> Self {
        Self { seed: 77, len: 4_096, iters: 8, laps: 3 }
    }
}

/// One kernel's outcome: the deterministic identity verdict plus the
/// per-path timing bins.
#[derive(Debug, Clone)]
pub struct KernelResult {
    /// Kernel name (matches the `taxilight_signal::kernels` function).
    pub name: &'static str,
    /// Whether one forced-SIMD invocation produced exactly the scalar
    /// twin's bits. Expected `true` for every kernel — the dispatch
    /// contract — and surfaced here so the artifact proves it on the
    /// machine that produced the timings.
    pub bit_identical: bool,
    /// FNV-1a digest of the scalar output's exact bits.
    pub checksum: u64,
    /// Per-lap elapsed seconds, scalar path.
    pub scalar: SampleSummary,
    /// Per-lap elapsed seconds, SIMD path.
    pub simd: SampleSummary,
}

impl KernelResult {
    /// Median scalar time over median SIMD time; 0 when unmeasurable.
    pub fn speedup(&self) -> f64 {
        if self.simd.median > 0.0 {
            self.scalar.median / self.simd.median
        } else {
            0.0
        }
    }
}

/// The full kernel-bench report.
#[derive(Debug, Clone)]
pub struct KernelBenchReport {
    /// The configuration that produced it.
    pub cfg: KernelBenchConfig,
    /// What the SIMD dispatch path lowers to on this machine
    /// (`"sse2"`, `"neon"`, or `"portable"`).
    pub simd_path: &'static str,
    /// Per-kernel outcomes, in a fixed order.
    pub results: Vec<KernelResult>,
}

/// splitmix64 — every input value is a pure function of `(seed, index)`.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic value in `[-50, 50)`.
fn val(seed: u64, i: u64) -> f64 {
    (mix(seed ^ i.wrapping_mul(0xA076_1D64_78BD_642F)) >> 11) as f64 / (1u64 << 53) as f64 * 100.0
        - 50.0
}

fn reals(seed: u64, tag: u64, n: usize) -> Vec<f64> {
    (0..n as u64).map(|i| val(seed ^ tag, i)).collect()
}

fn complexes(seed: u64, tag: u64, n: usize) -> Vec<Complex64> {
    (0..n as u64)
        .map(|i| Complex64::new(val(seed ^ tag, 2 * i), val(seed ^ tag, 2 * i + 1)))
        .collect()
}

/// One kernel wired for the harness: `lap` runs a single invocation
/// (timed `iters`× per lap), `bits` captures one invocation's exact
/// output bits (identity check + checksum).
struct Bench {
    name: &'static str,
    lap: Box<dyn FnMut()>,
    bits: Box<dyn FnMut() -> Vec<u64>>,
}

fn benches(cfg: &KernelBenchConfig) -> Vec<Bench> {
    let n = cfg.len.max(2);
    let pow2 = 1usize << (usize::BITS - 1 - n.leading_zeros()); // largest pow2 <= n
    let seed = cfg.seed;
    let mut out = Vec::new();

    // sum — the demean/mean reduction.
    {
        let xs = reals(seed, 1, n);
        let xs2 = xs.clone();
        out.push(Bench {
            name: "sum",
            lap: Box::new(move || {
                std::hint::black_box(kernels::sum(&xs));
            }),
            bits: Box::new(move || vec![kernels::sum(&xs2).to_bits()]),
        });
    }
    // dot — the weighted-mean inner product.
    {
        let (a, b) = (reals(seed, 2, n), reals(seed, 3, n));
        let (a2, b2) = (a.clone(), b.clone());
        out.push(Bench {
            name: "dot",
            lap: Box::new(move || {
                std::hint::black_box(kernels::dot(&a, &b));
            }),
            bits: Box::new(move || vec![kernels::dot(&a2, &b2).to_bits()]),
        });
    }
    // sum_sq_diff — the variance accumulation.
    {
        let xs = reals(seed, 4, n);
        let xs2 = xs.clone();
        out.push(Bench {
            name: "sum_sq_diff",
            lap: Box::new(move || {
                std::hint::black_box(kernels::sum_sq_diff(&xs, 1.25));
            }),
            bits: Box::new(move || vec![kernels::sum_sq_diff(&xs2, 1.25).to_bits()]),
        });
    }
    // magnitudes_into — the power-spectrum hot loop.
    {
        let spec = complexes(seed, 5, n);
        let spec2 = spec.clone();
        let mut scratch = Vec::with_capacity(n);
        out.push(Bench {
            name: "magnitudes",
            lap: Box::new(move || {
                kernels::magnitudes_into(&spec, &mut scratch);
                std::hint::black_box(scratch.last());
            }),
            bits: Box::new(move || {
                let mut o = Vec::new();
                kernels::magnitudes_into(&spec2, &mut o);
                o.iter().map(|v| v.to_bits()).collect()
            }),
        });
    }
    // butterfly_stage — one full radix-2 pass at half = n/2.
    {
        let buf = complexes(seed, 6, pow2);
        let tw = complexes(seed, 7, pow2 / 2);
        let (buf2, tw2) = (buf.clone(), tw.clone());
        let mut scratch = buf.clone();
        out.push(Bench {
            name: "butterfly",
            lap: Box::new(move || {
                scratch.copy_from_slice(&buf);
                kernels::butterfly_stage(&mut scratch, buf.len() / 2, &tw);
                std::hint::black_box(scratch.last());
            }),
            bits: Box::new(move || {
                let mut b = buf2.clone();
                let half = b.len() / 2;
                kernels::butterfly_stage(&mut b, half, &tw2);
                b.iter().flat_map(|c| [c.re.to_bits(), c.im.to_bits()]).collect()
            }),
        });
    }
    // cmul_into — the Bluestein chirp product.
    {
        let (a, b) = (complexes(seed, 8, n), complexes(seed, 9, n));
        let (a2, b2) = (a.clone(), b.clone());
        let mut scratch = vec![Complex64::ZERO; n];
        out.push(Bench {
            name: "cmul",
            lap: Box::new(move || {
                kernels::cmul_into(&a, &b, &mut scratch);
                std::hint::black_box(scratch.last());
            }),
            bits: Box::new(move || {
                let mut o = vec![Complex64::ZERO; a2.len()];
                kernels::cmul_into(&a2, &b2, &mut o);
                o.iter().flat_map(|c| [c.re.to_bits(), c.im.to_bits()]).collect()
            }),
        });
    }
    // lerp_grid — the 1 Hz resample grid evaluation. The pipeline's
    // shape: sparse speed samples (the paper's feed reports every ~20 s)
    // evaluated onto a dense 1 Hz grid, so each segment covers a run of
    // ~16 grid queries.
    {
        let points: Vec<(f64, f64)> =
            (0..n / 16).map(|k| (16.0 * k as f64, val(seed ^ 10, k as u64))).collect();
        let points2 = points.clone();
        let count = n;
        let mut scratch = Vec::with_capacity(count);
        out.push(Bench {
            name: "lerp_grid",
            lap: Box::new(move || {
                kernels::lerp_grid_into(&points, 0.0, 1.0, count, &mut scratch);
                std::hint::black_box(scratch.last());
            }),
            bits: Box::new(move || {
                let mut o = Vec::new();
                kernels::lerp_grid_into(&points2, 0.0, 1.0, count, &mut o);
                o.iter().map(|v| v.to_bits()).collect()
            }),
        });
    }
    // circular moving average — the red-window sweep.
    {
        let xs = reals(seed, 11, n);
        let xs2 = xs.clone();
        let mut scratch = Vec::with_capacity(n);
        out.push(Bench {
            name: "cma",
            lap: Box::new(move || {
                kernels::circular_moving_average_into(&xs, 40, &mut scratch);
                std::hint::black_box(scratch.last());
            }),
            bits: Box::new(move || {
                let mut o = Vec::new();
                kernels::circular_moving_average_into(&xs2, 40, &mut o);
                o.iter().map(|v| v.to_bits()).collect()
            }),
        });
    }
    out
}

/// Runs the kernel bench: for each kernel, one identity check plus an
/// N-lap timing bin under each forced dispatch path. The process-wide
/// dispatch is restored afterwards.
pub fn run_kernel_bench(cfg: &KernelBenchConfig) -> KernelBenchReport {
    let previous = kernels::dispatch();
    let mut results = Vec::new();
    for mut bench in benches(cfg) {
        kernels::force(KernelDispatch::Scalar);
        let scalar_bits = (bench.bits)();
        let (_, scalar) = summary::time_n(cfg.laps, |_| {
            for _ in 0..cfg.iters {
                (bench.lap)();
            }
        });
        kernels::force(KernelDispatch::Simd);
        let simd_bits = (bench.bits)();
        let (_, simd) = summary::time_n(cfg.laps, |_| {
            for _ in 0..cfg.iters {
                (bench.lap)();
            }
        });
        results.push(KernelResult {
            name: bench.name,
            bit_identical: scalar_bits == simd_bits,
            checksum: fnv1a(scalar_bits.iter().flat_map(|b| b.to_le_bytes())),
            scalar,
            simd,
        });
    }
    kernels::force(previous);
    KernelBenchReport { cfg: cfg.clone(), simd_path: simd_path_name(), results }
}

/// The name the SIMD dispatch path lowers to on this target, regardless
/// of the currently forced dispatch.
fn simd_path_name() -> &'static str {
    kernels::simd::PATH_NAME
}

impl KernelBenchReport {
    /// The seed-deterministic workload section (shared by
    /// [`Self::to_json`] and [`Self::deterministic_json`]).
    fn write_workload(&self, w: &mut JsonWriter) {
        w.key("workload");
        w.raw("{");
        w.key("seed");
        w.raw(&self.cfg.seed.to_string());
        w.raw(",");
        w.key("len");
        w.raw(&self.cfg.len.to_string());
        w.raw(",");
        w.key("iters");
        w.raw(&self.cfg.iters.to_string());
        w.raw(",");
        w.key("laps");
        w.raw(&self.cfg.laps.to_string());
        w.raw(",");
        w.key("kernels");
        w.raw("[");
        for (k, r) in self.results.iter().enumerate() {
            if k > 0 {
                w.raw(",");
            }
            w.raw("{");
            w.key("name");
            w.string(r.name);
            w.raw(",");
            w.key("bit_identical");
            w.raw(if r.bit_identical { "true" } else { "false" });
            w.raw(",");
            w.key("checksum");
            w.string(&format!("{:#018x}", r.checksum));
            w.raw("}");
        }
        w.raw("]");
        w.raw("}");
    }

    /// The full report: workload plus per-path timing bins.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.raw("{");
        w.key("schema");
        w.string("taxilight-kernels/1");
        w.raw(",");
        self.write_workload(&mut w);
        w.raw(",");
        w.key("timing");
        w.raw("{");
        w.key("env");
        w.raw("{");
        w.key("nproc");
        w.raw(&summary::nproc().to_string());
        w.raw(",");
        w.key("arch");
        w.string(std::env::consts::ARCH);
        w.raw(",");
        w.key("simd_path");
        w.string(self.simd_path);
        w.raw("},");
        w.key("kernels");
        w.raw("[");
        for (k, r) in self.results.iter().enumerate() {
            if k > 0 {
                w.raw(",");
            }
            w.raw("{");
            w.key("name");
            w.string(r.name);
            w.raw(",");
            w.key("scalar");
            r.scalar.write_json(&mut w, "s");
            w.raw(",");
            w.key("simd");
            r.simd.write_json(&mut w, "s");
            w.raw(",");
            w.key("speedup");
            w.f64(r.speedup());
            w.raw("}");
        }
        w.raw("]");
        w.raw("}");
        w.raw("}");
        w.finish()
    }

    /// Only the deterministic section — byte-identical across runs of
    /// the same configuration (on any machine and under either dispatch
    /// default) and a literal byte prefix of [`Self::to_json`].
    pub fn deterministic_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.raw("{");
        w.key("schema");
        w.string("taxilight-kernels/1");
        w.raw(",");
        self.write_workload(&mut w);
        w.raw("}");
        w.finish()
    }

    /// Human-readable summary lines for the console.
    pub fn summary_lines(&self) -> Vec<String> {
        let mut out = vec![format!(
            "kernels: seed {}  len {}  {} iters × {} laps per path  simd path: {}  ({} logical CPUs, {})",
            self.cfg.seed,
            self.cfg.len,
            self.cfg.iters,
            self.cfg.laps,
            self.simd_path,
            summary::nproc(),
            std::env::consts::ARCH,
        )];
        for r in &self.results {
            out.push(format!(
                "{:<12} scalar {:>9.3} ms  simd {:>9.3} ms  → {:>5.2}×  {}",
                r.name,
                r.scalar.median * 1e3,
                r.simd.median * 1e3,
                r.speedup(),
                if r.bit_identical { "bit-identical" } else { "DIVERGED" },
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_is_bit_identical_and_deterministic() {
        let cfg = KernelBenchConfig::quick();
        let a = run_kernel_bench(&cfg);
        assert_eq!(a.results.len(), 8, "kernel set changed without updating the tests");
        for r in &a.results {
            assert!(r.bit_identical, "kernel '{}' diverged between dispatch paths", r.name);
            assert_eq!(r.scalar.samples, cfg.laps);
            assert_eq!(r.simd.samples, cfg.laps);
        }
        let b = run_kernel_bench(&cfg);
        assert_eq!(
            a.deterministic_json(),
            b.deterministic_json(),
            "same seed, different workload bytes — determinism regression"
        );
    }

    #[test]
    fn report_contract_holds() {
        let r = run_kernel_bench(&KernelBenchConfig::quick());
        let det = r.deterministic_json();
        let full = r.to_json();
        assert!(det.ends_with('}') && full.starts_with(&det[..det.len() - 1]));
        for key in [
            "\"schema\":\"taxilight-kernels/1\"",
            "\"workload\"",
            "\"kernels\"",
            "\"name\":\"sum\"",
            "\"name\":\"butterfly\"",
            "\"bit_identical\":true",
            "\"checksum\":\"0x",
            "\"timing\"",
            "\"env\"",
            "\"nproc\"",
            "\"arch\"",
            "\"simd_path\"",
            "\"scalar\"",
            "\"simd\"",
            "\"median_s\"",
            "\"speedup\"",
        ] {
            assert!(full.contains(key), "kernel JSON missing {key}");
        }
    }
}
