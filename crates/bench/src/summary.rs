//! Study-grade sample statistics shared by every benchmark axis.
//!
//! Each benchmark used to report a single wall-clock lap (or an ad-hoc
//! nearest-rank percentile of its own). This module centralises the
//! discipline: a measurement is an **N-sample bin** summarised by its
//! five-number summary — median, interquartile range, min, max — plus
//! the shared nearest-rank [`percentile`] everything derives from. One
//! lap is still a valid bin (`samples: 1`, degenerate spread); the point
//! is that the report always says how many laps backed a number.
//!
//! Timing helpers ([`time`], [`time_n`]) replace bare `Instant::now()`
//! pairs so every axis measures the same way, and [`nproc`] records the
//! hardware parallelism the honest-timing sections are interpreted
//! against (a thread-scaling rung above `nproc` cannot speed up — the
//! throughput report marks such rungs `saturated`).

use std::time::Instant;

use taxilight_eval::JsonWriter;

/// Nearest-rank percentile of an unsorted sample; 0 when empty.
///
/// `q` is a fraction in `[0, 1]`; the rank is `round((n−1)·q)` of the
/// ascending sort (total order, NaNs last).
pub fn percentile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Five-number summary of an N-sample measurement bin.
///
/// All quantiles are nearest-rank ([`percentile`]) — actual observed
/// values, never interpolated ones — so a summary of one lap is that
/// lap's value five times over.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleSummary {
    /// Laps in the bin.
    pub samples: usize,
    /// Median (p50).
    pub median: f64,
    /// Lower quartile (p25).
    pub p25: f64,
    /// Upper quartile (p75).
    pub p75: f64,
    /// Fastest lap.
    pub min: f64,
    /// Slowest lap.
    pub max: f64,
}

impl SampleSummary {
    /// Summarises a bin; all fields 0 when `values` is empty.
    pub fn from_samples(values: &[f64]) -> SampleSummary {
        SampleSummary {
            samples: values.len(),
            median: percentile(values, 0.50),
            p25: percentile(values, 0.25),
            p75: percentile(values, 0.75),
            min: percentile(values, 0.0),
            max: percentile(values, 1.0),
        }
    }

    /// Interquartile range, `p75 − p25`.
    pub fn iqr(&self) -> f64 {
        self.p75 - self.p25
    }

    /// Writes `{"samples":N,"median_<unit>":…,"p25_<unit>":…,…}` — the
    /// one JSON shape every report embeds for a measurement bin.
    pub fn write_json(&self, w: &mut JsonWriter, unit: &str) {
        w.raw("{");
        w.key("samples");
        w.raw(&self.samples.to_string());
        for (name, v) in [
            ("median", self.median),
            ("p25", self.p25),
            ("p75", self.p75),
            ("min", self.min),
            ("max", self.max),
        ] {
            w.raw(",");
            w.key(&format!("{name}_{unit}"));
            w.f64(v);
        }
        w.raw("}");
    }
}

/// Times one lap of `f`: returns its value and elapsed seconds.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed().as_secs_f64())
}

/// Times `n` laps of `f` (passed the lap index): returns every lap's
/// value and the bin summary of their elapsed seconds.
pub fn time_n<T>(n: usize, mut f: impl FnMut(usize) -> T) -> (Vec<T>, SampleSummary) {
    assert!(n >= 1, "a measurement bin needs at least one lap");
    let mut values = Vec::with_capacity(n);
    let mut laps = Vec::with_capacity(n);
    for k in 0..n {
        let (value, elapsed_s) = time(|| f(k));
        values.push(value);
        laps.push(elapsed_s);
    }
    (values, SampleSummary::from_samples(&laps))
}

/// Logical CPUs available to this process; 1 when undetectable.
pub fn nproc() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&xs, 0.5), 3.0);
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 1.0), 5.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn summary_of_known_bin() {
        let s = SampleSummary::from_samples(&[4.0, 1.0, 3.0, 2.0, 5.0]);
        assert_eq!(s.samples, 5);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.p25, 2.0);
        assert_eq!(s.p75, 4.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.iqr(), 2.0);
    }

    #[test]
    fn single_lap_is_a_degenerate_bin() {
        let s = SampleSummary::from_samples(&[7.5]);
        assert_eq!(s.samples, 1);
        for v in [s.median, s.p25, s.p75, s.min, s.max] {
            assert_eq!(v, 7.5);
        }
        assert_eq!(s.iqr(), 0.0);
    }

    #[test]
    fn empty_bin_is_all_zero() {
        let s = SampleSummary::from_samples(&[]);
        assert_eq!(s.samples, 0);
        assert_eq!((s.median, s.min, s.max), (0.0, 0.0, 0.0));
    }

    #[test]
    fn json_shape_is_byte_stable() {
        let s = SampleSummary::from_samples(&[2.0, 1.0, 3.0]);
        let emit = || {
            let mut w = JsonWriter::new();
            s.write_json(&mut w, "ms");
            w.finish()
        };
        let json = emit();
        assert_eq!(json, emit());
        for key in ["\"samples\":3", "\"median_ms\":", "\"p25_ms\":", "\"min_ms\":", "\"max_ms\":"]
        {
            assert!(json.contains(key), "summary JSON missing {key}: {json}");
        }
    }

    #[test]
    fn time_n_counts_laps_and_orders_bounds() {
        let (values, bin) = time_n(4, |k| k * k);
        assert_eq!(values, vec![0, 1, 4, 9]);
        assert_eq!(bin.samples, 4);
        assert!(bin.min <= bin.median && bin.median <= bin.max);
        assert!(bin.p25 <= bin.p75);
    }

    #[test]
    fn nproc_is_positive() {
        assert!(nproc() >= 1);
    }
}
