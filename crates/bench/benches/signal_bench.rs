//! DSP substrate benchmarks: the DESIGN.md "DFT vs FFT" ablation, the
//! convolution crossover, and spline interpolation throughput.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use taxilight_signal::convolution::{convolve_direct, convolve_fft};
use taxilight_signal::dft::dft_real;
use taxilight_signal::fft::eq1_spectrum;
use taxilight_signal::interpolate::{resample, CubicSpline, Method};

fn tone(n: usize, period: f64) -> Vec<f64> {
    (0..n).map(|k| (2.0 * std::f64::consts::PI * k as f64 / period).sin() + 20.0).collect()
}

/// The paper's Eq. (1) is a plain O(N²) DFT; the FFT computes the same
/// spectrum in O(N log N). This bench quantifies what the paper left on
/// the table.
fn bench_dft_vs_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("spectrum");
    group.sample_size(10);
    for &n in &[512usize, 1800, 3600] {
        let signal = tone(n, 97.0);
        group.bench_with_input(BenchmarkId::new("dft_o_n2", n), &signal, |b, s| {
            b.iter(|| black_box(dft_real(s)))
        });
        group.bench_with_input(BenchmarkId::new("fft", n), &signal, |b, s| {
            b.iter(|| black_box(eq1_spectrum(s)))
        });
    }
    group.finish();
}

fn bench_convolution(c: &mut Criterion) {
    let mut group = c.benchmark_group("convolution");
    for &n in &[64usize, 256, 1024] {
        let a = tone(n, 31.0);
        let kernel = vec![1.0 / 39.0; 39]; // a red-duration moving-average window
        group.bench_with_input(BenchmarkId::new("direct", n), &n, |b, _| {
            b.iter(|| black_box(convolve_direct(&a, &kernel)))
        });
        group.bench_with_input(BenchmarkId::new("fft", n), &n, |b, _| {
            b.iter(|| black_box(convolve_fft(&a, &kernel)))
        });
    }
    group.finish();
}

fn bench_interpolation(c: &mut Criterion) {
    let mut group = c.benchmark_group("interpolation");
    // Sparse taxi samples: one per ~20 s over an hour.
    let samples: Vec<(f64, f64)> =
        (0..180).map(|k| (k as f64 * 20.0, ((k * 7) % 40) as f64)).collect();
    group.bench_function("spline_build", |b| {
        b.iter(|| black_box(CubicSpline::new(&samples).unwrap()))
    });
    let spline = CubicSpline::new(&samples).unwrap();
    group.bench_function("spline_eval_3600", |b| {
        b.iter(|| black_box(spline.sample_grid(0.0, 1.0, 3600)))
    });
    for method in [Method::NearestOrZero, Method::Linear, Method::CubicSpline] {
        group.bench_function(format!("resample_{method:?}"), |b| {
            b.iter(|| black_box(resample(&samples, 0.0, 1.0, 3600, method).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dft_vs_fft, bench_convolution, bench_interpolation);
criterion_main!(benches);
