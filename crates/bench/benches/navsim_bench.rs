//! Navigation benchmarks: the exact time-dependent Dijkstra vs. the
//! paper's (non-polynomial) bounded enumeration, across detour budgets.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use taxilight_navsim::routing::{navigate, td_dijkstra, Strategy};
use taxilight_navsim::world::{NavWorld, WorldConfig};
use taxilight_trace::time::Timestamp;

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("navigation");
    group.sample_size(20);
    let world = NavWorld::fig15(&WorldConfig::default(), 9);
    let depart = Timestamp::civil(2014, 12, 5, 9, 0, 0);
    let from = world.node(0, 0);
    let to = world.node(4, 4);

    group.bench_function("td_dijkstra", |b| {
        b.iter(|| black_box(td_dijkstra(&world, from, to, depart)))
    });
    group.bench_function("navigate_exact", |b| {
        b.iter(|| black_box(navigate(&world, from, to, depart, Strategy::Exact)))
    });
    group.bench_function("navigate_freeflow", |b| {
        b.iter(|| black_box(navigate(&world, from, to, depart, Strategy::FreeFlow)))
    });
    for extra in [0usize, 1, 2, 3] {
        group.bench_with_input(
            BenchmarkId::new("navigate_enumerate_extra", extra),
            &extra,
            |b, &extra_hops| {
                b.iter(|| {
                    black_box(navigate(
                        &world,
                        from,
                        to,
                        depart,
                        Strategy::Enumerate { extra_hops },
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
