//! End-to-end pipeline benchmarks: preprocessing throughput, per-light
//! identification cost, and Rayon parallel scaling over a city's lights.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use taxilight_core::{identify_all, identify_light, IdentifyConfig, Preprocessor};
use taxilight_sim::small_city;
use taxilight_trace::stream::TraceLog;

struct Workload {
    scenario: taxilight_sim::CityScenario,
    log: TraceLog,
}

fn workload(taxis: usize, duration_s: u64) -> Workload {
    let scenario = small_city(17, taxis);
    let (log, _) = scenario.run(duration_s);
    Workload { scenario, log }
}

fn bench_preprocess(c: &mut Criterion) {
    let mut group = c.benchmark_group("preprocess");
    group.sample_size(10);
    for &taxis in &[50usize, 150] {
        let w = workload(taxis, 1800);
        let pre = Preprocessor::new(&w.scenario.net, IdentifyConfig::default());
        let records = w.log.clone().into_records();
        group.throughput(criterion::Throughput::Elements(records.len() as u64));
        group.bench_with_input(BenchmarkId::new("records", records.len()), &records, |b, r| {
            b.iter(|| {
                let mut log = TraceLog::from_records(r.clone());
                black_box(pre.preprocess(&mut log))
            })
        });
    }
    group.finish();
}

fn bench_identify(c: &mut Criterion) {
    let mut group = c.benchmark_group("identify");
    group.sample_size(10);
    let w = workload(120, 3900);
    let cfg = IdentifyConfig::default();
    let pre = Preprocessor::new(&w.scenario.net, cfg.clone());
    let mut log = TraceLog::from_records(w.log.clone().into_records());
    let (parts, _) = pre.preprocess(&mut log);
    let at = w.scenario.sim_config.start.offset(3900);

    let light = parts
        .lights_with_data()
        .into_iter()
        .max_by_key(|&l| parts.observations(l).len())
        .expect("light with data");
    group.bench_function("single_light", |b| {
        b.iter(|| black_box(identify_light(&parts, &w.scenario.net, light, at, &cfg)))
    });
    group.bench_function("all_lights_parallel", |b| {
        b.iter(|| black_box(identify_all(&parts, &w.scenario.net, at, &cfg)))
    });
    // Serial reference for the parallel-speedup story.
    group.bench_function("all_lights_serial", |b| {
        b.iter(|| {
            let results: Vec<_> = parts
                .lights_with_data()
                .into_iter()
                .map(|l| (l, identify_light(&parts, &w.scenario.net, l, at, &cfg)))
                .collect();
            black_box(results)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_preprocess, bench_identify);
criterion_main!(benches);
