//! End-to-end pipeline benchmarks: preprocessing throughput, per-light
//! identification cost, and sharded-engine scaling over a city's lights.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use taxilight_core::{ExecMode, Identifier, IdentifyConfig, IdentifyRequest, Preprocessor};
use taxilight_sim::small_city;
use taxilight_trace::stream::TraceLog;

struct Workload {
    scenario: taxilight_sim::CityScenario,
    log: TraceLog,
}

fn workload(taxis: usize, duration_s: u64) -> Workload {
    let scenario = small_city(17, taxis);
    let (log, _) = scenario.run(duration_s);
    Workload { scenario, log }
}

fn bench_preprocess(c: &mut Criterion) {
    let mut group = c.benchmark_group("preprocess");
    group.sample_size(10);
    for &taxis in &[50usize, 150] {
        let w = workload(taxis, 1800);
        let pre = Preprocessor::new(&w.scenario.net, IdentifyConfig::default());
        let records = w.log.clone().into_records();
        group.throughput(criterion::Throughput::Elements(records.len() as u64));
        group.bench_with_input(BenchmarkId::new("records", records.len()), &records, |b, r| {
            b.iter(|| {
                let mut log = TraceLog::from_records(r.clone());
                black_box(pre.preprocess(&mut log))
            })
        });
    }
    group.finish();
}

fn bench_identify(c: &mut Criterion) {
    let mut group = c.benchmark_group("identify");
    group.sample_size(10);
    let w = workload(120, 3900);
    let cfg = IdentifyConfig::default();
    let pre = Preprocessor::new(&w.scenario.net, cfg.clone());
    let mut log = TraceLog::from_records(w.log.clone().into_records());
    let (parts, _) = pre.preprocess(&mut log);
    let at = w.scenario.sim_config.start.offset(3900);

    let engine = Identifier::new(&w.scenario.net, cfg).expect("default config is valid");
    let light = parts
        .lights_with_data()
        .into_iter()
        .max_by_key(|&l| parts.observations(l).len())
        .expect("light with data");
    group.bench_function("single_light", |b| {
        b.iter(|| black_box(engine.run(&parts, &IdentifyRequest::one(at, light)).into_single()))
    });
    group.bench_function("all_lights_sharded", |b| {
        let req = IdentifyRequest { exec: ExecMode::AUTO, ..IdentifyRequest::all(at) };
        b.iter(|| black_box(engine.run(&parts, &req)))
    });
    // Serial reference for the parallel-speedup story.
    group.bench_function("all_lights_serial", |b| {
        let req = IdentifyRequest { exec: ExecMode::Serial, ..IdentifyRequest::all(at) };
        b.iter(|| black_box(engine.run(&parts, &req)))
    });
    group.finish();
}

criterion_group!(benches, bench_preprocess, bench_identify);
criterion_main!(benches);
