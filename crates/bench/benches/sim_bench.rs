//! Simulator benchmarks: vehicle-step throughput vs. fleet size, schedule
//! generation, and CSV codec throughput (the Table-I wire format).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use taxilight_roadnet::generators::{grid_city, GridConfig};
use taxilight_sim::{generate_signal_map, ScheduleGenConfig, SimConfig, Simulator};
use taxilight_trace::csv::{decode_log, encode_log};
use taxilight_trace::record::Fleet;
use taxilight_trace::time::Timestamp;

fn bench_sim_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    let city = grid_city(&GridConfig { rows: 4, cols: 4, ..GridConfig::default() });
    let start = Timestamp::civil(2014, 5, 21, 9, 0, 0);
    let (signals, _) = generate_signal_map(&city.net, &ScheduleGenConfig::default(), start, 1);
    for &taxis in &[100usize, 400] {
        group.throughput(Throughput::Elements(600 * taxis as u64));
        group.bench_with_input(BenchmarkId::new("taxi_steps_600s", taxis), &taxis, |b, &n| {
            b.iter(|| {
                let mut sim = Simulator::new(
                    &city.net,
                    &signals,
                    SimConfig { taxi_count: n, start, ..SimConfig::default() },
                );
                sim.run(600);
                black_box(sim.log().len())
            })
        });
    }
    group.finish();
}

fn bench_schedule_generation(c: &mut Criterion) {
    let city = grid_city(&GridConfig { rows: 10, cols: 10, ..GridConfig::default() });
    let start = Timestamp::civil(2014, 5, 21, 0, 0, 0);
    c.bench_function("generate_signal_map_64ix", |b| {
        b.iter(|| {
            black_box(generate_signal_map(&city.net, &ScheduleGenConfig::default(), start, 7))
        })
    });
}

fn bench_csv_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("csv");
    // Generate a realistic batch of records via a short simulation.
    let city = grid_city(&GridConfig { rows: 3, cols: 3, ..GridConfig::default() });
    let start = Timestamp::civil(2014, 5, 21, 9, 0, 0);
    let (signals, _) = generate_signal_map(&city.net, &ScheduleGenConfig::default(), start, 1);
    let mut sim = Simulator::new(
        &city.net,
        &signals,
        SimConfig { taxi_count: 100, start, ..SimConfig::default() },
    );
    sim.run(600);
    let (log, fleet) = sim.into_log();
    let records = log.into_records();
    let text = encode_log(&records, &fleet).unwrap();
    group.throughput(Throughput::Elements(records.len() as u64));
    group.bench_function("encode", |b| b.iter(|| black_box(encode_log(&records, &fleet).unwrap())));
    group.bench_function("decode", |b| {
        b.iter(|| {
            let mut fleet2 = Fleet::new();
            black_box(decode_log(&text, &mut fleet2))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sim_steps, bench_schedule_generation, bench_csv_codec);
criterion_main!(benches);
