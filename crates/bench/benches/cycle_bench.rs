//! Cycle-length identifier benchmarks: cost vs. sample density, and the
//! fold-validation / interpolation ablations of DESIGN.md.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use taxilight_core::cycle::identify_cycle_from_samples;
use taxilight_core::superpose::fold_contrast;
use taxilight_core::IdentifyConfig;
use taxilight_signal::interpolate::Method;

/// Sparse square-wave samples like a taxi feed near one light.
fn samples(mean_gap_s: f64, span_s: f64, cycle: f64, red: f64) -> Vec<(f64, f64)> {
    let mut out = Vec::new();
    let mut t = 0.0;
    let mut state = 0x9E3779B97F4A7C15u64;
    while t < span_s {
        let pos = t % cycle;
        let v = if pos < red { 1.0 } else { 38.0 };
        out.push((t, v));
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        t += mean_gap_s * (0.5 + (state >> 40) as f64 / (1u64 << 24) as f64);
    }
    out
}

fn bench_identify_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("identify_cycle");
    group.sample_size(20);
    for &gap in &[5.0f64, 20.0, 45.0] {
        let s = samples(gap, 3600.0, 98.0, 39.0);
        group.bench_with_input(BenchmarkId::new("gap_s", gap as u64), &s, |b, s| {
            b.iter(|| black_box(identify_cycle_from_samples(s, 3600, &IdentifyConfig::default())))
        });
    }
    group.finish();
}

fn bench_ablation_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("cycle_ablations");
    group.sample_size(20);
    let s = samples(20.0, 3600.0, 106.0, 63.0);
    let variants: Vec<(&str, IdentifyConfig)> = vec![
        ("paper_raw_dft", IdentifyConfig { fold_validate: false, ..IdentifyConfig::default() }),
        ("fold_validated", IdentifyConfig::default()),
        (
            "linear_interp",
            IdentifyConfig { interpolation: Method::Linear, ..IdentifyConfig::default() },
        ),
    ];
    for (name, cfg) in variants {
        group.bench_function(name, |b| {
            b.iter(|| black_box(identify_cycle_from_samples(&s, 3600, &cfg)))
        });
    }
    group.finish();
}

fn bench_fold_contrast(c: &mut Criterion) {
    let s = samples(20.0, 3600.0, 98.0, 39.0);
    c.bench_function("fold_contrast_single", |b| b.iter(|| black_box(fold_contrast(&s, 98.0))));
}

criterion_group!(benches, bench_identify_cycle, bench_ablation_variants, bench_fold_contrast);
criterion_main!(benches);
