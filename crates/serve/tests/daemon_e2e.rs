//! End-to-end daemon proof: a seeded feed streamed over real TCP
//! produces, through the full socket → decode → identify → store → HTTP
//! pipeline, answers **bit-identical** to an offline replay of the same
//! bytes — for both wire formats.
//!
//! The offline oracle decodes the *encoded* feed (not the raw records):
//! CSV quantizes positions to micro-degrees, and the claim under test is
//! "same bytes in, same schedules out", not "encoding is lossless".

use std::io::{Cursor, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use std::sync::Arc;

use taxilight_core::realtime::RealtimeIdentifier;
use taxilight_core::LightHealth;
use taxilight_obs::flight::FlightRecorder;
use taxilight_obs::json::{self, validate_flight_dump, Json};
use taxilight_roadnet::graph::{LightId, RoadNetwork};
use taxilight_serve::ingest::encode_feed;
use taxilight_serve::{Daemon, DaemonConfig, FeedFormat, FeedSource};
use taxilight_sim::small_city;
use taxilight_trace::source::collect_source;
use taxilight_trace::time::Timestamp;

struct World {
    net: RoadNetwork,
    /// Encoded feed per wire format.
    csv: String,
    ndjson: String,
}

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| {
        let mut city = small_city(4242, 60);
        city.sim_config.hourly_activity = [1.0; 24];
        let start = Timestamp::civil(2014, 12, 5, 9, 0, 0);
        // The first identification round needs a full window (3600 s) of
        // data plus the reorder grace; 1500 s more yields several rounds.
        let (log, fleet) = city.run_from(start, 3600 + 1500);
        let mut records = log.into_records();
        records.sort_by_key(|r| r.time);
        let csv = encode_feed(&records, &fleet, FeedFormat::Csv).unwrap();
        let ndjson = encode_feed(&records, &fleet, FeedFormat::NdJson).unwrap();
        World { net: city.net, csv, ndjson }
    })
}

/// The offline oracle: decode the wire bytes exactly like the daemon
/// does, run the same identifier, return its final state.
struct Oracle {
    records: usize,
    version: u64,
    digest: u64,
    schedules: Vec<(LightId, taxilight_core::LightSchedule)>,
    changes: usize,
    /// Per-light health after the replay, light-id ascending — health
    /// only mutates inside rounds, so this equals what the daemon
    /// published with its last round.
    health: Vec<LightHealth>,
    /// Newest record timestamp in the feed: the daemon's post-drain
    /// freshness watermark.
    watermark: Timestamp,
}

fn offline_replay(
    encoded: &str,
    format: FeedFormat,
    net: &RoadNetwork,
    cfg: &DaemonConfig,
) -> Oracle {
    let mut source = FeedSource::new(Cursor::new(encoded.as_bytes()), format, cfg.chunk);
    let (records, bad) = collect_source(&mut source).unwrap();
    assert!(bad.is_empty(), "oracle rejected feed lines: {bad:?}");
    let mut engine = RealtimeIdentifier::builder(net)
        .config(cfg.identify.clone())
        .interval_s(cfg.interval_s)
        .reorder_grace_s(cfg.reorder_grace_s)
        .build()
        .unwrap();
    engine.extend(records.iter());
    let view = engine.view();
    let watermark = Timestamp(records.iter().map(|r| r.time.0).max().expect("non-empty feed"));
    Oracle {
        records: records.len(),
        version: view.version(),
        digest: view.digest(),
        schedules: view.schedules().map(|(l, s)| (l, *s)).collect(),
        health: engine.health().snapshot(),
        changes: engine.take_changes().len(),
        watermark,
    }
}

/// Minimal HTTP client: one request per connection (`Connection: close`).
fn http_get(addr: SocketAddr, path_query: &str) -> (u16, String) {
    let mut conn = TcpStream::connect(addr).expect("connect to daemon http port");
    write!(conn, "GET {path_query} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").unwrap();
    let mut raw = String::new();
    conn.read_to_string(&mut raw).expect("read response");
    let status: u16 =
        raw.split_whitespace().nth(1).and_then(|s| s.parse().ok()).expect("status line");
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

fn get_json(addr: SocketAddr, path_query: &str) -> (u16, Json) {
    let (status, body) = http_get(addr, path_query);
    (status, json::parse(&body).unwrap_or_else(|e| panic!("{path_query}: bad JSON ({e}): {body}")))
}

fn num(doc: &Json, key: &str) -> f64 {
    doc.get(key).and_then(Json::as_f64).unwrap_or_else(|| panic!("missing number {key}: {doc:?}"))
}

/// Streams the feed, waits for drain, checks every query endpoint
/// against the oracle, shuts the daemon down cleanly.
fn run_case(format: FeedFormat, encoded: &str) {
    let w = world();
    let cfg = DaemonConfig { format, reorder_grace_s: 60, ..DaemonConfig::default() };
    let oracle = offline_replay(encoded, format, &w.net, &cfg);
    assert!(!oracle.schedules.is_empty(), "oracle identified nothing — scenario too small");

    let daemon = Daemon::bind(cfg).unwrap();
    let handle = daemon.handle();
    let (feed_addr, http_addr) = (handle.feed_addr(), handle.http_addr());

    std::thread::scope(|scope| {
        let runner = scope.spawn(|| daemon.run(&w.net));

        // Before any feed: empty-but-answerable, and honest about it —
        // no round has fired, so the daemon reports "warming", not "ok".
        let (status, doc) = get_json(http_addr, "/healthz");
        assert_eq!(status, 200);
        assert_eq!(doc.get("status").and_then(Json::as_str).unwrap(), "warming");
        assert!(matches!(doc.get("feed_alive"), Some(Json::Bool(true))));
        assert_eq!(num(&doc, "rounds") as u64, 0);
        assert!(matches!(doc.get("last_publish_age_s"), Some(Json::Null)));

        // Stream the whole feed down one connection, then close it.
        let mut feed = TcpStream::connect(feed_addr).unwrap();
        feed.write_all(encoded.as_bytes()).unwrap();
        drop(feed);

        // Drain: poll /stats until every record is through the engine.
        let deadline = Instant::now() + Duration::from_secs(60);
        let stats = loop {
            let (status, stats) = get_json(http_addr, "/stats");
            assert_eq!(status, 200);
            if num(&stats, "records_processed") as usize == oracle.records {
                break stats;
            }
            assert!(Instant::now() < deadline, "feed never drained: {stats:?}");
            std::thread::sleep(Duration::from_millis(50));
        };

        // Bit-identical to the offline replay.
        assert_eq!(num(&stats, "records_received") as usize, oracle.records);
        assert_eq!(num(&stats, "bad_lines") as u64, 0);
        assert_eq!(num(&stats, "version") as u64, oracle.version);
        assert_eq!(
            stats.get("digest").and_then(Json::as_str).unwrap(),
            format!("{:#018x}", oracle.digest),
            "daemon digest diverged from offline replay"
        );
        assert_eq!(num(&stats, "lights") as usize, oracle.schedules.len());
        assert_eq!(num(&stats, "changes") as usize, oracle.changes);

        // Every identified schedule, field by field, at full f64 precision
        // (fmt_f64 is shortest-roundtrip).
        for (light, expect) in &oracle.schedules {
            let (status, doc) = get_json(http_addr, &format!("/schedule/{}", light.0));
            assert_eq!(status, 200, "schedule for light {light:?}");
            assert_eq!(num(&doc, "cycle_s").to_bits(), expect.cycle_s.to_bits());
            assert_eq!(num(&doc, "red_s").to_bits(), expect.red_s.to_bits());
            assert_eq!(num(&doc, "green_s").to_bits(), expect.green_s.to_bits());
            assert_eq!(num(&doc, "red_start_s").to_bits(), expect.red_start_s.to_bits());
            assert_eq!(num(&doc, "samples") as usize, expect.samples);
        }

        // Green-wait answers match the shared ScheduleView logic.
        let oracle_view =
            taxilight_core::ScheduleView::new(oracle.version, None, oracle.schedules.clone());
        let t0 = Timestamp::civil(2014, 12, 5, 9, 45, 0);
        for (light, _) in oracle.schedules.iter().take(3) {
            for dt in [0i64, 17, 61] {
                let t = t0.offset(dt);
                let (status, doc) =
                    get_json(http_addr, &format!("/green_wait/{}?t={}", light.0, t.0));
                assert_eq!(status, 200);
                let expect = oracle_view.wait_for_green(*light, t).unwrap();
                assert_eq!(num(&doc, "wait_s").to_bits(), expect.to_bits());
                let red = oracle_view.is_red_at(*light, t).unwrap();
                assert_eq!(
                    doc.get("state").and_then(Json::as_str).unwrap(),
                    if red { "red" } else { "green" }
                );
            }
        }
        // Change history page, in (timestamp, light) order.
        let (status, doc) = get_json(http_addr, "/changes");
        assert_eq!(status, 200);
        let changes = doc.get("changes").and_then(Json::as_arr).unwrap();
        assert_eq!(changes.len(), oracle.changes);

        // After rounds fired, /healthz reports "ok".
        let (status, doc) = get_json(http_addr, "/healthz");
        assert_eq!(status, 200);
        assert_eq!(doc.get("status").and_then(Json::as_str).unwrap(), "ok");
        assert!(matches!(doc.get("feed_alive"), Some(Json::Bool(true))));
        assert!(num(&doc, "rounds") > 0.0);
        assert!(num(&doc, "last_publish_age_s") >= 0.0);

        // /lights: the published health records match the offline
        // replay's registry exactly (health only mutates inside rounds).
        let (status, doc) = get_json(http_addr, "/lights");
        assert_eq!(status, 200);
        assert_eq!(num(&doc, "version") as u64, oracle.version);
        assert_eq!(num(&doc, "lights_tracked") as usize, oracle.health.len());
        let expect_identified = oracle.health.iter().filter(|h| h.identified()).count();
        assert_eq!(num(&doc, "identified") as usize, expect_identified);
        assert_eq!(
            doc.get("watermark").and_then(Json::as_str).unwrap(),
            oracle.watermark.format(),
            "freshness watermark diverged from the feed's newest record"
        );
        let lights = doc.get("lights").and_then(Json::as_arr).unwrap();
        assert_eq!(lights.len(), oracle.health.len());
        for (item, expect) in lights.iter().zip(&oracle.health) {
            assert_eq!(num(item, "light") as u32, expect.light.0);
            assert_eq!(item.get("grade").and_then(Json::as_str).unwrap(), expect.grade.as_str());
            assert_eq!(num(item, "snr").to_bits(), expect.snr.to_bits());
        }

        // /lights/{id}: every field of every record, bit-for-bit against
        // the oracle, including feed-clock freshness.
        for expect in &oracle.health {
            let (status, doc) = get_json(http_addr, &format!("/lights/{}", expect.light.0));
            assert_eq!(status, 200, "health for light {:?}", expect.light);
            assert_eq!(num(&doc, "light") as u32, expect.light.0);
            assert_eq!(doc.get("grade").and_then(Json::as_str).unwrap(), expect.grade.as_str());
            assert_eq!(num(&doc, "observations") as usize, expect.observations);
            assert_eq!(num(&doc, "records_per_hour").to_bits(), expect.records_per_hour.to_bits());
            assert_eq!(num(&doc, "attempts") as u64, expect.attempts);
            assert_eq!(num(&doc, "successes") as u64, expect.successes);
            assert_eq!(num(&doc, "consecutive_failures") as u64, expect.consecutive_failures);
            let failures = doc.get("failures").expect("failures object");
            assert_eq!(num(failures, "no_data") as u64, expect.failures.no_data);
            assert_eq!(num(failures, "cycle") as u64, expect.failures.cycle);
            assert_eq!(num(failures, "red") as u64, expect.failures.red);
            assert_eq!(num(failures, "change_point") as u64, expect.failures.change_point);
            assert_eq!(num(failures, "total") as u64, expect.failures.total());
            assert_eq!(num(&doc, "changes") as u64, expect.changes);
            assert_eq!(num(&doc, "snr").to_bits(), expect.snr.to_bits());
            assert_eq!(num(&doc, "cycle_s").to_bits(), expect.cycle_s.to_bits());
            assert_eq!(num(&doc, "last_version") as u64, expect.last_version);
            match expect.age_s(oracle.watermark) {
                Some(age) => assert_eq!(num(&doc, "age_s").to_bits(), age.to_bits()),
                None => assert!(matches!(doc.get("age_s"), Some(Json::Null))),
            }
        }

        // Error paths and the metrics surfaces stay up under load.
        assert_eq!(http_get(http_addr, "/schedule/notanumber").0, 400);
        assert_eq!(http_get(http_addr, "/schedule/999999").0, 404);
        assert_eq!(http_get(http_addr, "/green_wait/0").0, 400);
        assert_eq!(http_get(http_addr, "/lights/notanumber").0, 400);
        assert_eq!(http_get(http_addr, "/lights/999999").0, 404);
        assert_eq!(http_get(http_addr, "/nope").0, 404);
        // No flight recorder configured in this case.
        assert_eq!(http_get(http_addr, "/debug/flight").0, 404);
        let (status, metrics) = http_get(http_addr, "/metrics");
        assert_eq!(status, 200);
        assert!(metrics.contains("taxilightd_records_total"));
        assert!(metrics.contains("taxilight_http_request_duration_seconds_bucket"));
        assert!(metrics.contains("taxilight_http_errors_total"));
        assert!(metrics.contains("taxilight_build_info"));
        assert!(metrics.contains("taxilight_schedule_age_seconds"));
        assert!(metrics.contains("taxilight_lights_by_grade"));
        let (status, _) = get_json(http_addr, "/metrics.json");
        assert_eq!(status, 200);

        handle.shutdown();
        runner.join().unwrap().unwrap();
    });
}

#[test]
fn daemon_csv_feed_matches_offline_replay() {
    run_case(FeedFormat::Csv, &world().csv);
}

#[test]
fn daemon_ndjson_feed_matches_offline_replay() {
    run_case(FeedFormat::NdJson, &world().ndjson);
}

/// Kill the feed before any round can fire: with no snapshot publish
/// inside the threshold, `/healthz` must flip to 503 "stale" — the bug
/// this pins down is the old static-"ok" health check.
#[test]
fn healthz_goes_stale_when_the_feed_dies() {
    let w = world();
    let cfg = DaemonConfig { stale_after_s: 0.3, ..DaemonConfig::default() };
    let daemon = Daemon::bind(cfg).unwrap();
    let handle = daemon.handle();
    let (feed_addr, http_addr) = (handle.feed_addr(), handle.http_addr());
    std::thread::scope(|scope| {
        let runner = scope.spawn(|| daemon.run(&w.net));
        // Feed a handful of records — far too few for a round — then
        // kill the connection.
        let mut feed = TcpStream::connect(feed_addr).unwrap();
        let head: String = w.csv.lines().take(50).map(|l| format!("{l}\n")).collect();
        feed.write_all(head.as_bytes()).unwrap();
        drop(feed);
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let (status, doc) = get_json(http_addr, "/healthz");
            if status == 503 {
                assert_eq!(doc.get("status").and_then(Json::as_str).unwrap(), "stale");
                // The feed *thread* is still accepting; it is the rounds
                // that stopped.
                assert!(matches!(doc.get("feed_alive"), Some(Json::Bool(true))));
                break;
            }
            assert_eq!(status, 200);
            assert!(Instant::now() < deadline, "healthz never went stale: {doc:?}");
            std::thread::sleep(Duration::from_millis(50));
        }
        handle.shutdown();
        runner.join().unwrap().unwrap();
    });
}

/// A daemon armed with a flight recorder serves a Perfetto-loadable,
/// validator-clean forensic dump at `/debug/flight`.
#[test]
fn debug_flight_serves_a_validated_dump() {
    let w = world();
    let recorder = Arc::new(FlightRecorder::new());
    let cfg = DaemonConfig { flight: Some(Arc::clone(&recorder)), ..DaemonConfig::default() };
    let daemon = Daemon::bind(cfg).unwrap();
    let handle = daemon.handle();
    let http_addr = handle.http_addr();
    std::thread::scope(|scope| {
        let runner = scope.spawn(|| daemon.run(&w.net));
        let _ = recorder.trigger("e2e_probe");
        let (status, body) = http_get(http_addr, "/debug/flight");
        assert_eq!(status, 200);
        let summary = validate_flight_dump(&json::parse(&body).unwrap()).unwrap();
        assert_eq!(summary.reason, "e2e_probe");
        handle.shutdown();
        runner.join().unwrap().unwrap();
    });
}

#[test]
fn keep_alive_connection_answers_many_queries() {
    // The load-generator pattern: many requests down one socket.
    let w = world();
    let daemon = Daemon::bind(DaemonConfig::default()).unwrap();
    let handle = daemon.handle();
    let http_addr = handle.http_addr();
    std::thread::scope(|scope| {
        let runner = scope.spawn(|| daemon.run(&w.net));
        let mut conn = TcpStream::connect(http_addr).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        for _ in 0..50 {
            write!(conn, "GET /stats HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
            // Read exactly one framed response off the stream.
            let mut head = Vec::new();
            let mut byte = [0u8; 1];
            while !head.ends_with(b"\r\n\r\n") {
                conn.read_exact(&mut byte).unwrap();
                head.push(byte[0]);
            }
            let head = String::from_utf8(head).unwrap();
            assert!(head.starts_with("HTTP/1.1 200 OK\r\n"), "{head}");
            assert!(head.contains("Connection: keep-alive\r\n"));
            let len: usize = head
                .lines()
                .find_map(|l| l.strip_prefix("Content-Length: "))
                .and_then(|v| v.trim().parse().ok())
                .expect("Content-Length");
            let mut body = vec![0u8; len];
            conn.read_exact(&mut body).unwrap();
            let doc = json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
            assert_eq!(num(&doc, "seq") as u64, 0);
        }
        drop(conn);
        handle.shutdown();
        runner.join().unwrap().unwrap();
    });
}
