//! Torn-snapshot proof for the serving store: a [`ScheduleView`] read
//! mid-round is always *exactly* one of the atomically-published states
//! — never a mix of old and new schedules.
//!
//! Method: an offline replay of a seeded city feed first enumerates
//! every state the live run can legally publish, as a map from store
//! version (the identifier's round counter) to the view's FNV digest.
//! Then the same feed is replayed live under `std::thread::scope`: a
//! writer thread runs identification rounds and publishes snapshots
//! while reader threads hammer [`StoreReader::current`]. Every observed
//! `(version, digest)` pair must be in the offline map — a torn read
//! (half-swapped schedule vector, partially-written floats) would hash
//! to a digest no legal state has.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

use taxilight_core::realtime::RealtimeIdentifier;
use taxilight_core::{LightSchedule, ScheduleView};
use taxilight_roadnet::graph::LightId;
use taxilight_serve::ScheduleStore;
use taxilight_sim::small_city;
use taxilight_trace::record::TaxiRecord;
use taxilight_trace::time::Timestamp;

/// Records per engine batch in both replays. Deliberately odd so batch
/// boundaries never line up with round boundaries.
const BATCH: usize = 197;

fn feed() -> &'static (Vec<TaxiRecord>, taxilight_roadnet::graph::RoadNetwork) {
    static FEED: OnceLock<(Vec<TaxiRecord>, taxilight_roadnet::graph::RoadNetwork)> =
        OnceLock::new();
    FEED.get_or_init(|| {
        let mut city = small_city(4242, 60);
        city.sim_config.hourly_activity = [1.0; 24];
        let start = Timestamp::civil(2014, 12, 5, 9, 0, 0);
        // The first identification round needs a full window (3600 s) of
        // data plus the reorder grace; 1500 s more yields several rounds.
        let (log, _) = city.run_from(start, 3600 + 1500);
        let mut records = log.into_records();
        records.sort_by_key(|r| r.time);
        (records, city.net)
    })
}

/// Replays the feed offline and returns every publishable state:
/// `version → digest`, including the initial empty view.
fn legal_states(
    records: &[TaxiRecord],
    net: &taxilight_roadnet::graph::RoadNetwork,
) -> HashMap<u64, u64> {
    let mut engine = RealtimeIdentifier::builder(net).reorder_grace_s(60).build().unwrap();
    let mut states = HashMap::new();
    states.insert(0, ScheduleView::empty().digest());
    let mut published = 0u64;
    for batch in records.chunks(BATCH) {
        engine.extend(batch.iter());
        let rounds = engine.round_report().rounds;
        if rounds > published {
            published = rounds;
            let view = engine.view();
            states.insert(view.version(), view.digest());
        }
    }
    states
}

#[test]
fn a_snapshot_read_mid_round_is_never_torn() {
    let (records, net) = feed();
    let states = legal_states(records, net);
    assert!(states.len() > 3, "feed produced too few rounds to exercise publishing");

    let (store, reader) = ScheduleStore::new();
    let done = AtomicBool::new(false);
    let observed = std::thread::scope(|scope| {
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let r = reader.clone();
                let done = &done;
                let states = &states;
                scope.spawn(move || {
                    let mut last_seq = 0u64;
                    let mut last_version = 0u64;
                    let mut distinct = std::collections::HashSet::new();
                    loop {
                        let snap = r.current();
                        let (version, digest) = (snap.view.version(), snap.view.digest());
                        // The heart of the proof: this exact state was
                        // enumerated offline, or the read was torn.
                        assert_eq!(
                            states.get(&version),
                            Some(&digest),
                            "torn or unknown snapshot at version {version}"
                        );
                        assert!(snap.seq >= last_seq, "seq went backwards");
                        assert!(version >= last_version, "version went backwards");
                        // Change history must arrive in its documented
                        // (timestamp, light) page order, atomically.
                        assert!(
                            snap.changes
                                .windows(2)
                                .all(|w| (w[0].1.at, w[0].0 .0) <= (w[1].1.at, w[1].0 .0)),
                            "change history out of order"
                        );
                        last_seq = snap.seq;
                        last_version = version;
                        distinct.insert(version);
                        if done.load(Ordering::Acquire) {
                            return distinct.len();
                        }
                    }
                })
            })
            .collect();

        // Writer: the live replay, publishing exactly like the daemon's
        // identification loop does.
        let mut engine = RealtimeIdentifier::builder(net).reorder_grace_s(60).build().unwrap();
        let mut changes = Vec::new();
        let mut published = 0u64;
        for batch in records.chunks(BATCH) {
            engine.extend(batch.iter());
            let rounds = engine.round_report().rounds;
            if rounds > published {
                published = rounds;
                changes.extend(engine.take_changes());
                store.publish(engine.view(), changes.clone());
            }
        }
        done.store(true, Ordering::Release);
        readers.into_iter().map(|h| h.join().unwrap()).sum::<usize>()
    });

    // Readers actually raced the writer across states (not one stale
    // read repeated): together they saw more than the initial view.
    assert!(observed >= 2, "readers observed only {observed} distinct version(s)");
    let final_snap = reader.current();
    assert_eq!(final_snap.view.digest(), states[&final_snap.view.version()]);
    assert!(!final_snap.view.is_empty(), "live replay identified nothing");
}

#[test]
fn current_read_path_never_touches_the_history_lock() {
    let (store, reader) = ScheduleStore::new();
    let schedule = LightSchedule {
        light: LightId(3),
        cycle_s: 90.0,
        red_s: 40.0,
        green_s: 50.0,
        red_start_s: 10.0,
        snr: 4.0,
        samples: 25,
    };
    store.publish(
        ScheduleView::new(1, Some(Timestamp(1000)), vec![(LightId(3), schedule)]),
        Vec::new(),
    );
    // `current()` (and everything on the view) completes while the
    // history mutex is held — it would deadlock here if the read path
    // took the lock.
    let (seq, digest, wait) = store.with_history_locked(|| {
        let snap = reader.current();
        (snap.seq, snap.view.digest(), snap.view.wait_for_green(LightId(3), Timestamp(1005)))
    });
    assert_eq!(seq, 1);
    assert_eq!(digest, reader.current().view.digest());
    assert_eq!(wait, reader.current().view.wait_for_green(LightId(3), Timestamp(1005)));
}
