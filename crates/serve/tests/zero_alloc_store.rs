//! Counting-allocator proof that the serving query read path is
//! allocation-free: one current-snapshot load plus a schedule lookup, a
//! green-wait computation and a digest never touch the heap.
//!
//! Gated behind the test-only `alloc-counter` feature so the global
//! allocator swap never leaks into ordinary test runs:
//!
//! ```text
//! cargo test -p taxilight-serve --features alloc-counter --test zero_alloc_store
//! ```

#![cfg(feature = "alloc-counter")]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use taxilight_core::{LightSchedule, ScheduleView};
use taxilight_roadnet::graph::LightId;
use taxilight_serve::ScheduleStore;
use taxilight_trace::time::Timestamp;

/// Wraps the system allocator and counts every allocation-producing
/// call. Deallocations are not counted: the invariant under test is "no
/// new heap traffic", and `dealloc` cannot create any.
struct CountingAllocator;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn alloc_calls() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

/// A populated view: enough lights that a torn or accidentally-cloning
/// implementation would show up loudly in the counter.
fn populated_view(lights: u32) -> ScheduleView {
    ScheduleView::new(
        7,
        Some(Timestamp(100_000)),
        (0..lights)
            .map(|l| {
                (
                    LightId(l),
                    LightSchedule {
                        light: LightId(l),
                        cycle_s: 60.0 + l as f64,
                        red_s: 25.0,
                        green_s: 35.0 + l as f64,
                        red_start_s: (l % 50) as f64,
                        snr: 3.5,
                        samples: 40,
                    },
                )
            })
            .collect(),
    )
}

#[test]
fn store_query_read_path_is_allocation_free() {
    let (store, reader) = ScheduleStore::new();
    store.publish(populated_view(500), Vec::new());

    // Warmup: fault in lazy statics, caches, anything one-time.
    let warm = reader.current();
    let warm_digest = warm.view.digest();
    assert_eq!(warm.view.len(), 500);

    let before = alloc_calls();
    let mut acc = 0u64;
    for k in 0..1000u32 {
        let snap = reader.current();
        let light = LightId(k % 500);
        let t = Timestamp(100_000 + k as i64);
        let s = snap.view.schedule(light).expect("every light is present");
        acc ^= s.cycle_s.to_bits();
        acc ^= snap.view.wait_for_green(light, t).expect("schedule known").to_bits();
        acc ^= u64::from(snap.view.is_red_at(light, t).expect("schedule known"));
        acc ^= snap.view.digest();
    }
    let after = alloc_calls();

    assert_eq!(
        after - before,
        0,
        "query read path allocated {} time(s) across 1000 reads",
        after - before
    );
    // The accumulator keeps the loop un-optimizable.
    std::hint::black_box(acc);
    assert_eq!(reader.current().view.digest(), warm_digest);
}

#[test]
fn publishes_do_not_disturb_a_running_reader_loop() {
    // Reads stay allocation-free even while the writer publishes:
    // readers never take the lock and never clone the Arc.
    let (store, reader) = ScheduleStore::new();
    store.publish(populated_view(100), Vec::new());
    let _ = reader.current().view.digest(); // warm

    std::thread::scope(|scope| {
        let handle = scope.spawn(|| {
            let before = alloc_calls();
            let mut acc = 0u64;
            for k in 0..5000u32 {
                let snap = reader.current();
                acc ^= snap.seq;
                if let Some(s) = snap.view.schedule(LightId(k % 100)) {
                    acc ^= s.green_s.to_bits();
                }
            }
            (before, alloc_calls(), acc)
        });
        for _ in 0..50 {
            store.publish(populated_view(100), Vec::new());
        }
        let (before, after, _acc) = handle.join().unwrap();
        // The writer allocates (snapshots, history growth) — but those
        // allocations happen on the *writer* thread. The reader's own
        // path must stay clean; the counter is global, so tolerate the
        // concurrent writer by bounding, not equating: the reader does
        // 5000 full reads, the writer at most 50 publishes of a 100-light
        // view (a few allocations each). A reader that allocated even
        // once per read would blow far past this.
        assert!(
            after - before < 2000,
            "reader loop overlapped {} allocations — reads are allocating",
            after - before
        );
    });
}
