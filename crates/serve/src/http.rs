//! Dependency-free HTTP/1.1 plumbing: just enough of RFC 9112 for the
//! daemon's GET-only query surface.
//!
//! One [`Request`] is parsed per round trip; responses are written with
//! explicit `Content-Length` so persistent connections (the HTTP/1.1
//! default) work — the load generator drives thousands of queries down
//! one socket. Anything outside the subset (bodies, chunked encoding,
//! methods other than GET/HEAD) is answered with a clean 4xx/5xx rather
//! than hung up on.

use std::io::{self, BufRead, Write};

/// A parsed request line plus the connection-relevant headers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, uppercased (`GET`, `HEAD`, …).
    pub method: String,
    /// Path component of the request target, percent-decoded.
    pub path: String,
    /// Raw query string (no leading `?`), empty when absent.
    pub query: String,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

/// Outcome of reading one request off a connection.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request.
    Request(Request),
    /// Peer closed the connection cleanly between requests.
    Closed,
    /// The bytes did not form a parseable request head.
    Malformed,
}

/// Reads one request head (request line + headers) from `reader`.
///
/// Request bodies are not supported: a request advertising one is
/// reported as [`ReadOutcome::Malformed`] so the caller can answer 400
/// and drop the connection instead of desynchronising.
pub fn read_request<R: BufRead>(reader: &mut R) -> io::Result<ReadOutcome> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(ReadOutcome::Closed);
    }
    let mut parts = line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Ok(ReadOutcome::Malformed);
    };
    if !version.starts_with("HTTP/1.") {
        return Ok(ReadOutcome::Malformed);
    }
    // HTTP/1.1 defaults to keep-alive; HTTP/1.0 to close.
    let mut keep_alive = version == "HTTP/1.1";
    let method = method.to_ascii_uppercase();

    // Drain headers up to the empty line.
    let mut has_body = false;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Ok(ReadOutcome::Malformed);
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Ok(ReadOutcome::Malformed);
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        } else if name.eq_ignore_ascii_case("content-length") {
            has_body = value.parse::<u64>().map(|n| n > 0).unwrap_or(true);
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            has_body = true;
        }
    }
    if has_body {
        return Ok(ReadOutcome::Malformed);
    }

    let (raw_path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q.to_string()),
        None => (target, String::new()),
    };
    Ok(ReadOutcome::Request(Request { method, path: percent_decode(raw_path), query, keep_alive }))
}

/// Decodes `%XX` escapes (and `+` as space, for query values routed
/// through here). Invalid escapes pass through literally.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut k = 0;
    while k < bytes.len() {
        match bytes[k] {
            b'%' if k + 2 < bytes.len() => {
                let hex = &s[k + 1..k + 3];
                if let Ok(v) = u8::from_str_radix(hex, 16) {
                    out.push(v);
                    k += 3;
                } else {
                    out.push(b'%');
                    k += 1;
                }
            }
            b'+' => {
                out.push(b' ');
                k += 1;
            }
            b => {
                out.push(b);
                k += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Looks up `key` in a raw query string, percent-decoded.
pub fn query_param(query: &str, key: &str) -> Option<String> {
    query.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        (k == key).then(|| percent_decode(v))
    })
}

/// Writes one response with explicit `Content-Length`.
pub fn respond<W: Write>(
    w: &mut W,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n{body}",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> ReadOutcome {
        read_request(&mut Cursor::new(raw.as_bytes())).unwrap()
    }

    #[test]
    fn parses_get_with_query_and_keepalive_default() {
        let ReadOutcome::Request(r) =
            parse("GET /green_wait/7?t=2014-12-05%2009:30:00 HTTP/1.1\r\nHost: x\r\n\r\n")
        else {
            panic!("expected request");
        };
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/green_wait/7");
        assert_eq!(r.query, "t=2014-12-05%2009:30:00");
        assert!(r.keep_alive);
        assert_eq!(query_param(&r.query, "t").unwrap(), "2014-12-05 09:30:00");
        assert_eq!(query_param(&r.query, "missing"), None);
    }

    #[test]
    fn connection_close_and_http10_disable_keepalive() {
        let ReadOutcome::Request(r) = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n") else {
            panic!("expected request");
        };
        assert!(!r.keep_alive);
        let ReadOutcome::Request(r) = parse("GET / HTTP/1.0\r\n\r\n") else {
            panic!("expected request");
        };
        assert!(!r.keep_alive);
    }

    #[test]
    fn eof_is_closed_and_garbage_is_malformed() {
        assert!(matches!(parse(""), ReadOutcome::Closed));
        assert!(matches!(parse("not http\r\n\r\n"), ReadOutcome::Malformed));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello"),
            ReadOutcome::Malformed
        ));
    }

    #[test]
    fn percent_decoding_handles_escapes_and_plus() {
        assert_eq!(percent_decode("a%20b+c"), "a b c");
        assert_eq!(percent_decode("%2Fx"), "/x");
        assert_eq!(percent_decode("bad%zz"), "bad%zz");
        assert_eq!(percent_decode("%2"), "%2");
    }

    #[test]
    fn respond_writes_content_length_frame() {
        let mut buf = Vec::new();
        respond(&mut buf, 200, "OK", "application/json", "{\"a\":1}", true).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 7\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"a\":1}"));
    }
}
