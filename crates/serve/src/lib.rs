//! # taxilight-serve
//!
//! `taxilightd`: the always-on serving daemon closing the paper's §VII
//! loop — continuous re-identification from a live taxi-record feed,
//! published as immutable versioned snapshots and queried over HTTP
//! ("when does light X turn green?") by navigation clients.
//!
//! * [`store`] — the lock-free versioned schedule store: single writer,
//!   wait-free readers, full snapshot history.
//! * [`ingest`] — feed wire formats (Table-I CSV and ND-JSON) behind
//!   the bounded-memory [`RecordSource`] contract.
//! * [`http`] — dependency-free HTTP/1.1 request/response plumbing.
//! * [`daemon`] — the pipeline: feed socket → bounded channel →
//!   [`RealtimeIdentifier`] rounds → store → query endpoints.
//!
//! See `docs/serving.md` for the wire protocol, snapshot semantics and
//! the backpressure model.
//!
//! [`RecordSource`]: taxilight_trace::source::RecordSource
//! [`RealtimeIdentifier`]: taxilight_core::realtime::RealtimeIdentifier

#![warn(missing_docs)]

pub mod daemon;
pub mod http;
pub mod ingest;
pub mod store;

pub use daemon::{Daemon, DaemonConfig, DaemonHandle, DaemonStats};
pub use ingest::{FeedFormat, FeedSource, NdJsonReader};
pub use store::{ScheduleStore, Snapshot, StoreReader};
