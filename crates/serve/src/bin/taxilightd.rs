//! The `taxilightd` daemon binary.
//!
//! ```text
//! taxilightd [--feed ADDR] [--http ADDR] [--format csv|ndjson]
//!            [--interval S] [--grace S] [--city-seed N]
//! ```
//!
//! Binds the feed and HTTP listeners, prints the bound addresses (one
//! per line, parseable), then serves until killed. The road network is
//! the seed-deterministic paper city — the same network a feed generated
//! from `paper_city(seed, taxis)` drives, so an offline replay of the
//! identical feed produces bit-identical schedules (`/stats` digest).

use taxilight_serve::{Daemon, DaemonConfig, FeedFormat};
use taxilight_sim::paper_city;

fn usage() -> ! {
    eprintln!(
        "usage: taxilightd [--feed ADDR] [--http ADDR] [--format csv|ndjson] \
         [--interval S] [--grace S] [--city-seed N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut cfg = DaemonConfig::default();
    let mut city_seed = 1u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--feed" => cfg.feed_addr = value("--feed"),
            "--http" => cfg.http_addr = value("--http"),
            "--format" => {
                cfg.format = FeedFormat::parse(&value("--format")).unwrap_or_else(|| usage())
            }
            "--interval" => {
                cfg.interval_s = value("--interval").parse().unwrap_or_else(|_| usage())
            }
            "--grace" => cfg.reorder_grace_s = value("--grace").parse().unwrap_or_else(|_| usage()),
            "--city-seed" => city_seed = value("--city-seed").parse().unwrap_or_else(|_| usage()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }

    // Network only: the daemon never simulates, it identifies from the
    // feed. taxis=1 keeps scenario construction trivial.
    let scenario = paper_city(city_seed, 1);
    let daemon = match Daemon::bind(cfg) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("taxilightd: bind failed: {e}");
            std::process::exit(1);
        }
    };
    let handle = daemon.handle();
    println!("feed {}", handle.feed_addr());
    println!("http {}", handle.http_addr());
    if let Err(e) = daemon.run(&scenario.net) {
        eprintln!("taxilightd: {e}");
        std::process::exit(1);
    }
}
