//! The `taxilightd` daemon binary.
//!
//! ```text
//! taxilightd [--feed ADDR] [--http ADDR] [--format csv|ndjson]
//!            [--interval S] [--grace S] [--city-seed N]
//!            [--stale-after S] [--flight-dir DIR] [--flight-lag-trigger S]
//! ```
//!
//! Binds the feed and HTTP listeners, prints the bound addresses (one
//! per line, parseable), then serves until killed. The road network is
//! the seed-deterministic paper city — the same network a feed generated
//! from `paper_city(seed, taxis)` drives, so an offline replay of the
//! identical feed produces bit-identical schedules (`/stats` digest).
//!
//! `--flight-dir` arms the flight recorder: it is installed as the
//! process-global subscriber, wired into the daemon's anomaly triggers
//! and the panic hook, dumps `flight-<reason>.json` bundles into DIR,
//! and serves its live dump at `/debug/flight`.

use std::sync::Arc;

use taxilight_obs::flight::{install_panic_hook, FlightRecorder};
use taxilight_serve::{Daemon, DaemonConfig, FeedFormat};
use taxilight_sim::paper_city;

fn usage() -> ! {
    eprintln!(
        "usage: taxilightd [--feed ADDR] [--http ADDR] [--format csv|ndjson] \
         [--interval S] [--grace S] [--city-seed N] [--stale-after S] \
         [--flight-dir DIR] [--flight-lag-trigger S]"
    );
    std::process::exit(2);
}

fn main() {
    let mut cfg = DaemonConfig::default();
    let mut city_seed = 1u64;
    let mut flight_dir: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--feed" => cfg.feed_addr = value("--feed"),
            "--http" => cfg.http_addr = value("--http"),
            "--format" => {
                cfg.format = FeedFormat::parse(&value("--format")).unwrap_or_else(|| usage())
            }
            "--interval" => {
                cfg.interval_s = value("--interval").parse().unwrap_or_else(|_| usage())
            }
            "--grace" => cfg.reorder_grace_s = value("--grace").parse().unwrap_or_else(|_| usage()),
            "--city-seed" => city_seed = value("--city-seed").parse().unwrap_or_else(|_| usage()),
            "--stale-after" => {
                cfg.stale_after_s = value("--stale-after").parse().unwrap_or_else(|_| usage())
            }
            "--flight-dir" => flight_dir = Some(value("--flight-dir")),
            "--flight-lag-trigger" => {
                cfg.flight_lag_trigger_s =
                    value("--flight-lag-trigger").parse().unwrap_or_else(|_| usage())
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }

    if let Some(dir) = flight_dir {
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("taxilightd: cannot create flight dir {dir}: {e}");
            std::process::exit(1);
        }
        let recorder = Arc::new(FlightRecorder::new().with_dump_dir(dir));
        install_panic_hook(Arc::clone(&recorder));
        if taxilight_obs::set_subscriber(recorder.clone()).is_err() {
            eprintln!("taxilightd: a subscriber was already installed; flight recording only");
        }
        cfg.flight = Some(recorder);
    }

    // Network only: the daemon never simulates, it identifies from the
    // feed. taxis=1 keeps scenario construction trivial.
    let scenario = paper_city(city_seed, 1);
    let daemon = match Daemon::bind(cfg) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("taxilightd: bind failed: {e}");
            std::process::exit(1);
        }
    };
    let handle = daemon.handle();
    println!("feed {}", handle.feed_addr());
    println!("http {}", handle.http_addr());
    if let Err(e) = daemon.run(&scenario.net) {
        eprintln!("taxilightd: {e}");
        std::process::exit(1);
    }
}
