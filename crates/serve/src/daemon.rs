//! `taxilightd` — the always-on serving loop.
//!
//! Three cooperating thread roles, connected by a *bounded* channel so
//! memory stays O(chunk) end to end and overload propagates backwards
//! (backpressure) instead of growing queues:
//!
//! ```text
//! feed socket ──decode──▶ sync_channel(N) ──▶ RealtimeIdentifier ──publish──▶ store
//!      ▲                        ▲                    (rounds)                  │
//!      └── TCP flow control ────┘                                   Acquire load (wait-free)
//!                                                                              ▼
//!                                                             HTTP/1.1 query connections
//! ```
//!
//! * The **feed thread** accepts one TCP feed connection at a time and
//!   decodes it through the [`RecordSource`] contract ([`FeedSource`]).
//!   When the identifier falls behind, `sync_channel` blocks the decode
//!   loop, the socket stops being read, and TCP flow control pushes back
//!   on the sender — the documented backpressure model.
//! * The **identification thread** drains batches into a
//!   [`RealtimeIdentifier`]; whenever a re-identification round fires
//!   (feed clock, the paper's 5-minute cadence) it publishes an
//!   immutable snapshot into the [`ScheduleStore`].
//! * **HTTP threads** (one per connection) answer queries from the
//!   current snapshot — one atomic load per query, zero locks, zero
//!   allocations on the store read.
//!
//! All scheduling derives from *record* timestamps, never the wall
//! clock, so a replayed feed produces bit-identical answers — the
//! property the serving bench gates.

use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use taxilight_core::realtime::RealtimeIdentifier;
use taxilight_core::{IdentifyConfig, LightHealth, QualityGrade};
use taxilight_obs::flight::FlightRecorder;
use taxilight_obs::json::fmt_f64;
use taxilight_obs::metrics::{self, MetricClass};
use taxilight_roadnet::graph::{LightId, RoadNetwork};
use taxilight_trace::record::TaxiRecord;
use taxilight_trace::source::{RecordBatch, RecordSource};
use taxilight_trace::time::Timestamp;

use crate::http::{self, ReadOutcome, Request};
use crate::ingest::{FeedFormat, FeedSource};
use crate::store::{ScheduleStore, StoreReader};

/// Daemon configuration. Defaults mirror the paper's real-time loop
/// (5-minute rounds) with a 60 s reorder grace.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Feed listener address, e.g. `127.0.0.1:0` for an ephemeral port.
    pub feed_addr: String,
    /// HTTP listener address.
    pub http_addr: String,
    /// Feed wire format.
    pub format: FeedFormat,
    /// Re-identification round interval, seconds (feed clock).
    pub interval_s: u32,
    /// Out-of-order arrival grace, seconds.
    pub reorder_grace_s: u32,
    /// Identification configuration.
    pub identify: IdentifyConfig,
    /// Bounded depth of the decode → identify channel, in batches. The
    /// knob that trades burst absorption against backpressure latency.
    pub channel_batches: usize,
    /// Decode chunk size (bytes for CSV, ~records/64 for ND-JSON).
    pub chunk: usize,
    /// `/healthz` staleness threshold: wall seconds without a snapshot
    /// publish (or, before the first publish, since start) after which
    /// the daemon reports 503.
    pub stale_after_s: f64,
    /// Optional flight recorder: the daemon records trigger markers
    /// into it on anomalies (ingest-lag spike, identification failure)
    /// and serves its dump at `/debug/flight`. `None` disables both.
    pub flight: Option<Arc<FlightRecorder>>,
    /// Ingest-lag threshold (feed-clock seconds) that fires a
    /// `ingest_lag_spike` flight trigger, edge-detected. Infinite by
    /// default (never fires).
    pub flight_lag_trigger_s: f64,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            feed_addr: "127.0.0.1:0".into(),
            http_addr: "127.0.0.1:0".into(),
            format: FeedFormat::Csv,
            interval_s: 300,
            reorder_grace_s: 60,
            identify: IdentifyConfig::default(),
            channel_batches: 8,
            chunk: 64 * 1024,
            stale_after_s: 900.0,
            flight: None,
            flight_lag_trigger_s: f64::INFINITY,
        }
    }
}

/// Live counters shared between the pipeline threads, `/stats` and
/// `/healthz`.
#[derive(Debug)]
pub struct DaemonStats {
    /// Records decoded off the feed socket.
    pub records_received: AtomicU64,
    /// Records the identifier has consumed.
    pub records_processed: AtomicU64,
    /// Undecodable feed lines (counted, skipped).
    pub bad_lines: AtomicU64,
    /// Feed connections accepted so far.
    pub feed_connections: AtomicU64,
    /// HTTP requests answered.
    pub http_requests: AtomicU64,
    /// Newest record timestamp decoded off the socket (epoch s; i64::MIN
    /// before the first record).
    newest_received: AtomicI64,
    /// Newest record timestamp the identifier has consumed.
    newest_processed: AtomicI64,
    /// Daemon start instant; the origin for the wall-clock freshness
    /// fields below.
    start: Instant,
    /// Milliseconds after `start` of the latest snapshot publish;
    /// `u64::MAX` before the first one.
    last_publish_ms: AtomicU64,
    /// Whether the feed thread is still running its accept loop.
    feed_alive: AtomicBool,
}

impl DaemonStats {
    fn new() -> Arc<Self> {
        Arc::new(DaemonStats {
            records_received: AtomicU64::new(0),
            records_processed: AtomicU64::new(0),
            bad_lines: AtomicU64::new(0),
            feed_connections: AtomicU64::new(0),
            http_requests: AtomicU64::new(0),
            newest_received: AtomicI64::new(i64::MIN),
            newest_processed: AtomicI64::new(i64::MIN),
            start: Instant::now(),
            last_publish_ms: AtomicU64::new(u64::MAX),
            feed_alive: AtomicBool::new(true),
        })
    }

    /// Ingest lag in *feed-clock* seconds: newest record received minus
    /// newest record identified-through. 0 when fully drained (or before
    /// any record).
    pub fn ingest_lag_s(&self) -> f64 {
        let newest = self.newest_received.load(Ordering::Relaxed);
        let processed = self.newest_processed.load(Ordering::Relaxed);
        if newest == i64::MIN || processed == i64::MIN {
            return 0.0;
        }
        (newest - processed).max(0) as f64
    }

    /// Wall seconds since the daemon's stats were created (bind time).
    pub fn uptime_s(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Wall seconds since the latest snapshot publish; `None` before
    /// the first one.
    pub fn last_publish_age_s(&self) -> Option<f64> {
        let ms = self.last_publish_ms.load(Ordering::Relaxed);
        if ms == u64::MAX {
            return None;
        }
        Some((self.uptime_s() - ms as f64 / 1000.0).max(0.0))
    }

    /// Whether the feed thread is still accepting connections.
    pub fn feed_alive(&self) -> bool {
        self.feed_alive.load(Ordering::SeqCst)
    }

    /// The feed-clock watermark: newest record timestamp the identifier
    /// has consumed, `None` before the first record. The reference
    /// instant for every `/lights` freshness field.
    pub fn watermark(&self) -> Option<Timestamp> {
        let t = self.newest_processed.load(Ordering::Relaxed);
        (t != i64::MIN).then_some(Timestamp(t))
    }

    fn mark_publish(&self) {
        let ms = self.start.elapsed().as_millis().min(u64::MAX as u128 - 1) as u64;
        self.last_publish_ms.store(ms, Ordering::Relaxed);
    }
}

/// A cloneable control handle: shutdown plus stats access.
#[derive(Clone)]
pub struct DaemonHandle {
    stats: Arc<DaemonStats>,
    shutdown: Arc<AtomicBool>,
    feed_addr: SocketAddr,
    http_addr: SocketAddr,
}

impl DaemonHandle {
    /// The live counters.
    pub fn stats(&self) -> &DaemonStats {
        &self.stats
    }

    /// The bound feed address.
    pub fn feed_addr(&self) -> SocketAddr {
        self.feed_addr
    }

    /// The bound HTTP address.
    pub fn http_addr(&self) -> SocketAddr {
        self.http_addr
    }

    /// Requests shutdown and wakes both accept loops. `run` returns once
    /// in-flight work drains.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Dummy connections unblock the (blocking) accept calls.
        let _ = TcpStream::connect(self.feed_addr);
        let _ = TcpStream::connect(self.http_addr);
    }
}

/// A bound-but-not-yet-running daemon: listeners are open (ports known),
/// the store holds the initial empty snapshot.
pub struct Daemon {
    cfg: DaemonConfig,
    feed_listener: TcpListener,
    http_listener: TcpListener,
    store: ScheduleStore,
    reader: StoreReader,
    stats: Arc<DaemonStats>,
    shutdown: Arc<AtomicBool>,
}

impl Daemon {
    /// Binds both listeners. Queries are answerable (as empty) from this
    /// moment; identification starts when [`Daemon::run`] is called.
    pub fn bind(cfg: DaemonConfig) -> std::io::Result<Daemon> {
        let feed_listener = TcpListener::bind(&cfg.feed_addr)?;
        let http_listener = TcpListener::bind(&cfg.http_addr)?;
        let (store, reader) = ScheduleStore::new();
        Ok(Daemon {
            cfg,
            feed_listener,
            http_listener,
            store,
            reader,
            stats: DaemonStats::new(),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// A control handle (cloneable, thread-safe).
    pub fn handle(&self) -> DaemonHandle {
        DaemonHandle {
            stats: Arc::clone(&self.stats),
            shutdown: Arc::clone(&self.shutdown),
            feed_addr: self.feed_listener.local_addr().expect("bound listener has an address"),
            http_addr: self.http_listener.local_addr().expect("bound listener has an address"),
        }
    }

    /// A store read handle, e.g. for in-process queries.
    pub fn reader(&self) -> StoreReader {
        self.reader.clone()
    }

    /// Runs the daemon until [`DaemonHandle::shutdown`]: feed ingestion,
    /// identification rounds, snapshot publication and HTTP serving.
    ///
    /// Blocks the calling thread; the identifier borrows `net`, so the
    /// whole pipeline runs under one thread scope.
    pub fn run(self, net: &RoadNetwork) -> std::io::Result<()> {
        let Daemon { cfg, feed_listener, http_listener, store, reader, stats, shutdown } = self;
        let (tx, rx) = std::sync::mpsc::sync_channel::<Vec<TaxiRecord>>(cfg.channel_batches);

        let reg = metrics::global();
        let det = MetricClass::Deterministic;
        let records_ctr =
            reg.counter("taxilightd_records_total", &[], det, "Records decoded off the feed");
        let ident_metrics = IdentMetrics::new(reg);
        // Volatile: how often clients poll is their business, not the
        // feed's — two runs of the same feed can see different counts.
        let requests_ctr = reg.counter(
            "taxilightd_http_requests_total",
            &[],
            MetricClass::Volatile,
            "HTTP requests answered",
        );
        // Build/runtime identity: the value is always 1, the labels
        // carry it. Volatile — the resolved kernel path is a property
        // of the host CPU, not of the feed bytes.
        let build_info = reg.gauge(
            "taxilight_build_info",
            &[
                ("version", env!("CARGO_PKG_VERSION")),
                ("kernel_path", taxilight_signal::kernels::active_path_name()),
            ],
            MetricClass::Volatile,
            "Build and runtime identity (value is always 1)",
        );
        build_info.set(1.0);

        let shared = Arc::new(ConnShared {
            stats: Arc::clone(&stats),
            http: HttpMetrics::new(reg),
            stale_after_s: cfg.stale_after_s,
            flight: cfg.flight.clone(),
        });

        std::thread::scope(|scope| {
            // ── feed thread ────────────────────────────────────────────
            let feed_stats = Arc::clone(&stats);
            let feed_shutdown = Arc::clone(&shutdown);
            let feed_cfg = cfg.clone();
            let feed_records_ctr = records_ctr.clone();
            scope.spawn(move || {
                feed_loop(
                    &feed_listener,
                    tx,
                    &feed_cfg,
                    &feed_stats,
                    &feed_shutdown,
                    &feed_records_ctr,
                );
                // `/healthz` reports the loop's exit as feed death.
                feed_stats.feed_alive.store(false, Ordering::SeqCst);
            });

            // ── identification thread ──────────────────────────────────
            let ident_stats = Arc::clone(&stats);
            let ident_cfg = cfg.clone();
            scope.spawn(move || {
                ident_loop(rx, net, &ident_cfg, &store, &ident_stats, &ident_metrics);
            });

            // ── HTTP accept loop (this thread) ─────────────────────────
            loop {
                let (conn, _) = match http_listener.accept() {
                    Ok(c) => c,
                    Err(_) if shutdown.load(Ordering::SeqCst) => break,
                    Err(_) => continue,
                };
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let conn_reader = reader.clone();
                let conn_shared = Arc::clone(&shared);
                let conn_shutdown = Arc::clone(&shutdown);
                let conn_requests = requests_ctr.clone();
                scope.spawn(move || {
                    let _ = serve_connection(
                        conn,
                        &conn_reader,
                        &conn_shared,
                        &conn_shutdown,
                        &conn_requests,
                    );
                });
            }
        });
        Ok(())
    }
}

/// Shared read-only context for every HTTP connection thread.
struct ConnShared {
    stats: Arc<DaemonStats>,
    http: HttpMetrics,
    stale_after_s: f64,
    flight: Option<Arc<FlightRecorder>>,
}

/// Bounded route-template set the per-route HTTP metrics are keyed by —
/// request paths collapse onto these, so label cardinality cannot grow
/// with traffic.
const ROUTE_TEMPLATES: [&str; 11] = [
    "/healthz",
    "/metrics",
    "/metrics.json",
    "/stats",
    "/changes",
    "/lights",
    "/lights/{id}",
    "/schedule/{light}",
    "/green_wait/{light}",
    "/debug/flight",
    "other",
];

/// Log-spaced latency bounds, 10 µs – 1 s (≈ half-decade steps): store
/// reads answer in microseconds, `/debug/flight` dumps in milliseconds.
const HTTP_LATENCY_BOUNDS: [f64; 11] =
    [1e-5, 3.16e-5, 1e-4, 3.16e-4, 1e-3, 3.16e-3, 1e-2, 3.16e-2, 1e-1, 3.16e-1, 1.0];

/// Per-route HTTP latency histograms plus error counters, pre-registered
/// for every [`ROUTE_TEMPLATES`] entry.
struct HttpMetrics {
    routes: Vec<(&'static str, metrics::Histogram, metrics::Counter)>,
}

impl HttpMetrics {
    fn new(reg: &metrics::Registry) -> HttpMetrics {
        let routes = ROUTE_TEMPLATES
            .iter()
            .map(|&route| {
                (
                    route,
                    reg.histogram(
                        "taxilight_http_request_duration_seconds",
                        &[("route", route)],
                        MetricClass::Volatile,
                        &HTTP_LATENCY_BOUNDS,
                        "HTTP request service time by route template",
                    ),
                    reg.counter(
                        "taxilight_http_errors_total",
                        &[("route", route)],
                        MetricClass::Volatile,
                        "HTTP responses with status >= 400 by route template",
                    ),
                )
            })
            .collect();
        HttpMetrics { routes }
    }

    fn observe(&self, path: &str, status: u16, seconds: f64) {
        let template = route_template(path);
        if let Some((_, hist, errors)) = self.routes.iter().find(|(t, _, _)| *t == template) {
            hist.observe(seconds);
            if status >= 400 {
                errors.inc();
            }
        }
    }
}

/// Collapses a request path onto its [`ROUTE_TEMPLATES`] entry.
fn route_template(path: &str) -> &'static str {
    match path {
        "/healthz" => "/healthz",
        "/metrics" => "/metrics",
        "/metrics.json" => "/metrics.json",
        "/stats" => "/stats",
        "/changes" => "/changes",
        "/lights" => "/lights",
        "/debug/flight" => "/debug/flight",
        p if p.starts_with("/lights/") => "/lights/{id}",
        p if p.starts_with("/schedule/") => "/schedule/{light}",
        p if p.starts_with("/green_wait/") => "/green_wait/{light}",
        _ => "other",
    }
}

/// The identification thread's metric handles.
struct IdentMetrics {
    rounds: metrics::Gauge,
    lag: metrics::Gauge,
    schedule_age: metrics::Gauge,
    publish_latency: metrics::Histogram,
    grades: Vec<(QualityGrade, metrics::Gauge)>,
}

/// Log-spaced publish-latency bounds, 100 µs – 10 s.
const PUBLISH_LATENCY_BOUNDS: [f64; 11] =
    [1e-4, 3.16e-4, 1e-3, 3.16e-3, 1e-2, 3.16e-2, 1e-1, 3.16e-1, 1.0, 3.16, 10.0];

impl IdentMetrics {
    fn new(reg: &metrics::Registry) -> IdentMetrics {
        let det = MetricClass::Deterministic;
        IdentMetrics {
            rounds: reg.gauge("taxilightd_rounds", &[], det, "Re-identification rounds fired"),
            lag: reg.gauge(
                "taxilightd_ingest_lag_s",
                &[],
                MetricClass::Volatile,
                "Feed-clock seconds between newest record received and processed",
            ),
            // Deterministic: pure feed-clock arithmetic, identical on a
            // replay of the same bytes.
            schedule_age: reg.gauge(
                "taxilight_schedule_age_seconds",
                &[],
                det,
                "Feed-clock seconds between the ingest watermark and the published round horizon",
            ),
            publish_latency: reg.histogram(
                "taxilight_publish_latency_seconds",
                &[],
                MetricClass::Volatile,
                &PUBLISH_LATENCY_BOUNDS,
                "Wall seconds from batch receipt to snapshot publication, per publishing batch",
            ),
            grades: [
                QualityGrade::Starved,
                QualityGrade::Sparse,
                QualityGrade::Adequate,
                QualityGrade::Rich,
            ]
            .into_iter()
            .map(|g| {
                (
                    g,
                    reg.gauge(
                        "taxilight_lights_by_grade",
                        &[("grade", g.as_str())],
                        det,
                        "Lights per data-quality grade as of their latest rounds",
                    ),
                )
            })
            .collect(),
        }
    }
}

/// Accepts feed connections sequentially and decodes each through the
/// bounded channel until shutdown.
fn feed_loop(
    listener: &TcpListener,
    tx: SyncSender<Vec<TaxiRecord>>,
    cfg: &DaemonConfig,
    stats: &DaemonStats,
    shutdown: &AtomicBool,
    records_ctr: &metrics::Counter,
) {
    loop {
        let (conn, _) = match listener.accept() {
            Ok(c) => c,
            Err(_) if shutdown.load(Ordering::SeqCst) => return,
            Err(_) => continue,
        };
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        stats.feed_connections.fetch_add(1, Ordering::Relaxed);
        // Short read timeouts let the decode loop notice shutdown even
        // on an idle connection; ShutdownRead turns the final timeout
        // into EOF.
        let _ = conn.set_read_timeout(Some(Duration::from_millis(100)));
        let guarded = ShutdownRead { inner: BufReader::new(conn), shutdown };
        let mut source = FeedSource::new(guarded, cfg.format, cfg.chunk);
        let mut batch = RecordBatch::new();
        loop {
            match source.next_batch(&mut batch) {
                Ok(true) => {
                    stats.bad_lines.fetch_add(batch.bad_lines.len() as u64, Ordering::Relaxed);
                    if batch.records.is_empty() {
                        continue;
                    }
                    if let Some(newest) = batch.records.iter().map(|r| r.time.0).max() {
                        stats.newest_received.fetch_max(newest, Ordering::Relaxed);
                    }
                    let n = batch.records.len() as u64;
                    let records = std::mem::take(&mut batch.records);
                    // Blocking send IS the backpressure: a full channel
                    // stops the socket reads above.
                    if tx.send(records).is_err() {
                        return; // identifier gone — shutting down
                    }
                    stats.records_received.fetch_add(n, Ordering::Relaxed);
                    records_ctr.add(n);
                }
                Ok(false) => break, // feed EOF: await the next connection
                Err(_) => break,    // connection died: same
            }
        }
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Drains record batches into the identifier and publishes a snapshot
/// whenever at least one round fired.
fn ident_loop(
    rx: Receiver<Vec<TaxiRecord>>,
    net: &RoadNetwork,
    cfg: &DaemonConfig,
    store: &ScheduleStore,
    stats: &DaemonStats,
    m: &IdentMetrics,
) {
    let mut engine = RealtimeIdentifier::builder(net)
        .config(cfg.identify.clone())
        .interval_s(cfg.interval_s)
        .reorder_grace_s(cfg.reorder_grace_s)
        .build()
        .expect("daemon config was validated at bind time");
    let mut changes: Vec<(LightId, taxilight_core::monitor::ChangeEvent)> = Vec::new();
    let mut published_rounds = 0u64;
    // Edge detectors for the flight triggers: fire on the transition
    // into the bad state, not on every batch spent inside it.
    let mut lag_spiking = false;
    let mut round_failing = false;
    while let Ok(records) = rx.recv() {
        let received_at = Instant::now();
        engine.extend(records.iter());
        if let Some(newest) = records.iter().map(|r| r.time.0).max() {
            stats.newest_processed.fetch_max(newest, Ordering::Relaxed);
        }
        stats.records_processed.fetch_add(records.len() as u64, Ordering::Relaxed);
        let lag = stats.ingest_lag_s();
        m.lag.set(lag);
        if let Some(flight) = &cfg.flight {
            if lag > cfg.flight_lag_trigger_s {
                if !lag_spiking {
                    lag_spiking = true;
                    flight.trigger("ingest_lag_spike");
                }
            } else {
                lag_spiking = false;
            }
        }
        let report = engine.round_report();
        if report.rounds > published_rounds {
            published_rounds = report.rounds;
            m.rounds.set(report.rounds as f64);
            m.schedule_age.set(report.watermark_lag_s);
            for (counts, (_, gauge)) in engine.health().grade_counts().iter().zip(m.grades.iter()) {
                gauge.set(*counts as f64);
            }
            if let Some(flight) = &cfg.flight {
                if report.lights_attempted > 0 && report.lights_identified == 0 {
                    if !round_failing {
                        round_failing = true;
                        flight.trigger("identification_failure");
                    }
                } else {
                    round_failing = false;
                }
            }
            // Cumulative, (timestamp, light)-sorted change history:
            // each drain is sorted and rounds advance in feed-clock
            // order, so appending preserves the global order; the sort
            // is a cheap invariant guard either way.
            changes.extend(engine.take_changes());
            changes.sort_by_key(|(l, e)| (e.at, l.0));
            store.publish_with_health(engine.view(), changes.clone(), engine.health().snapshot());
            stats.mark_publish();
            m.publish_latency.observe(received_at.elapsed().as_secs_f64());
        }
    }
    // Channel closed (feed loop exited on shutdown): final publish so
    // late queries see everything that was identified.
    changes.extend(engine.take_changes());
    changes.sort_by_key(|(l, e)| (e.at, l.0));
    store.publish_with_health(engine.view(), changes, engine.health().snapshot());
    stats.mark_publish();
}

/// A `Read` adapter that converts read timeouts into retries and
/// shutdown into EOF, so a blocking decode loop stays responsive.
struct ShutdownRead<'a, R: Read> {
    inner: R,
    shutdown: &'a AtomicBool,
}

impl<R: Read> Read for ShutdownRead<'_, R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                return Ok(0); // EOF: downstream flushes and stops
            }
            match self.inner.read(buf) {
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue
                }
                other => return other,
            }
        }
    }
}

/// Serves one HTTP connection until close, error, or shutdown.
fn serve_connection(
    conn: TcpStream,
    store: &StoreReader,
    shared: &ConnShared,
    shutdown: &AtomicBool,
    requests_ctr: &metrics::Counter,
) -> std::io::Result<()> {
    // Idle connections reap themselves (and notice shutdown) within the
    // timeout: a timed-out read between requests is treated as close.
    let _ = conn.set_read_timeout(Some(Duration::from_secs(1)));
    // Small request/response round trips must not sit out Nagle +
    // delayed-ACK (a ~40 ms floor per query otherwise).
    let _ = conn.set_nodelay(true);
    let mut writer = conn.try_clone()?;
    let mut reader = BufReader::new(conn);
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        let outcome = match http::read_request(&mut reader) {
            Ok(o) => o,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Ok(())
            }
            Err(e) => return Err(e),
        };
        let request = match outcome {
            ReadOutcome::Request(r) => r,
            ReadOutcome::Closed => return Ok(()),
            ReadOutcome::Malformed => {
                http::respond(
                    &mut writer,
                    400,
                    "Bad Request",
                    "application/json",
                    "{\"error\":\"malformed request\"}",
                    false,
                )?;
                return Ok(());
            }
        };
        shared.stats.http_requests.fetch_add(1, Ordering::Relaxed);
        requests_ctr.inc();
        let keep = request.keep_alive;
        let served_at = Instant::now();
        let status = route(&request, store, shared, &mut writer)?;
        shared.http.observe(&request.path, status, served_at.elapsed().as_secs_f64());
        if !keep {
            return Ok(());
        }
    }
}

/// [`http::respond`], returning the status so the caller can feed the
/// per-route metrics.
fn send(
    w: &mut impl Write,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<u16> {
    http::respond(w, status, reason, content_type, body, keep_alive)?;
    Ok(status)
}

/// `Some(x)` as a JSON number, `None` as `null`.
fn opt_f64(v: Option<f64>) -> String {
    v.map(fmt_f64).unwrap_or_else(|| "null".into())
}

/// `Some(t)` as a quoted timestamp, `None` as `null`.
fn opt_time(t: Option<Timestamp>) -> String {
    t.map(|t| format!("\"{}\"", t.format())).unwrap_or_else(|| "null".into())
}

/// Dispatches one request and returns the response status. Every body
/// is JSON except `/metrics` (Prometheus text).
fn route(
    req: &Request,
    store: &StoreReader,
    shared: &ConnShared,
    w: &mut impl Write,
) -> std::io::Result<u16> {
    let stats = &*shared.stats;
    let keep = req.keep_alive;
    if req.method != "GET" && req.method != "HEAD" {
        return send(
            w,
            405,
            "Method Not Allowed",
            "application/json",
            "{\"error\":\"GET only\"}",
            keep,
        );
    }
    match req.path.as_str() {
        "/healthz" => {
            let snap = store.current();
            let rounds = snap.view.version();
            let feed_alive = stats.feed_alive();
            let publish_age = stats.last_publish_age_s();
            // Before the first publish the daemon has been "stale since
            // start": warming is only healthy inside the threshold.
            let effective_age = publish_age.unwrap_or_else(|| stats.uptime_s());
            let stale = !feed_alive || effective_age > shared.stale_after_s;
            let status = if stale {
                "stale"
            } else if rounds == 0 {
                "warming"
            } else {
                "ok"
            };
            let body = format!(
                "{{\"status\":\"{}\",\"feed_alive\":{},\"rounds\":{},\"seq\":{},\"last_publish_age_s\":{},\"stale_after_s\":{},\"ingest_lag_s\":{},\"uptime_s\":{}}}",
                status,
                feed_alive,
                rounds,
                snap.seq,
                opt_f64(publish_age),
                fmt_f64(shared.stale_after_s),
                fmt_f64(stats.ingest_lag_s()),
                fmt_f64(stats.uptime_s()),
            );
            if stale {
                send(w, 503, "Service Unavailable", "application/json", &body, keep)
            } else {
                send(w, 200, "OK", "application/json", &body, keep)
            }
        }
        "/metrics" => {
            let body = metrics::global().prometheus_text();
            send(w, 200, "OK", "text/plain; version=0.0.4", &body, keep)
        }
        "/metrics.json" => {
            let body = metrics::global().snapshot_json();
            send(w, 200, "OK", "application/json", &body, keep)
        }
        "/stats" => {
            let snap = store.current();
            let body = format!(
                "{{\"seq\":{},\"version\":{},\"lights\":{},\"digest\":\"{:#018x}\",\"changes\":{},\"records_received\":{},\"records_processed\":{},\"bad_lines\":{},\"ingest_lag_s\":{},\"http_requests\":{},\"uptime_s\":{},\"feed_alive\":{}}}",
                snap.seq,
                snap.view.version(),
                snap.view.len(),
                snap.view.digest(),
                snap.changes.len(),
                stats.records_received.load(Ordering::Relaxed),
                stats.records_processed.load(Ordering::Relaxed),
                stats.bad_lines.load(Ordering::Relaxed),
                fmt_f64(stats.ingest_lag_s()),
                stats.http_requests.load(Ordering::Relaxed),
                fmt_f64(stats.uptime_s()),
                stats.feed_alive(),
            );
            send(w, 200, "OK", "application/json", &body, keep)
        }
        "/lights" => {
            let snap = store.current();
            let body = lights_body(snap.seq, snap.view.version(), &snap.health, stats.watermark());
            send(w, 200, "OK", "application/json", &body, keep)
        }
        "/debug/flight" => match &shared.flight {
            Some(flight) => {
                let body = flight.to_chrome_json();
                send(w, 200, "OK", "application/json", &body, keep)
            }
            None => send(
                w,
                404,
                "Not Found",
                "application/json",
                "{\"error\":\"flight recorder not configured\"}",
                keep,
            ),
        },
        "/changes" => {
            let snap = store.current();
            let mut body = String::with_capacity(64 + snap.changes.len() * 96);
            body.push_str("{\"seq\":");
            body.push_str(&snap.seq.to_string());
            body.push_str(",\"changes\":[");
            for (k, (light, e)) in snap.changes.iter().enumerate() {
                if k > 0 {
                    body.push(',');
                }
                body.push_str(&format!(
                    "{{\"light\":{},\"at\":\"{}\",\"from_cycle_s\":{},\"to_cycle_s\":{}}}",
                    light.0,
                    e.at.format(),
                    fmt_f64(e.from_cycle_s),
                    fmt_f64(e.to_cycle_s)
                ));
            }
            body.push_str("]}");
            send(w, 200, "OK", "application/json", &body, keep)
        }
        path if path.starts_with("/lights/") => match parse_light(&path["/lights/".len()..]) {
            Some(light) => {
                let snap = store.current();
                match snap.health.iter().find(|h| h.light == light) {
                    Some(h) => {
                        let body =
                            light_detail_body(h, stats.watermark(), snap.view.version(), snap.seq);
                        send(w, 200, "OK", "application/json", &body, keep)
                    }
                    None => send(
                        w,
                        404,
                        "Not Found",
                        "application/json",
                        "{\"error\":\"light never attempted\"}",
                        keep,
                    ),
                }
            }
            None => send(
                w,
                400,
                "Bad Request",
                "application/json",
                "{\"error\":\"bad light id\"}",
                keep,
            ),
        },
        path if path.starts_with("/schedule/") => match parse_light(&path["/schedule/".len()..]) {
            Some(light) => {
                let snap = store.current();
                match snap.view.schedule(light) {
                    Some(s) => {
                        let body = format!(
                            "{{\"light\":{},\"cycle_s\":{},\"red_s\":{},\"green_s\":{},\"red_start_s\":{},\"snr\":{},\"samples\":{},\"version\":{},\"seq\":{}}}",
                            light.0,
                            fmt_f64(s.cycle_s),
                            fmt_f64(s.red_s),
                            fmt_f64(s.green_s),
                            fmt_f64(s.red_start_s),
                            fmt_f64(s.snr),
                            s.samples,
                            snap.view.version(),
                            snap.seq,
                        );
                        send(w, 200, "OK", "application/json", &body, keep)
                    }
                    None => send(
                        w,
                        404,
                        "Not Found",
                        "application/json",
                        "{\"error\":\"light not identified\"}",
                        keep,
                    ),
                }
            }
            None => send(
                w,
                400,
                "Bad Request",
                "application/json",
                "{\"error\":\"bad light id\"}",
                keep,
            ),
        },
        path if path.starts_with("/green_wait/") => {
            let light = parse_light(&path["/green_wait/".len()..]);
            let t = http::query_param(&req.query, "t").and_then(|v| parse_time(&v));
            match (light, t) {
                (Some(light), Some(t)) => {
                    let snap = store.current();
                    match (snap.view.wait_for_green(light, t), snap.view.is_red_at(light, t)) {
                        (Some(wait), Some(red)) => {
                            let body = format!(
                                "{{\"light\":{},\"t\":\"{}\",\"wait_s\":{},\"state\":\"{}\",\"version\":{}}}",
                                light.0,
                                t.format(),
                                fmt_f64(wait),
                                if red { "red" } else { "green" },
                                snap.view.version(),
                            );
                            send(w, 200, "OK", "application/json", &body, keep)
                        }
                        _ => send(
                            w,
                            404,
                            "Not Found",
                            "application/json",
                            "{\"error\":\"light not identified\"}",
                            keep,
                        ),
                    }
                }
                _ => send(
                    w,
                    400,
                    "Bad Request",
                    "application/json",
                    "{\"error\":\"need /green_wait/{light}?t={epoch seconds or YYYY-MM-DD HH:MM:SS}\"}",
                    keep,
                ),
            }
        }
        _ => send(w, 404, "Not Found", "application/json", "{\"error\":\"unknown path\"}", keep),
    }
}

/// `[starved, sparse, adequate, rich]` bucket index for a grade.
fn grade_index(grade: QualityGrade) -> usize {
    match grade {
        QualityGrade::Starved => 0,
        QualityGrade::Sparse => 1,
        QualityGrade::Adequate => 2,
        QualityGrade::Rich => 3,
    }
}

/// The `/lights` body: per-light summaries plus grade counts. Every
/// field except `age_s` derives from the published snapshot; ages are
/// measured against the feed-clock `watermark`.
fn lights_body(
    seq: u64,
    version: u64,
    health: &[LightHealth],
    watermark: Option<Timestamp>,
) -> String {
    let mut grades = [0usize; 4];
    let mut identified = 0usize;
    let mut items = String::with_capacity(64 + health.len() * 160);
    for (k, h) in health.iter().enumerate() {
        grades[grade_index(h.grade)] += 1;
        if h.identified() {
            identified += 1;
        }
        if k > 0 {
            items.push(',');
        }
        items.push_str(&format!(
            "{{\"light\":{},\"grade\":\"{}\",\"identified\":{},\"snr\":{},\"cycle_s\":{},\"last_version\":{},\"age_s\":{},\"attempts\":{},\"successes\":{},\"changes\":{}}}",
            h.light.0,
            h.grade.as_str(),
            h.identified(),
            fmt_f64(h.snr),
            fmt_f64(h.cycle_s),
            h.last_version,
            opt_f64(watermark.and_then(|wm| h.age_s(wm))),
            h.attempts,
            h.successes,
            h.changes,
        ));
    }
    format!(
        "{{\"seq\":{},\"version\":{},\"watermark\":{},\"lights_tracked\":{},\"identified\":{},\"grades\":{{\"starved\":{},\"sparse\":{},\"adequate\":{},\"rich\":{}}},\"lights\":[{}]}}",
        seq,
        version,
        opt_time(watermark),
        health.len(),
        identified,
        grades[0],
        grades[1],
        grades[2],
        grades[3],
        items,
    )
}

/// The `/lights/{id}` body: one light's full health record, including
/// the failure-reason breakdown and feed-clock freshness.
fn light_detail_body(
    h: &LightHealth,
    watermark: Option<Timestamp>,
    version: u64,
    seq: u64,
) -> String {
    format!(
        "{{\"light\":{},\"grade\":\"{}\",\"identified\":{},\"observations\":{},\"records_per_hour\":{},\"attempts\":{},\"successes\":{},\"consecutive_failures\":{},\"failures\":{{\"no_data\":{},\"config\":{},\"cycle\":{},\"red\":{},\"change_point\":{},\"total\":{}}},\"changes\":{},\"snr\":{},\"cycle_s\":{},\"last_version\":{},\"last_at\":{},\"age_s\":{},\"version\":{},\"seq\":{}}}",
        h.light.0,
        h.grade.as_str(),
        h.identified(),
        h.observations,
        fmt_f64(h.records_per_hour),
        h.attempts,
        h.successes,
        h.consecutive_failures,
        h.failures.no_data,
        h.failures.config,
        h.failures.cycle,
        h.failures.red,
        h.failures.change_point,
        h.failures.total(),
        h.changes,
        fmt_f64(h.snr),
        fmt_f64(h.cycle_s),
        h.last_version,
        opt_time(h.last_at),
        opt_f64(watermark.and_then(|wm| h.age_s(wm))),
        version,
        seq,
    )
}

fn parse_light(s: &str) -> Option<LightId> {
    s.parse::<u32>().ok().map(LightId)
}

/// `t=` accepts epoch seconds or the Table-I `YYYY-MM-DD HH:MM:SS`.
fn parse_time(s: &str) -> Option<Timestamp> {
    if let Ok(epoch) = s.parse::<i64>() {
        return Some(Timestamp(epoch));
    }
    Timestamp::parse(s).ok()
}
