//! `taxilightd` — the always-on serving loop.
//!
//! Three cooperating thread roles, connected by a *bounded* channel so
//! memory stays O(chunk) end to end and overload propagates backwards
//! (backpressure) instead of growing queues:
//!
//! ```text
//! feed socket ──decode──▶ sync_channel(N) ──▶ RealtimeIdentifier ──publish──▶ store
//!      ▲                        ▲                    (rounds)                  │
//!      └── TCP flow control ────┘                                   Acquire load (wait-free)
//!                                                                              ▼
//!                                                             HTTP/1.1 query connections
//! ```
//!
//! * The **feed thread** accepts one TCP feed connection at a time and
//!   decodes it through the [`RecordSource`] contract ([`FeedSource`]).
//!   When the identifier falls behind, `sync_channel` blocks the decode
//!   loop, the socket stops being read, and TCP flow control pushes back
//!   on the sender — the documented backpressure model.
//! * The **identification thread** drains batches into a
//!   [`RealtimeIdentifier`]; whenever a re-identification round fires
//!   (feed clock, the paper's 5-minute cadence) it publishes an
//!   immutable snapshot into the [`ScheduleStore`].
//! * **HTTP threads** (one per connection) answer queries from the
//!   current snapshot — one atomic load per query, zero locks, zero
//!   allocations on the store read.
//!
//! All scheduling derives from *record* timestamps, never the wall
//! clock, so a replayed feed produces bit-identical answers — the
//! property the serving bench gates.

use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::Arc;
use std::time::Duration;

use taxilight_core::realtime::RealtimeIdentifier;
use taxilight_core::IdentifyConfig;
use taxilight_obs::json::fmt_f64;
use taxilight_obs::metrics::{self, MetricClass};
use taxilight_roadnet::graph::{LightId, RoadNetwork};
use taxilight_trace::record::TaxiRecord;
use taxilight_trace::source::{RecordBatch, RecordSource};
use taxilight_trace::time::Timestamp;

use crate::http::{self, ReadOutcome, Request};
use crate::ingest::{FeedFormat, FeedSource};
use crate::store::{ScheduleStore, StoreReader};

/// Daemon configuration. Defaults mirror the paper's real-time loop
/// (5-minute rounds) with a 60 s reorder grace.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Feed listener address, e.g. `127.0.0.1:0` for an ephemeral port.
    pub feed_addr: String,
    /// HTTP listener address.
    pub http_addr: String,
    /// Feed wire format.
    pub format: FeedFormat,
    /// Re-identification round interval, seconds (feed clock).
    pub interval_s: u32,
    /// Out-of-order arrival grace, seconds.
    pub reorder_grace_s: u32,
    /// Identification configuration.
    pub identify: IdentifyConfig,
    /// Bounded depth of the decode → identify channel, in batches. The
    /// knob that trades burst absorption against backpressure latency.
    pub channel_batches: usize,
    /// Decode chunk size (bytes for CSV, ~records/64 for ND-JSON).
    pub chunk: usize,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            feed_addr: "127.0.0.1:0".into(),
            http_addr: "127.0.0.1:0".into(),
            format: FeedFormat::Csv,
            interval_s: 300,
            reorder_grace_s: 60,
            identify: IdentifyConfig::default(),
            channel_batches: 8,
            chunk: 64 * 1024,
        }
    }
}

/// Live counters shared between the pipeline threads and `/stats`.
#[derive(Debug, Default)]
pub struct DaemonStats {
    /// Records decoded off the feed socket.
    pub records_received: AtomicU64,
    /// Records the identifier has consumed.
    pub records_processed: AtomicU64,
    /// Undecodable feed lines (counted, skipped).
    pub bad_lines: AtomicU64,
    /// Feed connections accepted so far.
    pub feed_connections: AtomicU64,
    /// HTTP requests answered.
    pub http_requests: AtomicU64,
    /// Newest record timestamp decoded off the socket (epoch s; i64::MIN
    /// before the first record).
    newest_received: AtomicI64,
    /// Newest record timestamp the identifier has consumed.
    newest_processed: AtomicI64,
}

impl DaemonStats {
    fn new() -> Arc<Self> {
        let s = DaemonStats::default();
        s.newest_received.store(i64::MIN, Ordering::Relaxed);
        s.newest_processed.store(i64::MIN, Ordering::Relaxed);
        Arc::new(s)
    }

    /// Ingest lag in *feed-clock* seconds: newest record received minus
    /// newest record identified-through. 0 when fully drained (or before
    /// any record).
    pub fn ingest_lag_s(&self) -> f64 {
        let newest = self.newest_received.load(Ordering::Relaxed);
        let processed = self.newest_processed.load(Ordering::Relaxed);
        if newest == i64::MIN || processed == i64::MIN {
            return 0.0;
        }
        (newest - processed).max(0) as f64
    }
}

/// A cloneable control handle: shutdown plus stats access.
#[derive(Clone)]
pub struct DaemonHandle {
    stats: Arc<DaemonStats>,
    shutdown: Arc<AtomicBool>,
    feed_addr: SocketAddr,
    http_addr: SocketAddr,
}

impl DaemonHandle {
    /// The live counters.
    pub fn stats(&self) -> &DaemonStats {
        &self.stats
    }

    /// The bound feed address.
    pub fn feed_addr(&self) -> SocketAddr {
        self.feed_addr
    }

    /// The bound HTTP address.
    pub fn http_addr(&self) -> SocketAddr {
        self.http_addr
    }

    /// Requests shutdown and wakes both accept loops. `run` returns once
    /// in-flight work drains.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Dummy connections unblock the (blocking) accept calls.
        let _ = TcpStream::connect(self.feed_addr);
        let _ = TcpStream::connect(self.http_addr);
    }
}

/// A bound-but-not-yet-running daemon: listeners are open (ports known),
/// the store holds the initial empty snapshot.
pub struct Daemon {
    cfg: DaemonConfig,
    feed_listener: TcpListener,
    http_listener: TcpListener,
    store: ScheduleStore,
    reader: StoreReader,
    stats: Arc<DaemonStats>,
    shutdown: Arc<AtomicBool>,
}

impl Daemon {
    /// Binds both listeners. Queries are answerable (as empty) from this
    /// moment; identification starts when [`Daemon::run`] is called.
    pub fn bind(cfg: DaemonConfig) -> std::io::Result<Daemon> {
        let feed_listener = TcpListener::bind(&cfg.feed_addr)?;
        let http_listener = TcpListener::bind(&cfg.http_addr)?;
        let (store, reader) = ScheduleStore::new();
        Ok(Daemon {
            cfg,
            feed_listener,
            http_listener,
            store,
            reader,
            stats: DaemonStats::new(),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// A control handle (cloneable, thread-safe).
    pub fn handle(&self) -> DaemonHandle {
        DaemonHandle {
            stats: Arc::clone(&self.stats),
            shutdown: Arc::clone(&self.shutdown),
            feed_addr: self.feed_listener.local_addr().expect("bound listener has an address"),
            http_addr: self.http_listener.local_addr().expect("bound listener has an address"),
        }
    }

    /// A store read handle, e.g. for in-process queries.
    pub fn reader(&self) -> StoreReader {
        self.reader.clone()
    }

    /// Runs the daemon until [`DaemonHandle::shutdown`]: feed ingestion,
    /// identification rounds, snapshot publication and HTTP serving.
    ///
    /// Blocks the calling thread; the identifier borrows `net`, so the
    /// whole pipeline runs under one thread scope.
    pub fn run(self, net: &RoadNetwork) -> std::io::Result<()> {
        let Daemon { cfg, feed_listener, http_listener, store, reader, stats, shutdown } = self;
        let (tx, rx) = std::sync::mpsc::sync_channel::<Vec<TaxiRecord>>(cfg.channel_batches);

        let reg = metrics::global();
        let det = MetricClass::Deterministic;
        let records_ctr =
            reg.counter("taxilightd_records_total", &[], det, "Records decoded off the feed");
        let rounds_gauge =
            reg.gauge("taxilightd_rounds", &[], det, "Re-identification rounds fired");
        // Volatile: how often clients poll is their business, not the
        // feed's — two runs of the same feed can see different counts.
        let requests_ctr = reg.counter(
            "taxilightd_http_requests_total",
            &[],
            MetricClass::Volatile,
            "HTTP requests answered",
        );
        let lag_gauge = reg.gauge(
            "taxilightd_ingest_lag_s",
            &[],
            MetricClass::Volatile,
            "Feed-clock seconds between newest record received and processed",
        );

        std::thread::scope(|scope| {
            // ── feed thread ────────────────────────────────────────────
            let feed_stats = Arc::clone(&stats);
            let feed_shutdown = Arc::clone(&shutdown);
            let feed_cfg = cfg.clone();
            let feed_records_ctr = records_ctr.clone();
            scope.spawn(move || {
                feed_loop(
                    &feed_listener,
                    tx,
                    &feed_cfg,
                    &feed_stats,
                    &feed_shutdown,
                    &feed_records_ctr,
                );
            });

            // ── identification thread ──────────────────────────────────
            let ident_stats = Arc::clone(&stats);
            let ident_cfg = cfg.clone();
            scope.spawn(move || {
                ident_loop(rx, net, &ident_cfg, &store, &ident_stats, &rounds_gauge, &lag_gauge);
            });

            // ── HTTP accept loop (this thread) ─────────────────────────
            loop {
                let (conn, _) = match http_listener.accept() {
                    Ok(c) => c,
                    Err(_) if shutdown.load(Ordering::SeqCst) => break,
                    Err(_) => continue,
                };
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let conn_reader = reader.clone();
                let conn_stats = Arc::clone(&stats);
                let conn_shutdown = Arc::clone(&shutdown);
                let conn_requests = requests_ctr.clone();
                scope.spawn(move || {
                    let _ = serve_connection(
                        conn,
                        &conn_reader,
                        &conn_stats,
                        &conn_shutdown,
                        &conn_requests,
                    );
                });
            }
        });
        Ok(())
    }
}

/// Accepts feed connections sequentially and decodes each through the
/// bounded channel until shutdown.
fn feed_loop(
    listener: &TcpListener,
    tx: SyncSender<Vec<TaxiRecord>>,
    cfg: &DaemonConfig,
    stats: &DaemonStats,
    shutdown: &AtomicBool,
    records_ctr: &metrics::Counter,
) {
    loop {
        let (conn, _) = match listener.accept() {
            Ok(c) => c,
            Err(_) if shutdown.load(Ordering::SeqCst) => return,
            Err(_) => continue,
        };
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        stats.feed_connections.fetch_add(1, Ordering::Relaxed);
        // Short read timeouts let the decode loop notice shutdown even
        // on an idle connection; ShutdownRead turns the final timeout
        // into EOF.
        let _ = conn.set_read_timeout(Some(Duration::from_millis(100)));
        let guarded = ShutdownRead { inner: BufReader::new(conn), shutdown };
        let mut source = FeedSource::new(guarded, cfg.format, cfg.chunk);
        let mut batch = RecordBatch::new();
        loop {
            match source.next_batch(&mut batch) {
                Ok(true) => {
                    stats.bad_lines.fetch_add(batch.bad_lines.len() as u64, Ordering::Relaxed);
                    if batch.records.is_empty() {
                        continue;
                    }
                    if let Some(newest) = batch.records.iter().map(|r| r.time.0).max() {
                        stats.newest_received.fetch_max(newest, Ordering::Relaxed);
                    }
                    let n = batch.records.len() as u64;
                    let records = std::mem::take(&mut batch.records);
                    // Blocking send IS the backpressure: a full channel
                    // stops the socket reads above.
                    if tx.send(records).is_err() {
                        return; // identifier gone — shutting down
                    }
                    stats.records_received.fetch_add(n, Ordering::Relaxed);
                    records_ctr.add(n);
                }
                Ok(false) => break, // feed EOF: await the next connection
                Err(_) => break,    // connection died: same
            }
        }
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Drains record batches into the identifier and publishes a snapshot
/// whenever at least one round fired.
fn ident_loop(
    rx: Receiver<Vec<TaxiRecord>>,
    net: &RoadNetwork,
    cfg: &DaemonConfig,
    store: &ScheduleStore,
    stats: &DaemonStats,
    rounds_gauge: &metrics::Gauge,
    lag_gauge: &metrics::Gauge,
) {
    let mut engine = RealtimeIdentifier::builder(net)
        .config(cfg.identify.clone())
        .interval_s(cfg.interval_s)
        .reorder_grace_s(cfg.reorder_grace_s)
        .build()
        .expect("daemon config was validated at bind time");
    let mut changes: Vec<(LightId, taxilight_core::monitor::ChangeEvent)> = Vec::new();
    let mut published_rounds = 0u64;
    while let Ok(records) = rx.recv() {
        engine.extend(records.iter());
        if let Some(newest) = records.iter().map(|r| r.time.0).max() {
            stats.newest_processed.fetch_max(newest, Ordering::Relaxed);
        }
        stats.records_processed.fetch_add(records.len() as u64, Ordering::Relaxed);
        lag_gauge.set(stats.ingest_lag_s());
        let report = engine.round_report();
        if report.rounds > published_rounds {
            published_rounds = report.rounds;
            rounds_gauge.set(report.rounds as f64);
            // Cumulative, (timestamp, light)-sorted change history:
            // each drain is sorted and rounds advance in feed-clock
            // order, so appending preserves the global order; the sort
            // is a cheap invariant guard either way.
            changes.extend(engine.take_changes());
            changes.sort_by_key(|(l, e)| (e.at, l.0));
            store.publish(engine.view(), changes.clone());
        }
    }
    // Channel closed (feed loop exited on shutdown): final publish so
    // late queries see everything that was identified.
    changes.extend(engine.take_changes());
    changes.sort_by_key(|(l, e)| (e.at, l.0));
    store.publish(engine.view(), changes);
}

/// A `Read` adapter that converts read timeouts into retries and
/// shutdown into EOF, so a blocking decode loop stays responsive.
struct ShutdownRead<'a, R: Read> {
    inner: R,
    shutdown: &'a AtomicBool,
}

impl<R: Read> Read for ShutdownRead<'_, R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                return Ok(0); // EOF: downstream flushes and stops
            }
            match self.inner.read(buf) {
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue
                }
                other => return other,
            }
        }
    }
}

/// Serves one HTTP connection until close, error, or shutdown.
fn serve_connection(
    conn: TcpStream,
    store: &StoreReader,
    stats: &DaemonStats,
    shutdown: &AtomicBool,
    requests_ctr: &metrics::Counter,
) -> std::io::Result<()> {
    // Idle connections reap themselves (and notice shutdown) within the
    // timeout: a timed-out read between requests is treated as close.
    let _ = conn.set_read_timeout(Some(Duration::from_secs(1)));
    // Small request/response round trips must not sit out Nagle +
    // delayed-ACK (a ~40 ms floor per query otherwise).
    let _ = conn.set_nodelay(true);
    let mut writer = conn.try_clone()?;
    let mut reader = BufReader::new(conn);
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        let outcome = match http::read_request(&mut reader) {
            Ok(o) => o,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Ok(())
            }
            Err(e) => return Err(e),
        };
        let request = match outcome {
            ReadOutcome::Request(r) => r,
            ReadOutcome::Closed => return Ok(()),
            ReadOutcome::Malformed => {
                http::respond(
                    &mut writer,
                    400,
                    "Bad Request",
                    "application/json",
                    "{\"error\":\"malformed request\"}",
                    false,
                )?;
                return Ok(());
            }
        };
        stats.http_requests.fetch_add(1, Ordering::Relaxed);
        requests_ctr.inc();
        let keep = request.keep_alive;
        route(&request, store, stats, &mut writer)?;
        if !keep {
            return Ok(());
        }
    }
}

/// Dispatches one request. Every body is JSON except `/metrics`
/// (Prometheus text).
fn route(
    req: &Request,
    store: &StoreReader,
    stats: &DaemonStats,
    w: &mut impl Write,
) -> std::io::Result<()> {
    let keep = req.keep_alive;
    if req.method != "GET" && req.method != "HEAD" {
        return http::respond(
            w,
            405,
            "Method Not Allowed",
            "application/json",
            "{\"error\":\"GET only\"}",
            keep,
        );
    }
    match req.path.as_str() {
        "/healthz" => http::respond(w, 200, "OK", "text/plain", "ok\n", keep),
        "/metrics" => {
            let body = metrics::global().prometheus_text();
            http::respond(w, 200, "OK", "text/plain; version=0.0.4", &body, keep)
        }
        "/metrics.json" => {
            let body = metrics::global().snapshot_json();
            http::respond(w, 200, "OK", "application/json", &body, keep)
        }
        "/stats" => {
            let snap = store.current();
            let body = format!(
                "{{\"seq\":{},\"version\":{},\"lights\":{},\"digest\":\"{:#018x}\",\"changes\":{},\"records_received\":{},\"records_processed\":{},\"bad_lines\":{},\"ingest_lag_s\":{},\"http_requests\":{}}}",
                snap.seq,
                snap.view.version(),
                snap.view.len(),
                snap.view.digest(),
                snap.changes.len(),
                stats.records_received.load(Ordering::Relaxed),
                stats.records_processed.load(Ordering::Relaxed),
                stats.bad_lines.load(Ordering::Relaxed),
                fmt_f64(stats.ingest_lag_s()),
                stats.http_requests.load(Ordering::Relaxed),
            );
            http::respond(w, 200, "OK", "application/json", &body, keep)
        }
        "/changes" => {
            let snap = store.current();
            let mut body = String::with_capacity(64 + snap.changes.len() * 96);
            body.push_str("{\"seq\":");
            body.push_str(&snap.seq.to_string());
            body.push_str(",\"changes\":[");
            for (k, (light, e)) in snap.changes.iter().enumerate() {
                if k > 0 {
                    body.push(',');
                }
                body.push_str(&format!(
                    "{{\"light\":{},\"at\":\"{}\",\"from_cycle_s\":{},\"to_cycle_s\":{}}}",
                    light.0,
                    e.at.format(),
                    fmt_f64(e.from_cycle_s),
                    fmt_f64(e.to_cycle_s)
                ));
            }
            body.push_str("]}");
            http::respond(w, 200, "OK", "application/json", &body, keep)
        }
        path if path.starts_with("/schedule/") => match parse_light(&path["/schedule/".len()..]) {
            Some(light) => {
                let snap = store.current();
                match snap.view.schedule(light) {
                    Some(s) => {
                        let body = format!(
                            "{{\"light\":{},\"cycle_s\":{},\"red_s\":{},\"green_s\":{},\"red_start_s\":{},\"snr\":{},\"samples\":{},\"version\":{},\"seq\":{}}}",
                            light.0,
                            fmt_f64(s.cycle_s),
                            fmt_f64(s.red_s),
                            fmt_f64(s.green_s),
                            fmt_f64(s.red_start_s),
                            fmt_f64(s.snr),
                            s.samples,
                            snap.view.version(),
                            snap.seq,
                        );
                        http::respond(w, 200, "OK", "application/json", &body, keep)
                    }
                    None => http::respond(
                        w,
                        404,
                        "Not Found",
                        "application/json",
                        "{\"error\":\"light not identified\"}",
                        keep,
                    ),
                }
            }
            None => http::respond(
                w,
                400,
                "Bad Request",
                "application/json",
                "{\"error\":\"bad light id\"}",
                keep,
            ),
        },
        path if path.starts_with("/green_wait/") => {
            let light = parse_light(&path["/green_wait/".len()..]);
            let t = http::query_param(&req.query, "t").and_then(|v| parse_time(&v));
            match (light, t) {
                (Some(light), Some(t)) => {
                    let snap = store.current();
                    match (snap.view.wait_for_green(light, t), snap.view.is_red_at(light, t)) {
                        (Some(wait), Some(red)) => {
                            let body = format!(
                                "{{\"light\":{},\"t\":\"{}\",\"wait_s\":{},\"state\":\"{}\",\"version\":{}}}",
                                light.0,
                                t.format(),
                                fmt_f64(wait),
                                if red { "red" } else { "green" },
                                snap.view.version(),
                            );
                            http::respond(w, 200, "OK", "application/json", &body, keep)
                        }
                        _ => http::respond(
                            w,
                            404,
                            "Not Found",
                            "application/json",
                            "{\"error\":\"light not identified\"}",
                            keep,
                        ),
                    }
                }
                _ => http::respond(
                    w,
                    400,
                    "Bad Request",
                    "application/json",
                    "{\"error\":\"need /green_wait/{light}?t={epoch seconds or YYYY-MM-DD HH:MM:SS}\"}",
                    keep,
                ),
            }
        }
        _ => http::respond(
            w,
            404,
            "Not Found",
            "application/json",
            "{\"error\":\"unknown path\"}",
            keep,
        ),
    }
}

fn parse_light(s: &str) -> Option<LightId> {
    s.parse::<u32>().ok().map(LightId)
}

/// `t=` accepts epoch seconds or the Table-I `YYYY-MM-DD HH:MM:SS`.
fn parse_time(s: &str) -> Option<Timestamp> {
    if let Ok(epoch) = s.parse::<i64>() {
        return Some(Timestamp(epoch));
    }
    Timestamp::parse(s).ok()
}
