//! Live-feed ingestion: the wire formats a `taxilightd` feed socket
//! accepts, both delivered through the bounded-memory [`RecordSource`]
//! contract so the daemon inherits PR 6's O(chunk) resident set.
//!
//! * **CSV** — the Table-I format, streamed through the existing
//!   [`CsvChunkReader`] (it reads from any `Read`, a `TcpStream`
//!   included).
//! * **ND-JSON** — one JSON object per line carrying the same twelve
//!   Table-I fields, decoded with the repo's own parser
//!   ([`taxilight_obs::json`]); no external dependency.
//!
//! Decode errors are per-line, never fatal — a live feed contains
//! garbage, and the daemon's job is to keep serving. ND-JSON errors are
//! reported through the same [`CsvError`] vocabulary as CSV (structural
//! failures as [`CsvError::FieldCount`], per-field failures as
//! [`CsvError::Field`] with Table-I numbering) so consumers see one
//! error surface regardless of the wire format.

use std::io::{BufRead, BufReader, Read};

use taxilight_obs::json::{self, Json};
use taxilight_trace::csv::CsvError;
use taxilight_trace::io::TraceFileError;
use taxilight_trace::record::{BodyColor, Fleet, GpsCondition, PassengerState, TaxiRecord};
use taxilight_trace::source::{CsvChunkReader, RecordBatch, RecordSource};
use taxilight_trace::time::Timestamp;
use taxilight_trace::GeoPoint;

/// Wire format of a feed connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FeedFormat {
    /// Table-I CSV lines (the existing file format, over a socket).
    #[default]
    Csv,
    /// One JSON object per line, same fields.
    NdJson,
}

impl FeedFormat {
    /// Parses a CLI/config spelling.
    pub fn parse(s: &str) -> Option<FeedFormat> {
        match s.to_ascii_lowercase().as_str() {
            "csv" => Some(FeedFormat::Csv),
            "ndjson" | "nd-json" | "jsonl" => Some(FeedFormat::NdJson),
            _ => None,
        }
    }
}

/// Streams ND-JSON records from any [`Read`], at most `chunk_records`
/// per batch. Unknown plates are learned into the internal [`Fleet`] in
/// feed order — the same rule as CSV decoding, so the record sequence is
/// independent of batching.
pub struct NdJsonReader<R: Read> {
    reader: BufReader<R>,
    fleet: Fleet,
    chunk_records: usize,
    line: String,
    line_no: usize,
    record_total: u64,
    bad_line_total: u64,
    done: bool,
}

impl<R: Read> NdJsonReader<R> {
    /// Wraps a reader; each batch decodes up to `chunk_records` lines
    /// (`0` is treated as 1).
    pub fn new(reader: R, chunk_records: usize) -> Self {
        NdJsonReader {
            reader: BufReader::new(reader),
            fleet: Fleet::new(),
            chunk_records: chunk_records.max(1),
            line: String::new(),
            line_no: 0,
            record_total: 0,
            bad_line_total: 0,
            done: false,
        }
    }

    /// The fleet learned from the feed so far.
    pub fn fleet(&self) -> &Fleet {
        &self.fleet
    }

    /// Records decoded so far across the whole feed.
    pub fn record_total(&self) -> u64 {
        self.record_total
    }

    /// Rejected lines seen so far across the whole feed.
    pub fn bad_line_total(&self) -> u64 {
        self.bad_line_total
    }
}

impl<R: Read> RecordSource for NdJsonReader<R> {
    fn next_batch(&mut self, batch: &mut RecordBatch) -> Result<bool, TraceFileError> {
        batch.clear();
        if self.done {
            return Ok(false);
        }
        for _ in 0..self.chunk_records {
            self.line.clear();
            if self.reader.read_line(&mut self.line).map_err(TraceFileError::Io)? == 0 {
                self.done = true;
                break;
            }
            let n = self.line_no;
            self.line_no += 1;
            if self.line.trim().is_empty() {
                continue;
            }
            match decode_record_json(&self.line, &mut self.fleet) {
                Ok(r) => {
                    self.record_total += 1;
                    batch.records.push(r);
                }
                Err(e) => {
                    self.bad_line_total += 1;
                    batch.bad_lines.push((n, e));
                }
            }
        }
        // Mirror CsvChunkReader: the batch that hit EOF still returns
        // `true`; the *next* call reports exhaustion.
        Ok(!(self.done && batch.records.is_empty() && batch.bad_lines.is_empty()))
    }
}

/// Decodes one ND-JSON line into a record, learning unknown plates into
/// `fleet` exactly like [`taxilight_trace::csv::decode_record`].
pub fn decode_record_json(line: &str, fleet: &mut Fleet) -> Result<TaxiRecord, CsvError> {
    let doc = json::parse(line.trim()).map_err(|_| CsvError::FieldCount(0))?;
    let obj = match &doc {
        Json::Obj(_) => &doc,
        _ => return Err(CsvError::FieldCount(0)),
    };
    // Field numbers mirror Table I, like the CSV decoder's errors.
    let str_field = |key: &str, n: u8| -> Result<&str, CsvError> {
        obj.get(key).and_then(Json::as_str).ok_or(CsvError::Field(n))
    };
    let f64_field = |key: &str, n: u8| -> Result<f64, CsvError> {
        obj.get(key).and_then(Json::as_f64).filter(|v| v.is_finite()).ok_or(CsvError::Field(n))
    };

    let plate = str_field("plate", 1)?;
    let lon = f64_field("lon", 2)?;
    let lat = f64_field("lat", 3)?;
    let time = Timestamp::parse(str_field("time", 4)?).map_err(|_| CsvError::Field(4))?;
    let device_id = f64_field("device", 5)? as u32;
    let speed_kmh = f64_field("speed_kmh", 6)?;
    let heading_deg = f64_field("heading_deg", 7)?;
    let gps = (f64_field("gps", 8)? as i64)
        .try_into()
        .ok()
        .and_then(GpsCondition::from_wire)
        .ok_or(CsvError::Field(8))?;
    let overspeed = match f64_field("overspeed", 9)? as i64 {
        0 => false,
        1 => true,
        _ => return Err(CsvError::Field(9)),
    };
    let sim = str_field("sim", 10)?;
    let passenger = (f64_field("passenger", 11)? as i64)
        .try_into()
        .ok()
        .and_then(PassengerState::from_wire)
        .ok_or(CsvError::Field(11))?;
    let color = BodyColor::from_str_loose(str_field("color", 12)?).ok_or(CsvError::Field(12))?;

    let taxi = match fleet.find_by_plate(plate) {
        Some(id) => id,
        None => fleet.insert(plate, device_id, sim, color).expect("plate was checked absent"),
    };
    Ok(TaxiRecord {
        taxi,
        position: GeoPoint::new(lat, lon),
        time,
        speed_kmh,
        heading_deg,
        gps,
        overspeed,
        passenger,
    })
}

/// Encodes one record as an ND-JSON line (no trailing newline) — the
/// inverse of [`decode_record_json`], used by feed generators and tests.
pub fn encode_record_json(record: &TaxiRecord, fleet: &Fleet) -> Result<String, CsvError> {
    let info = fleet.info(record.taxi).ok_or(CsvError::UnknownTaxi(record.taxi.0))?;
    let mut out = String::with_capacity(192);
    out.push_str("{\"plate\":\"");
    json::escape_json_into(&mut out, &info.plate);
    out.push_str("\",\"lon\":");
    out.push_str(&json::fmt_f64(record.position.lon));
    out.push_str(",\"lat\":");
    out.push_str(&json::fmt_f64(record.position.lat));
    out.push_str(",\"time\":\"");
    json::escape_json_into(&mut out, &record.time.format());
    out.push_str("\",\"device\":");
    out.push_str(&info.device_id.to_string());
    out.push_str(",\"speed_kmh\":");
    out.push_str(&json::fmt_f64(record.speed_kmh));
    out.push_str(",\"heading_deg\":");
    out.push_str(&json::fmt_f64(record.heading_deg));
    out.push_str(",\"gps\":");
    out.push_str(&record.gps.to_wire().to_string());
    out.push_str(",\"overspeed\":");
    out.push_str(&u8::from(record.overspeed).to_string());
    out.push_str(",\"sim\":\"");
    json::escape_json_into(&mut out, &info.sim);
    out.push_str("\",\"passenger\":");
    out.push_str(&record.passenger.to_wire().to_string());
    out.push_str(",\"color\":\"");
    json::escape_json_into(&mut out, info.color.as_str());
    out.push_str("\"}");
    Ok(out)
}

/// Encodes many records as ND-JSON, one line each, newline-terminated.
pub fn encode_log_json(records: &[TaxiRecord], fleet: &Fleet) -> Result<String, CsvError> {
    let mut out = String::with_capacity(records.len() * 192);
    for r in records {
        out.push_str(&encode_record_json(r, fleet)?);
        out.push('\n');
    }
    Ok(out)
}

/// A feed connection's record source: one wire format over one reader.
pub enum FeedSource<R: Read> {
    /// Table-I CSV in bounded byte chunks.
    Csv(CsvChunkReader<R>),
    /// ND-JSON in bounded record-count chunks.
    NdJson(NdJsonReader<R>),
}

impl<R: Read> FeedSource<R> {
    /// Wraps `reader` in a decoder for `format`. `chunk` is bytes for
    /// CSV, records for ND-JSON — both bound resident memory per batch.
    pub fn new(reader: R, format: FeedFormat, chunk: usize) -> Self {
        match format {
            FeedFormat::Csv => FeedSource::Csv(CsvChunkReader::new(reader, chunk)),
            FeedFormat::NdJson => FeedSource::NdJson(NdJsonReader::new(reader, chunk / 64 + 1)),
        }
    }

    /// Rejected lines seen so far.
    pub fn bad_line_total(&self) -> u64 {
        match self {
            FeedSource::Csv(s) => s.bad_line_total(),
            FeedSource::NdJson(s) => s.bad_line_total(),
        }
    }

    /// Records decoded so far.
    pub fn record_total(&self) -> u64 {
        match self {
            FeedSource::Csv(s) => s.record_total(),
            FeedSource::NdJson(s) => s.record_total(),
        }
    }
}

impl<R: Read> RecordSource for FeedSource<R> {
    fn next_batch(&mut self, batch: &mut RecordBatch) -> Result<bool, TraceFileError> {
        match self {
            FeedSource::Csv(s) => s.next_batch(batch),
            FeedSource::NdJson(s) => s.next_batch(batch),
        }
    }
}

/// Re-encodes records in `format` for transmission to a feed socket —
/// the generator half used by the serving bench and the smoke tests.
pub fn encode_feed(
    records: &[TaxiRecord],
    fleet: &Fleet,
    format: FeedFormat,
) -> Result<String, CsvError> {
    match format {
        FeedFormat::Csv => taxilight_trace::csv::encode_log(records, fleet),
        FeedFormat::NdJson => encode_log_json(records, fleet),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;
    use taxilight_trace::source::collect_source;

    fn sample(n: usize) -> (Vec<TaxiRecord>, Fleet) {
        let mut fleet = Fleet::new();
        let taxis = fleet.register_many(3);
        let records = (0..n)
            .map(|k| TaxiRecord {
                taxi: taxis[k % 3],
                position: GeoPoint::new(22.5 + k as f64 * 1e-4, 114.05 - k as f64 * 2e-4),
                time: Timestamp::civil(2014, 12, 5, 9, 0, 0).offset(k as i64 * 11),
                speed_kmh: (k % 70) as f64 + 0.5,
                heading_deg: (k * 37 % 360) as f64,
                gps: GpsCondition::Available,
                overspeed: k % 13 == 0,
                passenger: if k % 2 == 0 {
                    PassengerState::Occupied
                } else {
                    PassengerState::Vacant
                },
            })
            .collect();
        (records, fleet)
    }

    #[test]
    fn ndjson_round_trips_any_chunk() {
        let (records, fleet) = sample(29);
        let text = encode_log_json(&records, &fleet).unwrap();
        for chunk in [1, 2, 7, 29, 1000] {
            let mut src = NdJsonReader::new(Cursor::new(text.as_bytes()), chunk);
            let (got, bad) = collect_source(&mut src).unwrap();
            assert!(bad.is_empty(), "chunk={chunk}: {bad:?}");
            assert_eq!(got, records, "chunk={chunk}");
            assert_eq!(src.record_total(), records.len() as u64);
            assert_eq!(src.fleet().len(), fleet.len());
        }
    }

    #[test]
    fn ndjson_matches_csv_decode_of_same_records() {
        let (records, fleet) = sample(17);
        let csv = encode_feed(&records, &fleet, FeedFormat::Csv).unwrap();
        let nd = encode_feed(&records, &fleet, FeedFormat::NdJson).unwrap();
        let mut csv_src = FeedSource::new(Cursor::new(csv.as_bytes()), FeedFormat::Csv, 256);
        let mut nd_src = FeedSource::new(Cursor::new(nd.as_bytes()), FeedFormat::NdJson, 256);
        let (a, _) = collect_source(&mut csv_src).unwrap();
        let (b, _) = collect_source(&mut nd_src).unwrap();
        // CSV quantizes positions to micro-degrees; compare the fields
        // that must be exact and bound the positional quantization.
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.taxi, y.taxi);
            assert_eq!(x.time, y.time);
            assert_eq!(x.speed_kmh, y.speed_kmh);
            assert!((x.position.lat - y.position.lat).abs() < 1e-5);
            assert!((x.position.lon - y.position.lon).abs() < 1e-5);
        }
    }

    #[test]
    fn bad_json_lines_are_reported_not_fatal() {
        let (records, fleet) = sample(4);
        let mut text = encode_log_json(&records, &fleet).unwrap();
        text.insert_str(0, "not json at all\n");
        text.push_str("{\"plate\":\"YB-00001\"}\n"); // missing fields
        text.push('\n'); // blank: skipped silently
        let mut src = NdJsonReader::new(Cursor::new(text.as_bytes()), 100);
        let (got, bad) = collect_source(&mut src).unwrap();
        assert_eq!(got, records);
        assert_eq!(bad.len(), 2);
        assert_eq!(bad[0].0, 0);
        assert_eq!(bad[0].1, CsvError::FieldCount(0));
        assert_eq!(bad[1].0, 5);
        assert_eq!(src.bad_line_total(), 2);
    }

    #[test]
    fn feed_format_parses_cli_spellings() {
        assert_eq!(FeedFormat::parse("csv"), Some(FeedFormat::Csv));
        assert_eq!(FeedFormat::parse("NDJSON"), Some(FeedFormat::NdJson));
        assert_eq!(FeedFormat::parse("jsonl"), Some(FeedFormat::NdJson));
        assert_eq!(FeedFormat::parse("xml"), None);
    }
}
