//! The lock-free versioned schedule store.
//!
//! The daemon's single writer publishes immutable [`Snapshot`]s — a
//! [`ScheduleView`] plus the cumulative change history — and every HTTP
//! connection reads the current one with a single atomic pointer load:
//! no lock, no reference-count traffic, no allocation. Readers therefore
//! never block the identification round and never observe a torn
//! schedule: a snapshot is fully constructed before the pointer swings
//! (release store), and a reader's acquire load sees either the old or
//! the new snapshot in its entirety.
//!
//! ## Why the read is safe without a lock or an `Arc` clone
//!
//! The classic hazard of an `AtomicPtr` swap is a reader dereferencing a
//! pointer the writer just freed. This store never frees a published
//! snapshot while any handle lives: the writer appends every snapshot's
//! `Arc` to an internal, append-only history vector (guarded by a mutex
//! the *writer alone* touches on the publish path), so the pointer in
//! `current` always targets memory owned by the shared state itself.
//! The retained history is not overhead — it *is* the version history
//! the serving API exposes (`/changes`, versioned snapshots), and its
//! growth is bounded by the publish cadence: one snapshot per
//! re-identification round (the paper's 5 minutes), a few KB each.

use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::{Arc, Mutex};

use taxilight_core::monitor::ChangeEvent;
use taxilight_core::{LightHealth, ScheduleView};
use taxilight_roadnet::graph::LightId;

/// One published, immutable store entry.
#[derive(Debug)]
pub struct Snapshot {
    /// Store publish sequence number, 0 for the initial empty snapshot,
    /// strictly increasing from there.
    pub seq: u64,
    /// The schedule view (version = the identifier's round counter).
    pub view: ScheduleView,
    /// Every scheduling change detected since the daemon started,
    /// sorted by `(timestamp, light)` — the deterministic page order
    /// [`RealtimeIdentifier::take_changes`] guarantees.
    ///
    /// [`RealtimeIdentifier::take_changes`]:
    ///     taxilight_core::realtime::RealtimeIdentifier::take_changes
    pub changes: Vec<(LightId, ChangeEvent)>,
    /// Per-light health records as of this publish, light-id ascending —
    /// the [`HealthRegistry`] snapshot behind `/lights`. Empty for the
    /// initial snapshot and for publishers that carry no health.
    ///
    /// [`HealthRegistry`]: taxilight_core::HealthRegistry
    pub health: Vec<LightHealth>,
}

/// State shared by the writer and every reader handle.
struct StoreShared {
    /// Points at the most recent snapshot inside `history`. Never null
    /// after construction; swung with `Release`, read with `Acquire`.
    current: AtomicPtr<Snapshot>,
    /// Append-only ownership of every snapshot ever published. Locked
    /// only by the writer (publish) and by explicit history queries —
    /// never by the current-snapshot read path.
    history: Mutex<Vec<Arc<Snapshot>>>,
}

// SAFETY: `Snapshot` is fully immutable after publication and the raw
// pointer always targets an `Arc` retained in `history`.
unsafe impl Send for StoreShared {}
unsafe impl Sync for StoreShared {}

/// The single-writer handle: publishes snapshots.
pub struct ScheduleStore {
    shared: Arc<StoreShared>,
}

/// A cloneable read handle; every HTTP connection owns one.
#[derive(Clone)]
pub struct StoreReader {
    shared: Arc<StoreShared>,
}

impl ScheduleStore {
    /// Creates a store holding an initial empty snapshot (seq 0) and
    /// returns the writer plus one reader handle.
    pub fn new() -> (ScheduleStore, StoreReader) {
        let initial = Arc::new(Snapshot {
            seq: 0,
            view: ScheduleView::empty(),
            changes: Vec::new(),
            health: Vec::new(),
        });
        let ptr = Arc::as_ptr(&initial) as *mut Snapshot;
        let shared = Arc::new(StoreShared {
            current: AtomicPtr::new(ptr),
            history: Mutex::new(vec![initial]),
        });
        (ScheduleStore { shared: Arc::clone(&shared) }, StoreReader { shared })
    }

    /// Publishes a new snapshot: it becomes the current answer for every
    /// subsequent read, atomically. Returns the assigned sequence number.
    pub fn publish(&self, view: ScheduleView, changes: Vec<(LightId, ChangeEvent)>) -> u64 {
        self.publish_with_health(view, changes, Vec::new())
    }

    /// [`ScheduleStore::publish`], carrying per-light health records
    /// alongside the view (what the daemon publishes every round).
    pub fn publish_with_health(
        &self,
        view: ScheduleView,
        changes: Vec<(LightId, ChangeEvent)>,
        health: Vec<LightHealth>,
    ) -> u64 {
        let mut history = self.shared.history.lock().expect("store writer poisoned");
        let seq = history.len() as u64;
        let snapshot = Arc::new(Snapshot { seq, view, changes, health });
        let ptr = Arc::as_ptr(&snapshot) as *mut Snapshot;
        history.push(snapshot);
        // Release: the fully-built snapshot happens-before any reader
        // that acquires this pointer.
        self.shared.current.store(ptr, Ordering::Release);
        seq
    }

    /// A new reader handle.
    pub fn reader(&self) -> StoreReader {
        StoreReader { shared: Arc::clone(&self.shared) }
    }

    /// Runs `f` while the history mutex is held.
    ///
    /// Exists so tests can *prove* the current-snapshot read path never
    /// touches the lock: a [`StoreReader::current`] call inside `f`
    /// would deadlock if it did. The daemon never calls this.
    pub fn with_history_locked<T>(&self, f: impl FnOnce() -> T) -> T {
        let _guard = self.shared.history.lock().expect("store writer poisoned");
        f()
    }
}

impl StoreReader {
    /// The current snapshot: one `Acquire` pointer load, zero locks,
    /// zero allocations, wait-free. The borrow is tied to this handle,
    /// which keeps the backing memory alive.
    pub fn current(&self) -> &Snapshot {
        // SAFETY: the pointer was published by `publish` (or `new`) and
        // targets a `Snapshot` owned by an `Arc` in `history`, which is
        // append-only — no published snapshot is ever dropped while
        // `self.shared` lives, and the returned borrow cannot outlive
        // `&self`, which borrows `self.shared`.
        unsafe { &*self.shared.current.load(Ordering::Acquire) }
    }

    /// Number of snapshots ever published (incl. the initial empty one).
    /// Takes the history lock — not part of the query read path.
    pub fn snapshot_count(&self) -> u64 {
        self.shared.history.lock().expect("store writer poisoned").len() as u64
    }

    /// A past snapshot by sequence number, or `None` when out of range.
    /// Takes the history lock — not part of the query read path.
    pub fn snapshot(&self, seq: u64) -> Option<Arc<Snapshot>> {
        self.shared.history.lock().expect("store writer poisoned").get(seq as usize).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxilight_core::LightSchedule;
    use taxilight_trace::time::Timestamp;

    fn view(version: u64, lights: &[u32]) -> ScheduleView {
        ScheduleView::new(
            version,
            Some(Timestamp(1000 + version as i64)),
            lights
                .iter()
                .map(|&l| {
                    (
                        LightId(l),
                        LightSchedule {
                            light: LightId(l),
                            cycle_s: 90.0 + version as f64,
                            red_s: 40.0,
                            green_s: 50.0 + version as f64,
                            red_start_s: 0.0,
                            snr: 3.0,
                            samples: 10,
                        },
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn publish_with_health_carries_records() {
        use taxilight_core::{FailureCounts, LightHealth, QualityGrade};
        let (store, reader) = ScheduleStore::new();
        assert!(reader.current().health.is_empty());
        let h = LightHealth {
            light: LightId(4),
            grade: QualityGrade::Rich,
            observations: 10,
            records_per_hour: 700.0,
            attempts: 2,
            successes: 2,
            consecutive_failures: 0,
            failures: FailureCounts::default(),
            changes: 0,
            snr: 5.0,
            cycle_s: 90.0,
            last_version: 1,
            last_at: Some(Timestamp(1001)),
        };
        store.publish_with_health(view(1, &[4]), Vec::new(), vec![h]);
        let snap = reader.current();
        assert_eq!(snap.health.len(), 1);
        assert_eq!(snap.health[0].light, LightId(4));
        assert!(snap.health[0].identified());
        // Plain publish carries no health.
        store.publish(view(2, &[4]), Vec::new());
        assert!(reader.current().health.is_empty());
    }

    #[test]
    fn initial_snapshot_is_empty_and_readable() {
        let (_store, reader) = ScheduleStore::new();
        let snap = reader.current();
        assert_eq!(snap.seq, 0);
        assert!(snap.view.is_empty());
        assert!(snap.changes.is_empty());
        assert_eq!(reader.snapshot_count(), 1);
    }

    #[test]
    fn publish_swings_current_and_retains_history() {
        let (store, reader) = ScheduleStore::new();
        assert_eq!(store.publish(view(1, &[4]), Vec::new()), 1);
        assert_eq!(store.publish(view(2, &[4, 9]), Vec::new()), 2);
        let snap = reader.current();
        assert_eq!(snap.seq, 2);
        assert_eq!(snap.view.version(), 2);
        assert_eq!(snap.view.len(), 2);
        // History answers every past version.
        assert_eq!(reader.snapshot_count(), 3);
        assert_eq!(reader.snapshot(1).unwrap().view.len(), 1);
        assert!(reader.snapshot(3).is_none());
    }

    #[test]
    fn a_held_borrow_survives_later_publishes() {
        let (store, reader) = ScheduleStore::new();
        store.publish(view(1, &[2]), Vec::new());
        let old = reader.current();
        let old_digest = old.view.digest();
        for v in 2..50 {
            store.publish(view(v, &[2, 3]), Vec::new());
        }
        // The borrow taken before the publishes still reads version 1:
        // retained history means no use-after-free, ever.
        assert_eq!(old.view.version(), 1);
        assert_eq!(old.view.digest(), old_digest);
        assert_eq!(reader.current().view.version(), 49);
    }

    #[test]
    fn readers_across_threads_see_monotone_sequences() {
        let (store, reader) = ScheduleStore::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let r = reader.clone();
                    s.spawn(move || {
                        let mut last = 0;
                        for _ in 0..2000 {
                            let seq = r.current().seq;
                            assert!(seq >= last, "store went backwards: {seq} < {last}");
                            last = seq;
                        }
                        last
                    })
                })
                .collect();
            for v in 1..200 {
                store.publish(view(v, &[1]), Vec::new());
            }
            for h in handles {
                h.join().unwrap();
            }
        });
    }
}
