//! Random (seeded) generation of city-wide signal schedules with the
//! paper's controller-category mix.
//!
//! Sec. III: the *majority* of lights are statically scheduled;
//! pre-programmed dynamic lights (peak/off-peak programmes) are "usually
//! used in downtown"; manually controlled lights sit on congested arterial
//! roads. The generator reproduces that mix and records the category of
//! every intersection so experiments can slice results by category.

use crate::lights::{DailyProgram, IntersectionPlan, PhasePlan, Schedule, SignalMap};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use taxilight_roadnet::graph::{IntersectionId, RoadNetwork};
use taxilight_trace::time::Timestamp;

/// Controller category assigned to an intersection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Fixed plan forever.
    Static,
    /// Peak/off-peak programmes switched by time of day.
    PreProgrammed,
    /// Pre-programmed base plus manual override windows.
    Manual,
}

/// Configuration for [`generate_signal_map`].
#[derive(Debug, Clone)]
pub struct ScheduleGenConfig {
    /// Inclusive cycle-length range for off-peak plans, seconds. The
    /// paper's observed lights average ~90 s cycles.
    pub cycle_range_s: (u32, u32),
    /// Range of the N-S red share of the cycle.
    pub ns_red_fraction: (f64, f64),
    /// Fraction of intersections with pre-programmed dynamic scheduling.
    pub preprogrammed_fraction: f64,
    /// Fraction of intersections with manual scheduling.
    pub manual_fraction: f64,
    /// Peak plans scale the off-peak cycle by this factor.
    pub peak_cycle_scale: f64,
    /// Peak windows as `(start_hour, end_hour)` pairs.
    pub peak_hours: [(u32, u32); 2],
    /// Manual override windows (absolute) carved inside morning peaks of
    /// the simulated days; `(day_start, count)` pairs are derived from the
    /// simulation start passed to the generator.
    pub manual_override_minutes: u32,
}

impl Default for ScheduleGenConfig {
    fn default() -> Self {
        ScheduleGenConfig {
            cycle_range_s: (60, 160),
            ns_red_fraction: (0.35, 0.65),
            preprogrammed_fraction: 0.25,
            manual_fraction: 0.05,
            peak_cycle_scale: 1.5,
            peak_hours: [(7, 9), (17, 19)],
            manual_override_minutes: 40,
        }
    }
}

/// Generates a complete [`SignalMap`] for every signalized intersection of
/// `net`, deterministic in `seed`. `sim_start` anchors manual override
/// windows (they are placed in the morning peak of the first simulated
/// day). Returns the map and the per-intersection categories.
pub fn generate_signal_map(
    net: &RoadNetwork,
    cfg: &ScheduleGenConfig,
    sim_start: Timestamp,
    seed: u64,
) -> (SignalMap, Vec<(IntersectionId, Category)>) {
    assert!(cfg.preprogrammed_fraction + cfg.manual_fraction <= 1.0, "category fractions exceed 1");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut map = SignalMap::new();
    let mut categories = Vec::with_capacity(net.intersections().len());

    for intersection in net.intersections() {
        let cycle = rng.gen_range(cfg.cycle_range_s.0..=cfg.cycle_range_s.1);
        let red_frac = rng.gen_range(cfg.ns_red_fraction.0..cfg.ns_red_fraction.1);
        let red = ((cycle as f64 * red_frac).round() as u32).clamp(1, cycle - 1);
        let offset = rng.gen_range(0..cycle);
        let off_peak = PhasePlan::new(cycle, red, offset);
        let plan = IntersectionPlan { ns: off_peak };

        let peak = || {
            let pc = ((cycle as f64 * cfg.peak_cycle_scale).round() as u32).max(cycle + 10);
            let pr = ((pc as f64 * red_frac).round() as u32).clamp(1, pc - 1);
            PhasePlan::new(pc, pr, offset)
        };
        let program_for = |ns_plan: PhasePlan| {
            // Build the per-approach daily programme: off-peak plan with the
            // approach's own timings, peak plan scaled but with the same
            // red share and offset.
            let peak_plan = if ns_plan == off_peak { peak() } else { peak().antiphase() };
            let mut entries = vec![(0u32, ns_plan)];
            for &(a, b) in &cfg.peak_hours {
                entries.push((a * 3600, peak_plan));
                entries.push((b * 3600, ns_plan));
            }
            entries.sort_by_key(|e| e.0);
            entries.dedup_by_key(|e| e.0);
            DailyProgram::new(entries)
        };

        let roll: f64 = rng.gen();
        let category = if roll < cfg.manual_fraction {
            Category::Manual
        } else if roll < cfg.manual_fraction + cfg.preprogrammed_fraction {
            Category::PreProgrammed
        } else {
            Category::Static
        };

        match category {
            Category::Static => {
                map.install_intersection(net, intersection.id, plan);
            }
            Category::PreProgrammed => {
                map.install_intersection_with(net, intersection.id, plan, |p| {
                    Schedule::PreProgrammed(program_for(p))
                });
            }
            Category::Manual => {
                // Override: a policeman stretches the cycle during the first
                // morning peak after sim_start.
                let day0 = sim_start.start_of_day();
                let from = day0.offset((cfg.peak_hours[0].0 * 3600) as i64 + 1800);
                let until = from.offset(cfg.manual_override_minutes as i64 * 60);
                let manual_cycle = cycle * 2;
                let manual_red =
                    ((manual_cycle as f64 * red_frac).round() as u32).clamp(1, manual_cycle - 1);
                let manual_ns = PhasePlan::new(manual_cycle, manual_red, offset);
                map.install_intersection_with(net, intersection.id, plan, |p| {
                    let manual_plan = if p == off_peak { manual_ns } else { manual_ns.antiphase() };
                    Schedule::Manual {
                        base: program_for(p),
                        overrides: vec![(from, until, manual_plan)],
                    }
                });
            }
        }
        categories.push((intersection.id, category));
    }
    (map, categories)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lights::LightState;
    use taxilight_roadnet::generators::{grid_city, GridConfig};

    fn city() -> taxilight_roadnet::generators::GeneratedCity {
        grid_city(&GridConfig { rows: 6, cols: 6, ..GridConfig::default() })
    }

    fn start() -> Timestamp {
        Timestamp::civil(2014, 5, 21, 0, 0, 0)
    }

    #[test]
    fn every_light_gets_a_schedule() {
        let city = city();
        let (map, cats) = generate_signal_map(&city.net, &ScheduleGenConfig::default(), start(), 1);
        assert_eq!(map.len(), city.net.light_count());
        assert_eq!(cats.len(), city.net.intersections().len());
    }

    #[test]
    fn deterministic_in_seed() {
        let city = city();
        let cfg = ScheduleGenConfig::default();
        let (a, _) = generate_signal_map(&city.net, &cfg, start(), 7);
        let (b, _) = generate_signal_map(&city.net, &cfg, start(), 7);
        let (c, _) = generate_signal_map(&city.net, &cfg, start(), 8);
        let probe = Timestamp::civil(2014, 5, 21, 10, 0, 0);
        let mut differs = false;
        for light in city.net.lights() {
            assert_eq!(a.plan(light.id, probe), b.plan(light.id, probe));
            if a.plan(light.id, probe) != c.plan(light.id, probe) {
                differs = true;
            }
        }
        assert!(differs, "different seeds should give different schedules");
    }

    #[test]
    fn intersection_lights_share_cycle_length() {
        // The paper's Sec. V-B enhancement rests on this invariant.
        let city = city();
        let (map, _) = generate_signal_map(&city.net, &ScheduleGenConfig::default(), start(), 3);
        let probe = Timestamp::civil(2014, 5, 21, 8, 30, 0);
        for intersection in city.net.intersections() {
            let cycles: Vec<u32> =
                intersection.lights.iter().map(|l| map.plan(l.id, probe).cycle_s).collect();
            assert!(cycles.windows(2).all(|w| w[0] == w[1]), "cycles differ: {cycles:?}");
        }
    }

    #[test]
    fn perpendicular_approaches_alternate() {
        let city = city();
        let (map, _) = generate_signal_map(&city.net, &ScheduleGenConfig::default(), start(), 3);
        let intersection = &city.net.intersections()[0];
        // Find one N-S and one E-W approach.
        let ns = intersection
            .lights
            .iter()
            .find(|l| crate::lights::is_north_south(l.heading_deg))
            .unwrap();
        let ew = intersection
            .lights
            .iter()
            .find(|l| !crate::lights::is_north_south(l.heading_deg))
            .unwrap();
        for s in 0..300 {
            let t = Timestamp::civil(2014, 5, 21, 11, 0, 0).offset(s);
            assert_ne!(map.state(ns.id, t), map.state(ew.id, t), "second {s}");
        }
    }

    #[test]
    fn category_mix_matches_config() {
        let city = grid_city(&GridConfig { rows: 12, cols: 12, ..GridConfig::default() });
        let cfg = ScheduleGenConfig {
            preprogrammed_fraction: 0.3,
            manual_fraction: 0.1,
            ..ScheduleGenConfig::default()
        };
        let (_, cats) = generate_signal_map(&city.net, &cfg, start(), 5);
        let n = cats.len() as f64;
        let pre = cats.iter().filter(|(_, c)| *c == Category::PreProgrammed).count() as f64;
        let man = cats.iter().filter(|(_, c)| *c == Category::Manual).count() as f64;
        let stat = cats.iter().filter(|(_, c)| *c == Category::Static).count() as f64;
        assert!((pre / n - 0.3).abs() < 0.15, "preprogrammed share {}", pre / n);
        assert!((man / n - 0.1).abs() < 0.1, "manual share {}", man / n);
        assert!(stat > pre && stat > man, "static must be the majority");
    }

    #[test]
    fn preprogrammed_lights_switch_at_peak() {
        let city = city();
        let cfg = ScheduleGenConfig {
            preprogrammed_fraction: 1.0,
            manual_fraction: 0.0,
            ..ScheduleGenConfig::default()
        };
        let (map, cats) = generate_signal_map(&city.net, &cfg, start(), 9);
        assert!(cats.iter().all(|(_, c)| *c == Category::PreProgrammed));
        let light = city.net.lights()[0].id;
        let off_peak = map.plan(light, Timestamp::civil(2014, 5, 21, 11, 0, 0));
        let peak = map.plan(light, Timestamp::civil(2014, 5, 21, 8, 0, 0));
        assert!(peak.cycle_s > off_peak.cycle_s, "peak cycle must be longer");
        // Evening peak uses the same peak plan; night reverts.
        assert_eq!(map.plan(light, Timestamp::civil(2014, 5, 21, 18, 0, 0)), peak);
        assert_eq!(map.plan(light, Timestamp::civil(2014, 5, 21, 22, 0, 0)), off_peak);
    }

    #[test]
    fn manual_overrides_stretch_cycle_in_window() {
        let city = city();
        let cfg = ScheduleGenConfig {
            preprogrammed_fraction: 0.0,
            manual_fraction: 1.0,
            ..ScheduleGenConfig::default()
        };
        let (map, _) = generate_signal_map(&city.net, &cfg, start(), 11);
        let light = city.net.lights()[0].id;
        // Window: 07:30 + 40 min on day one.
        let inside = Timestamp::civil(2014, 5, 21, 7, 45, 0);
        let outside_peak = Timestamp::civil(2014, 5, 21, 8, 30, 0);
        let night = Timestamp::civil(2014, 5, 21, 23, 0, 0);
        assert!(map.plan(light, inside).cycle_s > map.plan(light, night).cycle_s);
        // After the override the base (peak) programme resumes.
        assert!(map.plan(light, outside_peak).cycle_s >= map.plan(light, night).cycle_s);
        // Next day the same wall-clock window is not overridden.
        let next_day = Timestamp::civil(2014, 5, 22, 7, 45, 0);
        assert!(map.plan(light, next_day).cycle_s < map.plan(light, inside).cycle_s);
    }

    #[test]
    fn antiphase_preserved_during_peak() {
        // Coordination must hold under every programme, not just off-peak.
        let city = city();
        let cfg = ScheduleGenConfig {
            preprogrammed_fraction: 1.0,
            manual_fraction: 0.0,
            ..ScheduleGenConfig::default()
        };
        let (map, _) = generate_signal_map(&city.net, &cfg, start(), 13);
        let intersection = &city.net.intersections()[2];
        let ns = intersection
            .lights
            .iter()
            .find(|l| crate::lights::is_north_south(l.heading_deg))
            .unwrap();
        let ew = intersection
            .lights
            .iter()
            .find(|l| !crate::lights::is_north_south(l.heading_deg))
            .unwrap();
        for s in 0..400 {
            let t = Timestamp::civil(2014, 5, 21, 8, 0, 0).offset(s);
            assert_ne!(
                map.state(ns.id, t),
                map.state(ew.id, t),
                "coordination broken at peak second {s}"
            );
        }
        // Sanity: at some instant during the day one of them is red.
        let t = Timestamp::civil(2014, 5, 21, 12, 0, 0);
        assert!(map.state(ns.id, t) == LightState::Red || map.state(ew.id, t) == LightState::Red);
    }
}
