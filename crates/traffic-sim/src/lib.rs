//! # taxilight-sim
//!
//! A microscopic city traffic simulator producing Table-I taxi traces with
//! exact ground-truth traffic-light schedules. This crate is the
//! workspace's substitute for the paper's proprietary billion-record
//! Shenzhen feed and for its on-site ground-truth observation campaign —
//! see DESIGN.md §2 for the substitution argument.
//!
//! * [`lights`] — phase plans, the three controller categories of the
//!   paper's Sec. III, intersection coordination, and the [`SignalMap`]
//!   ground-truth registry.
//! * [`schedule_gen`] — seeded city-wide schedule generation with the
//!   paper's category mix.
//! * [`sim`] — the 1 Hz car-following/queueing fleet simulator with the
//!   noisy, lossy GPS reporting channel.
//! * [`city`] — ready-made evaluation scenarios ([`city::paper_city`]).
//!
//! [`SignalMap`]: lights::SignalMap

#![warn(missing_docs)]

pub mod city;
pub mod lights;
pub mod schedule_gen;
pub mod sim;

pub use city::{custom_city, paper_city, small_city, CityScenario, CityTopology, ScenarioSpec};
pub use lights::{LightState, PhasePlan, Schedule, SignalMap};
pub use schedule_gen::{generate_signal_map, Category, ScheduleGenConfig};
pub use sim::{SimConfig, Simulator};
