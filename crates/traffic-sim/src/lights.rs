//! Traffic-light controllers and the ground-truth schedule registry.
//!
//! The paper's on-site interview (Sec. III) found three controller
//! categories, all modelled here:
//!
//! 1. **Static scheduling** — fixed red/green forever (the majority).
//! 2. **Pre-programmed dynamic scheduling** — several plans selected purely
//!    by time of day (peak vs. off-peak), common downtown.
//! 3. **Manual scheduling** — a traffic policeman overrides the
//!    pre-programmed plan during congestion windows.
//!
//! Yellow is folded into red (paper Sec. III: "we simply treat the yellow
//! lights as red ones"). All lights of one intersection share a cycle
//! length; perpendicular approaches run in antiphase
//! ([`IntersectionPlan`]).
//!
//! [`SignalMap`] is the simulator-side registry *and* the evaluation
//! ground truth: the paper had to stand at 9 intersections for 8 days to
//! record truth by hand — the simulator simply exposes it.

use taxilight_roadnet::graph::{IntersectionId, LightId, RoadNetwork};
use taxilight_trace::geo::heading_difference;
use taxilight_trace::time::Timestamp;

/// Colour of a light head at an instant (yellow is treated as red).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LightState {
    /// Stop.
    Red,
    /// Go.
    Green,
}

/// One fixed red/green timing: the triple of Fig. 3 minus the scheduling
/// change (which lives in [`Schedule`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhasePlan {
    /// Full cycle length in seconds.
    pub cycle_s: u32,
    /// Red duration in seconds (green is `cycle_s - red_s`).
    pub red_s: u32,
    /// Phase offset: a red phase starts at every absolute time `t` with
    /// `t ≡ offset_s (mod cycle_s)` (seconds since the epoch).
    pub offset_s: u32,
}

impl PhasePlan {
    /// Creates a plan, validating `0 < red_s < cycle_s`.
    ///
    /// # Panics
    /// Panics when the red duration is zero or not shorter than the cycle.
    pub fn new(cycle_s: u32, red_s: u32, offset_s: u32) -> Self {
        assert!(cycle_s > 0, "cycle must be positive");
        assert!(
            red_s > 0 && red_s < cycle_s,
            "red must satisfy 0 < red < cycle, got {red_s}/{cycle_s}"
        );
        PhasePlan { cycle_s, red_s, offset_s: offset_s % cycle_s }
    }

    /// Green duration in seconds.
    pub fn green_s(&self) -> u32 {
        self.cycle_s - self.red_s
    }

    /// Seconds into the cycle at time `t` (0 = red onset).
    pub fn cycle_position(&self, t: Timestamp) -> u32 {
        ((t.0 - self.offset_s as i64).rem_euclid(self.cycle_s as i64)) as u32
    }

    /// Light state at time `t`.
    pub fn state_at(&self, t: Timestamp) -> LightState {
        if self.cycle_position(t) < self.red_s {
            LightState::Red
        } else {
            LightState::Green
        }
    }

    /// Seconds from `t` until the light is (next) green: 0 when already
    /// green.
    pub fn wait_for_green(&self, t: Timestamp) -> u32 {
        let pos = self.cycle_position(t);
        self.red_s.saturating_sub(pos)
    }

    /// Seconds from `t` until the next red onset; 0 when red just started.
    pub fn time_to_red(&self, t: Timestamp) -> u32 {
        let pos = self.cycle_position(t);
        if pos == 0 {
            0
        } else {
            self.cycle_s - pos
        }
    }

    /// The plan phase-shifted by `shift_s` seconds (red starts later by
    /// `shift_s`).
    pub fn shifted(&self, shift_s: u32) -> PhasePlan {
        PhasePlan {
            cycle_s: self.cycle_s,
            red_s: self.red_s,
            offset_s: (self.offset_s + shift_s) % self.cycle_s,
        }
    }

    /// The complementary plan at the same intersection: red exactly while
    /// this plan is green. Used for the perpendicular approaches.
    pub fn antiphase(&self) -> PhasePlan {
        PhasePlan {
            cycle_s: self.cycle_s,
            red_s: self.green_s(),
            offset_s: (self.offset_s + self.red_s) % self.cycle_s,
        }
    }
}

/// A daily programme: which [`PhasePlan`] applies at each second of the
/// day. Entries are `(start_second_of_day, plan)`, sorted, first entry at 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DailyProgram {
    entries: Vec<(u32, PhasePlan)>,
}

impl DailyProgram {
    /// A single plan all day (static scheduling).
    pub fn constant(plan: PhasePlan) -> Self {
        DailyProgram { entries: vec![(0, plan)] }
    }

    /// Builds a programme from `(start_second_of_day, plan)` entries.
    ///
    /// # Panics
    /// Panics when empty, unsorted, the first entry is not at second 0, or
    /// a start is ≥ 86400.
    pub fn new(entries: Vec<(u32, PhasePlan)>) -> Self {
        assert!(!entries.is_empty(), "programme needs at least one entry");
        assert_eq!(entries[0].0, 0, "first programme entry must start at second 0");
        for w in entries.windows(2) {
            assert!(w[0].0 < w[1].0, "programme entries must be strictly increasing");
        }
        assert!(entries.last().unwrap().0 < 86_400, "programme start beyond one day");
        DailyProgram { entries }
    }

    /// The plan in force at time `t`.
    pub fn plan_at(&self, t: Timestamp) -> PhasePlan {
        let sod = t.seconds_of_day();
        let idx = self.entries.partition_point(|&(start, _)| start <= sod) - 1;
        self.entries[idx].1
    }

    /// The programme's entries.
    pub fn entries(&self) -> &[(u32, PhasePlan)] {
        &self.entries
    }

    /// Times of day (seconds) at which the programme switches plans
    /// (excluding midnight wrap).
    pub fn switch_times(&self) -> Vec<u32> {
        self.entries.iter().skip(1).map(|&(s, _)| s).collect()
    }
}

/// A full controller: the paper's three categories.
#[derive(Debug, Clone, PartialEq)]
pub enum Schedule {
    /// Category 1: one plan forever.
    Static(PhasePlan),
    /// Category 2: plans selected by time of day.
    PreProgrammed(DailyProgram),
    /// Category 3: pre-programmed base with absolute-time manual override
    /// windows `(from, until, plan)` (policeman takes over).
    Manual {
        /// The programme when nobody is overriding.
        base: DailyProgram,
        /// Override windows, non-overlapping, sorted by start.
        overrides: Vec<(Timestamp, Timestamp, PhasePlan)>,
    },
}

impl Schedule {
    /// The plan in force at `t`.
    pub fn plan_at(&self, t: Timestamp) -> PhasePlan {
        match self {
            Schedule::Static(plan) => *plan,
            Schedule::PreProgrammed(prog) => prog.plan_at(t),
            Schedule::Manual { base, overrides } => overrides
                .iter()
                .find(|&&(from, until, _)| t >= from && t < until)
                .map(|&(_, _, plan)| plan)
                .unwrap_or_else(|| base.plan_at(t)),
        }
    }

    /// Light state at `t`.
    pub fn state_at(&self, t: Timestamp) -> LightState {
        self.plan_at(t).state_at(t)
    }

    /// Seconds from `t` until green (0 when green). Correct within one
    /// plan's span; plan switches mid-wait are rare and bounded by a cycle.
    pub fn wait_for_green(&self, t: Timestamp) -> u32 {
        self.plan_at(t).wait_for_green(t)
    }
}

/// Per-intersection coordinated plan: north-south approaches run `ns`, the
/// perpendicular east-west approaches run its antiphase. This encodes the
/// paper's Sec. V-B observation — every light at one crossroad shares the
/// cycle length while red/green splits differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntersectionPlan {
    /// Plan of the north/south approaches.
    pub ns: PhasePlan,
}

impl IntersectionPlan {
    /// Plan for an approach with the given heading: headings within 45° of
    /// north or south get `ns`, others get the antiphase.
    pub fn plan_for_heading(&self, heading_deg: f64) -> PhasePlan {
        if is_north_south(heading_deg) {
            self.ns
        } else {
            self.ns.antiphase()
        }
    }
}

/// True when a heading is closer to the N-S axis than the E-W axis.
pub fn is_north_south(heading_deg: f64) -> bool {
    let to_north = heading_difference(heading_deg, 0.0).min(heading_difference(heading_deg, 180.0));
    let to_east = heading_difference(heading_deg, 90.0).min(heading_difference(heading_deg, 270.0));
    to_north <= to_east
}

/// The signal registry: one [`Schedule`] per light head, plus ground-truth
/// query helpers for the evaluation.
#[derive(Debug, Clone, Default)]
pub struct SignalMap {
    schedules: Vec<Option<Schedule>>,
}

impl SignalMap {
    /// An empty registry.
    pub fn new() -> Self {
        SignalMap::default()
    }

    /// Installs `schedule` on `light`.
    pub fn install(&mut self, light: LightId, schedule: Schedule) {
        let idx = light.0 as usize;
        if idx >= self.schedules.len() {
            self.schedules.resize(idx + 1, None);
        }
        self.schedules[idx] = Some(schedule);
    }

    /// Installs a coordinated static plan on every approach of
    /// `intersection`: N-S approaches get `plan.ns`, perpendicular ones the
    /// antiphase.
    pub fn install_intersection(
        &mut self,
        net: &RoadNetwork,
        intersection: IntersectionId,
        plan: IntersectionPlan,
    ) {
        self.install_intersection_with(net, intersection, plan, Schedule::Static);
    }

    /// Installs a schedule on every approach of `intersection`, mapping each
    /// approach's coordinated [`PhasePlan`] through `make` (e.g. to wrap the
    /// same timings into pre-programmed programmes). `make` receives the
    /// N-S plan for N-S approaches and its antiphase for the rest.
    pub fn install_intersection_with(
        &mut self,
        net: &RoadNetwork,
        intersection: IntersectionId,
        plan: IntersectionPlan,
        make: impl Fn(PhasePlan) -> Schedule,
    ) {
        for light in net.intersection(intersection).lights.clone() {
            self.install(light.id, make(plan.plan_for_heading(light.heading_deg)));
        }
    }

    /// The schedule of `light`, if installed.
    pub fn schedule(&self, light: LightId) -> Option<&Schedule> {
        self.schedules.get(light.0 as usize).and_then(|s| s.as_ref())
    }

    /// Ground truth: state of `light` at `t`.
    ///
    /// # Panics
    /// Panics when the light has no schedule.
    pub fn state(&self, light: LightId, t: Timestamp) -> LightState {
        self.schedule(light).expect("light has no schedule").state_at(t)
    }

    /// Ground truth: plan in force on `light` at `t`.
    ///
    /// # Panics
    /// Panics when the light has no schedule.
    pub fn plan(&self, light: LightId, t: Timestamp) -> PhasePlan {
        self.schedule(light).expect("light has no schedule").plan_at(t)
    }

    /// Ground truth for scheduling-change evaluation: the instants in
    /// `[from, to)` at which `light`'s plan changes, with the old and new
    /// plans. Linear scan at 1 Hz — meant for evaluation harnesses, not
    /// hot paths.
    ///
    /// # Panics
    /// Panics when the light has no schedule.
    pub fn plan_changes(
        &self,
        light: LightId,
        from: Timestamp,
        to: Timestamp,
    ) -> Vec<(Timestamp, PhasePlan, PhasePlan)> {
        let schedule = self.schedule(light).expect("light has no schedule");
        let mut changes = Vec::new();
        let mut prev = schedule.plan_at(from);
        let mut t = from.offset(1);
        while t < to {
            let cur = schedule.plan_at(t);
            if cur != prev {
                changes.push((t, prev, cur));
                prev = cur;
            }
            t = t.offset(1);
        }
        changes
    }

    /// Number of installed schedules.
    pub fn len(&self) -> usize {
        self.schedules.iter().filter(|s| s.is_some()).count()
    }

    /// True when no schedules are installed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Phase arithmetic is anchored to absolute epoch seconds, and the
    /// epoch is a midnight, so small absolute timestamps double as
    /// seconds-of-day for the programme-selection tests.
    fn t(sod: i64) -> Timestamp {
        Timestamp(sod)
    }

    #[test]
    fn phase_plan_basic_cycle() {
        // The paper's Fig. 10 example: cycle 98, red 39, green 59.
        let plan = PhasePlan::new(98, 39, 0);
        assert_eq!(plan.green_s(), 59);
        assert_eq!(plan.state_at(t(0)), LightState::Red);
        assert_eq!(plan.state_at(t(38)), LightState::Red);
        assert_eq!(plan.state_at(t(39)), LightState::Green);
        assert_eq!(plan.state_at(t(97)), LightState::Green);
        assert_eq!(plan.state_at(t(98)), LightState::Red); // next cycle
        assert_eq!(plan.cycle_position(t(100)), 2);
    }

    #[test]
    fn phase_plan_offset() {
        let plan = PhasePlan::new(100, 40, 25);
        assert_eq!(plan.state_at(t(24)), LightState::Green); // pos 99
        assert_eq!(plan.state_at(t(25)), LightState::Red); // pos 0
        assert_eq!(plan.state_at(t(64)), LightState::Red); // pos 39
        assert_eq!(plan.state_at(t(65)), LightState::Green); // pos 40
                                                             // Offsets normalise modulo cycle.
        assert_eq!(PhasePlan::new(100, 40, 225).offset_s, 25);
    }

    #[test]
    fn wait_for_green_counts_down() {
        let plan = PhasePlan::new(100, 40, 0);
        assert_eq!(plan.wait_for_green(t(0)), 40);
        assert_eq!(plan.wait_for_green(t(39)), 1);
        assert_eq!(plan.wait_for_green(t(40)), 0);
        assert_eq!(plan.wait_for_green(t(99)), 0);
        assert_eq!(plan.time_to_red(t(0)), 0);
        assert_eq!(plan.time_to_red(t(1)), 99);
        assert_eq!(plan.time_to_red(t(99)), 1);
    }

    #[test]
    #[should_panic(expected = "red must satisfy")]
    fn degenerate_red_rejected() {
        PhasePlan::new(90, 90, 0);
    }

    #[test]
    fn antiphase_is_exact_complement() {
        let plan = PhasePlan::new(98, 39, 12);
        let anti = plan.antiphase();
        assert_eq!(anti.cycle_s, 98);
        assert_eq!(anti.red_s, 59);
        for s in 0..200 {
            let a = plan.state_at(t(s));
            let b = anti.state_at(t(s));
            assert_ne!(a, b, "states must alternate at second {s}");
        }
    }

    #[test]
    fn shifted_moves_red_onset() {
        let plan = PhasePlan::new(100, 40, 10);
        let shifted = plan.shifted(15);
        assert_eq!(shifted.offset_s, 25);
        assert_eq!(shifted.state_at(t(25)), LightState::Red);
        assert_eq!(shifted.state_at(t(24)), LightState::Green);
    }

    #[test]
    fn daily_program_switches_plans() {
        let off_peak = PhasePlan::new(90, 40, 0);
        let peak = PhasePlan::new(140, 70, 0);
        let prog = DailyProgram::new(vec![
            (0, off_peak),
            (7 * 3600, peak),
            (9 * 3600, off_peak),
            (17 * 3600, peak),
            (19 * 3600, off_peak),
        ]);
        assert_eq!(prog.plan_at(t(3 * 3600)), off_peak);
        assert_eq!(prog.plan_at(t(8 * 3600)), peak);
        assert_eq!(prog.plan_at(t(12 * 3600)), off_peak);
        assert_eq!(prog.plan_at(t(18 * 3600)), peak);
        assert_eq!(prog.plan_at(t(23 * 3600)), off_peak);
        assert_eq!(prog.switch_times(), vec![7 * 3600, 9 * 3600, 17 * 3600, 19 * 3600]);
        // Same time next day uses the same plan (paper Fig. 12's
        // day-over-day repetition).
        assert_eq!(prog.plan_at(t(8 * 3600 + 86_400)), peak);
    }

    #[test]
    #[should_panic(expected = "first programme entry")]
    fn program_must_start_at_midnight() {
        DailyProgram::new(vec![(100, PhasePlan::new(90, 40, 0))]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn program_entries_sorted() {
        let p = PhasePlan::new(90, 40, 0);
        DailyProgram::new(vec![(0, p), (500, p), (500, p)]);
    }

    #[test]
    fn static_schedule_constant_forever() {
        let plan = PhasePlan::new(106, 63, 0);
        let sched = Schedule::Static(plan);
        assert_eq!(sched.plan_at(t(0)), plan);
        assert_eq!(sched.plan_at(t(500_000)), plan);
        assert_eq!(sched.state_at(t(62)), LightState::Red);
        assert_eq!(sched.state_at(t(63)), LightState::Green);
        assert_eq!(sched.wait_for_green(t(10)), 53);
    }

    #[test]
    fn manual_override_takes_precedence_inside_window() {
        let base_plan = PhasePlan::new(90, 45, 0);
        let override_plan = PhasePlan::new(160, 60, 0);
        let from = t(8 * 3600);
        let until = t(9 * 3600);
        let sched = Schedule::Manual {
            base: DailyProgram::constant(base_plan),
            overrides: vec![(from, until, override_plan)],
        };
        assert_eq!(sched.plan_at(t(7 * 3600)), base_plan);
        assert_eq!(sched.plan_at(t(8 * 3600 + 30 * 60)), override_plan);
        assert_eq!(sched.plan_at(t(9 * 3600)), base_plan); // window is half-open
                                                           // The next day the same wall-clock hour is NOT overridden.
        assert_eq!(sched.plan_at(t(8 * 3600 + 86_400)), base_plan);
    }

    #[test]
    fn north_south_classification() {
        assert!(is_north_south(0.0));
        assert!(is_north_south(180.0));
        assert!(is_north_south(350.0));
        assert!(is_north_south(170.0));
        assert!(!is_north_south(90.0));
        assert!(!is_north_south(270.0));
        assert!(!is_north_south(100.0));
        // 45° ties go to N-S by convention.
        assert!(is_north_south(45.0));
    }

    #[test]
    fn intersection_plan_coordinates_approaches() {
        let ns = PhasePlan::new(98, 39, 7);
        let plan = IntersectionPlan { ns };
        assert_eq!(plan.plan_for_heading(2.0), ns);
        assert_eq!(plan.plan_for_heading(178.0), ns);
        assert_eq!(plan.plan_for_heading(91.0), ns.antiphase());
        // All approaches share the cycle length.
        assert_eq!(plan.plan_for_heading(91.0).cycle_s, ns.cycle_s);
    }

    #[test]
    fn signal_map_install_and_query() {
        let mut map = SignalMap::new();
        assert!(map.is_empty());
        let plan = PhasePlan::new(100, 50, 0);
        map.install(LightId(3), Schedule::Static(plan));
        assert_eq!(map.len(), 1);
        assert_eq!(map.schedule(LightId(3)).unwrap().plan_at(t(0)), plan);
        assert_eq!(map.schedule(LightId(0)), None);
        assert_eq!(map.schedule(LightId(99)), None);
        assert_eq!(map.state(LightId(3), t(10)), LightState::Red);
        assert_eq!(map.plan(LightId(3), t(10)), plan);
    }

    #[test]
    #[should_panic(expected = "no schedule")]
    fn signal_map_missing_light_panics_on_state() {
        SignalMap::new().state(LightId(0), t(0));
    }

    #[test]
    fn plan_changes_finds_programme_switches() {
        let off_peak = PhasePlan::new(90, 40, 0);
        let peak = PhasePlan::new(140, 70, 0);
        let prog = DailyProgram::new(vec![(0, off_peak), (7 * 3600, peak), (9 * 3600, off_peak)]);
        let mut map = SignalMap::new();
        map.install(LightId(0), Schedule::PreProgrammed(prog));
        // Scan one day.
        let changes = map.plan_changes(LightId(0), t(0), t(86_400));
        assert_eq!(changes.len(), 2);
        assert_eq!(changes[0].0, t(7 * 3600));
        assert_eq!(changes[0].1, off_peak);
        assert_eq!(changes[0].2, peak);
        assert_eq!(changes[1].0, t(9 * 3600));
        // Static lights never change.
        map.install(LightId(1), Schedule::Static(off_peak));
        assert!(map.plan_changes(LightId(1), t(0), t(86_400)).is_empty());
    }

    #[test]
    fn manual_override_produces_two_changes() {
        let base = PhasePlan::new(90, 40, 0);
        let manual = PhasePlan::new(180, 90, 0);
        let mut map = SignalMap::new();
        map.install(
            LightId(0),
            Schedule::Manual {
                base: DailyProgram::constant(base),
                overrides: vec![(t(1000), t(4000), manual)],
            },
        );
        let changes = map.plan_changes(LightId(0), t(0), t(6000));
        assert_eq!(changes.len(), 2);
        assert_eq!(changes[0].0, t(1000));
        assert_eq!(changes[0].2, manual);
        assert_eq!(changes[1].0, t(4000));
        assert_eq!(changes[1].2, base);
    }
}
