//! Ready-made city scenarios for the experiments.
//!
//! [`paper_city`] builds the evaluation world of Sec. VIII: a city with
//! heterogeneous demand whose nine monitored intersections reproduce
//! Table II's busiest-to-idlest imbalance, a Sec.-III mix of controller
//! categories, and a fleet tuned so the trace statistics land on Fig. 2's
//! numbers. [`small_city`] is a fast variant for unit tests.

use crate::lights::SignalMap;
use crate::schedule_gen::{generate_signal_map, Category, ScheduleGenConfig};
use crate::sim::{SimConfig, Simulator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use taxilight_roadnet::generators::{grid_city, irregular_city, GridConfig, IrregularConfig};
use taxilight_roadnet::graph::{IntersectionId, RoadNetwork};
use taxilight_trace::record::Fleet;
use taxilight_trace::stream::TraceLog;
use taxilight_trace::time::Timestamp;

/// A complete simulation scenario: network, schedules, demand and fleet
/// configuration, plus which intersections the experiments monitor.
#[derive(Debug, Clone)]
pub struct CityScenario {
    /// The road network.
    pub net: RoadNetwork,
    /// Ground-truth signal schedules.
    pub signals: SignalMap,
    /// Controller category per intersection.
    pub categories: Vec<(IntersectionId, Category)>,
    /// The intersections the evaluation observes (paper: 9, covering both
    /// the busiest and minor roads).
    pub monitored: Vec<IntersectionId>,
    /// Fleet/simulation configuration (includes demand hotspots).
    pub sim_config: SimConfig,
}

impl CityScenario {
    /// Runs the scenario for `duration_s`, returning the trace log and
    /// fleet registry.
    pub fn run(&self, duration_s: u64) -> (TraceLog, Fleet) {
        let mut sim = Simulator::new(&self.net, &self.signals, self.sim_config.clone());
        sim.run(duration_s);
        sim.into_log()
    }

    /// Runs the scenario from a different start time (same everything
    /// else) — used by experiments that sample many time spots.
    pub fn run_from(&self, start: Timestamp, duration_s: u64) -> (TraceLog, Fleet) {
        let mut cfg = self.sim_config.clone();
        cfg.start = start;
        let mut sim = Simulator::new(&self.net, &self.signals, cfg);
        sim.run(duration_s);
        sim.into_log()
    }
}

/// Builds the paper's evaluation city.
///
/// * 6×6 grid (interior: 16 signalized intersections), 700 m blocks;
/// * category mix per Sec. III (majority static, downtown pre-programmed);
/// * 9 monitored intersections: a diagonal sample from the busiest core to
///   the idle fringe;
/// * demand hotspots around the core so monitored-intersection traffic
///   spans the ~25× range of Table II.
pub fn paper_city(seed: u64, taxi_count: usize) -> CityScenario {
    build_city(seed, taxi_count, 6, 700.0)
}

/// A smaller, faster scenario for tests: 4×4 grid, 4 intersections, short
/// blocks.
pub fn small_city(seed: u64, taxi_count: usize) -> CityScenario {
    build_city(seed, taxi_count, 4, 500.0)
}

/// Which street network a [`ScenarioSpec`] builds on.
#[derive(Debug, Clone)]
pub enum CityTopology {
    /// Regular Manhattan grid: `dim × dim` nodes, `spacing_m` blocks.
    Grid {
        /// Nodes per side.
        dim: usize,
        /// Block edge length, meters.
        spacing_m: f64,
    },
    /// Jittered geometry, mixed road classes, missing links
    /// ([`taxilight_roadnet::generators::irregular_city`]); the geometry
    /// seed is the scenario seed.
    Irregular(IrregularConfig),
}

/// A fully explicit scenario recipe: every degree of freedom the
/// evaluation matrix sweeps — topology, fleet size, reporting-period mix,
/// schedule family — plus the single `u64` seed that makes the whole
/// world (geometry, schedules, monitored set, demand, GPS noise)
/// reproducible bit-for-bit.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Master seed; geometry, schedules and simulation all derive from it.
    pub seed: u64,
    /// Fleet size.
    pub taxi_count: usize,
    /// Street network.
    pub topology: CityTopology,
    /// Schedule-family generator configuration (category mix, cycle range,
    /// peak programmes).
    pub schedule: ScheduleGenConfig,
    /// `(period_s, weight)` mix of per-taxi reporting periods; `None`
    /// keeps [`SimConfig::default`]'s 15/30/60 s mix.
    pub report_period_weights: Option<Vec<(u32, f64)>>,
    /// Wall-clock start of the scenario's day.
    pub start: Timestamp,
}

impl Default for ScenarioSpec {
    fn default() -> Self {
        ScenarioSpec {
            seed: 1,
            taxi_count: 150,
            topology: CityTopology::Grid { dim: 6, spacing_m: 700.0 },
            schedule: ScheduleGenConfig::default(),
            report_period_weights: None,
            start: Timestamp::civil(2014, 5, 21, 0, 0, 0),
        }
    }
}

/// Builds a scenario from an explicit [`ScenarioSpec`] — the general form
/// behind [`paper_city`]/[`small_city`], used by the evaluation matrix to
/// sweep topology, fleet, sampling interval and schedule family.
pub fn custom_city(spec: &ScenarioSpec) -> CityScenario {
    let (city, spacing_m) = match &spec.topology {
        CityTopology::Grid { dim, spacing_m } => (
            grid_city(&GridConfig {
                rows: *dim,
                cols: *dim,
                spacing_m: *spacing_m,
                ..GridConfig::default()
            }),
            *spacing_m,
        ),
        CityTopology::Irregular(cfg) => (irregular_city(cfg, spec.seed), cfg.spacing_m),
    };
    let (signals, categories) =
        generate_signal_map(&city.net, &spec.schedule, spec.start, spec.seed);

    // Monitor up to 9 intersections spread across the interior, ordered
    // from the demand core outward.
    let mut monitored: Vec<IntersectionId> = city.intersections.clone();
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0xC17F);
    while monitored.len() > 9 {
        // Drop random non-extreme entries, keeping the first (core) and the
        // last (fringe).
        let k = rng.gen_range(1..monitored.len() - 1);
        monitored.remove(k);
    }

    // Demand: a strong hotspot at the city core, decaying outward, so the
    // monitored set spans busy and idle intersections. On a grid the core
    // is the center node (exactly as before this builder was generalised,
    // keeping paper_city byte-identical); on irregular topology it is the
    // node nearest the network centroid.
    let core_pos = match &spec.topology {
        CityTopology::Grid { dim, .. } => city.net.node(city.node(dim / 2, dim / 2)).position,
        CityTopology::Irregular(_) => {
            let nodes = city.net.nodes();
            let n = nodes.len().max(1) as f64;
            let centroid_lat = nodes.iter().map(|nd| nd.position.lat).sum::<f64>() / n;
            let centroid_lon = nodes.iter().map(|nd| nd.position.lon).sum::<f64>() / n;
            nodes
                .iter()
                .min_by(|a, b| {
                    let da = (a.position.lat - centroid_lat).hypot(a.position.lon - centroid_lon);
                    let db = (b.position.lat - centroid_lat).hypot(b.position.lon - centroid_lon);
                    da.total_cmp(&db)
                })
                .map(|nd| nd.position)
                .expect("network has nodes")
        }
    };
    let mut hotspots = Vec::new();
    for node in city.net.nodes() {
        let d = node.position.distance_m(core_pos);
        // Weight 40 at the core, ~1 at 2.5 blocks away.
        let w = 1.0 + 39.0 * (-d / (1.2 * spacing_m)).exp();
        if w > 1.05 {
            hotspots.push((node.id, w));
        }
    }

    let mut sim_config = SimConfig {
        seed: spec.seed.wrapping_mul(0x9E37) ^ 0xBEEF,
        taxi_count: spec.taxi_count,
        start: spec.start,
        hotspot_weights: hotspots,
        ..SimConfig::default()
    };
    if let Some(weights) = &spec.report_period_weights {
        sim_config.report_period_weights = weights.clone();
    }

    CityScenario { net: city.net, signals, categories, monitored, sim_config }
}

fn build_city(seed: u64, taxi_count: usize, dim: usize, spacing_m: f64) -> CityScenario {
    custom_city(&ScenarioSpec {
        seed,
        taxi_count,
        topology: CityTopology::Grid { dim, spacing_m },
        ..ScenarioSpec::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxilight_trace::stats::TraceStatistics;

    #[test]
    fn paper_city_shape() {
        let scenario = paper_city(1, 10);
        assert_eq!(scenario.monitored.len(), 9);
        assert_eq!(scenario.net.intersections().len(), 16);
        assert_eq!(scenario.signals.len(), scenario.net.light_count());
        assert_eq!(scenario.categories.len(), 16);
        assert!(!scenario.sim_config.hotspot_weights.is_empty());
    }

    #[test]
    fn custom_city_on_irregular_topology() {
        let spec = ScenarioSpec {
            seed: 9,
            taxi_count: 20,
            topology: CityTopology::Irregular(IrregularConfig {
                rows: 4,
                cols: 4,
                spacing_m: 500.0,
                ..IrregularConfig::default()
            }),
            report_period_weights: Some(vec![(20, 1.0)]),
            ..ScenarioSpec::default()
        };
        let scenario = custom_city(&spec);
        assert!(!scenario.monitored.is_empty());
        assert_eq!(scenario.signals.len(), scenario.net.light_count());
        assert_eq!(scenario.sim_config.report_period_weights, vec![(20, 1.0)]);
        assert!(!scenario.sim_config.hotspot_weights.is_empty());
        // Same spec → same world.
        let again = custom_city(&spec);
        assert_eq!(scenario.sim_config.seed, again.sim_config.seed);
        assert_eq!(scenario.monitored, again.monitored);
    }

    #[test]
    fn small_city_runs_quickly() {
        let scenario = small_city(2, 15);
        let (mut log, fleet) = scenario.run(300);
        assert!(log.len() > 30);
        assert_eq!(fleet.len(), 15);
        assert!(log.time_range().is_some());
    }

    #[test]
    fn run_from_changes_start() {
        let scenario = small_city(3, 5);
        let later = Timestamp::civil(2014, 5, 22, 12, 0, 0);
        let (mut log, _) = scenario.run_from(later, 120);
        let (t0, t1) = log.time_range().unwrap();
        assert!(t0 >= later);
        assert!(t1 < later.offset(121));
    }

    /// Fig. 2 acceptance: the synthetic feed must reproduce the paper's
    /// trace statistics in shape — this is the evidence for the DESIGN.md
    /// substitution claim.
    #[test]
    fn fig2_acceptance_statistics() {
        let scenario = paper_city(7, 120);
        // Run 2 h of daytime traffic.
        let (mut log, _) = scenario.run_from(Timestamp::civil(2014, 5, 21, 9, 0, 0), 2 * 3600);
        let stats = TraceStatistics::compute(&mut log);

        // Paper: mean update interval 20.41 s (σ 20.54). Ours must sit in
        // the same low-tens band with meaningful spread from loss/mix.
        assert!(
            stats.interval.mean > 15.0 && stats.interval.mean < 45.0,
            "mean interval {}",
            stats.interval.mean
        );
        assert!(stats.interval.stddev > 5.0, "interval σ {}", stats.interval.stddev);

        // Paper: 42.66 % of consecutive updates are stationary (red lights
        // + passenger stops). Accept a generous band.
        assert!(
            stats.stationary_fraction > 0.15 && stats.stationary_fraction < 0.7,
            "stationary fraction {}",
            stats.stationary_fraction
        );

        // Paper: moving taxis cover 50–500 m between updates, mean ~100 m.
        assert!(
            stats.moving_distance.mean > 50.0 && stats.moving_distance.mean < 500.0,
            "moving distance mean {}",
            stats.moving_distance.mean
        );

        // Paper: speed differences fit N(0, σ): symmetric around zero.
        let (mu, sigma) = stats.speed_diff_normal;
        assert!(mu.abs() < 5.0, "speed-diff mean {mu}");
        assert!(sigma > 3.0, "speed-diff σ {sigma}");
    }

    /// Table II acceptance: monitored intersections must span a wide
    /// records-per-hour range (paper: 25× busiest/idlest).
    #[test]
    fn table2_acceptance_demand_imbalance() {
        let scenario = paper_city(11, 150);
        let (mut log, _) = scenario.run_from(Timestamp::civil(2014, 5, 21, 10, 0, 0), 3600);
        // Count records within 250 m of each monitored intersection.
        let mut counts = Vec::new();
        for &ix in &scenario.monitored {
            let pos = scenario.net.intersection(ix).position(&scenario.net);
            let n = log.records().iter().filter(|r| r.position.distance_m(pos) < 250.0).count();
            counts.push(n);
        }
        let max = *counts.iter().max().unwrap() as f64;
        let min = counts.iter().copied().filter(|&c| c > 0).min().unwrap_or(1).max(1) as f64;
        assert!(max / min >= 3.0, "demand imbalance too flat: {counts:?} (ratio {})", max / min);
    }
}
