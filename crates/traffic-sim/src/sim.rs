//! The microscopic city traffic simulator.
//!
//! This is the workspace's stand-in for the Shenzhen taxi fleet (DESIGN.md
//! substitution table): ~N taxis drive routed trips through a signalized
//! road network with per-lane queueing, stop at red lights, dwell for
//! passenger pick-ups/drop-offs, and upload Table-I records on their own
//! fixed periods through a lossy, noisy GPS channel. The paper's Fig. 2
//! statistics (update-interval mix, ~42 % stationary consecutive updates,
//! `N(0,σ)` speed differences, day-profile imbalance) all emerge from this
//! model and are pinned by the acceptance tests in `city.rs`.
//!
//! The simulation is a 1 Hz time-stepped model:
//!
//! * **Car following** — each vehicle accelerates toward the segment speed
//!   limit but respects a safe-braking envelope `v ≤ √(2·b·d)` to the
//!   nearest obstacle (queue leader or red stop line).
//! * **Queue discharge** — vehicles are processed front-to-back per
//!   segment, so a green light releases the platoon with natural staggering.
//! * **Trips** — destinations are sampled (optionally hotspot-weighted, the
//!   source of the paper's 25× spatial imbalance), routed with Dijkstra,
//!   and capped with a dwell at both trip ends; street hails add random
//!   roadside stops that pollute stop-duration statistics exactly like the
//!   paper's "stochastic on and off of passengers".
//! * **Fleet activity** — an hourly activity profile parks part of the
//!   fleet (driver shifts), producing Fig. 2(a)'s unbalanced day profile.

use crate::lights::{LightState, SignalMap};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use taxilight_roadnet::graph::{NodeId, RoadNetwork, SegmentId};
use taxilight_roadnet::routing::shortest_time_route;
use taxilight_trace::record::{Fleet, GpsCondition, PassengerState, TaxiId, TaxiRecord};
use taxilight_trace::stream::TraceLog;
use taxilight_trace::time::Timestamp;
use taxilight_trace::GeoPoint;

/// Simulator configuration. Defaults reproduce the paper's Fig. 2 feed
/// statistics at laptop scale.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// RNG seed; every run is deterministic in this value.
    pub seed: u64,
    /// Fleet size.
    pub taxi_count: usize,
    /// Wall-clock start of the simulation.
    pub start: Timestamp,
    /// Maximum acceleration, m/s².
    pub accel_ms2: f64,
    /// Comfortable braking used in the safe-speed envelope, m/s².
    pub decel_ms2: f64,
    /// Minimum bumper-to-bumper spacing in a queue, meters.
    pub headway_m: f64,
    /// First vehicle stops this far before the intersection node, meters.
    pub stopline_offset_m: f64,
    /// `(period_s, weight)` mix of per-taxi fixed reporting periods —
    /// Fig. 2(b)'s 15/30/60 s clusters.
    pub report_period_weights: Vec<(u32, f64)>,
    /// Std-dev of ordinary GPS position noise, meters.
    pub gps_noise_sigma_m: f64,
    /// Probability a fix carries a gross urban-canyon error.
    pub gps_gross_error_prob: f64,
    /// Magnitude of gross errors, meters (paper: "up to 100 meters").
    pub gps_gross_error_m: f64,
    /// Probability the GPS condition flag reads "unavailable".
    pub gps_unavailable_prob: f64,
    /// Probability an upload is lost in the cellular network.
    pub packet_loss_prob: f64,
    /// Std-dev of the reported-speed noise, km/h.
    pub speed_noise_kmh: f64,
    /// Std-dev of the reported-heading noise, degrees.
    pub heading_noise_deg: f64,
    /// Per-second probability a vacant moving taxi stops for a street hail.
    pub street_hail_prob_per_s: f64,
    /// Passenger dwell range `(min_s, max_s)`.
    pub dwell_range_s: (u32, u32),
    /// Probability that a passenger stop turns into a longer between-fare
    /// rank idle (drivers waiting for the next fare, eating, resting).
    pub rank_idle_prob: f64,
    /// Rank idle duration range `(min_s, max_s)`.
    pub rank_idle_range_s: (u32, u32),
    /// Fraction of the fleet active in each hour of day.
    pub hourly_activity: [f64; 24],
    /// Destination sampling weights; nodes not listed weigh 1.0. This is
    /// how Table II's 25× busiest-to-idlest imbalance is injected.
    pub hotspot_weights: Vec<(NodeId, f64)>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 1,
            taxi_count: 200,
            start: Timestamp::civil(2014, 5, 21, 0, 0, 0),
            accel_ms2: 2.0,
            decel_ms2: 2.5,
            headway_m: 7.0,
            stopline_offset_m: 3.0,
            report_period_weights: vec![(15, 0.35), (30, 0.35), (60, 0.15), (20, 0.10), (45, 0.05)],
            gps_noise_sigma_m: 12.0,
            gps_gross_error_prob: 0.01,
            gps_gross_error_m: 100.0,
            gps_unavailable_prob: 0.005,
            packet_loss_prob: 0.04,
            speed_noise_kmh: 1.5,
            heading_noise_deg: 5.0,
            street_hail_prob_per_s: 4.0e-4,
            dwell_range_s: (15, 60),
            rank_idle_prob: 0.25,
            rank_idle_range_s: (90, 420),
            hourly_activity: [
                0.55, 0.45, 0.40, 0.35, 0.40, 0.55, 0.70, 0.85, 0.95, 0.90, 0.85, 0.85, 0.80, 0.85,
                0.90, 0.90, 0.90, 0.95, 0.90, 0.85, 0.80, 0.75, 0.70, 0.60,
            ],
            hotspot_weights: Vec::new(),
        }
    }
}

/// Why a taxi is currently not driving.
///
/// A dwelling taxi has *pulled over*: it is removed from its segment's
/// queue so traffic passes it, exactly like a curbside pick-up. It rejoins
/// the lane when the dwell expires and a gap is available.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dwell {
    /// Driving normally.
    None,
    /// Stopped curbside for a passenger event until the embedded
    /// sim-second; the passenger state toggles when it expires.
    Passenger(i64),
}

#[derive(Debug, Clone)]
struct Taxi {
    id: TaxiId,
    seg: SegmentId,
    pos_m: f64,
    speed_ms: f64,
    /// Remaining route after the current segment (reversed: pop from back).
    route_rev: Vec<SegmentId>,
    period_s: u32,
    next_report: i64,
    passenger: PassengerState,
    dwell: Dwell,
    /// Position on the current segment at which a planned curbside stop
    /// (trip-end pick-up/drop-off) will happen.
    pending_stop_m: Option<f64>,
    active: bool,
    /// Last reported fix, reused verbatim while the vehicle is stationary —
    /// real receivers suppress static drift, which is what makes the
    /// paper's Fig. 2(c) "same position between consecutive updates" spike
    /// possible at all.
    last_fix: Option<GeoPoint>,
}

/// The simulator. Owns the fleet, the vehicle states and the accumulated
/// trace log; the caller owns the network and the signal map.
pub struct Simulator<'a> {
    net: &'a RoadNetwork,
    signals: &'a SignalMap,
    cfg: SimConfig,
    rng: StdRng,
    taxis: Vec<Taxi>,
    /// Per-segment vehicle indices ordered front (largest `pos_m`) first.
    occupancy: Vec<Vec<u32>>,
    fleet: Fleet,
    log: TraceLog,
    /// Seconds elapsed since `cfg.start`.
    now_s: i64,
    dest_weights: Vec<f64>,
    dest_weight_total: f64,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator and places the fleet at random positions.
    ///
    /// # Panics
    /// Panics when the network has no segments or the config is degenerate.
    pub fn new(net: &'a RoadNetwork, signals: &'a SignalMap, cfg: SimConfig) -> Self {
        assert!(net.segment_count() > 0, "network has no segments");
        assert!(cfg.taxi_count > 0, "need at least one taxi");
        assert!(!cfg.report_period_weights.is_empty(), "need report periods");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut fleet = Fleet::new();
        let ids = fleet.register_many(cfg.taxi_count);

        let mut dest_weights = vec![1.0; net.node_count()];
        for &(node, w) in &cfg.hotspot_weights {
            dest_weights[node.0 as usize] = w;
        }
        let dest_weight_total = dest_weights.iter().sum();

        let mut occupancy = vec![Vec::new(); net.segment_count()];
        let mut taxis = Vec::with_capacity(cfg.taxi_count);
        for (k, id) in ids.into_iter().enumerate() {
            let seg = SegmentId(rng.gen_range(0..net.segment_count() as u32));
            let pos = rng.gen_range(0.0..net.segment(seg).length_m * 0.5);
            let period = sample_weighted(&mut rng, &cfg.report_period_weights);
            let phase = rng.gen_range(0..period.max(1)) as i64;
            taxis.push(Taxi {
                id,
                seg,
                pos_m: pos,
                speed_ms: 0.0,
                route_rev: Vec::new(),
                period_s: period,
                next_report: phase,
                passenger: if rng.gen_bool(0.4) {
                    PassengerState::Occupied
                } else {
                    PassengerState::Vacant
                },
                dwell: Dwell::None,
                pending_stop_m: None,
                active: true,
                last_fix: None,
            });
            occupancy[seg.0 as usize].push(k as u32);
        }
        // Order each segment's queue front-first.
        let taxis_ref = &taxis;
        for occ in &mut occupancy {
            occ.sort_by(|&a, &b| {
                taxis_ref[b as usize].pos_m.total_cmp(&taxis_ref[a as usize].pos_m)
            });
        }

        Simulator {
            net,
            signals,
            cfg,
            rng,
            taxis,
            occupancy,
            fleet,
            log: TraceLog::new(),
            now_s: 0,
            dest_weights,
            dest_weight_total,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> Timestamp {
        self.cfg.start.offset(self.now_s)
    }

    /// The fleet registry (for CSV encoding).
    pub fn fleet(&self) -> &Fleet {
        &self.fleet
    }

    /// Records accumulated so far.
    pub fn log(&self) -> &TraceLog {
        &self.log
    }

    /// Consumes the simulator, returning `(log, fleet)`.
    pub fn into_log(self) -> (TraceLog, Fleet) {
        (self.log, self.fleet)
    }

    /// Runs the simulation for `duration_s` seconds.
    pub fn run(&mut self, duration_s: u64) {
        for _ in 0..duration_s {
            self.step();
        }
    }

    /// Advances the simulation by one second.
    pub fn step(&mut self) {
        let now = self.now();
        if self.now_s % 3600 == 0 {
            self.update_activity(now);
        }
        self.resume_dwellers();
        self.move_vehicles(now);
        self.emit_reports(now);
        self.now_s += 1;
    }

    /// Returns expired curbside dwellers to the lane when a gap exists.
    fn resume_dwellers(&mut self) {
        for ti in 0..self.taxis.len() {
            let Dwell::Passenger(until) = self.taxis[ti].dwell else { continue };
            if !self.taxis[ti].active || self.now_s < until {
                continue;
            }
            let seg = self.taxis[ti].seg;
            let pos = self.taxis[ti].pos_m;
            let gap_free = self.occupancy[seg.0 as usize]
                .iter()
                .all(|&i| (self.taxis[i as usize].pos_m - pos).abs() >= self.cfg.headway_m);
            if !gap_free {
                continue; // keep waiting at the curb for a gap
            }
            let t = &mut self.taxis[ti];
            t.dwell = Dwell::None;
            t.passenger = match t.passenger {
                PassengerState::Vacant => PassengerState::Occupied,
                PassengerState::Occupied => PassengerState::Vacant,
            };
            self.occupancy[seg.0 as usize].push(ti as u32);
        }
    }

    /// Pulls taxi `ti` out of the lane for a passenger dwell — occasionally
    /// a long between-fare rank idle instead of a quick pick-up/drop-off.
    fn start_dwell(&mut self, ti: usize) {
        let dwell = if self.cfg.rank_idle_prob > 0.0 && self.rng.gen_bool(self.cfg.rank_idle_prob) {
            self.rng.gen_range(self.cfg.rank_idle_range_s.0..=self.cfg.rank_idle_range_s.1)
        } else {
            self.rng.gen_range(self.cfg.dwell_range_s.0..=self.cfg.dwell_range_s.1)
        };
        let seg = self.taxis[ti].seg;
        self.taxis[ti].dwell = Dwell::Passenger(self.now_s + dwell as i64);
        self.taxis[ti].speed_ms = 0.0;
        self.taxis[ti].pending_stop_m = None;
        self.occupancy[seg.0 as usize].retain(|&i| i as usize != ti);
    }

    /// Ground-truth position of a taxi (mostly for tests/diagnostics).
    pub fn taxi_position(&self, taxi: TaxiId) -> GeoPoint {
        let t = &self.taxis[taxi.0 as usize];
        self.segment_point(t.seg, t.pos_m)
    }

    /// Ground-truth speed of a taxi in m/s.
    pub fn taxi_speed_ms(&self, taxi: TaxiId) -> f64 {
        self.taxis[taxi.0 as usize].speed_ms
    }

    fn segment_point(&self, seg: SegmentId, pos_m: f64) -> GeoPoint {
        let s = self.net.segment(seg);
        let from = self.net.node(s.from).position;
        from.destination(s.heading_deg, pos_m.clamp(0.0, s.length_m))
    }

    /// Deterministic per-(taxi, hour) activity decision.
    fn update_activity(&mut self, now: Timestamp) {
        let hour = now.hour_of_day() as usize;
        let target = self.cfg.hourly_activity[hour];
        let hour_index = now.0.div_euclid(3600);
        for k in 0..self.taxis.len() {
            let h = splitmix64(
                self.cfg.seed ^ (k as u64).wrapping_mul(0x9E3779B97F4A7C15) ^ hour_index as u64,
            );
            let active = (h >> 11) as f64 / (1u64 << 53) as f64 * 0.999 < target;
            if active != self.taxis[k].active {
                if active {
                    self.reinsert(k);
                } else {
                    self.remove_from_occupancy(k);
                }
                self.taxis[k].active = active;
                self.taxis[k].speed_ms = 0.0;
            }
        }
    }

    fn remove_from_occupancy(&mut self, taxi_idx: usize) {
        let seg = self.taxis[taxi_idx].seg.0 as usize;
        self.occupancy[seg].retain(|&i| i as usize != taxi_idx);
    }

    /// Puts a (re)activated taxi at the start of a random segment.
    fn reinsert(&mut self, taxi_idx: usize) {
        let seg = SegmentId(self.rng.gen_range(0..self.net.segment_count() as u32));
        self.taxis[taxi_idx].seg = seg;
        self.taxis[taxi_idx].pos_m = 0.0;
        self.taxis[taxi_idx].route_rev.clear();
        self.taxis[taxi_idx].dwell = Dwell::None;
        self.taxis[taxi_idx].pending_stop_m = None;
        self.occupancy[seg.0 as usize].push(taxi_idx as u32);
    }

    fn move_vehicles(&mut self, now: Timestamp) {
        let dt = 1.0;
        // Vehicles that finish their segment this step: (taxi index).
        let mut crossings: Vec<u32> = Vec::new();
        // Vehicles that pull over for a passenger this step.
        let mut to_dwell: Vec<u32> = Vec::new();

        for seg_idx in 0..self.occupancy.len() {
            if self.occupancy[seg_idx].is_empty() {
                continue;
            }
            let seg = self.net.segment(SegmentId(seg_idx as u32));
            let light = self.net.light_of_segment(seg.id);
            let red = light.map(|l| self.signals.state(l, now) == LightState::Red).unwrap_or(false);
            let stop_target = seg.length_m - self.cfg.stopline_offset_m;
            let v_limit = seg.speed_limit_kmh / 3.6;

            let mut leader_tail: Option<f64> = None; // leader pos minus headway
            let mut occ = std::mem::take(&mut self.occupancy[seg_idx]);
            // Entrants were appended at the rear; restore front-first order.
            occ.sort_by(|&a, &b| {
                self.taxis[b as usize].pos_m.total_cmp(&self.taxis[a as usize].pos_m)
            });
            for &ti in &occ {
                let ti_us = ti as usize;
                let pos = self.taxis[ti_us].pos_m;
                // Nearest obstacle ahead on this segment.
                let mut obstacle: Option<f64> = leader_tail;
                if red {
                    let red_stop = stop_target.max(0.0);
                    obstacle = Some(match obstacle {
                        Some(o) => o.min(red_stop),
                        None => red_stop,
                    });
                }
                let v_safe = match obstacle {
                    Some(o) => {
                        let d = (o - pos).max(0.0);
                        (2.0 * self.cfg.decel_ms2 * d).sqrt()
                    }
                    None => f64::INFINITY,
                };
                let t = &mut self.taxis[ti_us];
                let v_new = (t.speed_ms + self.cfg.accel_ms2 * dt).min(v_limit).min(v_safe);
                t.speed_ms = v_new.max(0.0);
                t.pos_m += t.speed_ms * dt;
                if let Some(o) = obstacle {
                    if t.pos_m > o {
                        t.pos_m = o.max(pos);
                        t.speed_ms = 0.0;
                    }
                }
                leader_tail = Some(t.pos_m - self.cfg.headway_m);

                // Planned curbside stop reached (trip-end passenger event).
                let reached_curb =
                    self.taxis[ti_us].pending_stop_m.is_some_and(|p| self.taxis[ti_us].pos_m >= p);
                // Street hail: vacant, moving, random.
                let hailed = self.taxis[ti_us].passenger == PassengerState::Vacant
                    && self.taxis[ti_us].speed_ms > 2.0
                    && self.rng.gen_bool(self.cfg.street_hail_prob_per_s);
                if reached_curb || hailed {
                    to_dwell.push(ti);
                    continue;
                }

                if self.taxis[ti_us].pos_m >= seg.length_m {
                    crossings.push(ti);
                }
            }
            self.occupancy[seg_idx] = occ;
        }

        for ti in to_dwell {
            self.start_dwell(ti as usize);
        }
        for ti in crossings {
            self.cross_into_next_segment(ti as usize);
        }
    }

    /// Moves a taxi that completed its segment onto the next route segment,
    /// extending the route when exhausted.
    fn cross_into_next_segment(&mut self, ti: usize) {
        let old_seg = self.taxis[ti].seg;
        let old_len = self.net.segment(old_seg).length_m;
        let overshoot = (self.taxis[ti].pos_m - old_len).max(0.0);

        let mut trip_finished = false;
        let next = match self.taxis[ti].route_rev.pop() {
            Some(seg) => Some(seg),
            None => {
                // Trip finished: plan the next trip and schedule a curbside
                // passenger stop partway down the next segment — taxis pull
                // over mid-block, not in the middle of the intersection.
                trip_finished = true;
                let end_node = self.net.segment(old_seg).to;
                self.plan_trip(ti, end_node)
            }
        };

        match next {
            Some(seg) => {
                let entry = overshoot.min(self.net.segment(seg).length_m);
                if trip_finished {
                    let frac = self.rng.gen_range(0.2..0.7);
                    self.taxis[ti].pending_stop_m = Some(self.net.segment(seg).length_m * frac);
                }
                // Entry blocking: hold at the boundary while the target
                // segment's rear vehicle is within one headway.
                let rear_min = self.occupancy[seg.0 as usize]
                    .iter()
                    .map(|&i| self.taxis[i as usize].pos_m)
                    .fold(f64::INFINITY, f64::min);
                if rear_min >= entry + self.cfg.headway_m {
                    self.occupancy[old_seg.0 as usize].retain(|&i| i as usize != ti);
                    self.taxis[ti].seg = seg;
                    self.taxis[ti].pos_m = entry;
                    self.occupancy[seg.0 as usize].push(ti as u32);
                } else {
                    self.taxis[ti].route_rev.push(seg); // retry next step
                    self.taxis[ti].pos_m = old_len;
                    self.taxis[ti].speed_ms = 0.0;
                }
            }
            None => {
                // Nowhere to go (isolated node): park the taxi here.
                self.taxis[ti].pos_m = old_len;
                self.taxis[ti].speed_ms = 0.0;
            }
        }
    }

    /// Samples a destination and routes to it; fills `route_rev` and
    /// returns the first segment, or `None` when no destination is
    /// reachable.
    fn plan_trip(&mut self, ti: usize, from: NodeId) -> Option<SegmentId> {
        for _attempt in 0..8 {
            let dest = self.sample_destination();
            if dest == from {
                continue;
            }
            if let Some(route) = shortest_time_route(self.net, from, dest) {
                if route.segments.is_empty() {
                    continue;
                }
                let mut rev = route.segments;
                rev.reverse();
                let first = rev.pop().expect("non-empty route");
                self.taxis[ti].route_rev = rev;
                return Some(first);
            }
        }
        None
    }

    fn sample_destination(&mut self) -> NodeId {
        let mut target = self.rng.gen_range(0.0..self.dest_weight_total);
        for (k, &w) in self.dest_weights.iter().enumerate() {
            if target < w {
                return NodeId(k as u32);
            }
            target -= w;
        }
        NodeId((self.net.node_count() - 1) as u32)
    }

    fn emit_reports(&mut self, now: Timestamp) {
        for ti in 0..self.taxis.len() {
            if self.now_s < self.taxis[ti].next_report {
                continue;
            }
            // Off-shift taxis keep uploading (the onboard unit stays on),
            // just less often — the source of the fleet's huge
            // same-position share (paper Fig. 2c) and of the day-profile
            // imbalance (Fig. 2a) at the same time.
            let period = if self.taxis[ti].active {
                self.taxis[ti].period_s as i64
            } else {
                self.taxis[ti].period_s as i64 * 3
            };
            self.taxis[ti].next_report = self.now_s + period;
            if self.rng.gen_bool(self.cfg.packet_loss_prob) {
                continue;
            }
            let record = self.observe(ti, now);
            self.log.push(record);
        }
    }

    /// Builds the noisy Table-I observation of taxi `ti`.
    fn observe(&mut self, ti: usize, now: Timestamp) -> TaxiRecord {
        let seg = self.net.segment(self.taxis[ti].seg);
        let true_pos = self.segment_point(self.taxis[ti].seg, self.taxis[ti].pos_m);
        let stationary = self.taxis[ti].speed_ms < 0.3;

        // Static drift suppression: a stationary receiver repeats its last
        // fix while the vehicle stays within about one noise sigma of it.
        // The radius matters: queue creep (a few meters per discharge step)
        // must eventually break the hold or stop durations would absorb the
        // whole queue wait.
        let hold_radius = self.cfg.gps_noise_sigma_m.max(5.0);
        let position = match self.taxis[ti].last_fix {
            Some(held) if stationary && held.distance_m(true_pos) < hold_radius => held,
            _ => {
                let noise_m = if self.rng.gen_bool(self.cfg.gps_gross_error_prob) {
                    self.rng.gen_range(0.3..1.0) * self.cfg.gps_gross_error_m
                } else {
                    gaussian(&mut self.rng, 0.0, self.cfg.gps_noise_sigma_m).abs()
                };
                let noise_bearing = self.rng.gen_range(0.0..360.0);
                true_pos.destination(noise_bearing, noise_m)
            }
        };
        self.taxis[ti].last_fix = Some(position);

        let speed_kmh = if stationary {
            0.0
        } else {
            (self.taxis[ti].speed_ms * 3.6 + gaussian(&mut self.rng, 0.0, self.cfg.speed_noise_kmh))
                .max(0.0)
        };
        let heading_deg = (seg.heading_deg
            + gaussian(&mut self.rng, 0.0, self.cfg.heading_noise_deg))
        .rem_euclid(360.0);
        let gps = if self.rng.gen_bool(self.cfg.gps_unavailable_prob) {
            GpsCondition::Unavailable
        } else {
            GpsCondition::Available
        };
        TaxiRecord {
            taxi: self.taxis[ti].id,
            position,
            time: now,
            speed_kmh,
            heading_deg,
            gps,
            overspeed: speed_kmh > seg.speed_limit_kmh + 5.0,
            passenger: self.taxis[ti].passenger,
        }
    }
}

/// Samples from `(value, weight)` pairs.
fn sample_weighted(rng: &mut StdRng, weights: &[(u32, f64)]) -> u32 {
    let total: f64 = weights.iter().map(|(_, w)| w).sum();
    let mut target = rng.gen_range(0.0..total);
    for &(v, w) in weights {
        if target < w {
            return v;
        }
        target -= w;
    }
    weights.last().expect("non-empty weights").0
}

/// Standard normal via Box–Muller, scaled to `(mean, sigma)`.
fn gaussian(rng: &mut StdRng, mean: f64, sigma: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    mean + sigma * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// SplitMix64 hash for deterministic per-(taxi, hour) decisions.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lights::{IntersectionPlan, PhasePlan};
    use taxilight_roadnet::generators::{grid_city, GridConfig};

    fn start() -> Timestamp {
        Timestamp::civil(2014, 5, 21, 9, 0, 0)
    }

    /// 3×3 grid, one signalized centre intersection, fixed 100/50 plan.
    fn small_world() -> (taxilight_roadnet::generators::GeneratedCity, SignalMap) {
        let city =
            grid_city(&GridConfig { rows: 3, cols: 3, spacing_m: 600.0, ..GridConfig::default() });
        let mut signals = SignalMap::new();
        let plan = IntersectionPlan { ns: PhasePlan::new(100, 50, 0) };
        for &ix in &city.intersections {
            signals.install_intersection(&city.net, ix, plan);
        }
        (city, signals)
    }

    fn quiet_config(taxis: usize) -> SimConfig {
        SimConfig {
            taxi_count: taxis,
            start: start(),
            // Deterministic-ish: no noise, no loss, no hails, fully active.
            gps_noise_sigma_m: 0.0,
            gps_gross_error_prob: 0.0,
            gps_unavailable_prob: 0.0,
            packet_loss_prob: 0.0,
            speed_noise_kmh: 0.0,
            heading_noise_deg: 0.0,
            street_hail_prob_per_s: 0.0,
            hourly_activity: [1.0; 24],
            ..SimConfig::default()
        }
    }

    #[test]
    fn runs_and_produces_records() {
        let (city, signals) = small_world();
        let mut sim = Simulator::new(&city.net, &signals, quiet_config(20));
        sim.run(300);
        assert!(sim.log().len() > 50, "got {} records", sim.log().len());
        assert_eq!(sim.now(), start().offset(300));
        assert_eq!(sim.fleet().len(), 20);
    }

    #[test]
    fn deterministic_in_seed() {
        let (city, signals) = small_world();
        let run = |seed| {
            let mut cfg = quiet_config(10);
            cfg.seed = seed;
            let mut sim = Simulator::new(&city.net, &signals, cfg);
            sim.run(200);
            let (mut log, fleet) = sim.into_log();
            (log.records().to_vec(), fleet.len())
        };
        let (a, _) = run(5);
        let (b, _) = run(5);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.time, y.time);
            assert_eq!(x.taxi, y.taxi);
            assert!((x.speed_kmh - y.speed_kmh).abs() < 1e-12);
        }
        let (c, _) = run(6);
        assert!(a.len() != c.len() || a.iter().zip(&c).any(|(x, y)| x.speed_kmh != y.speed_kmh));
    }

    #[test]
    fn speeds_never_exceed_limits_grossly() {
        let (city, signals) = small_world();
        let mut sim = Simulator::new(&city.net, &signals, quiet_config(30));
        sim.run(600);
        let (mut log, _) = sim.into_log();
        for r in log.records() {
            assert!(r.speed_kmh <= 51.0, "speed {} km/h", r.speed_kmh);
            assert!(r.speed_kmh >= 0.0);
        }
    }

    #[test]
    fn report_periods_are_respected() {
        let (city, signals) = small_world();
        let mut cfg = quiet_config(25);
        cfg.report_period_weights = vec![(30, 1.0)];
        let mut sim = Simulator::new(&city.net, &signals, cfg);
        sim.run(400);
        let (mut log, _) = sim.into_log();
        for (a, b) in log.consecutive_pairs() {
            assert_eq!(b.time.delta(a.time), 30, "taxi {:?}", a.taxi);
        }
    }

    #[test]
    fn packet_loss_stretches_intervals_to_multiples() {
        let (city, signals) = small_world();
        let mut cfg = quiet_config(25);
        cfg.report_period_weights = vec![(20, 1.0)];
        cfg.packet_loss_prob = 0.3;
        let mut sim = Simulator::new(&city.net, &signals, cfg);
        sim.run(600);
        let (mut log, _) = sim.into_log();
        let mut saw_gap = false;
        for (a, b) in log.consecutive_pairs() {
            let d = b.time.delta(a.time);
            assert_eq!(d % 20, 0, "interval {d} not a multiple of the period");
            if d > 20 {
                saw_gap = true;
            }
        }
        assert!(saw_gap, "30% loss must create gaps");
    }

    #[test]
    fn vehicles_stop_at_red_and_cross_on_green() {
        // One-road world: a single 500 m eastbound segment into a
        // signalized node, then an exit segment.
        let origin = GeoPoint::new(22.53, 114.05);
        let mut net = RoadNetwork::new();
        let a = net.add_node(origin);
        let b = net.add_node(origin.destination(90.0, 500.0));
        let c = net.add_node(origin.destination(90.0, 1000.0));
        let approach = net.add_segment(a, b, 50.0);
        let _exit = net.add_segment(b, c, 50.0);
        net.add_segment(b, a, 50.0); // so trips can route back
        net.add_segment(c, b, 50.0);
        let ix = net.signalize(b);
        let mut signals = SignalMap::new();
        // The approach heads east: install the intersection so the EW
        // approach is red for the first 60 s of each 120 s cycle. The
        // antiphase trick: set NS red = 60 starting at 60.
        signals.install_intersection(
            &net,
            ix,
            IntersectionPlan { ns: PhasePlan::new(120, 60, 60) },
        );
        let approach_light = net.light_of_segment(approach).unwrap();
        // Confirm ground truth: EW red during [0, 60).
        assert_eq!(signals.state(approach_light, start()), LightState::Red);
        assert_eq!(signals.state(approach_light, start().offset(60)), LightState::Green);

        let mut cfg = quiet_config(1);
        cfg.dwell_range_s = (1, 2);
        let mut sim = Simulator::new(&net, &signals, cfg);
        // Pin the taxi at the start of the approach.
        sim.taxis[0].seg = approach;
        sim.taxis[0].pos_m = 0.0;
        sim.taxis[0].speed_ms = 0.0;
        sim.taxis[0].dwell = Dwell::None;
        sim.occupancy = vec![Vec::new(); net.segment_count()];
        sim.occupancy[approach.0 as usize].push(0);

        // During red the taxi must stop before the stop line.
        for _ in 0..60 {
            sim.step();
            let t = &sim.taxis[0];
            if t.seg == approach {
                assert!(t.pos_m <= 500.0 - 2.9, "ran the red at {}", t.pos_m);
            }
        }
        let stopped_pos = sim.taxis[0].pos_m;
        assert!(
            (stopped_pos - 497.0).abs() < 2.0,
            "should be waiting at the stop line, at {stopped_pos}"
        );
        assert_eq!(sim.taxis[0].speed_ms, 0.0);
        // After green it crosses within a few seconds.
        for _ in 0..15 {
            sim.step();
        }
        assert_ne!(sim.taxis[0].seg, approach, "taxi should have crossed on green");
    }

    #[test]
    fn queue_preserves_headway() {
        let (city, signals) = small_world();
        let mut sim = Simulator::new(&city.net, &signals, quiet_config(40));
        sim.run(900);
        // No two taxis on one segment closer than ~headway (dwell pullover
        // is exempt in reality; our model keeps them in-lane so spacing
        // holds universally).
        for occ in &sim.occupancy {
            let mut prev: Option<f64> = None;
            for &ti in occ {
                let pos = sim.taxis[ti as usize].pos_m;
                if let Some(p) = prev {
                    assert!(
                        p - pos >= sim.cfg.headway_m - 1.5,
                        "taxis {:.1} and {:.1} overlap",
                        p,
                        pos
                    );
                }
                prev = Some(pos);
            }
        }
    }

    #[test]
    fn occupancy_is_consistent_with_taxis() {
        let (city, signals) = small_world();
        let mut sim = Simulator::new(&city.net, &signals, quiet_config(30));
        sim.run(500);
        let mut seen = vec![0usize; sim.taxis.len()];
        for (seg_idx, occ) in sim.occupancy.iter().enumerate() {
            for &ti in occ {
                assert_eq!(sim.taxis[ti as usize].seg.0 as usize, seg_idx);
                seen[ti as usize] += 1;
            }
        }
        for (ti, &count) in seen.iter().enumerate() {
            let in_lane = sim.taxis[ti].active && matches!(sim.taxis[ti].dwell, Dwell::None);
            assert_eq!(count, usize::from(in_lane), "taxi {ti} appears {count} times");
        }
    }

    #[test]
    fn hourly_activity_parks_part_of_the_fleet() {
        let (city, signals) = small_world();
        let mut cfg = quiet_config(60);
        cfg.hourly_activity = [0.3; 24];
        let mut sim = Simulator::new(&city.net, &signals, cfg);
        sim.run(3); // activity applied at step 0
        let active = sim.taxis.iter().filter(|t| t.active).count();
        assert!(active > 5 && active < 40, "active = {active}");
    }

    #[test]
    fn hotspot_weights_skew_visits() {
        let (city, signals) = small_world();
        let hot = city.node(1, 1);
        let mut cfg = quiet_config(40);
        cfg.hotspot_weights = vec![(hot, 60.0)];
        cfg.dwell_range_s = (1, 3);
        let mut sim = Simulator::new(&city.net, &signals, cfg);
        sim.run(1800);
        let (mut log, _) = sim.into_log();
        let hot_pos = city.net.node(hot).position;
        let far_pos = city.net.node(city.node(0, 0)).position;
        let near_hot =
            log.records().iter().filter(|r| r.position.distance_m(hot_pos) < 400.0).count();
        let near_far =
            log.records().iter().filter(|r| r.position.distance_m(far_pos) < 400.0).count();
        assert!(
            near_hot > near_far,
            "hotspot should attract more traffic: {near_hot} vs {near_far}"
        );
    }

    #[test]
    fn gross_gps_errors_appear_at_configured_rate() {
        let (city, signals) = small_world();
        let mut cfg = quiet_config(30);
        cfg.gps_noise_sigma_m = 5.0;
        cfg.gps_gross_error_prob = 0.05;
        let mut sim = Simulator::new(&city.net, &signals, cfg);
        sim.run(1200);
        // Compare reported positions against the road network: gross errors
        // land far from any segment.
        let index = taxilight_roadnet::SegmentIndex::build(&city.net, 250.0);
        let (mut log, _) = sim.into_log();
        let total = log.len();
        let far = log
            .records()
            .iter()
            .filter(|r| index.nearest_segment(&city.net, r.position, 25.0).is_none())
            .count();
        let rate = far as f64 / total as f64;
        assert!(rate > 0.005 && rate < 0.2, "gross-error rate {rate}");
    }

    #[test]
    fn weighted_sampling_and_gaussian_helpers() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0u32; 2];
        for _ in 0..10_000 {
            match sample_weighted(&mut rng, &[(1, 0.9), (2, 0.1)]) {
                1 => counts[0] += 1,
                2 => counts[1] += 1,
                _ => unreachable!(),
            }
        }
        assert!(counts[0] > 8_500 && counts[0] < 9_500);
        let xs: Vec<f64> = (0..20_000).map(|_| gaussian(&mut rng, 3.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((mean - 3.0).abs() < 0.1);
        assert!((var.sqrt() - 2.0).abs() < 0.1);
    }
}
