//! Subscriber-composition proof: a [`Tee`] of [`FlightRecorder`] +
//! [`ChromeTraceWriter`] must behave exactly like running either
//! subscriber alone — same validated trace structure from the Chrome
//! writer, same validated flight dump from the recorder, and
//! byte-identical deterministic metrics — under a multi-threaded,
//! proptest-generated workload.
//!
//! The subscribers are driven through the [`Subscriber`] trait directly
//! (not the process-global slot, which is set-once per process), which
//! is the same surface the macros call; the metrics registry is a
//! private [`Registry`] per lap so laps cannot contaminate each other.

use std::sync::Arc;

use proptest::prelude::*;
use taxilight_obs::chrome::ChromeTraceWriter;
use taxilight_obs::flight::FlightRecorder;
use taxilight_obs::json::{
    deterministic_section, parse, validate_chrome_trace, validate_flight_dump, validate_metrics,
};
use taxilight_obs::metrics::{MetricClass, Registry};
use taxilight_obs::tee::Tee;
use taxilight_obs::{Field, FieldValue, Subscriber};

/// One thread's deterministic workload: for each `(depth, events)` item
/// it opens `depth` nested spans, fires `events` instants inside, and
/// closes the spans LIFO — mirroring what `span!`/`event!` guards emit.
/// Every operation also bumps a deterministic counter and observes a
/// histogram sample, so metrics cover all exposition shapes.
fn run_thread(ops: &[(u8, u8)], sub: &dyn Subscriber, reg: &Registry, thread_idx: usize) {
    sub.track_name(&format!("worker-{thread_idx}"));
    let spans = reg.counter("flight_tee_spans_total", &[], MetricClass::Deterministic, "spans");
    let hist = reg.histogram(
        "flight_tee_depth",
        &[],
        MetricClass::Deterministic,
        &[1.0, 2.0, 4.0],
        "depths",
    );
    for &(depth, events) in ops {
        let depth = depth as usize % 4 + 1;
        let events = events as usize % 3;
        for (level, name) in SPAN_NAMES.iter().enumerate().take(depth) {
            sub.span_begin(
                name,
                "flight_tee",
                &[Field { key: "level", value: FieldValue::U64(level as u64) }],
            );
            spans.inc();
        }
        for e in 0..events {
            sub.event(
                "tick",
                "flight_tee",
                &[Field { key: "e", value: FieldValue::U64(e as u64) }],
            );
        }
        hist.observe(depth as f64);
        for level in (0..depth).rev() {
            sub.span_end(SPAN_NAMES[level], "flight_tee", &[]);
        }
    }
}

const SPAN_NAMES: [&str; 4] = ["l0", "l1", "l2", "l3"];

/// Runs the whole multi-threaded workload against `sub`, returning the
/// deterministic metrics section from a fresh registry.
fn run_workload(ops_per_thread: &[Vec<(u8, u8)>], sub: &dyn Subscriber) -> String {
    let reg = Registry::new();
    std::thread::scope(|scope| {
        for (idx, ops) in ops_per_thread.iter().enumerate() {
            let reg = &reg;
            scope.spawn(move || run_thread(ops, sub, reg, idx));
        }
    });
    let snapshot = reg.snapshot_json();
    validate_metrics(&parse(&snapshot).unwrap()).unwrap();
    deterministic_section(&snapshot).unwrap().to_string()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tee_composition_matches_solo_subscribers(
        ops_per_thread in prop::collection::vec(
            prop::collection::vec((0u8..8, 0u8..4), 1..12),
            1..4,
        ),
    ) {
        // Lap 1: both subscribers behind a tee.
        let tee_chrome = Arc::new(ChromeTraceWriter::new());
        let tee_flight = Arc::new(FlightRecorder::new());
        let tee = Tee::new(vec![tee_chrome.clone() as _, tee_flight.clone() as _]);
        let tee_metrics = run_workload(&ops_per_thread, &tee);

        // Lap 2 and 3: each subscriber alone.
        let solo_chrome = ChromeTraceWriter::new();
        let chrome_metrics = run_workload(&ops_per_thread, &solo_chrome);
        let solo_flight = FlightRecorder::new();
        let flight_metrics = run_workload(&ops_per_thread, &solo_flight);

        // The tee'd Chrome trace is clean and structurally identical to
        // the solo run (track numbering may differ with thread timing;
        // counts cannot).
        let teed = validate_chrome_trace(&parse(&tee_chrome.to_json()).unwrap()).unwrap();
        let solo = validate_chrome_trace(&parse(&solo_chrome.to_json()).unwrap()).unwrap();
        prop_assert_eq!(&teed, &solo);
        prop_assert_eq!(teed.named_tracks, ops_per_thread.len());

        // The tee'd flight dump is clean and sees the same span/instant
        // stream (capacity far exceeds the workload, so nothing wraps).
        let teed_dump = validate_flight_dump(&parse(&tee_flight.to_chrome_json()).unwrap()).unwrap();
        let solo_dump = validate_flight_dump(&parse(&solo_flight.to_chrome_json()).unwrap()).unwrap();
        prop_assert_eq!(teed_dump.dropped, 0);
        prop_assert_eq!(teed_dump.trace.spans, solo_dump.trace.spans);
        prop_assert_eq!(teed_dump.trace.spans, teed.spans);
        prop_assert_eq!(teed_dump.trace.instants, solo_dump.trace.instants);
        // Flight sees the workload instants plus its own dump marker.
        prop_assert_eq!(teed_dump.trace.instants, teed.instants + 1);

        // Deterministic metrics are byte-identical no matter which
        // subscriber composition was live while they were recorded.
        prop_assert_eq!(&tee_metrics, &chrome_metrics);
        prop_assert_eq!(&tee_metrics, &flight_metrics);
    }
}
