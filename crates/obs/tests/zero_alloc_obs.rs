//! Counting-allocator proof that `span!`/`event!` with **no subscriber
//! installed** perform zero heap allocations — the obs half of the
//! workspace-wide zero-alloc contract (the core half lives in
//! `crates/core/tests/zero_alloc.rs`).
//!
//! Gated behind the test-only `alloc-counter` feature so the global
//! allocator swap never leaks into ordinary test runs:
//!
//! ```text
//! cargo test -p taxilight-obs --features alloc-counter --test zero_alloc_obs
//! ```
//!
//! Unlike the core gate (one process-wide counter), this binary counts
//! allocations **per thread**: the proptest harness may run cases while
//! other test threads allocate, and a thread-local counter keeps their
//! traffic out of the measurement window.

#![cfg(feature = "alloc-counter")]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use proptest::prelude::*;
use taxilight_obs::{event, span};

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Wraps the system allocator and counts allocation-producing calls on
/// the calling thread only. `try_with` guards against TLS teardown;
/// `Cell` is `const`-initialized so the counter itself never allocates.
struct ThreadCountingAllocator;

fn bump() {
    let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for ThreadCountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: ThreadCountingAllocator = ThreadCountingAllocator;

fn thread_allocs() -> u64 {
    THREAD_ALLOCS.with(|c| c.get())
}

// NOTE: no test in this binary installs a subscriber, so the macros must
// take the `None` fast path throughout.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn uninstrumented_span_and_event_allocate_nothing(
        light in 0u64..10_000,
        estimate in 1.0f64..240.0,
        hit in prop::bool::ANY,
        laps in 1usize..8,
    ) {
        let before = thread_allocs();
        for _ in 0..laps {
            let _outer = span!("engine.light", light = light);
            {
                let _inner = span!("stage.cycle", estimate = estimate);
                event!("plan", light = light, hit = hit);
            }
            event!("light.done", light = light, estimate = estimate, hit = hit);
        }
        let after = thread_allocs();
        prop_assert_eq!(
            after - before,
            0,
            "no-subscriber span!/event! allocated {} time(s) over {} lap(s)",
            after - before,
            laps
        );
    }
}

#[test]
fn field_free_macros_allocate_nothing() {
    let before = thread_allocs();
    for _ in 0..1_000 {
        let _span = span!("bare");
        event!("tick");
    }
    let after = thread_allocs();
    assert_eq!(after - before, 0, "bare span!/event! allocated {} time(s)", after - before);
}
