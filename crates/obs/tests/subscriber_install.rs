//! End-to-end macro → subscriber wiring: installs a [`ChromeTraceWriter`]
//! as the process-wide subscriber and checks that `span!`/`event!`
//! deliver names, categories, and fields into a valid trace.
//!
//! Installation is process-global and permanent, so this file holds a
//! **single** `#[test]`; every other obs test drives writers directly.

use std::sync::Arc;

use taxilight_obs::chrome::ChromeTraceWriter;
use taxilight_obs::json::{parse, validate_chrome_trace, Json};
use taxilight_obs::{event, set_subscriber, set_track_name, span, with_subscriber};

#[test]
fn macros_reach_installed_subscriber() {
    let writer = Arc::new(ChromeTraceWriter::new());
    set_subscriber(writer.clone()).expect("first install must succeed");
    assert!(
        set_subscriber(Arc::new(ChromeTraceWriter::new())).is_err(),
        "second install must be rejected"
    );

    set_track_name(|| "main".to_string());
    {
        let outer = span!("engine.light", light = 42u64);
        assert!(outer.is_active());
        {
            let _inner = span!("stage.cycle");
            event!("plan", result = "hit", len = 3600usize);
        }
        event!("light.done", light = 42u64, estimate = 98.5f64, ok = true);
    }
    with_subscriber(|s| s.flush());

    let json = writer.to_json();
    let doc = parse(&json).expect("trace must be valid JSON");
    let summary = validate_chrome_trace(&doc).expect("trace must validate");
    assert_eq!(summary.spans, 2);
    assert_eq!(summary.instants, 2);
    assert_eq!(summary.named_tracks, 1);

    // Categories come from the call site's module_path!() and args carry
    // the field values.
    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
    let light_begin = events
        .iter()
        .find(|e| {
            e.get("name").and_then(Json::as_str) == Some("engine.light")
                && e.get("ph").and_then(Json::as_str) == Some("B")
        })
        .expect("engine.light begin present");
    assert_eq!(light_begin.get("cat").and_then(Json::as_str), Some("subscriber_install"));
    assert_eq!(
        light_begin.get("args").and_then(|a| a.get("light")).and_then(Json::as_f64),
        Some(42.0)
    );
    let done = events
        .iter()
        .find(|e| e.get("name").and_then(Json::as_str) == Some("light.done"))
        .expect("light.done instant present");
    assert_eq!(done.get("args").and_then(|a| a.get("estimate")).and_then(Json::as_f64), Some(98.5));
    assert_eq!(done.get("args").and_then(|a| a.get("ok")), Some(&Json::Bool(true)));
}
