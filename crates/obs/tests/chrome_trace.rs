//! Property tests for [`ChromeTraceWriter`]: whatever stack-disciplined
//! sequence of spans and events is recorded — across any number of
//! threads — the serialized output is valid JSON whose begin/end pairs
//! are strictly nested per track, and the validator's counts match the
//! simulation exactly.

use std::sync::Arc;

use proptest::prelude::*;
use taxilight_obs::chrome::ChromeTraceWriter;
use taxilight_obs::json::{parse, validate_chrome_trace};
use taxilight_obs::{Field, FieldValue, Subscriber};

/// A fixed name pool so span names are `'static` (the `Subscriber`
/// contract) while still being drawn property-style.
const NAMES: [&str; 6] = ["resample", "dft", "enhance", "superpose", "change_point", "light"];

/// One scripted action against the writer, per thread.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Open span `NAMES[i]`.
    Begin(usize),
    /// Close the innermost open span, if any.
    End,
    /// Instant event `NAMES[i]`.
    Instant(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..8, 0usize..NAMES.len()).prop_map(|(kind, i)| match kind {
        // Weight begins a little above ends so scripts actually nest.
        0..=2 => Op::Begin(i),
        3..=5 => Op::End,
        _ => Op::Instant(i),
    })
}

/// Replays `ops` against `w` with guard discipline (a name stack mirrors
/// what `SpanGuard` enforces in real code) and returns
/// `(completed_spans, instants)`.
fn replay(w: &ChromeTraceWriter, ops: &[Op]) -> (usize, usize) {
    let mut stack: Vec<&'static str> = Vec::new();
    let mut spans = 0;
    let mut instants = 0;
    for op in ops {
        match op {
            Op::Begin(i) => {
                let name = NAMES[*i];
                w.span_begin(
                    name,
                    "test",
                    &[Field { key: "i", value: FieldValue::U64(*i as u64) }],
                );
                stack.push(name);
            }
            Op::End => {
                if let Some(name) = stack.pop() {
                    w.span_end(name, "test", &[]);
                    spans += 1;
                }
            }
            Op::Instant(i) => {
                w.event(NAMES[*i], "test", &[]);
                instants += 1;
            }
        }
    }
    // Guards fall out of scope in LIFO order at the end of a real run.
    while let Some(name) = stack.pop() {
        w.span_end(name, "test", &[]);
        spans += 1;
    }
    (spans, instants)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn single_thread_scripts_validate(
        ops in prop::collection::vec(op_strategy(), 0..120),
    ) {
        let w = ChromeTraceWriter::new();
        w.track_name("script");
        let (spans, instants) = replay(&w, &ops);

        let doc = parse(&w.to_json()).expect("writer emitted invalid JSON");
        let summary = validate_chrome_trace(&doc).expect("trace failed validation");
        prop_assert_eq!(summary.spans, spans);
        prop_assert_eq!(summary.instants, instants);
        prop_assert!(summary.tracks <= 1);
        prop_assert_eq!(summary.named_tracks, 1);
    }

    #[test]
    fn multi_thread_scripts_validate_per_track(
        scripts in prop::collection::vec(
            prop::collection::vec(op_strategy(), 1..60),
            2..5,
        ),
    ) {
        let w = Arc::new(ChromeTraceWriter::new());
        let totals: Vec<(usize, usize)> = std::thread::scope(|scope| {
            // The collect is load-bearing: a lazy map would join each
            // thread before spawning the next, serializing the writers.
            #[allow(clippy::needless_collect)]
            let handles: Vec<_> = scripts
                .iter()
                .enumerate()
                .map(|(worker, ops)| {
                    let w = Arc::clone(&w);
                    scope.spawn(move || {
                        w.track_name(&format!("worker-{worker}"));
                        replay(&w, ops)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        let spans: usize = totals.iter().map(|(s, _)| s).sum();
        let instants: usize = totals.iter().map(|(_, i)| i).sum();
        let doc = parse(&w.to_json()).expect("writer emitted invalid JSON");
        let summary = validate_chrome_trace(&doc).expect("trace failed validation");
        prop_assert_eq!(summary.spans, spans);
        prop_assert_eq!(summary.instants, instants);
        prop_assert!(summary.tracks <= scripts.len());
        prop_assert_eq!(summary.named_tracks, scripts.len());
    }
}
