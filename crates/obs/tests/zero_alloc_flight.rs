//! Counting-allocator proof that the [`FlightRecorder`] **warm record
//! path** performs zero heap allocations — extending the PR 5
//! zero-alloc contract from "nothing installed" to "flight recorder
//! installed": a daemon can fly with the recorder always on without the
//! hot path ever touching the heap.
//!
//! Gated behind the test-only `alloc-counter` feature:
//!
//! ```text
//! cargo test -p taxilight-obs --features alloc-counter --test zero_alloc_flight
//! ```
//!
//! The recorder is installed process-wide through a [`Tee`] (the
//! composition the daemon uses), so the gate also covers the tee's
//! forwarding loop. Only the *warm* path is asserted: the first record
//! on a thread legitimately allocates its ring, so every measurement
//! window opens after a warm-up record.

#![cfg(feature = "alloc-counter")]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Arc;

use proptest::prelude::*;
use taxilight_obs::flight::FlightRecorder;
use taxilight_obs::tee::Tee;
use taxilight_obs::{event, set_subscriber, span};

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Same per-thread counting allocator as `zero_alloc_obs.rs`: other
/// test threads' traffic stays out of the measurement window.
struct ThreadCountingAllocator;

fn bump() {
    let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for ThreadCountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: ThreadCountingAllocator = ThreadCountingAllocator;

fn thread_allocs() -> u64 {
    THREAD_ALLOCS.with(|c| c.get())
}

/// Installs the recorder (inside a `Tee`, like the daemon does) exactly
/// once for the whole test binary and hands back the recorder handle.
fn recorder() -> &'static Arc<FlightRecorder> {
    static RECORDER: std::sync::OnceLock<Arc<FlightRecorder>> = std::sync::OnceLock::new();
    RECORDER.get_or_init(|| {
        let rec = Arc::new(FlightRecorder::with_capacity(256));
        set_subscriber(Arc::new(Tee::new(vec![rec.clone() as _])))
            .expect("first and only subscriber install in this binary");
        rec
    })
}

/// One record on the calling thread so its ring exists (the cold,
/// allocating path) before a measurement window opens.
fn warm_up() {
    recorder();
    event!("warmup");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn warm_flight_recording_allocates_nothing(
        light in 0u64..10_000,
        estimate in 1.0f64..240.0,
        hit in prop::bool::ANY,
        laps in 1usize..8,
    ) {
        warm_up();
        let before = thread_allocs();
        for _ in 0..laps {
            let _outer = span!("engine.light", light = light);
            {
                let _inner = span!("stage.cycle", estimate = estimate);
                event!("plan", light = light, hit = hit);
            }
            event!("light.done", light = light, estimate = estimate, hit = hit);
        }
        let after = thread_allocs();
        prop_assert_eq!(
            after - before,
            0,
            "flight-recorded span!/event! allocated {} time(s) over {} lap(s)",
            after - before,
            laps
        );
    }
}

#[test]
fn warm_recording_stays_alloc_free_across_ring_wraparound() {
    warm_up();
    let before = thread_allocs();
    // 4 writes per lap x 512 laps >> capacity 256: the ring wraps many
    // times over; overwrites must be plain slot stores.
    for i in 0..512u64 {
        let _span = span!("wrap.lap", i = i);
        event!("wrap.tick", i = i);
    }
    let after = thread_allocs();
    assert_eq!(after - before, 0, "wrapping ring allocated {} time(s)", after - before);
}

#[test]
fn field_overflow_on_warm_path_allocates_nothing() {
    warm_up();
    let before = thread_allocs();
    for _ in 0..100 {
        // 10 fields > MAX_SLOT_FIELDS: truncation must count, not grow.
        event!(
            "wide",
            a = 1u64,
            b = 2u64,
            c = 3u64,
            d = 4u64,
            e = 5u64,
            f = 6u64,
            g = 7u64,
            h = 8u64,
            i = 9u64,
            j = 10u64
        );
    }
    let after = thread_allocs();
    assert_eq!(after - before, 0, "field truncation allocated {} time(s)", after - before);
    assert!(recorder().truncated_fields() >= 200);
}
