//! Minimal JSON support: deterministic float formatting and string
//! escaping shared by the metric/trace writers, a small
//! recursive-descent parser, and the validators behind the `obscheck`
//! binary (Chrome trace-event structure, metrics snapshot schema).
//!
//! The writers elsewhere in the workspace hand-roll their JSON (see
//! `eval::report::JsonWriter`); this module keeps the obs crate on the
//! same convention — shortest round-trip floats with a trailing `.0`
//! for integral values — so snapshots are byte-stable.

use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Formats a finite f64 with Rust's shortest round-trip representation,
/// forcing a `.0` suffix on integral values (the workspace-wide report
/// convention). Non-finite values render as `null`.
pub fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    let mut s = String::new();
    let _ = write!(s, "{v}");
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        s.push_str(".0");
    }
    s
}

/// Appends `s` to `out` with JSON string escaping (quotes, backslash,
/// control characters).
pub fn escape_json_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// A parsed JSON value. Object member order is preserved (the trace
/// validator never relies on it, but error messages do).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as f64).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, members in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError { offset: self.pos, message: msg.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {lit:?}")))
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(&format!("invalid number {text:?}")))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs: combine when the low half
                            // follows; otherwise fall back to the
                            // replacement character (checker use only).
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined).unwrap_or('\u{FFFD}')
                                } else {
                                    '\u{FFFD}'
                                }
                            } else {
                                char::from_u32(code).unwrap_or('\u{FFFD}')
                            };
                            out.push(c);
                            // hex4 already advanced past the digits.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// What [`validate_chrome_trace`] learned about a well-formed trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total events of every phase.
    pub events: usize,
    /// Complete begin/end span pairs.
    pub spans: usize,
    /// Instant events.
    pub instants: usize,
    /// Distinct `(pid, tid)` tracks carrying at least one event.
    pub tracks: usize,
    /// Thread-name metadata events.
    pub named_tracks: usize,
}

/// One `(pid, tid)` track and its stack of open `(name, ts)` spans.
type TrackStack = ((i64, i64), Vec<(String, f64)>);

/// Validates the Chrome trace-event structure Perfetto expects:
/// a top-level object with a `traceEvents` array whose members each
/// carry `name`/`ph`/`pid`/`tid` (and `ts` for non-metadata phases),
/// with `B`/`E` pairs strictly nested per `(pid, tid)` track —
/// LIFO order, matching names, non-decreasing timestamps, and no
/// unclosed span left at the end of any track.
pub fn validate_chrome_trace(doc: &Json) -> Result<TraceSummary, String> {
    let events = doc
        .get("traceEvents")
        .ok_or("missing top-level \"traceEvents\"")?
        .as_arr()
        .ok_or("\"traceEvents\" is not an array")?;

    // Per-track stack of open (name, ts) pairs.
    let mut stacks: Vec<TrackStack> = Vec::new();
    let mut tracks: BTreeSet<(i64, i64)> = BTreeSet::new();
    let mut summary =
        TraceSummary { events: events.len(), spans: 0, instants: 0, tracks: 0, named_tracks: 0 };

    for (i, ev) in events.iter().enumerate() {
        let ctx = |msg: String| format!("traceEvents[{i}]: {msg}");
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("missing string \"name\"".into()))?;
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("missing string \"ph\"".into()))?;
        let pid = ev
            .get("pid")
            .and_then(Json::as_f64)
            .ok_or_else(|| ctx("missing numeric \"pid\"".into()))? as i64;
        let tid = ev
            .get("tid")
            .and_then(Json::as_f64)
            .ok_or_else(|| ctx("missing numeric \"tid\"".into()))? as i64;
        let track = (pid, tid);

        if ph == "M" {
            if name == "thread_name" {
                ev.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .ok_or_else(|| ctx("thread_name metadata missing args.name".into()))?;
                summary.named_tracks += 1;
            }
            continue;
        }

        let ts = ev
            .get("ts")
            .and_then(Json::as_f64)
            .ok_or_else(|| ctx("missing numeric \"ts\"".into()))?;
        if !ts.is_finite() || ts < 0.0 {
            return Err(ctx(format!("non-finite or negative ts {ts}")));
        }
        tracks.insert(track);

        let stack = match stacks.iter_mut().find(|(t, _)| *t == track) {
            Some((_, s)) => s,
            None => {
                stacks.push((track, Vec::new()));
                &mut stacks.last_mut().unwrap().1
            }
        };
        match ph {
            "B" => stack.push((name.to_string(), ts)),
            "E" => {
                let (open_name, open_ts) = stack.pop().ok_or_else(|| {
                    ctx(format!("\"E\" {name:?} on track {track:?} with no open span"))
                })?;
                if open_name != name {
                    return Err(ctx(format!(
                        "span end {name:?} does not match open span {open_name:?} (track {track:?})"
                    )));
                }
                if ts < open_ts {
                    return Err(ctx(format!(
                        "span {name:?} ends at ts {ts} before it began at {open_ts}"
                    )));
                }
                summary.spans += 1;
            }
            "i" | "I" => summary.instants += 1,
            other => return Err(ctx(format!("unsupported phase {other:?}"))),
        }
    }

    for (track, stack) in &stacks {
        if let Some((name, _)) = stack.last() {
            return Err(format!(
                "track {track:?} ends with unclosed span {name:?} ({} open)",
                stack.len()
            ));
        }
    }
    summary.tracks = tracks.len();
    Ok(summary)
}

/// What [`validate_flight_dump`] learned about a well-formed flight
/// bundle.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightSummary {
    /// The underlying Chrome-trace structure (a flight dump is a valid
    /// trace first).
    pub trace: TraceSummary,
    /// Why the dump happened (`flight.dump` marker `args.reason`; a
    /// trigger name, or `"on_demand"`).
    pub reason: String,
    /// Events lost to ring wraparound plus orphan ends sanitized away
    /// (`args.dropped`).
    pub dropped: u64,
}

/// Validates a flight-recorder forensic bundle: it must pass
/// [`validate_chrome_trace`] **and** carry exactly one `flight.dump`
/// marker event whose `args` report a string `reason` and numeric
/// `events`, `dropped`, and `rings` — the bookkeeping that makes ring
/// truncation visible instead of silent.
pub fn validate_flight_dump(doc: &Json) -> Result<FlightSummary, String> {
    let trace = validate_chrome_trace(doc)?;
    let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap_or(&[]);
    let markers: Vec<&Json> = events
        .iter()
        .filter(|ev| ev.get("name").and_then(Json::as_str) == Some("flight.dump"))
        .collect();
    let marker = match markers.as_slice() {
        [m] => *m,
        [] => return Err("missing \"flight.dump\" marker event".into()),
        more => return Err(format!("expected one \"flight.dump\" marker, found {}", more.len())),
    };
    let args = marker.get("args").ok_or("flight.dump marker has no args")?;
    let reason = args
        .get("reason")
        .and_then(Json::as_str)
        .ok_or("flight.dump marker missing string args.reason")?
        .to_string();
    for key in ["events", "dropped", "rings"] {
        args.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("flight.dump marker missing numeric args.{key}"))?;
    }
    let dropped = args.get("dropped").and_then(Json::as_f64).unwrap_or(0.0) as u64;
    Ok(FlightSummary { trace, reason, dropped })
}

/// What [`validate_metrics`] learned about a well-formed snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSummary {
    /// Entries in the `deterministic` section.
    pub deterministic: usize,
    /// Entries in the `volatile` section.
    pub volatile: usize,
}

/// Validates a `taxilight-metrics/1` snapshot: schema string, both
/// sections present as objects, and every metric value either a number
/// or a histogram object with `count`/`sum`/`buckets`.
pub fn validate_metrics(doc: &Json) -> Result<MetricsSummary, String> {
    let schema = doc.get("schema").and_then(Json::as_str).ok_or("missing string \"schema\"")?;
    if schema != "taxilight-metrics/1" {
        return Err(format!("unexpected schema {schema:?}"));
    }
    let mut summary = MetricsSummary { deterministic: 0, volatile: 0 };
    for section in ["deterministic", "volatile"] {
        let members = doc
            .get(section)
            .ok_or_else(|| format!("missing section {section:?}"))?
            .as_obj()
            .ok_or_else(|| format!("section {section:?} is not an object"))?;
        for (id, value) in members {
            let ok = match value {
                Json::Num(_) | Json::Null => true,
                obj @ Json::Obj(_) => {
                    obj.get("count").and_then(Json::as_f64).is_some()
                        && obj.get("sum").is_some()
                        && obj.get("buckets").and_then(Json::as_arr).is_some()
                }
                _ => false,
            };
            if !ok {
                return Err(format!("{section}.{id}: unsupported metric value shape"));
            }
            match section {
                "deterministic" => summary.deterministic += 1,
                _ => summary.volatile += 1,
            }
        }
    }
    Ok(summary)
}

/// Extracts the byte span of the `"deterministic":{...}` section from
/// snapshot text (for byte-for-byte comparison across runs). Returns
/// `None` when the markers are absent.
pub fn deterministic_section(snapshot: &str) -> Option<&str> {
    let start = snapshot.find("\"deterministic\":")?;
    let end = snapshot[start..].find(",\"volatile\":")? + start;
    Some(&snapshot[start..end])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_f64_convention() {
        assert_eq!(fmt_f64(1.0), "1.0");
        assert_eq!(fmt_f64(0.25), "0.25");
        assert_eq!(fmt_f64(-3.0), "-3.0");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
    }

    #[test]
    fn parse_round_trip_basics() {
        let doc = parse(r#"{"a":[1,2.5,-3e2],"b":"x\ny","c":null,"d":true}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap()[2], Json::Num(-300.0));
        assert_eq!(doc.get("b").unwrap().as_str(), Some("x\ny"));
        assert_eq!(doc.get("c"), Some(&Json::Null));
        assert_eq!(doc.get("d"), Some(&Json::Bool(true)));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}x").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("01x").is_err());
    }

    #[test]
    fn parse_unicode_escapes() {
        let doc = parse(r#""Aé😀""#).unwrap();
        assert_eq!(doc.as_str(), Some("Aé😀"));
    }

    #[test]
    fn escape_round_trips_through_parser() {
        let original = "he said \"hi\\\" \n\t\u{1} ok";
        let mut buf = String::from("\"");
        escape_json_into(&mut buf, original);
        buf.push('"');
        assert_eq!(parse(&buf).unwrap().as_str(), Some(original));
    }

    #[test]
    fn chrome_validator_accepts_nested_and_rejects_crossed() {
        let good = parse(
            r#"{"traceEvents":[
                {"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"w0"}},
                {"name":"outer","cat":"c","ph":"B","ts":0,"pid":1,"tid":1},
                {"name":"inner","cat":"c","ph":"B","ts":1,"pid":1,"tid":1},
                {"name":"blip","cat":"c","ph":"i","ts":2,"pid":1,"tid":1,"s":"t"},
                {"name":"inner","cat":"c","ph":"E","ts":3,"pid":1,"tid":1},
                {"name":"outer","cat":"c","ph":"E","ts":4,"pid":1,"tid":1}
            ]}"#,
        )
        .unwrap();
        let s = validate_chrome_trace(&good).unwrap();
        assert_eq!(
            s,
            TraceSummary { events: 6, spans: 2, instants: 1, tracks: 1, named_tracks: 1 }
        );

        let crossed = parse(
            r#"{"traceEvents":[
                {"name":"a","ph":"B","ts":0,"pid":1,"tid":1},
                {"name":"b","ph":"B","ts":1,"pid":1,"tid":1},
                {"name":"a","ph":"E","ts":2,"pid":1,"tid":1},
                {"name":"b","ph":"E","ts":3,"pid":1,"tid":1}
            ]}"#,
        )
        .unwrap();
        assert!(validate_chrome_trace(&crossed).unwrap_err().contains("does not match open span"));

        let unclosed =
            parse(r#"{"traceEvents":[{"name":"a","ph":"B","ts":0,"pid":1,"tid":1}]}"#).unwrap();
        assert!(validate_chrome_trace(&unclosed).unwrap_err().contains("unclosed span"));
    }

    #[test]
    fn flight_validator_requires_the_dump_marker() {
        let no_marker =
            parse(r#"{"traceEvents":[{"name":"x","ph":"i","ts":0,"pid":1,"tid":1}]}"#).unwrap();
        assert!(validate_flight_dump(&no_marker).unwrap_err().contains("flight.dump"));

        let good = parse(
            r#"{"traceEvents":[
                {"name":"flight.dump","ph":"i","ts":5,"pid":1,"tid":0,"s":"t",
                 "args":{"reason":"panic","events":1,"dropped":2,"rings":1}},
                {"name":"x","ph":"i","ts":0,"pid":1,"tid":1}
            ]}"#,
        )
        .unwrap();
        let s = validate_flight_dump(&good).unwrap();
        assert_eq!(s.reason, "panic");
        assert_eq!(s.dropped, 2);
        assert_eq!(s.trace.instants, 2);

        let bad_args = parse(
            r#"{"traceEvents":[
                {"name":"flight.dump","ph":"i","ts":5,"pid":1,"tid":0,
                 "args":{"reason":"panic","events":1,"dropped":2}}
            ]}"#,
        )
        .unwrap();
        assert!(validate_flight_dump(&bad_args).unwrap_err().contains("args.rings"));
    }

    #[test]
    fn metrics_validator_and_section_extraction() {
        let text = "{\"schema\":\"taxilight-metrics/1\",\
                    \"deterministic\":{\"a\":1},\
                    \"volatile\":{\"h\":{\"count\":1,\"sum\":0.5,\"buckets\":[]}}}";
        let doc = parse(text).unwrap();
        assert_eq!(
            validate_metrics(&doc).unwrap(),
            MetricsSummary { deterministic: 1, volatile: 1 }
        );
        assert_eq!(deterministic_section(text), Some("\"deterministic\":{\"a\":1}"));

        let bad = parse("{\"schema\":\"nope\",\"deterministic\":{},\"volatile\":{}}").unwrap();
        assert!(validate_metrics(&bad).is_err());
    }
}
