//! `obscheck`: validates observability artifacts in CI.
//!
//! ```text
//! obscheck --trace trace.json                  # valid Chrome trace JSON,
//!                                              # strictly nested per track
//! obscheck --metrics metrics.json              # taxilight-metrics/1 schema
//! obscheck --metrics-match-deterministic a b   # deterministic sections
//!                                              # byte-identical across runs
//! obscheck --flight flight.json                # flight-recorder dump:
//!                                              # valid trace + dump marker
//! ```
//!
//! Flags may be combined; the process exits non-zero on the first
//! failure with a message naming the offending file and event.

use std::process::ExitCode;

use taxilight_obs::json::{
    deterministic_section, parse, validate_chrome_trace, validate_flight_dump, validate_metrics,
};

fn usage() -> ExitCode {
    eprintln!(
        "usage: obscheck [--trace <file.json>] [--metrics <file.json>] \
         [--metrics-match-deterministic <a.json> <b.json>] [--flight <file.json>]"
    );
    ExitCode::from(2)
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
}

fn check_trace(path: &str) -> Result<(), String> {
    let text = read(path)?;
    let doc = parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let s = validate_chrome_trace(&doc).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "{path}: OK chrome-trace ({} events, {} spans, {} instants, {} tracks, {} named)",
        s.events, s.spans, s.instants, s.tracks, s.named_tracks
    );
    Ok(())
}

fn check_metrics(path: &str) -> Result<(), String> {
    let text = read(path)?;
    let doc = parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let s = validate_metrics(&doc).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "{path}: OK taxilight-metrics/1 ({} deterministic, {} volatile)",
        s.deterministic, s.volatile
    );
    Ok(())
}

fn check_flight(path: &str) -> Result<(), String> {
    let text = read(path)?;
    let doc = parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let s = validate_flight_dump(&doc).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "{path}: OK flight-dump (reason {:?}, {} events, {} spans, {} tracks, {} dropped)",
        s.reason, s.trace.events, s.trace.spans, s.trace.tracks, s.dropped
    );
    Ok(())
}

fn check_match(path_a: &str, path_b: &str) -> Result<(), String> {
    let a = read(path_a)?;
    let b = read(path_b)?;
    let sec_a = deterministic_section(&a)
        .ok_or_else(|| format!("{path_a}: no deterministic section found"))?;
    let sec_b = deterministic_section(&b)
        .ok_or_else(|| format!("{path_b}: no deterministic section found"))?;
    if sec_a != sec_b {
        // Point at the first divergence to make CI failures actionable.
        let (bytes_a, bytes_b) = (sec_a.as_bytes(), sec_b.as_bytes());
        let diverge = bytes_a
            .iter()
            .zip(bytes_b)
            .position(|(x, y)| x != y)
            .unwrap_or_else(|| bytes_a.len().min(bytes_b.len()));
        let lo = diverge.saturating_sub(40);
        let ctx =
            |b: &[u8]| String::from_utf8_lossy(&b[lo..(diverge + 40).min(b.len())]).into_owned();
        return Err(format!(
            "deterministic sections differ at byte {diverge}:\n  {path_a}: …{}\n  {path_b}: …{}",
            ctx(bytes_a),
            ctx(bytes_b),
        ));
    }
    println!("{path_a} ≡ {path_b}: deterministic sections byte-identical ({} bytes)", sec_a.len());
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }
    let mut checks: Vec<Box<dyn Fn() -> Result<(), String>>> = Vec::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--trace" => match it.next() {
                Some(p) => {
                    let p = p.clone();
                    checks.push(Box::new(move || check_trace(&p)));
                }
                None => return usage(),
            },
            "--metrics" => match it.next() {
                Some(p) => {
                    let p = p.clone();
                    checks.push(Box::new(move || check_metrics(&p)));
                }
                None => return usage(),
            },
            "--flight" => match it.next() {
                Some(p) => {
                    let p = p.clone();
                    checks.push(Box::new(move || check_flight(&p)));
                }
                None => return usage(),
            },
            "--metrics-match-deterministic" => match (it.next(), it.next()) {
                (Some(a), Some(b)) => {
                    let (a, b) = (a.clone(), b.clone());
                    checks.push(Box::new(move || check_match(&a, &b)));
                }
                _ => return usage(),
            },
            other => {
                eprintln!("obscheck: unknown flag {other:?}");
                return usage();
            }
        }
    }
    for check in checks {
        if let Err(msg) = check() {
            eprintln!("obscheck: FAIL {msg}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
