//! Process-wide metrics registry: counters, gauges and fixed-bucket
//! histograms with deterministic JSON snapshots and Prometheus text
//! exposition.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`s over
//! atomics: registration takes a lock once, after which every update is
//! a single relaxed atomic op — safe on the per-light hot path and
//! meaningful whether or not a tracing subscriber is installed.
//!
//! ## Determinism contract
//!
//! Every metric declares a [`MetricClass`]:
//!
//! * [`MetricClass::Deterministic`] — seed-fixed counts (records
//!   matched, lights identified, duplicates dropped, feed-clock
//!   watermark lag). For a fixed seed the snapshot's `deterministic`
//!   section is **byte-identical across runs**, mirroring the
//!   byte-prefix convention of the eval/bench reports.
//! * [`MetricClass::Volatile`] — anything wall-clock- or
//!   scheduling-dependent (stage latencies, plan-cache hit/miss, which
//!   vary with workspace checkout order under sharding).
//!
//! The snapshot (schema `taxilight-metrics/1`) keeps the two in separate
//! top-level sections so tooling can diff the deterministic part
//! byte-for-byte; `obscheck --metrics-match-deterministic` does exactly
//! that in CI.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::json::{escape_json_into, fmt_f64};

/// Whether a metric's value is reproducible for a fixed seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricClass {
    /// Seed-fixed: byte-identical across same-seed runs.
    Deterministic,
    /// Wall-clock- or scheduling-dependent.
    Volatile,
}

/// Monotonically increasing counter.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.get()).finish()
    }
}

impl Counter {
    /// A detached counter not attached to any registry (useful as a
    /// default before registration).
    pub fn detached() -> Self {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins floating-point gauge.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Gauge").field(&self.get()).finish()
    }
}

impl Gauge {
    /// A detached gauge not attached to any registry.
    pub fn detached() -> Self {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

struct HistogramInner {
    /// Upper bucket bounds, strictly increasing. Buckets are
    /// `(-inf, bounds[0]]`, `(bounds[0], bounds[1]]`, …, plus a final
    /// overflow bucket `(bounds[last], +inf)`.
    bounds: Vec<f64>,
    /// `bounds.len() + 1` non-cumulative bucket counts.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Running sum, stored as f64 bits and updated by CAS.
    sum_bits: AtomicU64,
}

/// Fixed-bound histogram (Prometheus-style cumulative exposition).
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram").field("count", &self.count()).field("sum", &self.sum()).finish()
    }
}

impl Histogram {
    /// A detached histogram with the given strictly increasing finite
    /// bucket bounds.
    ///
    /// # Panics
    /// If `bounds` is empty, non-finite, or not strictly increasing.
    pub fn detached(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite and strictly increasing"
        );
        Histogram(Arc::new(HistogramInner {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }))
    }

    /// Records one observation. Non-finite values land in the overflow
    /// bucket and are excluded from the sum.
    pub fn observe(&self, v: f64) {
        let inner = &self.0;
        let idx = if v.is_finite() {
            inner.bounds.partition_point(|b| *b < v)
        } else {
            inner.bounds.len()
        };
        inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        if v.is_finite() {
            let mut cur = inner.sum_bits.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(cur) + v).to_bits();
                match inner.sum_bits.compare_exchange_weak(
                    cur,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(actual) => cur = actual,
                }
            }
        }
    }

    /// Total observation count.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of finite observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }

    /// Upper bounds configured at construction.
    pub fn bounds(&self) -> &[f64] {
        &self.0.bounds
    }

    /// Cumulative counts per bound, plus the `+inf` total as the last
    /// element (`bounds().len() + 1` entries).
    pub fn cumulative_buckets(&self) -> Vec<u64> {
        let mut acc = 0u64;
        self.0
            .buckets
            .iter()
            .map(|b| {
                acc += b.load(Ordering::Relaxed);
                acc
            })
            .collect()
    }
}

enum Kind {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Kind {
    fn type_name(&self) -> &'static str {
        match self {
            Kind::Counter(_) => "counter",
            Kind::Gauge(_) => "gauge",
            Kind::Histogram(_) => "histogram",
        }
    }
}

struct Entry {
    name: String,
    labels: Vec<(String, String)>,
    class: MetricClass,
    help: String,
    kind: Kind,
}

/// A collection of named metrics. Most code uses the process-wide
/// [`global()`] registry; tests may build private ones.
pub struct Registry {
    /// Keyed by canonical id (`name` or `name{k="v",…}` with labels
    /// sorted by key) so iteration — and therefore every exposition —
    /// is in one fixed order.
    inner: Mutex<BTreeMap<String, Entry>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

fn canonical_id(name: &str, labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut id = String::with_capacity(name.len() + 16 * labels.len());
    id.push_str(name);
    id.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            id.push(',');
        }
        id.push_str(k);
        id.push_str("=\"");
        // Prometheus label-value escaping; also keeps the id printable.
        for c in v.chars() {
            match c {
                '\\' => id.push_str("\\\\"),
                '"' => id.push_str("\\\""),
                '\n' => id.push_str("\\n"),
                c => id.push(c),
            }
        }
        id.push('"');
    }
    id.push('}');
    id
}

fn sorted_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> =
        labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
    out.sort();
    out
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry { inner: Mutex::new(BTreeMap::new()) }
    }

    /// Registers (or retrieves) a counter. Repeat registrations with the
    /// same name and labels return a handle to the same underlying
    /// atomic, so instrumented values survive any registration order.
    ///
    /// # Panics
    /// If the id is already registered as a different metric type.
    pub fn counter(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        class: MetricClass,
        help: &str,
    ) -> Counter {
        let labels = sorted_labels(labels);
        let id = canonical_id(name, &labels);
        let mut inner = self.inner.lock().unwrap();
        let entry = inner.entry(id).or_insert_with(|| Entry {
            name: name.to_string(),
            labels,
            class,
            help: help.to_string(),
            kind: Kind::Counter(Counter::detached()),
        });
        match &entry.kind {
            Kind::Counter(c) => c.clone(),
            k => panic!("metric {name:?} already registered as {}", k.type_name()),
        }
    }

    /// Registers (or retrieves) a gauge. Same identity rules as
    /// [`Registry::counter`].
    pub fn gauge(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        class: MetricClass,
        help: &str,
    ) -> Gauge {
        let labels = sorted_labels(labels);
        let id = canonical_id(name, &labels);
        let mut inner = self.inner.lock().unwrap();
        let entry = inner.entry(id).or_insert_with(|| Entry {
            name: name.to_string(),
            labels,
            class,
            help: help.to_string(),
            kind: Kind::Gauge(Gauge::detached()),
        });
        match &entry.kind {
            Kind::Gauge(g) => g.clone(),
            k => panic!("metric {name:?} already registered as {}", k.type_name()),
        }
    }

    /// Registers (or retrieves) a fixed-bucket histogram. On retrieval
    /// the stored bounds win; `bounds` is only used for first
    /// registration.
    pub fn histogram(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        class: MetricClass,
        bounds: &[f64],
        help: &str,
    ) -> Histogram {
        let labels = sorted_labels(labels);
        let id = canonical_id(name, &labels);
        let mut inner = self.inner.lock().unwrap();
        let entry = inner.entry(id).or_insert_with(|| Entry {
            name: name.to_string(),
            labels,
            class,
            help: help.to_string(),
            kind: Kind::Histogram(Histogram::detached(bounds)),
        });
        match &entry.kind {
            Kind::Histogram(h) => h.clone(),
            k => panic!("metric {name:?} already registered as {}", k.type_name()),
        }
    }

    /// Deterministic JSON snapshot, schema `taxilight-metrics/1`:
    ///
    /// ```json
    /// {"schema":"taxilight-metrics/1","deterministic":{...},"volatile":{...}}
    /// ```
    ///
    /// Entries are sorted by canonical id inside each section; for a
    /// fixed seed the `deterministic` section is byte-identical across
    /// runs.
    pub fn snapshot_json(&self) -> String {
        let inner = self.inner.lock().unwrap();
        let mut out = String::from("{\"schema\":\"taxilight-metrics/1\"");
        for (section, class) in
            [("deterministic", MetricClass::Deterministic), ("volatile", MetricClass::Volatile)]
        {
            out.push_str(",\"");
            out.push_str(section);
            out.push_str("\":{");
            let mut first = true;
            for (id, entry) in inner.iter().filter(|(_, e)| e.class == class) {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push('"');
                escape_json_into(&mut out, id);
                out.push_str("\":");
                write_value_json(&mut out, &entry.kind);
            }
            out.push('}');
        }
        out.push('}');
        out
    }

    /// Prometheus text exposition (`# HELP` / `# TYPE` plus samples),
    /// sorted by canonical id.
    pub fn prometheus_text(&self) -> String {
        let inner = self.inner.lock().unwrap();
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for entry in inner.values() {
            if last_name != Some(entry.name.as_str()) {
                out.push_str("# HELP ");
                out.push_str(&entry.name);
                out.push(' ');
                out.push_str(&entry.help);
                out.push('\n');
                out.push_str("# TYPE ");
                out.push_str(&entry.name);
                out.push(' ');
                out.push_str(entry.kind.type_name());
                out.push('\n');
                last_name = Some(entry.name.as_str());
            }
            write_prometheus_samples(&mut out, entry);
        }
        out
    }
}

fn write_value_json(out: &mut String, kind: &Kind) {
    match kind {
        Kind::Counter(c) => out.push_str(&c.get().to_string()),
        Kind::Gauge(g) => out.push_str(&fmt_f64(g.get())),
        Kind::Histogram(h) => {
            out.push_str("{\"count\":");
            out.push_str(&h.count().to_string());
            out.push_str(",\"sum\":");
            out.push_str(&fmt_f64(h.sum()));
            out.push_str(",\"buckets\":[");
            let cumulative = h.cumulative_buckets();
            for (i, cum) in cumulative.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("{\"le\":");
                match h.bounds().get(i) {
                    Some(b) => out.push_str(&fmt_f64(*b)),
                    None => out.push_str("\"+Inf\""),
                }
                out.push_str(",\"count\":");
                out.push_str(&cum.to_string());
                out.push('}');
            }
            out.push_str("]}");
        }
    }
}

fn prom_sample_id(name: &str, labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut all: Vec<(String, String)> = labels.to_vec();
    if let Some((k, v)) = extra {
        all.push((k.to_string(), v.to_string()));
    }
    canonical_id(name, &all)
}

fn write_prometheus_samples(out: &mut String, entry: &Entry) {
    match &entry.kind {
        Kind::Counter(c) => {
            out.push_str(&prom_sample_id(&entry.name, &entry.labels, None));
            out.push(' ');
            out.push_str(&c.get().to_string());
            out.push('\n');
        }
        Kind::Gauge(g) => {
            out.push_str(&prom_sample_id(&entry.name, &entry.labels, None));
            out.push(' ');
            let v = g.get();
            if v.is_nan() {
                out.push_str("NaN");
            } else if v.is_infinite() {
                out.push_str(if v > 0.0 { "+Inf" } else { "-Inf" });
            } else {
                out.push_str(&fmt_f64(v));
            }
            out.push('\n');
        }
        Kind::Histogram(h) => {
            let cumulative = h.cumulative_buckets();
            for (i, cum) in cumulative.iter().enumerate() {
                let le = match h.bounds().get(i) {
                    Some(b) => fmt_f64(*b),
                    None => "+Inf".to_string(),
                };
                let name = format!("{}_bucket", entry.name);
                out.push_str(&prom_sample_id(&name, &entry.labels, Some(("le", &le))));
                out.push(' ');
                out.push_str(&cum.to_string());
                out.push('\n');
            }
            out.push_str(&prom_sample_id(&format!("{}_sum", entry.name), &entry.labels, None));
            out.push(' ');
            out.push_str(&fmt_f64(h.sum()));
            out.push('\n');
            out.push_str(&prom_sample_id(&format!("{}_count", entry.name), &entry.labels, None));
            out.push(' ');
            out.push_str(&h.count().to_string());
            out.push('\n');
        }
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry all pipeline instrumentation registers
/// into. Lives for the life of the process; snapshot with
/// [`Registry::snapshot_json`] at exit.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_identity_survives_reregistration() {
        let reg = Registry::new();
        let a = reg.counter("req_total", &[("kind", "x")], MetricClass::Deterministic, "h");
        a.add(3);
        let b = reg.counter("req_total", &[("kind", "x")], MetricClass::Deterministic, "h");
        b.inc();
        assert_eq!(a.get(), 4);
        assert_eq!(b.get(), 4);
    }

    #[test]
    fn label_order_is_canonicalized() {
        let reg = Registry::new();
        let a = reg.counter("c", &[("b", "2"), ("a", "1")], MetricClass::Deterministic, "h");
        let b = reg.counter("c", &[("a", "1"), ("b", "2")], MetricClass::Deterministic, "h");
        a.inc();
        assert_eq!(b.get(), 1);
        // Canonical ids are JSON-escaped when used as snapshot keys.
        assert!(reg.snapshot_json().contains("c{a=\\\"1\\\",b=\\\"2\\\"}"));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("m", &[], MetricClass::Volatile, "h");
        reg.gauge("m", &[], MetricClass::Volatile, "h");
    }

    #[test]
    fn histogram_buckets_and_sum() {
        let h = Histogram::detached(&[1.0, 5.0, 10.0]);
        for v in [0.5, 1.0, 3.0, 7.0, 42.0, f64::NAN] {
            h.observe(v);
        }
        // (-inf,1]=2 (0.5, 1.0); (1,5]=1 (3.0); (5,10]=1 (7.0); overflow=2 (42, NaN)
        assert_eq!(h.cumulative_buckets(), vec![2, 3, 4, 6]);
        assert_eq!(h.count(), 6);
        assert!((h.sum() - 53.5).abs() < 1e-12);
    }

    #[test]
    fn snapshot_sections_split_by_class_and_are_stable() {
        let reg = Registry::new();
        reg.counter("records_total", &[], MetricClass::Deterministic, "h").add(10);
        reg.gauge("lag_s", &[], MetricClass::Deterministic, "h").set(2.0);
        reg.counter("cache_total", &[("result", "hit")], MetricClass::Volatile, "h").add(7);
        let snap = reg.snapshot_json();
        assert_eq!(
            snap,
            "{\"schema\":\"taxilight-metrics/1\",\
             \"deterministic\":{\"lag_s\":2.0,\"records_total\":10},\
             \"volatile\":{\"cache_total{result=\\\"hit\\\"}\":7}}"
        );
        // Byte-stable across repeated snapshots with unchanged values.
        assert_eq!(snap, reg.snapshot_json());
    }

    #[test]
    fn prometheus_exposition_shape() {
        let reg = Registry::new();
        reg.counter("hits_total", &[("shard", "0")], MetricClass::Volatile, "cache hits").add(5);
        reg.histogram("lat_s", &[], MetricClass::Volatile, &[0.01, 0.1], "latency").observe(0.05);
        let text = reg.prometheus_text();
        assert!(text.contains("# TYPE hits_total counter\n"));
        assert!(text.contains("hits_total{shard=\"0\"} 5\n"));
        assert!(text.contains("# TYPE lat_s histogram\n"));
        assert!(text.contains("lat_s_bucket{le=\"0.01\"} 0\n"));
        assert!(text.contains("lat_s_bucket{le=\"0.1\"} 1\n"));
        assert!(text.contains("lat_s_bucket{le=\"+Inf\"} 1\n"));
        assert!(text.contains("lat_s_sum 0.05\n"));
        assert!(text.contains("lat_s_count 1\n"));
    }
}
