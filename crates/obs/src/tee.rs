//! [`Tee`]: fans every span/event out to several subscribers, so a
//! [`FlightRecorder`](crate::flight::FlightRecorder) (always-on crash
//! forensics) and a [`ChromeTraceWriter`](crate::chrome::ChromeTraceWriter)
//! (full profile for `--trace-out`) can share the process-wide
//! set-once subscriber slot.
//!
//! The tee itself holds the zero-alloc recording contract: forwarding
//! is a loop over a fixed `Vec` of `Arc`s built once at construction —
//! each callback is `O(subscribers)` dynamic dispatch with no heap
//! traffic of its own.

use std::sync::Arc;

use crate::{Field, Subscriber};

/// Forwards every [`Subscriber`] callback to each inner subscriber, in
/// construction order.
pub struct Tee {
    subs: Vec<Arc<dyn Subscriber>>,
}

impl Tee {
    /// A tee over `subs`; callbacks fan out in the given order.
    pub fn new(subs: Vec<Arc<dyn Subscriber>>) -> Self {
        Tee { subs }
    }

    /// Number of inner subscribers.
    pub fn len(&self) -> usize {
        self.subs.len()
    }

    /// Whether the tee forwards to nothing.
    pub fn is_empty(&self) -> bool {
        self.subs.is_empty()
    }
}

impl Subscriber for Tee {
    fn span_begin(&self, name: &'static str, cat: &'static str, fields: &[Field]) {
        for s in &self.subs {
            s.span_begin(name, cat, fields);
        }
    }

    fn span_end(&self, name: &'static str, cat: &'static str, fields: &[Field]) {
        for s in &self.subs {
            s.span_end(name, cat, fields);
        }
    }

    fn event(&self, name: &'static str, cat: &'static str, fields: &[Field]) {
        for s in &self.subs {
            s.event(name, cat, fields);
        }
    }

    fn track_name(&self, name: &str) {
        for s in &self.subs {
            s.track_name(name);
        }
    }

    fn flush(&self) {
        for s in &self.subs {
            s.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chrome::ChromeTraceWriter;
    use crate::flight::FlightRecorder;
    use crate::json::{parse, validate_chrome_trace, validate_flight_dump};

    #[test]
    fn tee_forwards_to_all_subscribers() {
        let chrome = Arc::new(ChromeTraceWriter::new());
        let flight = Arc::new(FlightRecorder::new());
        let tee = Tee::new(vec![chrome.clone() as _, flight.clone() as _]);
        assert_eq!(tee.len(), 2);
        assert!(!tee.is_empty());

        tee.track_name("main");
        tee.span_begin("round", "t", &[]);
        tee.event("mark", "t", &[]);
        tee.span_end("round", "t", &[]);
        tee.flush();

        let chrome_doc = parse(&chrome.to_json()).unwrap();
        let cs = validate_chrome_trace(&chrome_doc).unwrap();
        assert_eq!(cs.spans, 1);
        assert_eq!(cs.instants, 1);
        assert_eq!(cs.named_tracks, 1);

        let flight_doc = parse(&flight.to_chrome_json()).unwrap();
        let fs = validate_flight_dump(&flight_doc).unwrap();
        assert_eq!(fs.trace.spans, 1);
        assert_eq!(fs.trace.instants, 2); // mark + dump marker
        assert_eq!(fs.trace.named_tracks, 1);
    }

    #[test]
    fn empty_tee_is_a_no_op() {
        let tee = Tee::new(Vec::new());
        assert!(tee.is_empty());
        tee.span_begin("x", "t", &[]);
        tee.span_end("x", "t", &[]);
        tee.event("y", "t", &[]);
        tee.flush();
    }
}
