//! [`FlightRecorder`]: a bounded, allocation-disciplined ring-buffer
//! subscriber that continuously captures the most recent spans and
//! events, and dumps them as a Perfetto-loadable Chrome-trace forensic
//! bundle on demand or when a trigger fires (gate breach, ingest-lag
//! spike, identification failure, panic hook).
//!
//! ## Design
//!
//! Every recording thread owns a private ring of fixed-capacity
//! [`Copy`] slots; a process-global sequence number stitches the rings
//! back into one timeline at dump time. When a ring is full the oldest
//! slot is overwritten — steady-state recording never grows, never
//! allocates, and never blocks another thread (each ring has its own
//! uncontended lock, touched only by its owner while recording).
//!
//! The warm record path is: one thread-local lookup, one global
//! `fetch_add`, one uncontended mutex, one slot copy. **Zero heap
//! allocations** — pinned by the counting-allocator gate in
//! `tests/zero_alloc_flight.rs`, the same contract the rest of the
//! tracing layer holds. The only allocating paths are cold: the first
//! record on a new thread (ring creation) and dumping.
//!
//! ## Truncation honesty
//!
//! A ring dump is a *suffix* of each thread's true span stream, so it
//! can contain span ends whose begins were overwritten and span begins
//! whose ends had not happened yet. [`FlightRecorder::to_chrome_json`]
//! sanitizes both — orphan ends are dropped, unclosed begins get a
//! synthetic end stamped at dump time — so the bundle always passes
//! [`validate_chrome_trace`](crate::json::validate_chrome_trace), and a
//! `flight.dump` marker event carries the bookkeeping (drop count,
//! trigger reason, ring count) so the loss is visible, not silent.

use std::cell::RefCell;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json::{escape_json_into, fmt_f64};
use crate::{Field, FieldValue, Subscriber};

/// Fields kept per slot; extras are counted in
/// [`truncated_fields`](FlightRecorder::truncated_fields) and dropped.
pub const MAX_SLOT_FIELDS: usize = 8;

/// Default ring capacity (slots per thread) for [`FlightRecorder::new`].
pub const DEFAULT_CAPACITY: usize = 4096;

const EMPTY_FIELD: Field = Field { key: "", value: FieldValue::Bool(false) };

const EMPTY_SLOT: Slot = Slot {
    seq: 0,
    ph: 0,
    name: "",
    cat: "",
    ts_us: 0,
    n_fields: 0,
    fields: [EMPTY_FIELD; MAX_SLOT_FIELDS],
};

/// One recorded span begin/end or event. `Copy` so ring writes are a
/// plain slot overwrite with no allocation and no drop glue.
#[derive(Clone, Copy)]
struct Slot {
    /// Process-global sequence number (dump-time merge key).
    seq: u64,
    /// `b'B'`, `b'E'`, or `b'i'`; 0 marks a never-written slot.
    ph: u8,
    name: &'static str,
    cat: &'static str,
    /// Microseconds since the recorder was constructed.
    ts_us: u64,
    n_fields: u8,
    fields: [Field; MAX_SLOT_FIELDS],
}

struct RingInner {
    slots: Box<[Slot]>,
    /// Total slots ever written; `written - min(written, capacity)`
    /// of them have been overwritten.
    written: u64,
}

/// One thread's ring. Owned by its thread for writes (via the
/// thread-local registry) and by the recorder for dump-time reads, so
/// the lock is uncontended in steady state.
struct ThreadRing {
    /// Track id in dump output (first-record order, starting at 1).
    tid: u32,
    inner: Mutex<RingInner>,
}

impl ThreadRing {
    /// Writes one slot, overwriting the oldest when full. Returns the
    /// number of fields that did not fit.
    fn write(
        &self,
        seq: u64,
        ph: u8,
        name: &'static str,
        cat: &'static str,
        ts_us: u64,
        fields: &[Field],
    ) -> usize {
        let mut inner = self.inner.lock().unwrap();
        let cap = inner.slots.len();
        let idx = (inner.written % cap as u64) as usize;
        let n = fields.len().min(MAX_SLOT_FIELDS);
        let slot = &mut inner.slots[idx];
        slot.seq = seq;
        slot.ph = ph;
        slot.name = name;
        slot.cat = cat;
        slot.ts_us = ts_us;
        slot.n_fields = n as u8;
        slot.fields[..n].copy_from_slice(&fields[..n]);
        inner.written += 1;
        fields.len() - n
    }

    /// Copies out the live slots, oldest first, plus the overwrite
    /// count for this ring.
    fn snapshot(&self) -> (Vec<Slot>, u64) {
        let inner = self.inner.lock().unwrap();
        let cap = inner.slots.len() as u64;
        let live = inner.written.min(cap);
        let dropped = inner.written - live;
        let mut out = Vec::with_capacity(live as usize);
        for i in 0..live {
            let idx = ((inner.written - live + i) % cap) as usize;
            out.push(inner.slots[idx]);
        }
        (out, dropped)
    }
}

/// Distinguishes recorders in the per-thread ring registry, so tests
/// (and a hypothetical re-exec) can run several recorders without their
/// thread-locals colliding.
static NEXT_RECORDER_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// This thread's rings, keyed by recorder id. Linear scan: a
    /// process realistically holds one or two live recorders.
    static RINGS_TLS: RefCell<Vec<(u64, Arc<ThreadRing>)>> = const { RefCell::new(Vec::new()) };
}

/// Bounded in-memory flight recorder. Install once with
/// [`set_subscriber`](crate::set_subscriber) (alone or inside a
/// [`Tee`](crate::tee::Tee)), keep an `Arc` clone, and call
/// [`trigger`](FlightRecorder::trigger) /
/// [`to_chrome_json`](FlightRecorder::to_chrome_json) when something
/// goes wrong.
pub struct FlightRecorder {
    id: u64,
    start: Instant,
    capacity: usize,
    /// Process-global sequence stamped into every slot.
    seq: AtomicU64,
    next_tid: AtomicU32,
    /// All rings ever created, for dump-time iteration.
    rings: Mutex<Vec<Arc<ThreadRing>>>,
    /// `(tid, name)` from `track_name` calls; last write wins per tid.
    track_names: Mutex<Vec<(u32, String)>>,
    dump_dir: Option<PathBuf>,
    triggers: AtomicU64,
    truncated_fields: AtomicU64,
    last_trigger: Mutex<Option<&'static str>>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity)
            .field("dump_dir", &self.dump_dir)
            .field("triggers", &self.triggers.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl FlightRecorder {
    /// A recorder with the [`DEFAULT_CAPACITY`] ring size; timestamps
    /// are measured from this call.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// A recorder keeping the most recent `capacity` spans/events *per
    /// recording thread*.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "flight recorder capacity must be non-zero");
        FlightRecorder {
            id: NEXT_RECORDER_ID.fetch_add(1, Ordering::Relaxed),
            start: Instant::now(),
            capacity,
            seq: AtomicU64::new(0),
            next_tid: AtomicU32::new(1),
            rings: Mutex::new(Vec::new()),
            track_names: Mutex::new(Vec::new()),
            dump_dir: None,
            triggers: AtomicU64::new(0),
            truncated_fields: AtomicU64::new(0),
            last_trigger: Mutex::new(None),
        }
    }

    /// Sets the directory [`trigger`](FlightRecorder::trigger) dumps
    /// into (`flight-<reason>.json`). The directory must already exist.
    pub fn with_dump_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.dump_dir = Some(dir.into());
        self
    }

    /// Ring capacity per recording thread.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total slots overwritten (lost to ring wraparound) so far, summed
    /// over all rings.
    pub fn dropped(&self) -> u64 {
        let rings: Vec<Arc<ThreadRing>> = self.rings.lock().unwrap().clone();
        rings
            .iter()
            .map(|r| {
                let inner = r.inner.lock().unwrap();
                inner.written - inner.written.min(inner.slots.len() as u64)
            })
            .sum()
    }

    /// How many times [`trigger`](FlightRecorder::trigger) has fired.
    pub fn trigger_count(&self) -> u64 {
        self.triggers.load(Ordering::Relaxed)
    }

    /// Total fields dropped because a slot holds at most
    /// [`MAX_SLOT_FIELDS`].
    pub fn truncated_fields(&self) -> u64 {
        self.truncated_fields.load(Ordering::Relaxed)
    }

    /// The calling thread's ring for this recorder, creating it (cold
    /// path, allocates) on first use.
    fn ring(&self) -> Arc<ThreadRing> {
        RINGS_TLS.with(|cell| {
            let mut rings = cell.borrow_mut();
            if let Some((_, r)) = rings.iter().find(|(id, _)| *id == self.id) {
                return Arc::clone(r);
            }
            let ring = Arc::new(ThreadRing {
                tid: self.next_tid.fetch_add(1, Ordering::Relaxed),
                inner: Mutex::new(RingInner {
                    slots: vec![EMPTY_SLOT; self.capacity].into_boxed_slice(),
                    written: 0,
                }),
            });
            self.rings.lock().unwrap().push(Arc::clone(&ring));
            rings.push((self.id, Arc::clone(&ring)));
            ring
        })
    }

    fn record(&self, ph: u8, name: &'static str, cat: &'static str, fields: &[Field]) {
        let ts_us = self.start.elapsed().as_micros() as u64;
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let truncated = self.ring().write(seq, ph, name, cat, ts_us, fields);
        if truncated > 0 {
            self.truncated_fields.fetch_add(truncated as u64, Ordering::Relaxed);
        }
    }

    /// Records a trigger (reason lands in the ring and in the dump
    /// marker) and, when a dump directory is configured, writes the
    /// forensic bundle to `flight-<reason>.json` and returns its path.
    ///
    /// Dump failures are reported on stderr rather than panicking — a
    /// flight recorder must never take the process down.
    pub fn trigger(&self, reason: &'static str) -> Option<PathBuf> {
        self.triggers.fetch_add(1, Ordering::Relaxed);
        *self.last_trigger.lock().unwrap() = Some(reason);
        self.record(
            b'i',
            "flight.trigger",
            "obs::flight",
            &[Field { key: "reason", value: FieldValue::Str(reason) }],
        );
        let dir = self.dump_dir.as_ref()?;
        let path = dir.join(format!("flight-{reason}.json"));
        match self.save(&path) {
            Ok(()) => Some(path),
            Err(e) => {
                eprintln!("flight recorder: failed to dump to {}: {e}", path.display());
                None
            }
        }
    }

    /// Serializes the live ring contents as a Chrome trace-event JSON
    /// document, sanitized so it always validates: events are merged
    /// across rings by global sequence, orphan span ends (begin
    /// overwritten) are dropped, unclosed span begins get a synthetic
    /// end at dump time tagged `truncated:true`, and a single
    /// `flight.dump` instant carries `reason`, `events`, `dropped`,
    /// `rings`, `triggers`, and `truncated_fields`.
    pub fn to_chrome_json(&self) -> String {
        let rings: Vec<Arc<ThreadRing>> = self.rings.lock().unwrap().clone();
        let dump_ts_us = self.start.elapsed().as_micros() as u64;

        let mut dropped = 0u64;
        let mut merged: Vec<(u32, Slot)> = Vec::new();
        for ring in &rings {
            let (slots, ring_dropped) = ring.snapshot();
            dropped += ring_dropped;
            merged.extend(slots.into_iter().map(|s| (ring.tid, s)));
        }
        merged.sort_by_key(|(_, s)| s.seq);

        // Sanitize per track. Each ring holds a *suffix* of a strictly
        // nested stream, so an end without an open begin always means
        // the begin was overwritten (drop it; count it as lost), and a
        // begin left open at the end means its end had not been
        // recorded yet (synthesize one at dump time).
        let mut stacks: Vec<(u32, Vec<usize>)> = Vec::new();
        let mut keep = vec![true; merged.len()];
        for (i, (tid, slot)) in merged.iter().enumerate() {
            let pos = match stacks.iter().position(|(t, _)| t == tid) {
                Some(p) => p,
                None => {
                    stacks.push((*tid, Vec::new()));
                    stacks.len() - 1
                }
            };
            let stack = &mut stacks[pos].1;
            match slot.ph {
                b'B' => stack.push(i),
                b'E' => match stack.last() {
                    Some(&open) if merged[open].1.name == slot.name => {
                        stack.pop();
                    }
                    _ => {
                        // Begin lost to wraparound (or interleaving
                        // noise): an unmatched end would fail
                        // validation, so drop it and count it.
                        keep[i] = false;
                        dropped += 1;
                    }
                },
                _ => {}
            }
        }

        let events = merged.iter().zip(&keep).filter(|(_, k)| **k).count() as u64;
        let reason = self.last_trigger.lock().unwrap().unwrap_or("on_demand");

        let mut out = String::with_capacity(256 + merged.len() * 96);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        for (tid, name) in self.track_names.lock().unwrap().iter() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":");
            out.push_str(&tid.to_string());
            out.push_str(",\"args\":{\"name\":\"");
            escape_json_into(&mut out, name);
            out.push_str("\"}}");
        }

        // The dump marker: one instant on its own track carrying the
        // bookkeeping obscheck --flight asserts on.
        if !first {
            out.push(',');
        }
        out.push_str("{\"name\":\"flight.dump\",\"cat\":\"obs::flight\",\"ph\":\"i\",\"ts\":");
        out.push_str(&dump_ts_us.to_string());
        out.push_str(",\"pid\":1,\"tid\":0,\"s\":\"t\",\"args\":{\"reason\":\"");
        escape_json_into(&mut out, reason);
        out.push_str("\",\"events\":");
        out.push_str(&events.to_string());
        out.push_str(",\"dropped\":");
        out.push_str(&dropped.to_string());
        out.push_str(",\"rings\":");
        out.push_str(&rings.len().to_string());
        out.push_str(",\"triggers\":");
        out.push_str(&self.trigger_count().to_string());
        out.push_str(",\"truncated_fields\":");
        out.push_str(&self.truncated_fields().to_string());
        out.push_str("}}");

        for ((tid, slot), k) in merged.iter().zip(&keep) {
            if !*k {
                continue;
            }
            emit_slot(&mut out, *tid, slot, None);
        }
        // Close still-open spans, innermost first, stamped at dump
        // time so E.ts >= B.ts holds.
        for (tid, stack) in &stacks {
            for &open in stack.iter().rev() {
                let slot = &merged[open].1;
                let synthetic =
                    Slot { ph: b'E', ts_us: dump_ts_us.max(slot.ts_us), n_fields: 0, ..*slot };
                emit_slot(&mut out, *tid, &synthetic, Some(("truncated", FieldValue::Bool(true))));
            }
        }
        out.push_str("]}");
        out
    }

    /// Writes [`to_chrome_json`](FlightRecorder::to_chrome_json) to
    /// `path`.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_chrome_json())
    }
}

/// Appends one trace event object (preceded by a comma; the caller has
/// always emitted the dump marker first).
fn emit_slot(out: &mut String, tid: u32, slot: &Slot, extra: Option<(&str, FieldValue)>) {
    out.push_str(",{\"name\":\"");
    escape_json_into(out, slot.name);
    out.push_str("\",\"cat\":\"");
    escape_json_into(out, slot.cat);
    out.push_str("\",\"ph\":\"");
    out.push(slot.ph as char);
    out.push_str("\",\"ts\":");
    out.push_str(&slot.ts_us.to_string());
    out.push_str(",\"pid\":1,\"tid\":");
    out.push_str(&tid.to_string());
    if slot.ph == b'i' {
        out.push_str(",\"s\":\"t\"");
    }
    let n = slot.n_fields as usize;
    if n > 0 || extra.is_some() {
        out.push_str(",\"args\":{");
        let mut first = true;
        for field in &slot.fields[..n] {
            if !first {
                out.push(',');
            }
            first = false;
            emit_arg(out, field.key, field.value);
        }
        if let Some((key, value)) = extra {
            if !first {
                out.push(',');
            }
            emit_arg(out, key, value);
        }
        out.push('}');
    }
    out.push('}');
}

fn emit_arg(out: &mut String, key: &str, value: FieldValue) {
    out.push('"');
    escape_json_into(out, key);
    out.push_str("\":");
    match value {
        FieldValue::U64(v) => out.push_str(&v.to_string()),
        FieldValue::I64(v) => out.push_str(&v.to_string()),
        FieldValue::F64(v) => out.push_str(&fmt_f64(v)),
        FieldValue::Bool(v) => out.push_str(if v { "true" } else { "false" }),
        FieldValue::Str(v) => {
            out.push('"');
            escape_json_into(out, v);
            out.push('"');
        }
    }
}

impl Subscriber for FlightRecorder {
    fn span_begin(&self, name: &'static str, cat: &'static str, fields: &[Field]) {
        self.record(b'B', name, cat, fields);
    }

    fn span_end(&self, name: &'static str, cat: &'static str, fields: &[Field]) {
        self.record(b'E', name, cat, fields);
    }

    fn event(&self, name: &'static str, cat: &'static str, fields: &[Field]) {
        self.record(b'i', name, cat, fields);
    }

    fn track_name(&self, name: &str) {
        let tid = self.ring().tid;
        let mut names = self.track_names.lock().unwrap();
        if let Some(slot) = names.iter_mut().find(|(t, _)| *t == tid) {
            slot.1 = name.to_string();
        } else {
            names.push((tid, name.to_string()));
        }
    }
}

/// Installs a process panic hook that trips `recorder.trigger("panic")`
/// before delegating to the previously installed hook, so an aborting
/// daemon leaves a `flight-panic.json` behind (when a dump directory is
/// configured).
pub fn install_panic_hook(recorder: Arc<FlightRecorder>) {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        recorder.trigger("panic");
        prev(info);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, validate_chrome_trace, validate_flight_dump};

    fn field(key: &'static str, value: FieldValue) -> Field {
        Field { key, value }
    }

    #[test]
    fn empty_recorder_dump_validates() {
        let rec = FlightRecorder::new();
        let doc = parse(&rec.to_chrome_json()).unwrap();
        let summary = validate_flight_dump(&doc).unwrap();
        assert_eq!(summary.reason, "on_demand");
        assert_eq!(summary.dropped, 0);
        assert_eq!(summary.trace.instants, 1); // the marker itself
    }

    #[test]
    fn balanced_stream_round_trips() {
        let rec = FlightRecorder::new();
        rec.track_name("main-loop");
        rec.span_begin("round", "t", &[field("round", FieldValue::U64(1))]);
        rec.span_begin("light", "t", &[]);
        rec.event("light.done", "t", &[field("ok", FieldValue::Bool(true))]);
        rec.span_end("light", "t", &[]);
        rec.span_end("round", "t", &[]);

        let doc = parse(&rec.to_chrome_json()).unwrap();
        let summary = validate_flight_dump(&doc).unwrap();
        assert_eq!(summary.trace.spans, 2);
        assert_eq!(summary.trace.instants, 2); // marker + light.done
        assert_eq!(summary.trace.named_tracks, 1);
        assert_eq!(summary.dropped, 0);
    }

    #[test]
    fn wraparound_keeps_newest_and_counts_dropped() {
        let rec = FlightRecorder::with_capacity(8);
        for i in 0..100u64 {
            rec.span_begin("unit", "t", &[field("i", FieldValue::U64(i))]);
            rec.span_end("unit", "t", &[]);
        }
        assert_eq!(rec.dropped(), 192);
        let doc = parse(&rec.to_chrome_json()).unwrap();
        let summary = validate_flight_dump(&doc).unwrap();
        // 8 live slots = 4 balanced spans; the newest iteration's begin
        // must have survived.
        assert_eq!(summary.trace.spans, 4);
        assert!(rec.to_chrome_json().contains("\"i\":99"));
    }

    #[test]
    fn orphan_end_is_dropped_and_open_begin_gets_synthetic_close() {
        // Capacity 3 over B(outer) B(inner) E(inner) E(outer) B(open):
        // the ring keeps E(inner) E(outer) B(open), so both surviving
        // ends are orphans and the open begin needs a synthetic close.
        let rec = FlightRecorder::with_capacity(3);
        rec.span_begin("outer", "t", &[]);
        rec.span_begin("inner", "t", &[]);
        rec.span_end("inner", "t", &[]);
        rec.span_end("outer", "t", &[]);
        rec.span_begin("open", "t", &[]);

        let json = rec.to_chrome_json();
        let doc = parse(&json).unwrap();
        let summary = validate_flight_dump(&doc).unwrap();
        assert_eq!(summary.trace.spans, 1); // open + its synthetic end
        assert!(json.contains("\"truncated\":true"));
        // 2 slots lost to wraparound + 2 orphan ends sanitized away.
        assert_eq!(summary.dropped, 4);
    }

    #[test]
    fn trigger_records_reason_and_dumps_to_dir() {
        let dir = std::env::temp_dir().join(format!("taxilight-flight-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let rec = FlightRecorder::with_capacity(64).with_dump_dir(&dir);
        rec.event("work", "t", &[]);
        let path = rec.trigger("gate_breach").expect("dump path");
        assert!(path.ends_with("flight-gate_breach.json"));
        let doc = parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let summary = validate_flight_dump(&doc).unwrap();
        assert_eq!(summary.reason, "gate_breach");
        assert_eq!(rec.trigger_count(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn threads_get_distinct_tracks_and_global_order_is_kept() {
        let rec = Arc::new(FlightRecorder::new());
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let rec = Arc::clone(&rec);
                scope.spawn(move || {
                    for _ in 0..10 {
                        rec.span_begin("work", "t", &[]);
                        rec.span_end("work", "t", &[]);
                    }
                });
            }
        });
        rec.span_begin("main", "t", &[]);
        rec.span_end("main", "t", &[]);

        let doc = parse(&rec.to_chrome_json()).unwrap();
        let summary = validate_chrome_trace(&doc).unwrap();
        assert_eq!(summary.spans, 31);
        assert_eq!(summary.tracks, 5); // 3 workers + main + marker track
    }

    #[test]
    fn field_overflow_is_counted_not_lost_silently() {
        let rec = FlightRecorder::new();
        let fields: Vec<Field> = (0..12).map(|_| field("k", FieldValue::U64(1))).collect();
        rec.event("wide", "t", &fields);
        assert_eq!(rec.truncated_fields(), 4);
        let doc = parse(&rec.to_chrome_json()).unwrap();
        validate_flight_dump(&doc).unwrap();
    }

    #[test]
    fn two_recorders_keep_separate_rings_on_one_thread() {
        let a = FlightRecorder::new();
        let b = FlightRecorder::new();
        a.event("only-a", "t", &[]);
        b.event("only-b", "t", &[]);
        assert!(a.to_chrome_json().contains("only-a"));
        assert!(!a.to_chrome_json().contains("only-b"));
        assert!(b.to_chrome_json().contains("only-b"));
        assert!(!b.to_chrome_json().contains("only-a"));
    }
}
