//! # taxilight-obs
//!
//! Zero-cost observability for the taxilight pipeline: structured spans
//! and events with a pluggable [`Subscriber`], a process-wide
//! [metrics registry](metrics) (counters, gauges, fixed-bucket
//! histograms) with deterministic JSON snapshots and Prometheus text
//! exposition, and a [`ChromeTraceWriter`](chrome::ChromeTraceWriter)
//! subscriber emitting Chrome trace-event JSON that loads directly in
//! Perfetto.
//!
//! ## The zero-cost contract
//!
//! With no subscriber installed, [`span!`] and [`event!`] cost exactly
//! one relaxed atomic load each (the [`std::sync::OnceLock`] state
//! check) and perform **zero heap allocations** — field expressions are
//! not even evaluated. This is pinned by the counting-allocator proptest
//! behind the `alloc-counter` feature, the same gate that protects the
//! per-light identification hot path in `taxilight-core`. The `off`
//! cargo feature goes further and constant-folds the subscriber lookup
//! to `None`, letting the compiler delete every instrumentation site.
//!
//! Metrics are independent of the subscriber: handles are atomics that
//! are always live, so counting a plan-cache hit is one
//! `fetch_add(1, Relaxed)` whether or not anything is tracing.
//!
//! ## Subscriber model
//!
//! A subscriber is installed process-wide, **once**, with
//! [`set_subscriber`] (the `log`-crate model — installation is for the
//! life of the process; keep an `Arc` clone to flush or serialize at
//! exit). Spans are strictly nested per thread: [`span!`] returns a
//! [`SpanGuard`] whose `Drop` emits the matching end, so begin/end pairs
//! are LIFO by construction — the property the Chrome trace validator
//! asserts per track.
//!
//! ```
//! use taxilight_obs::{event, span};
//! fn identify_one(light: u32) {
//!     let _span = span!("light", light = light);
//!     // ... work ...
//!     event!("light.done", light = light, ok = true);
//! }
//! identify_one(7); // no subscriber installed: both macros are free
//! ```

#![warn(missing_docs)]

pub mod chrome;
pub mod flight;
pub mod json;
pub mod metrics;
pub mod tee;

use std::sync::{Arc, OnceLock};

/// One structured value attached to a span or event.
///
/// Deliberately `Copy` and allocation-free: strings must be `'static`
/// (field keys and categorical values are compile-time constants on the
/// hot path; anything dynamic belongs in a metric, not a span field).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer (ids, counts).
    U64(u64),
    /// Signed integer (deltas, timestamps).
    I64(i64),
    /// Float (estimates, seconds).
    F64(f64),
    /// Static string (labels, outcomes).
    Str(&'static str),
    /// Boolean (verdicts, toggles).
    Bool(bool),
}

macro_rules! impl_from_fieldvalue {
    ($($t:ty => $variant:ident as $conv:ty),* $(,)?) => {$(
        impl From<$t> for FieldValue {
            fn from(v: $t) -> Self {
                FieldValue::$variant(v as $conv)
            }
        }
    )*};
}

impl_from_fieldvalue!(
    u64 => U64 as u64,
    u32 => U64 as u64,
    u16 => U64 as u64,
    usize => U64 as u64,
    i64 => I64 as i64,
    i32 => I64 as i64,
    f64 => F64 as f64,
    f32 => F64 as f64,
);

impl From<&'static str> for FieldValue {
    fn from(v: &'static str) -> Self {
        FieldValue::Str(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

/// A `key = value` pair attached to a span or event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Field {
    /// Field name (compile-time constant at every call site).
    pub key: &'static str,
    /// Field value.
    pub value: FieldValue,
}

/// Receives spans and events. Implementations must be cheap enough to
/// call from the per-light hot path *when installed*; when nothing is
/// installed the macros never reach a subscriber at all.
///
/// Thread identity is the subscriber's concern (the Chrome writer keys
/// its tracks on a per-thread id); begin/end pairs arrive strictly
/// nested per calling thread because [`SpanGuard`] is scope-bound.
pub trait Subscriber: Send + Sync {
    /// A span opened on the calling thread.
    fn span_begin(&self, name: &'static str, cat: &'static str, fields: &[Field]);
    /// The matching close of the most recent unclosed `span_begin` on
    /// the calling thread.
    fn span_end(&self, name: &'static str, cat: &'static str, fields: &[Field]);
    /// An instantaneous event on the calling thread.
    fn event(&self, name: &'static str, cat: &'static str, fields: &[Field]);
    /// Names the calling thread's track in trace output (e.g.
    /// `shard-worker-3`). Optional; defaults to a no-op.
    fn track_name(&self, _name: &str) {}
    /// Flushes buffered output, if any. Optional.
    fn flush(&self) {}
}

static SUBSCRIBER: OnceLock<Arc<dyn Subscriber>> = OnceLock::new();

/// The installed subscriber, or `None`. This is the macro fast path: one
/// relaxed/acquire atomic load when nothing is installed. With the `off`
/// feature the function is a constant `None` and call sites fold away.
#[inline(always)]
pub fn subscriber() -> Option<&'static dyn Subscriber> {
    #[cfg(feature = "off")]
    {
        None
    }
    #[cfg(not(feature = "off"))]
    {
        SUBSCRIBER.get().map(|a| a.as_ref())
    }
}

/// Error returned by [`set_subscriber`] when one is already installed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubscriberInstalledError;

impl std::fmt::Display for SubscriberInstalledError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "a subscriber is already installed for this process")
    }
}

impl std::error::Error for SubscriberInstalledError {}

/// Installs the process-wide subscriber. Succeeds at most once per
/// process (keep an `Arc` clone to flush/serialize at exit). With the
/// `off` feature the subscriber is accepted but never called.
pub fn set_subscriber(s: Arc<dyn Subscriber>) -> Result<(), SubscriberInstalledError> {
    SUBSCRIBER.set(s).map_err(|_| SubscriberInstalledError)
}

/// Runs `f` against the installed subscriber, if any. Use for
/// instrumentation whose argument is costly to build (the closure runs
/// only when something is listening):
///
/// ```
/// # let w = 3;
/// taxilight_obs::with_subscriber(|s| s.track_name(&format!("shard-worker-{w}")));
/// ```
#[inline]
pub fn with_subscriber(f: impl FnOnce(&dyn Subscriber)) {
    if let Some(s) = subscriber() {
        f(s);
    }
}

/// Names the calling thread's track in trace output. The closure builds
/// the name only when a subscriber is installed, so disabled builds pay
/// one atomic load and allocate nothing.
#[inline]
pub fn set_track_name(name: impl FnOnce() -> String) {
    if let Some(s) = subscriber() {
        s.track_name(&name());
    }
}

/// Scope guard emitting the span end on drop. Construct via [`span!`];
/// bind it (`let _span = span!(..)`) so the span covers the scope.
#[must_use = "bind the guard (`let _span = span!(..)`) or the span closes immediately"]
pub struct SpanGuard {
    name: &'static str,
    cat: &'static str,
    active: bool,
}

impl SpanGuard {
    /// Used by [`span!`]; not intended for direct calls.
    #[doc(hidden)]
    #[inline]
    pub fn new(name: &'static str, cat: &'static str, active: bool) -> Self {
        SpanGuard { name, cat, active }
    }

    /// Whether a subscriber observed this span's begin.
    pub fn is_active(&self) -> bool {
        self.active
    }
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        if self.active {
            if let Some(s) = subscriber() {
                s.span_end(self.name, self.cat, &[]);
            }
        }
    }
}

/// Opens a structured span covering the enclosing scope.
///
/// `span!("name")` or `span!("name", key = value, ...)`. Returns a
/// [`SpanGuard`]; bind it to a variable (`let _span = span!(..)`). The
/// category is the call site's `module_path!()`. Field expressions are
/// evaluated **only when a subscriber is installed** — with none, the
/// whole macro is one atomic load and zero allocations.
#[macro_export]
macro_rules! span {
    ($name:expr) => { $crate::span!($name,) };
    ($name:expr, $($k:ident = $v:expr),* $(,)?) => {{
        let __obs_active = match $crate::subscriber() {
            Some(s) => {
                s.span_begin(
                    $name,
                    module_path!(),
                    &[$($crate::Field {
                        key: stringify!($k),
                        value: $crate::FieldValue::from($v),
                    }),*],
                );
                true
            }
            None => false,
        };
        $crate::SpanGuard::new($name, module_path!(), __obs_active)
    }};
}

/// Emits a structured instantaneous event.
///
/// `event!("name")` or `event!("name", key = value, ...)`. Field
/// expressions are evaluated **only when a subscriber is installed**.
#[macro_export]
macro_rules! event {
    ($name:expr) => { $crate::event!($name,) };
    ($name:expr, $($k:ident = $v:expr),* $(,)?) => {{
        if let Some(s) = $crate::subscriber() {
            s.event(
                $name,
                module_path!(),
                &[$($crate::Field {
                    key: stringify!($k),
                    value: $crate::FieldValue::from($v),
                }),*],
            );
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_value_conversions() {
        assert_eq!(FieldValue::from(3u32), FieldValue::U64(3));
        assert_eq!(FieldValue::from(7usize), FieldValue::U64(7));
        assert_eq!(FieldValue::from(-2i64), FieldValue::I64(-2));
        assert_eq!(FieldValue::from(1.5f64), FieldValue::F64(1.5));
        assert_eq!(FieldValue::from("hit"), FieldValue::Str("hit"));
        assert_eq!(FieldValue::from(true), FieldValue::Bool(true));
    }

    #[test]
    fn macros_are_inert_without_subscriber() {
        // No subscriber is installed in this test binary: the guard must
        // report inactive and the field expressions must not run.
        let mut evaluated = false;
        {
            let _span = span!(
                "test.span",
                flag = {
                    evaluated = true;
                    1u32
                }
            );
            assert!(!_span.is_active());
            event!(
                "test.event",
                flag = {
                    evaluated = true;
                    2u32
                }
            );
        }
        assert!(!evaluated, "field expressions ran without a subscriber");
        assert!(subscriber().is_none());
    }

    #[test]
    fn with_subscriber_skips_closure_when_uninstalled() {
        let mut ran = false;
        with_subscriber(|_| ran = true);
        set_track_name(|| panic!("track-name closure must not run without a subscriber"));
        assert!(!ran);
    }
}
