//! [`ChromeTraceWriter`]: a [`Subscriber`](crate::Subscriber) that
//! records spans and events as Chrome trace-event JSON — the format
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) load
//! natively, and the same one the `servo/perf-analysis-tools` pipeline
//! emits.
//!
//! Each OS thread that emits a span gets its own track (`tid` assigned
//! in first-emission order); shard workers name their tracks via
//! [`set_track_name`](crate::set_track_name), which becomes a
//! `thread_name` metadata event. Span begin/end pairs are strictly
//! nested per track by construction (the `span!` guard is scope-bound),
//! which is exactly what [`validate_chrome_trace`](crate::json::validate_chrome_trace)
//! asserts on the serialized output.

use std::io;
use std::path::Path;
use std::sync::Mutex;
use std::thread::ThreadId;
use std::time::Instant;

use crate::json::{escape_json_into, fmt_f64};
use crate::{Field, FieldValue, Subscriber};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Phase {
    Begin,
    End,
    Instant,
}

impl Phase {
    fn as_str(self) -> &'static str {
        match self {
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Instant => "i",
        }
    }
}

struct Ev {
    ph: Phase,
    name: &'static str,
    cat: &'static str,
    /// Microseconds since the writer was constructed.
    ts_us: u64,
    tid: u32,
    args: Vec<(&'static str, FieldValue)>,
}

#[derive(Default)]
struct Inner {
    events: Vec<Ev>,
    /// First-emission-order tid per OS thread.
    tids: Vec<(ThreadId, u32)>,
    /// `(tid, name)` from `track_name` calls; last write wins per tid.
    track_names: Vec<(u32, String)>,
}

impl Inner {
    fn tid(&mut self) -> u32 {
        let me = std::thread::current().id();
        if let Some((_, tid)) = self.tids.iter().find(|(t, _)| *t == me) {
            return *tid;
        }
        let tid = self.tids.len() as u32 + 1;
        self.tids.push((me, tid));
        tid
    }
}

/// Collects spans/events in memory and serializes them as Chrome
/// trace-event JSON. Install once with
/// [`set_subscriber`](crate::set_subscriber), keep an `Arc` clone, and
/// call [`save`](ChromeTraceWriter::save) at process exit.
///
/// A single mutex guards the event buffer — acceptable because tracing
/// is opt-in (`--trace-out`); the untraced hot path never reaches it.
pub struct ChromeTraceWriter {
    start: Instant,
    inner: Mutex<Inner>,
}

impl Default for ChromeTraceWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl ChromeTraceWriter {
    /// An empty writer; timestamps are measured from this call.
    pub fn new() -> Self {
        ChromeTraceWriter { start: Instant::now(), inner: Mutex::new(Inner::default()) }
    }

    fn record(&self, ph: Phase, name: &'static str, cat: &'static str, fields: &[Field]) {
        let ts_us = self.start.elapsed().as_micros() as u64;
        let mut inner = self.inner.lock().unwrap();
        let tid = inner.tid();
        inner.events.push(Ev {
            ph,
            name,
            cat,
            ts_us,
            tid,
            args: fields.iter().map(|f| (f.key, f.value)).collect(),
        });
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().events.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serializes everything recorded so far as a Chrome trace-event
    /// JSON document (`{"displayTimeUnit":"ms","traceEvents":[...]}`).
    pub fn to_json(&self) -> String {
        let inner = self.inner.lock().unwrap();
        let mut out = String::with_capacity(64 + inner.events.len() * 96);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        // Thread-name metadata first so viewers label tracks up front.
        for (tid, name) in &inner.track_names {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":");
            out.push_str(&tid.to_string());
            out.push_str(",\"args\":{\"name\":\"");
            escape_json_into(&mut out, name);
            out.push_str("\"}}");
        }
        for ev in &inner.events {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"name\":\"");
            escape_json_into(&mut out, ev.name);
            out.push_str("\",\"cat\":\"");
            escape_json_into(&mut out, ev.cat);
            out.push_str("\",\"ph\":\"");
            out.push_str(ev.ph.as_str());
            out.push_str("\",\"ts\":");
            out.push_str(&ev.ts_us.to_string());
            out.push_str(",\"pid\":1,\"tid\":");
            out.push_str(&ev.tid.to_string());
            if ev.ph == Phase::Instant {
                // Thread-scoped instant marker.
                out.push_str(",\"s\":\"t\"");
            }
            if !ev.args.is_empty() {
                out.push_str(",\"args\":{");
                for (i, (key, value)) in ev.args.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_json_into(&mut out, key);
                    out.push_str("\":");
                    match value {
                        FieldValue::U64(v) => out.push_str(&v.to_string()),
                        FieldValue::I64(v) => out.push_str(&v.to_string()),
                        FieldValue::F64(v) => out.push_str(&fmt_f64(*v)),
                        FieldValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
                        FieldValue::Str(v) => {
                            out.push('"');
                            escape_json_into(&mut out, v);
                            out.push('"');
                        }
                    }
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Writes [`to_json`](ChromeTraceWriter::to_json) to `path`.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

impl Subscriber for ChromeTraceWriter {
    fn span_begin(&self, name: &'static str, cat: &'static str, fields: &[Field]) {
        self.record(Phase::Begin, name, cat, fields);
    }

    fn span_end(&self, name: &'static str, cat: &'static str, fields: &[Field]) {
        self.record(Phase::End, name, cat, fields);
    }

    fn event(&self, name: &'static str, cat: &'static str, fields: &[Field]) {
        self.record(Phase::Instant, name, cat, fields);
    }

    fn track_name(&self, name: &str) {
        let mut inner = self.inner.lock().unwrap();
        let tid = inner.tid();
        if let Some(slot) = inner.track_names.iter_mut().find(|(t, _)| *t == tid) {
            slot.1 = name.to_string();
        } else {
            inner.track_names.push((tid, name.to_string()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, validate_chrome_trace};

    fn field(key: &'static str, value: FieldValue) -> Field {
        Field { key, value }
    }

    #[test]
    fn records_validate_as_chrome_trace() {
        let w = ChromeTraceWriter::new();
        w.track_name("shard-worker-0");
        w.span_begin("light", "core::engine", &[field("light", FieldValue::U64(7))]);
        w.span_begin("cycle", "core::pipeline", &[]);
        w.event("plan", "signal::plan", &[field("result", FieldValue::Str("hit"))]);
        w.span_end("cycle", "core::pipeline", &[]);
        w.span_end("light", "core::engine", &[]);

        let doc = parse(&w.to_json()).unwrap();
        let summary = validate_chrome_trace(&doc).unwrap();
        assert_eq!(summary.spans, 2);
        assert_eq!(summary.instants, 1);
        assert_eq!(summary.tracks, 1);
        assert_eq!(summary.named_tracks, 1);
    }

    #[test]
    fn threads_get_distinct_tracks() {
        let w = std::sync::Arc::new(ChromeTraceWriter::new());
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let w = std::sync::Arc::clone(&w);
                scope.spawn(move || {
                    w.span_begin("work", "t", &[]);
                    w.span_end("work", "t", &[]);
                });
            }
        });
        w.span_begin("main", "t", &[]);
        w.span_end("main", "t", &[]);

        let doc = parse(&w.to_json()).unwrap();
        let summary = validate_chrome_trace(&doc).unwrap();
        assert_eq!(summary.spans, 4);
        assert_eq!(summary.tracks, 4);
    }

    #[test]
    fn args_serialize_all_field_value_kinds() {
        let w = ChromeTraceWriter::new();
        w.event(
            "kinds",
            "t",
            &[
                field("u", FieldValue::U64(1)),
                field("i", FieldValue::I64(-2)),
                field("f", FieldValue::F64(0.5)),
                field("s", FieldValue::Str("x\"y")),
                field("b", FieldValue::Bool(true)),
            ],
        );
        let json = w.to_json();
        let doc = parse(&json).unwrap();
        validate_chrome_trace(&doc).unwrap();
        let args =
            doc.get("traceEvents").unwrap().as_arr().unwrap()[0].get("args").unwrap().clone();
        assert_eq!(args.get("u").unwrap().as_f64(), Some(1.0));
        assert_eq!(args.get("i").unwrap().as_f64(), Some(-2.0));
        assert_eq!(args.get("f").unwrap().as_f64(), Some(0.5));
        assert_eq!(args.get("s").unwrap().as_str(), Some("x\"y"));
        assert_eq!(args.get("b"), Some(&crate::json::Json::Bool(true)));
    }
}
