//! Differential proof for the chunked CSV reader: for *any* chunk size —
//! including 1 byte, which splits every row across boundaries — the
//! chunked reader yields the exact record sequence, bad-line sequence,
//! and learned fleet of the whole-file reader, even when rows are
//! garbled ([`corrupt::garble_csv`]) so that malformed fragments land on
//! either side of a chunk boundary.

use std::io::Cursor;

use proptest::prelude::*;
use taxilight_trace::corrupt::garble_csv;
use taxilight_trace::csv::{encode_log, CsvError};
use taxilight_trace::record::{Fleet, GpsCondition, PassengerState, TaxiRecord};
use taxilight_trace::source::{collect_source, CsvChunkReader};
use taxilight_trace::time::Timestamp;
use taxilight_trace::{GeoPoint, TaxiId};

/// A deterministic sample feed: `taxis` taxis, `n` records, ~90 bytes
/// per row.
fn sample_csv(taxis: usize, n: usize) -> String {
    let mut fleet = Fleet::new();
    let ids = fleet.register_many(taxis.max(1));
    let records: Vec<TaxiRecord> = (0..n)
        .map(|k| TaxiRecord {
            taxi: ids[k % ids.len()],
            position: GeoPoint::new(22.5 + (k % 97) as f64 * 1e-4, 114.02 + (k % 89) as f64 * 1e-4),
            time: Timestamp::civil(2014, 12, 5, 8, 0, 0).offset(k as i64 * 11),
            speed_kmh: (k % 77) as f64 / 1.0,
            heading_deg: ((k * 37) % 3600) as f64 / 10.0,
            gps: GpsCondition::Available,
            overspeed: false,
            passenger: if k % 2 == 0 { PassengerState::Vacant } else { PassengerState::Occupied },
        })
        .collect();
    encode_log(&records, &fleet).unwrap()
}

/// Whole-file reference decode: `csv::decode_log` (the same per-line
/// codec `io::TraceReader` wraps).
fn reference(text: &str) -> (Vec<TaxiRecord>, Vec<(usize, CsvError)>, Fleet) {
    let mut fleet = Fleet::new();
    let (records, errors) = taxilight_trace::csv::decode_log(text, &mut fleet);
    (records, errors, fleet)
}

/// Chunked decode at one chunk size.
fn chunked(text: &str, chunk_bytes: usize) -> (Vec<TaxiRecord>, Vec<(usize, CsvError)>, Fleet) {
    let mut src = CsvChunkReader::new(Cursor::new(text.as_bytes()), chunk_bytes);
    let (records, bad) = collect_source(&mut src).expect("cursor reads cannot fail");
    let fleet = src.into_fleet();
    (records, bad, fleet)
}

fn assert_equivalent(text: &str, chunk_bytes: usize) {
    let (want_records, want_errors, want_fleet) = reference(text);
    let (got_records, got_errors, got_fleet) = chunked(text, chunk_bytes);
    assert_eq!(got_records, want_records, "records diverged at chunk_bytes={chunk_bytes}");
    assert_eq!(got_errors, want_errors, "bad lines diverged at chunk_bytes={chunk_bytes}");
    assert_eq!(got_fleet.len(), want_fleet.len(), "fleet size diverged");
    for (a, b) in got_fleet.iter().zip(want_fleet.iter()) {
        assert_eq!(a, b, "fleet entry diverged at chunk_bytes={chunk_bytes}");
    }
}

#[test]
fn clean_feed_every_small_chunk_size() {
    let text = sample_csv(3, 25);
    // Exhaustive over the chunk sizes most likely to split rows badly.
    for chunk_bytes in 1..=64 {
        assert_equivalent(&text, chunk_bytes);
    }
}

#[test]
fn garbled_feed_small_chunk_sizes() {
    let text = garble_csv(&sample_csv(4, 30), 0.4, 99);
    for chunk_bytes in [1, 2, 3, 7, 13, 61, 127, 1024] {
        assert_equivalent(&text, chunk_bytes);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline satellite: arbitrary chunk sizes over arbitrarily
    /// garbled feeds (truncated rows, '#'-stomped bytes, rows split
    /// across chunk boundaries) always reproduce the whole-file decode.
    #[test]
    fn chunked_equals_whole_file_for_any_chunk_size(
        taxis in 1usize..6,
        n in 0usize..60,
        garble_prob in 0.0f64..0.9,
        garble_seed in 0u64..1_000,
        chunk_bytes in 1usize..400,
    ) {
        let text = garble_csv(&sample_csv(taxis, n), garble_prob, garble_seed);
        let (want_records, want_errors, _) = reference(&text);
        let (got_records, got_errors, _) = chunked(&text, chunk_bytes);
        prop_assert_eq!(got_records, want_records);
        prop_assert_eq!(got_errors, want_errors);
    }

    /// The batch split is invisible: two different chunk sizes agree
    /// with each other on every sequence-level observable, including
    /// cumulative totals.
    #[test]
    fn two_chunk_sizes_agree(
        n in 0usize..40,
        garble_prob in 0.0f64..0.9,
        garble_seed in 0u64..1_000,
        a in 1usize..200,
        b in 1usize..200,
    ) {
        let text = garble_csv(&sample_csv(2, n), garble_prob, garble_seed);
        let mut src_a = CsvChunkReader::new(Cursor::new(text.as_bytes()), a);
        let mut src_b = CsvChunkReader::new(Cursor::new(text.as_bytes()), b);
        let out_a = collect_source(&mut src_a).unwrap();
        let out_b = collect_source(&mut src_b).unwrap();
        prop_assert_eq!(out_a, out_b);
        prop_assert_eq!(src_a.record_total(), src_b.record_total());
        prop_assert_eq!(src_a.bad_line_total(), src_b.bad_line_total());
        prop_assert_eq!(src_a.fleet().len(), src_b.fleet().len());
    }

    /// Decoded taxi ids are always resolvable in the learned fleet —
    /// the id↔plate mapping survives garbling and chunking.
    #[test]
    fn decoded_ids_resolve_in_fleet(
        n in 0usize..40,
        garble_prob in 0.0f64..0.9,
        garble_seed in 0u64..1_000,
        chunk_bytes in 1usize..300,
    ) {
        let text = garble_csv(&sample_csv(5, n), garble_prob, garble_seed);
        let (records, _, fleet) = chunked(&text, chunk_bytes);
        for r in &records {
            prop_assert!(fleet.info(r.taxi).is_some());
        }
        prop_assert!(fleet.len() <= 5 + n, "fleet grew beyond plates in the feed");
        let _ = TaxiId(0); // keep the import honest even at n = 0
    }
}
