//! In-memory trace logs with per-taxi grouping.
//!
//! A [`TraceLog`] holds records in `(taxi, time)` order and exposes the two
//! access patterns the pipeline needs: per-taxi consecutive-update pairs
//! (Fig. 2's deltas, stop detection) and time-window slices.

use crate::record::{TaxiId, TaxiRecord};
use crate::time::Timestamp;

/// A collection of taxi records kept sorted by `(taxi, time)`.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    records: Vec<TaxiRecord>,
    sorted: bool,
}

impl TraceLog {
    /// An empty log.
    pub fn new() -> Self {
        TraceLog { records: Vec::new(), sorted: true }
    }

    /// Builds a log from records (sorts them).
    pub fn from_records(records: Vec<TaxiRecord>) -> Self {
        let mut log = TraceLog { records, sorted: false };
        log.ensure_sorted();
        log
    }

    /// Appends one record.
    pub fn push(&mut self, record: TaxiRecord) {
        // Appending in order keeps the log sorted without a re-sort.
        if let Some(last) = self.records.last() {
            if (record.taxi, record.time) < (last.taxi, last.time) {
                self.sorted = false;
            }
        }
        self.records.push(record);
    }

    /// Appends many records.
    pub fn extend(&mut self, records: impl IntoIterator<Item = TaxiRecord>) {
        for r in records {
            self.push(r);
        }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.records.sort_by_key(|r| (r.taxi, r.time));
            self.sorted = true;
        }
    }

    /// All records in `(taxi, time)` order.
    pub fn records(&mut self) -> &[TaxiRecord] {
        self.ensure_sorted();
        &self.records
    }

    /// Iterates `(taxi, records)` groups in taxi order; each group is
    /// time-sorted.
    pub fn per_taxi(&mut self) -> PerTaxi<'_> {
        self.ensure_sorted();
        PerTaxi { records: &self.records, pos: 0 }
    }

    /// Iterates consecutive same-taxi record pairs `(earlier, later)` — the
    /// unit of Fig. 2's interval/distance/speed-difference statistics and of
    /// stop detection.
    pub fn consecutive_pairs(&mut self) -> impl Iterator<Item = (&TaxiRecord, &TaxiRecord)> {
        self.ensure_sorted();
        self.records.windows(2).filter(|w| w[0].taxi == w[1].taxi).map(|w| (&w[0], &w[1]))
    }

    /// Records with `t0 <= time < t1`, as a new log.
    pub fn window(&mut self, t0: Timestamp, t1: Timestamp) -> TraceLog {
        self.ensure_sorted();
        TraceLog {
            records: self.records.iter().filter(|r| r.time >= t0 && r.time < t1).copied().collect(),
            sorted: true,
        }
    }

    /// Records satisfying `keep`, as a new log.
    pub fn filtered(&mut self, keep: impl Fn(&TaxiRecord) -> bool) -> TraceLog {
        self.ensure_sorted();
        TraceLog {
            records: self.records.iter().filter(|r| keep(r)).copied().collect(),
            sorted: true,
        }
    }

    /// Drops records failing [`TaxiRecord::is_plausible`], returning how many
    /// were removed. This is the paper's first preprocessing pass.
    pub fn retain_plausible(&mut self) -> usize {
        let before = self.records.len();
        self.records.retain(TaxiRecord::is_plausible);
        before - self.records.len()
    }

    /// Earliest and latest record times; `None` when empty.
    pub fn time_range(&mut self) -> Option<(Timestamp, Timestamp)> {
        if self.records.is_empty() {
            return None;
        }
        let min = self.records.iter().map(|r| r.time).min().unwrap();
        let max = self.records.iter().map(|r| r.time).max().unwrap();
        Some((min, max))
    }

    /// Distinct taxi count.
    pub fn taxi_count(&mut self) -> usize {
        self.per_taxi().count()
    }

    /// Consumes the log, returning the sorted records.
    pub fn into_records(mut self) -> Vec<TaxiRecord> {
        self.ensure_sorted();
        self.records
    }
}

/// Iterator over per-taxi groups of a sorted record slice.
pub struct PerTaxi<'a> {
    records: &'a [TaxiRecord],
    pos: usize,
}

impl<'a> Iterator for PerTaxi<'a> {
    type Item = (TaxiId, &'a [TaxiRecord]);

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.records.len() {
            return None;
        }
        let taxi = self.records[self.pos].taxi;
        let start = self.pos;
        while self.pos < self.records.len() && self.records[self.pos].taxi == taxi {
            self.pos += 1;
        }
        Some((taxi, &self.records[start..self.pos]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{GpsCondition, PassengerState};
    use crate::GeoPoint;

    fn rec(taxi: u32, secs: i64, speed: f64) -> TaxiRecord {
        TaxiRecord {
            taxi: TaxiId(taxi),
            position: GeoPoint::new(22.5 + taxi as f64 * 1e-4, 114.1),
            time: Timestamp(secs),
            speed_kmh: speed,
            heading_deg: 0.0,
            gps: GpsCondition::Available,
            overspeed: false,
            passenger: PassengerState::Vacant,
        }
    }

    #[test]
    fn push_keeps_sorted_order_cheap() {
        let mut log = TraceLog::new();
        log.push(rec(0, 10, 1.0));
        log.push(rec(0, 20, 2.0));
        log.push(rec(1, 5, 3.0));
        assert_eq!(log.records().len(), 3);
        assert_eq!(log.records()[0].time, Timestamp(10));
    }

    #[test]
    fn out_of_order_push_is_resorted() {
        let mut log = TraceLog::new();
        log.push(rec(1, 50, 1.0));
        log.push(rec(0, 10, 2.0)); // out of order
        let records = log.records();
        assert_eq!(records[0].taxi, TaxiId(0));
        assert_eq!(records[1].taxi, TaxiId(1));
    }

    #[test]
    fn per_taxi_groups() {
        let mut log = TraceLog::from_records(vec![
            rec(1, 30, 0.0),
            rec(0, 10, 0.0),
            rec(1, 10, 0.0),
            rec(0, 20, 0.0),
            rec(2, 5, 0.0),
        ]);
        let groups: Vec<(TaxiId, usize)> = log.per_taxi().map(|(id, rs)| (id, rs.len())).collect();
        assert_eq!(groups, vec![(TaxiId(0), 2), (TaxiId(1), 2), (TaxiId(2), 1)]);
        assert_eq!(log.taxi_count(), 3);
        // Groups are time sorted.
        for (_, rs) in log.per_taxi() {
            for w in rs.windows(2) {
                assert!(w[0].time <= w[1].time);
            }
        }
    }

    #[test]
    fn consecutive_pairs_skip_taxi_boundaries() {
        let mut log = TraceLog::from_records(vec![
            rec(0, 10, 0.0),
            rec(0, 40, 0.0),
            rec(1, 100, 0.0),
            rec(1, 130, 0.0),
            rec(1, 160, 0.0),
        ]);
        let pairs: Vec<(u32, i64)> =
            log.consecutive_pairs().map(|(a, b)| (a.taxi.0, b.time.delta(a.time))).collect();
        assert_eq!(pairs, vec![(0, 30), (1, 30), (1, 30)]);
    }

    #[test]
    fn window_filters_half_open() {
        let mut log =
            TraceLog::from_records(vec![rec(0, 10, 0.0), rec(0, 20, 0.0), rec(0, 30, 0.0)]);
        let mut w = log.window(Timestamp(10), Timestamp(30));
        assert_eq!(w.len(), 2);
        assert!(w.records().iter().all(|r| r.time < Timestamp(30)));
    }

    #[test]
    fn filtered_and_retain_plausible() {
        let mut bad = rec(0, 10, 0.0);
        bad.gps = GpsCondition::Unavailable;
        let mut log = TraceLog::from_records(vec![rec(0, 20, 50.0), bad, rec(1, 30, 10.0)]);
        let mut fast = log.filtered(|r| r.speed_kmh > 20.0);
        assert_eq!(fast.len(), 1);
        assert_eq!(fast.records()[0].speed_kmh, 50.0);
        let dropped = log.retain_plausible();
        assert_eq!(dropped, 1);
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn time_range_and_empty() {
        let mut empty = TraceLog::new();
        assert!(empty.is_empty());
        assert_eq!(empty.time_range(), None);
        let mut log = TraceLog::from_records(vec![rec(0, 50, 0.0), rec(1, 10, 0.0)]);
        assert_eq!(log.time_range(), Some((Timestamp(10), Timestamp(50))));
    }

    #[test]
    fn into_records_sorted() {
        let log = TraceLog::from_records(vec![rec(1, 10, 0.0), rec(0, 10, 0.0)]);
        let records = log.into_records();
        assert_eq!(records[0].taxi, TaxiId(0));
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn groups_partition_the_log(
                raw in prop::collection::vec((0u32..8, 0i64..1000), 0..200)
            ) {
                let records: Vec<TaxiRecord> =
                    raw.iter().map(|&(t, s)| rec(t, s, 0.0)).collect();
                let mut log = TraceLog::from_records(records);
                let total: usize = log.per_taxi().map(|(_, rs)| rs.len()).sum();
                prop_assert_eq!(total, raw.len());
                // Each group id strictly increases.
                let ids: Vec<u32> = log.per_taxi().map(|(id, _)| id.0).collect();
                for w in ids.windows(2) {
                    prop_assert!(w[0] < w[1]);
                }
            }

            #[test]
            fn pair_count_is_len_minus_groups(
                raw in prop::collection::vec((0u32..5, 0i64..1000), 0..100)
            ) {
                let records: Vec<TaxiRecord> =
                    raw.iter().map(|&(t, s)| rec(t, s, 0.0)).collect();
                let mut log = TraceLog::from_records(records);
                let groups = log.per_taxi().count();
                let pairs = log.consecutive_pairs().count();
                prop_assert_eq!(pairs, raw.len().saturating_sub(groups));
            }
        }
    }
}
