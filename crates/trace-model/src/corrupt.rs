//! Seeded fault injection over taxi-record streams.
//!
//! Real upload feeds are never pristine: GPS fixes wander, devices report
//! late or twice, clocks drift per taxi, and rows arrive truncated. This
//! module provides composable corruption operators ([`CorruptOp`]) and
//! named profile ladders ([`Profile`]) so the identification pipeline can
//! be regression-tested against controlled data-quality degradation.
//!
//! Every operator is driven by an explicit `u64` seed and nothing else:
//! the same `(records, ops, seed)` triple always produces the bit-for-bit
//! identical corrupted stream, so any robustness result is replayable.

use crate::geo::GeoPoint;
use crate::record::{GpsCondition, PassengerState, TaxiId, TaxiRecord};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One corruption operator over a record stream.
///
/// Operators compose left to right via [`corrupt_records`]; each draws from
/// its own seeded RNG stream so inserting or removing one operator never
/// perturbs the randomness of the others.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CorruptOp {
    /// Gaussian position error: independent north/east displacements with
    /// standard deviation `sigma_m` meters.
    GpsNoise {
        /// Standard deviation of the displacement, meters per axis.
        sigma_m: f64,
    },
    /// Gaussian heading error with standard deviation `sigma_deg` degrees,
    /// wrapped back into `[0, 360)`.
    HeadingNoise {
        /// Standard deviation of the heading error, degrees.
        sigma_deg: f64,
    },
    /// Report thinning: each record is dropped independently with
    /// probability `drop_prob` (models longer effective report intervals).
    Thin {
        /// Per-record drop probability in `[0, 1]`.
        drop_prob: f64,
    },
    /// Report-time jitter: each timestamp shifts by a uniform integer
    /// offset in `[-max_jitter_s, +max_jitter_s]` seconds.
    ReportJitter {
        /// Maximum absolute timestamp shift, seconds.
        max_jitter_s: i64,
    },
    /// Whole-taxi dropout: each distinct taxi is silenced with probability
    /// `fraction` (models fleet penetration-rate loss).
    TaxiDropout {
        /// Per-taxi silencing probability in `[0, 1]`.
        fraction: f64,
    },
    /// Regional dropout: records within `radius_m` of `center` are dropped
    /// with probability `drop_prob` (models an urban-canyon dead zone).
    RegionDropout {
        /// Center of the dead zone.
        center: GeoPoint,
        /// Radius of the dead zone, meters.
        radius_m: f64,
        /// Drop probability inside the zone, in `[0, 1]`.
        drop_prob: f64,
    },
    /// Duplicate delivery: each record is emitted a second time with
    /// probability `prob` (at-least-once upload semantics).
    Duplicate {
        /// Per-record duplication probability in `[0, 1]`.
        prob: f64,
    },
    /// Out-of-order delivery: records are locally shuffled so that each
    /// lands at most `window` positions away from its original index.
    Shuffle {
        /// Maximum displacement, in stream positions.
        window: usize,
    },
    /// Per-taxi constant clock skew, uniform in
    /// `[-max_skew_s, +max_skew_s]` seconds (devices with drifting RTCs).
    ClockSkew {
        /// Maximum absolute skew, seconds.
        max_skew_s: i64,
    },
    /// Passenger-state flaps: the occupancy bit toggles with probability
    /// `prob` per record (noisy seat sensor).
    PassengerFlap {
        /// Per-record toggle probability in `[0, 1]`.
        prob: f64,
    },
    /// Garbled fields: with probability `prob` a record gets one field
    /// mangled the way truncated or corrupted CSV rows decode — non-finite
    /// coordinates, absurd or NaN speeds, NaN headings, lost GPS fix.
    Garble {
        /// Per-record garbling probability in `[0, 1]`.
        prob: f64,
    },
}

impl CorruptOp {
    /// Short machine-readable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            CorruptOp::GpsNoise { .. } => "gps_noise",
            CorruptOp::HeadingNoise { .. } => "heading_noise",
            CorruptOp::Thin { .. } => "thin",
            CorruptOp::ReportJitter { .. } => "report_jitter",
            CorruptOp::TaxiDropout { .. } => "taxi_dropout",
            CorruptOp::RegionDropout { .. } => "region_dropout",
            CorruptOp::Duplicate { .. } => "duplicate",
            CorruptOp::Shuffle { .. } => "shuffle",
            CorruptOp::ClockSkew { .. } => "clock_skew",
            CorruptOp::PassengerFlap { .. } => "passenger_flap",
            CorruptOp::Garble { .. } => "garble",
        }
    }

    fn apply(&self, records: Vec<TaxiRecord>, rng: &mut StdRng) -> Vec<TaxiRecord> {
        match *self {
            CorruptOp::GpsNoise { sigma_m } => {
                // σ = 0 must be exact identity, not a zero-distance trig
                // round-trip that perturbs the last mantissa bits.
                if sigma_m == 0.0 {
                    return records;
                }
                records
                    .into_iter()
                    .map(|mut r| {
                        let north = gaussian(rng) * sigma_m;
                        let east = gaussian(rng) * sigma_m;
                        if r.position.is_valid() {
                            r.position = r.position.destination(0.0, north).destination(90.0, east);
                        }
                        r
                    })
                    .collect()
            }
            CorruptOp::HeadingNoise { sigma_deg } => {
                if sigma_deg == 0.0 {
                    return records;
                }
                records
                    .into_iter()
                    .map(|mut r| {
                        let err = gaussian(rng) * sigma_deg;
                        if r.heading_deg.is_finite() {
                            r.heading_deg = (r.heading_deg + err).rem_euclid(360.0);
                        }
                        r
                    })
                    .collect()
            }
            CorruptOp::Thin { drop_prob } => {
                records.into_iter().filter(|_| !rng.gen_bool(drop_prob)).collect()
            }
            CorruptOp::ReportJitter { max_jitter_s } => records
                .into_iter()
                .map(|mut r| {
                    r.time = r.time.offset(rng.gen_range(-max_jitter_s..=max_jitter_s));
                    r
                })
                .collect(),
            CorruptOp::TaxiDropout { fraction } => {
                let silenced = per_taxi(&records, |_| rng.gen_bool(fraction));
                records
                    .into_iter()
                    .filter(|r| !silenced.iter().any(|&(t, s)| t == r.taxi && s))
                    .collect()
            }
            CorruptOp::RegionDropout { center, radius_m, drop_prob } => records
                .into_iter()
                .filter(|r| {
                    let inside = r.position.is_valid() && r.position.distance_m(center) <= radius_m;
                    !(inside && rng.gen_bool(drop_prob))
                })
                .collect(),
            CorruptOp::Duplicate { prob } => {
                let mut out = Vec::with_capacity(records.len());
                for r in records {
                    out.push(r);
                    if rng.gen_bool(prob) {
                        out.push(r);
                    }
                }
                out
            }
            CorruptOp::Shuffle { window } => {
                let w = window as i64;
                let mut keyed: Vec<(i64, TaxiRecord)> = records
                    .into_iter()
                    .enumerate()
                    .map(|(i, r)| (i as i64 + rng.gen_range(-w..=w), r))
                    .collect();
                keyed.sort_by_key(|&(k, _)| k);
                keyed.into_iter().map(|(_, r)| r).collect()
            }
            CorruptOp::ClockSkew { max_skew_s } => {
                let skews = per_taxi(&records, |_| rng.gen_range(-max_skew_s..=max_skew_s));
                records
                    .into_iter()
                    .map(|mut r| {
                        let skew = skews.iter().find(|&&(t, _)| t == r.taxi).map_or(0, |&(_, s)| s);
                        r.time = r.time.offset(skew);
                        r
                    })
                    .collect()
            }
            CorruptOp::PassengerFlap { prob } => records
                .into_iter()
                .map(|mut r| {
                    if rng.gen_bool(prob) {
                        r.passenger = match r.passenger {
                            PassengerState::Vacant => PassengerState::Occupied,
                            PassengerState::Occupied => PassengerState::Vacant,
                        };
                    }
                    r
                })
                .collect(),
            CorruptOp::Garble { prob } => records
                .into_iter()
                .map(|mut r| {
                    if rng.gen_bool(prob) {
                        garble_record(&mut r, rng);
                    }
                    r
                })
                .collect(),
        }
    }
}

/// Applies `ops` left to right over `records`, each operator drawing from
/// its own RNG stream derived from `seed` and its position in the chain.
///
/// The output is a pure function of `(records, ops, seed)` — rerunning
/// with the same inputs reproduces the exact same byte-for-byte stream.
pub fn corrupt_records(records: &[TaxiRecord], ops: &[CorruptOp], seed: u64) -> Vec<TaxiRecord> {
    let mut out = records.to_vec();
    for (k, op) in ops.iter().enumerate() {
        // Decorrelate operator streams: mix the chain position into the
        // seed so reordering/removing operators never aliases streams.
        let op_seed = seed ^ (k as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = StdRng::seed_from_u64(op_seed);
        out = op.apply(out, &mut rng);
    }
    out
}

/// Draws one per-taxi value for each distinct taxi, in sorted-id order so
/// the assignment is independent of record order.
fn per_taxi<T: Copy>(
    records: &[TaxiRecord],
    mut draw: impl FnMut(TaxiId) -> T,
) -> Vec<(TaxiId, T)> {
    let mut ids: Vec<TaxiId> = records.iter().map(|r| r.taxi).collect();
    ids.sort_unstable();
    ids.dedup();
    ids.into_iter().map(|t| (t, draw(t))).collect()
}

/// Standard normal deviate via Box–Muller.
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Mangles one field of `r` the way a truncated/garbled CSV row decodes.
fn garble_record(r: &mut TaxiRecord, rng: &mut StdRng) {
    match rng.gen_range(0u32..6) {
        0 => r.position.lat = f64::NAN,
        1 => r.position.lon = f64::INFINITY,
        2 => r.speed_kmh = f64::NAN,
        3 => r.speed_kmh = 1.0e6,
        4 => r.heading_deg = f64::NAN,
        _ => r.gps = GpsCondition::Unavailable,
    }
}

/// Garbles raw CSV text: each line is independently truncated at a random
/// byte or has a random byte replaced with `#`, with probability `prob`.
/// Deterministic in `seed`; used to exercise the decoder's row-level error
/// reporting.
pub fn garble_csv(text: &str, prob: f64, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = String::with_capacity(text.len());
    for line in text.lines() {
        if !line.is_empty() && rng.gen_bool(prob) {
            let cut = rng.gen_range(0..line.len());
            // Snap to a char boundary so the output stays valid UTF-8.
            let cut = (cut..=line.len()).find(|&k| line.is_char_boundary(k)).unwrap_or(0);
            if rng.gen_bool(0.5) {
                out.push_str(&line[..cut]);
            } else {
                out.push_str(&line[..cut]);
                out.push('#');
                if cut < line.len() {
                    let rest =
                        (cut + 1..=line.len()).find(|&k| line.is_char_boundary(k)).unwrap_or(cut);
                    out.push_str(&line[rest..]);
                }
            }
        } else {
            out.push_str(line);
        }
        out.push('\n');
    }
    out
}

/// A named corruption profile: one failure mode with a severity ladder.
///
/// `severity` runs in `[0, 1]`; `0.0` always maps to a no-op parameterised
/// chain and `1.0` to the harshest setting of that failure mode. The eval
/// harness sweeps each profile across the ladder and gates the low end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Profile {
    /// Gaussian GPS position noise, up to σ = 40 m per axis.
    GpsNoise,
    /// Report thinning up to 90 % loss plus ±10 s timestamp jitter.
    SparseReports,
    /// Whole-taxi dropout up to 80 % of the fleet.
    TaxiDropout,
    /// Local shuffling up to 40 positions of displacement.
    OutOfOrder,
    /// Duplicate delivery up to 60 % of records.
    Duplicates,
    /// Per-taxi clock skew up to ±30 s.
    ClockSkew,
    /// Passenger-bit flaps up to 50 % of records.
    PassengerFlap,
    /// Garbled fields (non-finite coords/speeds/headings) up to 30 %.
    Garbled,
}

impl Profile {
    /// Every profile, in report order.
    pub const ALL: [Profile; 8] = [
        Profile::GpsNoise,
        Profile::SparseReports,
        Profile::TaxiDropout,
        Profile::OutOfOrder,
        Profile::Duplicates,
        Profile::ClockSkew,
        Profile::PassengerFlap,
        Profile::Garbled,
    ];

    /// Machine-readable profile name (used as the JSON key).
    pub fn name(self) -> &'static str {
        match self {
            Profile::GpsNoise => "gps_noise",
            Profile::SparseReports => "sparse_reports",
            Profile::TaxiDropout => "taxi_dropout",
            Profile::OutOfOrder => "out_of_order",
            Profile::Duplicates => "duplicates",
            Profile::ClockSkew => "clock_skew",
            Profile::PassengerFlap => "passenger_flap",
            Profile::Garbled => "garbled",
        }
    }

    /// The operator chain for this profile at `severity` ∈ `[0, 1]`.
    ///
    /// # Panics
    /// Panics when `severity` is not in `[0, 1]`.
    pub fn ops(self, severity: f64) -> Vec<CorruptOp> {
        assert!((0.0..=1.0).contains(&severity), "severity out of range: {severity}");
        match self {
            Profile::GpsNoise => vec![
                CorruptOp::GpsNoise { sigma_m: 40.0 * severity },
                CorruptOp::HeadingNoise { sigma_deg: 20.0 * severity },
            ],
            Profile::SparseReports => vec![
                CorruptOp::Thin { drop_prob: 0.9 * severity },
                CorruptOp::ReportJitter { max_jitter_s: (10.0 * severity).round() as i64 },
            ],
            Profile::TaxiDropout => vec![CorruptOp::TaxiDropout { fraction: 0.8 * severity }],
            Profile::OutOfOrder => {
                vec![CorruptOp::Shuffle { window: (40.0 * severity).round() as usize }]
            }
            Profile::Duplicates => vec![CorruptOp::Duplicate { prob: 0.6 * severity }],
            Profile::ClockSkew => {
                vec![CorruptOp::ClockSkew { max_skew_s: (30.0 * severity).round() as i64 }]
            }
            Profile::PassengerFlap => vec![CorruptOp::PassengerFlap { prob: 0.5 * severity }],
            Profile::Garbled => vec![CorruptOp::Garble { prob: 0.3 * severity }],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Timestamp;

    fn base_records(n: usize) -> Vec<TaxiRecord> {
        let start = Timestamp::civil(2014, 12, 5, 8, 0, 0);
        (0..n)
            .map(|k| TaxiRecord {
                taxi: TaxiId((k % 7) as u32),
                position: GeoPoint::new(22.5 + k as f64 * 1e-4, 114.0 + k as f64 * 1e-4),
                time: start.offset(k as i64 * 20),
                speed_kmh: 30.0 + (k % 10) as f64,
                heading_deg: (k * 37 % 360) as f64,
                gps: GpsCondition::Available,
                overspeed: false,
                passenger: PassengerState::Vacant,
            })
            .collect()
    }

    #[test]
    fn deterministic_in_seed() {
        let recs = base_records(200);
        let ops = [
            CorruptOp::GpsNoise { sigma_m: 15.0 },
            CorruptOp::Thin { drop_prob: 0.2 },
            CorruptOp::Duplicate { prob: 0.1 },
            CorruptOp::Shuffle { window: 5 },
        ];
        let a = corrupt_records(&recs, &ops, 42);
        let b = corrupt_records(&recs, &ops, 42);
        let c = corrupt_records(&recs, &ops, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn zero_severity_is_identity_for_every_profile() {
        let recs = base_records(80);
        for p in Profile::ALL {
            let out = corrupt_records(&recs, &p.ops(0.0), 7);
            assert_eq!(out, recs, "profile {} not identity at severity 0", p.name());
        }
    }

    #[test]
    fn gps_noise_moves_points_by_sane_distances() {
        let recs = base_records(300);
        let out = corrupt_records(&recs, &[CorruptOp::GpsNoise { sigma_m: 10.0 }], 1);
        assert_eq!(out.len(), recs.len());
        let mean_shift: f64 =
            recs.iter().zip(&out).map(|(a, b)| a.position.distance_m(b.position)).sum::<f64>()
                / recs.len() as f64;
        // Mean of a Rayleigh(σ=10) is σ·√(π/2) ≈ 12.5 m.
        assert!((5.0..25.0).contains(&mean_shift), "mean shift {mean_shift}");
        assert!(out.iter().all(|r| r.position.is_valid()));
    }

    #[test]
    fn thin_drops_about_the_requested_fraction() {
        let recs = base_records(2000);
        let out = corrupt_records(&recs, &[CorruptOp::Thin { drop_prob: 0.3 }], 5);
        let kept = out.len() as f64 / recs.len() as f64;
        assert!((kept - 0.7).abs() < 0.05, "kept {kept}");
    }

    #[test]
    fn taxi_dropout_silences_whole_taxis() {
        let recs = base_records(700);
        let out = corrupt_records(&recs, &[CorruptOp::TaxiDropout { fraction: 0.5 }], 11);
        let mut before: Vec<TaxiId> = recs.iter().map(|r| r.taxi).collect();
        let mut after: Vec<TaxiId> = out.iter().map(|r| r.taxi).collect();
        before.sort_unstable();
        before.dedup();
        after.sort_unstable();
        after.dedup();
        assert!(after.len() < before.len());
        // Surviving taxis keep every one of their records.
        for t in &after {
            let n_before = recs.iter().filter(|r| r.taxi == *t).count();
            let n_after = out.iter().filter(|r| r.taxi == *t).count();
            assert_eq!(n_before, n_after);
        }
    }

    #[test]
    fn shuffle_displacement_is_bounded() {
        let recs = base_records(400);
        let out = corrupt_records(&recs, &[CorruptOp::Shuffle { window: 8 }], 3);
        assert_eq!(out.len(), recs.len());
        for (i, r) in out.iter().enumerate() {
            let orig = recs.iter().position(|o| o == r).unwrap();
            assert!(
                (i as i64 - orig as i64).unsigned_abs() <= 16,
                "record moved {} -> {}",
                orig,
                i
            );
        }
    }

    #[test]
    fn clock_skew_is_constant_per_taxi() {
        let recs = base_records(500);
        let out = corrupt_records(&recs, &[CorruptOp::ClockSkew { max_skew_s: 20 }], 9);
        for t in 0..7u32 {
            let skews: Vec<i64> = recs
                .iter()
                .zip(&out)
                .filter(|(a, _)| a.taxi == TaxiId(t))
                .map(|(a, b)| b.time.0 - a.time.0)
                .collect();
            assert!(!skews.is_empty());
            assert!(skews.iter().all(|&s| s == skews[0]), "taxi {t} skews vary: {skews:?}");
            assert!(skews[0].abs() <= 20);
        }
    }

    #[test]
    fn garble_produces_implausible_records() {
        let recs = base_records(1000);
        let out = corrupt_records(&recs, &[CorruptOp::Garble { prob: 0.2 }], 13);
        let bad = out.iter().filter(|r| !r.is_plausible()).count();
        assert!((100..350).contains(&bad), "garbled {bad}/1000");
    }

    #[test]
    fn duplicates_only_ever_repeat_existing_records() {
        let recs = base_records(300);
        let out = corrupt_records(&recs, &[CorruptOp::Duplicate { prob: 0.3 }], 17);
        assert!(out.len() > recs.len());
        for r in &out {
            assert!(recs.contains(r));
        }
    }

    #[test]
    fn garble_csv_is_deterministic_and_utf8_safe() {
        let text = "a,b,c\nd,e,f\n粤B-1,2,3\nx,y,z\n".repeat(30);
        let a = garble_csv(&text, 0.5, 21);
        let b = garble_csv(&text, 0.5, 21);
        assert_eq!(a, b);
        assert_ne!(a, text);
        assert_eq!(a.lines().count(), text.lines().count());
    }

    #[test]
    #[should_panic(expected = "severity out of range")]
    fn severity_out_of_range_rejected() {
        Profile::GpsNoise.ops(1.5);
    }
}
