//! The 12-field taxi record of the paper's Table I.
//!
//! Per-record dynamic fields live in [`TaxiRecord`]; per-taxi static fields
//! (plate, SIM card, body colour) are deduplicated into a [`Fleet`] registry
//! keyed by [`TaxiId`] — at 80 M records/day carrying the plate string in
//! every record would be pure waste, and the identification pipeline only
//! ever uses it to distinguish taxis.

use crate::geo::GeoPoint;
use crate::time::Timestamp;

/// Compact identifier for one taxi (index into the [`Fleet`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaxiId(pub u32);

/// Table I field 11: passenger condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PassengerState {
    /// `0`: no passenger on board.
    #[default]
    Vacant,
    /// `1`: passenger on board.
    Occupied,
}

impl PassengerState {
    /// Wire encoding (Table I).
    pub fn to_wire(self) -> u8 {
        match self {
            PassengerState::Vacant => 0,
            PassengerState::Occupied => 1,
        }
    }

    /// Decodes the wire value.
    pub fn from_wire(v: u8) -> Option<Self> {
        match v {
            0 => Some(PassengerState::Vacant),
            1 => Some(PassengerState::Occupied),
            _ => None,
        }
    }
}

/// Table I field 8: GPS condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum GpsCondition {
    /// `0`: fix unavailable — the position is stale or garbage.
    Unavailable,
    /// `1`: fix available.
    #[default]
    Available,
}

impl GpsCondition {
    /// Wire encoding (Table I).
    pub fn to_wire(self) -> u8 {
        match self {
            GpsCondition::Unavailable => 0,
            GpsCondition::Available => 1,
        }
    }

    /// Decodes the wire value.
    pub fn from_wire(v: u8) -> Option<Self> {
        match v {
            0 => Some(GpsCondition::Unavailable),
            1 => Some(GpsCondition::Available),
            _ => None,
        }
    }
}

/// Table I field 12: taxi body colour ("yellow, blue, etc").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BodyColor {
    /// Yellow cab.
    #[default]
    Yellow,
    /// Blue cab.
    Blue,
    /// Green cab.
    Green,
    /// Red cab.
    Red,
    /// Silver cab.
    Silver,
}

impl BodyColor {
    /// Wire string.
    pub fn as_str(self) -> &'static str {
        match self {
            BodyColor::Yellow => "yellow",
            BodyColor::Blue => "blue",
            BodyColor::Green => "green",
            BodyColor::Red => "red",
            BodyColor::Silver => "silver",
        }
    }

    /// Parses the wire string (case-insensitive).
    pub fn from_str_loose(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "yellow" => Some(BodyColor::Yellow),
            "blue" => Some(BodyColor::Blue),
            "green" => Some(BodyColor::Green),
            "red" => Some(BodyColor::Red),
            "silver" => Some(BodyColor::Silver),
            _ => None,
        }
    }

    /// All variants, for fleet generation.
    pub const ALL: [BodyColor; 5] =
        [BodyColor::Yellow, BodyColor::Blue, BodyColor::Green, BodyColor::Red, BodyColor::Silver];
}

/// One taxi location upload — the dynamic fields of Table I.
///
/// The five fields the paper's pipeline primarily consumes are `taxi`,
/// `time`, `position` and `speed_kmh`; `gps`, `passenger` and `heading_deg`
/// are used for outlier filtering and map matching, exactly as in Sec. II.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaxiRecord {
    /// Which taxi reported (Table I fields 1/5/10 resolve via [`Fleet`]).
    pub taxi: TaxiId,
    /// Fields 2–3: reported position.
    pub position: GeoPoint,
    /// Field 4: report time.
    pub time: Timestamp,
    /// Field 6: driving speed in km/h.
    pub speed_kmh: f64,
    /// Field 7: heading, degrees clockwise from north in `[0, 360)`.
    pub heading_deg: f64,
    /// Field 8: GPS condition.
    pub gps: GpsCondition,
    /// Field 9: overspeed warning flag.
    pub overspeed: bool,
    /// Field 11: passenger condition.
    pub passenger: PassengerState,
}

impl TaxiRecord {
    /// Speed converted to m/s.
    pub fn speed_ms(&self) -> f64 {
        self.speed_kmh / 3.6
    }

    /// A record passes the paper's basic sanity filters: GPS available,
    /// position valid, speed non-negative and physically plausible.
    pub fn is_plausible(&self) -> bool {
        self.gps == GpsCondition::Available
            && self.position.is_valid()
            && self.speed_kmh.is_finite()
            && (0.0..=200.0).contains(&self.speed_kmh)
            && self.heading_deg.is_finite()
    }
}

/// Per-taxi static identity: Table I fields 1 (plate), 5 (device), 10 (SIM)
/// and 12 (colour).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaxiInfo {
    /// Compact id used in [`TaxiRecord`].
    pub id: TaxiId,
    /// Field 1: car plate number (Shenzhen plates are `粤B·XXXXX`; we use an
    /// ASCII transliteration `YB-XXXXX`).
    pub plate: String,
    /// Field 5: onboard device id.
    pub device_id: u32,
    /// Field 10: SIM card number.
    pub sim: String,
    /// Field 12: body colour.
    pub color: BodyColor,
}

/// The fleet registry mapping [`TaxiId`] to static taxi identity.
#[derive(Debug, Clone, Default)]
pub struct Fleet {
    infos: Vec<TaxiInfo>,
}

impl Fleet {
    /// An empty fleet.
    pub fn new() -> Self {
        Fleet::default()
    }

    /// Registers a taxi with generated plate/SIM/device fields and returns
    /// its id. Plates count up deterministically (`YB-00001`, …) like a
    /// real licensing sequence.
    pub fn register(&mut self) -> TaxiId {
        let n = self.infos.len() as u32;
        let id = TaxiId(n);
        self.infos.push(TaxiInfo {
            id,
            plate: format!("YB-{:05}", n + 1),
            device_id: 100_000 + n,
            sim: format!("1380000{:05}", n + 1),
            color: BodyColor::ALL[(n as usize) % BodyColor::ALL.len()],
        });
        id
    }

    /// Registers `count` taxis, returning the ids.
    pub fn register_many(&mut self, count: usize) -> Vec<TaxiId> {
        (0..count).map(|_| self.register()).collect()
    }

    /// Adds a fully specified taxi (e.g. parsed from CSV). Returns its id
    /// or `None` if a taxi with the same plate already exists.
    pub fn insert(
        &mut self,
        plate: &str,
        device_id: u32,
        sim: &str,
        color: BodyColor,
    ) -> Option<TaxiId> {
        if self.find_by_plate(plate).is_some() {
            return None;
        }
        let id = TaxiId(self.infos.len() as u32);
        self.infos.push(TaxiInfo {
            id,
            plate: plate.to_string(),
            device_id,
            sim: sim.to_string(),
            color,
        });
        Some(id)
    }

    /// Looks up static info for a taxi.
    pub fn info(&self, id: TaxiId) -> Option<&TaxiInfo> {
        self.infos.get(id.0 as usize)
    }

    /// Finds a taxi by exact plate.
    pub fn find_by_plate(&self, plate: &str) -> Option<TaxiId> {
        self.infos.iter().find(|i| i.plate == plate).map(|i| i.id)
    }

    /// Number of registered taxis.
    pub fn len(&self) -> usize {
        self.infos.len()
    }

    /// True when no taxis are registered.
    pub fn is_empty(&self) -> bool {
        self.infos.is_empty()
    }

    /// Iterates over all taxis.
    pub fn iter(&self) -> impl Iterator<Item = &TaxiInfo> {
        self.infos.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> TaxiRecord {
        TaxiRecord {
            taxi: TaxiId(7),
            position: GeoPoint::new(22.547, 114.125),
            time: Timestamp::civil(2014, 12, 5, 15, 22, 0),
            speed_kmh: 36.0,
            heading_deg: 90.0,
            gps: GpsCondition::Available,
            overspeed: false,
            passenger: PassengerState::Occupied,
        }
    }

    #[test]
    fn wire_encodings_round_trip() {
        for p in [PassengerState::Vacant, PassengerState::Occupied] {
            assert_eq!(PassengerState::from_wire(p.to_wire()), Some(p));
        }
        for g in [GpsCondition::Unavailable, GpsCondition::Available] {
            assert_eq!(GpsCondition::from_wire(g.to_wire()), Some(g));
        }
        assert_eq!(PassengerState::from_wire(9), None);
        assert_eq!(GpsCondition::from_wire(2), None);
        for c in BodyColor::ALL {
            assert_eq!(BodyColor::from_str_loose(c.as_str()), Some(c));
        }
        assert_eq!(BodyColor::from_str_loose("YELLOW"), Some(BodyColor::Yellow));
        assert_eq!(BodyColor::from_str_loose("purple"), None);
    }

    #[test]
    fn speed_conversion() {
        let r = sample_record();
        assert!((r.speed_ms() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn plausibility_filters() {
        let ok = sample_record();
        assert!(ok.is_plausible());
        let mut bad_gps = ok;
        bad_gps.gps = GpsCondition::Unavailable;
        assert!(!bad_gps.is_plausible());
        let mut bad_speed = ok;
        bad_speed.speed_kmh = -5.0;
        assert!(!bad_speed.is_plausible());
        bad_speed.speed_kmh = 500.0;
        assert!(!bad_speed.is_plausible());
        bad_speed.speed_kmh = f64::NAN;
        assert!(!bad_speed.is_plausible());
        let mut bad_pos = ok;
        bad_pos.position = GeoPoint::new(95.0, 114.0);
        assert!(!bad_pos.is_plausible());
        let mut bad_heading = ok;
        bad_heading.heading_deg = f64::INFINITY;
        assert!(!bad_heading.is_plausible());
    }

    #[test]
    fn fleet_registration_is_sequential_and_unique() {
        let mut fleet = Fleet::new();
        assert!(fleet.is_empty());
        let ids = fleet.register_many(100);
        assert_eq!(fleet.len(), 100);
        assert!(!fleet.is_empty());
        for (k, id) in ids.iter().enumerate() {
            assert_eq!(id.0 as usize, k);
        }
        // Plates unique.
        let mut plates: Vec<&str> = fleet.iter().map(|i| i.plate.as_str()).collect();
        plates.sort_unstable();
        plates.dedup();
        assert_eq!(plates.len(), 100);
        // Lookup round trip.
        let info = fleet.info(TaxiId(41)).unwrap();
        assert_eq!(fleet.find_by_plate(&info.plate), Some(TaxiId(41)));
        assert_eq!(fleet.info(TaxiId(100)), None);
        assert_eq!(fleet.find_by_plate("nope"), None);
    }

    #[test]
    fn fleet_insert_rejects_duplicate_plate() {
        let mut fleet = Fleet::new();
        let id = fleet.insert("YB-90001", 1, "13800009000", BodyColor::Red).unwrap();
        assert_eq!(fleet.info(id).unwrap().color, BodyColor::Red);
        assert_eq!(fleet.insert("YB-90001", 2, "x", BodyColor::Blue), None);
        assert_eq!(fleet.len(), 1);
    }

    #[test]
    fn fleet_colors_cycle_through_all() {
        let mut fleet = Fleet::new();
        fleet.register_many(BodyColor::ALL.len() * 2);
        let colors: Vec<BodyColor> = fleet.iter().map(|i| i.color).collect();
        for (k, c) in colors.iter().enumerate() {
            assert_eq!(*c, BodyColor::ALL[k % BodyColor::ALL.len()]);
        }
    }
}
