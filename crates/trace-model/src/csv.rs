//! The comma-separated upload wire format of Table I.
//!
//! Field order and encodings follow the table exactly:
//!
//! | # | field | format |
//! |---|-------|--------|
//! | 1 | car plate number | string |
//! | 2 | longitude | degrees × 1 000 000, integer |
//! | 3 | latitude | degrees × 1 000 000, integer |
//! | 4 | report time | `YYYY-MM-DD HH:mm:ss` |
//! | 5 | onboard device id | number |
//! | 6 | driving speed | km/h |
//! | 7 | car heading | degrees to north, clockwise |
//! | 8 | GPS condition | 0 unavailable / 1 available |
//! | 9 | overspeed warning | 1 overspeed |
//! | 10 | SIM card number | string |
//! | 11 | passenger condition | 0 vacant / 1 occupied |
//! | 12 | taxi body colour | `yellow`, `blue`, … |

use crate::record::{BodyColor, Fleet, GpsCondition, PassengerState, TaxiRecord};
use crate::time::Timestamp;
use crate::GeoPoint;

/// Errors from decoding a Table-I CSV line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// The line does not have exactly 12 comma-separated fields.
    FieldCount(usize),
    /// A field failed to parse; carries the 1-based Table-I field index.
    Field(u8),
    /// The record references a taxi id absent from the fleet (encode side).
    UnknownTaxi(u32),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::FieldCount(n) => write!(f, "expected 12 fields, found {n}"),
            CsvError::Field(i) => write!(f, "malformed field {i}"),
            CsvError::UnknownTaxi(id) => write!(f, "taxi id {id} not in fleet"),
        }
    }
}

impl std::error::Error for CsvError {}

/// Encodes one record as a Table-I CSV line (no trailing newline).
pub fn encode_record(record: &TaxiRecord, fleet: &Fleet) -> Result<String, CsvError> {
    let info = fleet.info(record.taxi).ok_or(CsvError::UnknownTaxi(record.taxi.0))?;
    let (lat6, lon6) = record.position.to_micro_degrees();
    Ok(format!(
        "{},{},{},{},{},{:.1},{:.1},{},{},{},{},{}",
        info.plate,
        lon6,
        lat6,
        record.time.format(),
        info.device_id,
        record.speed_kmh,
        record.heading_deg,
        record.gps.to_wire(),
        u8::from(record.overspeed),
        info.sim,
        record.passenger.to_wire(),
        info.color.as_str(),
    ))
}

/// Decodes one Table-I CSV line.
///
/// Unknown plates are registered into `fleet` on the fly (the data centre
/// learns the fleet from the stream); a known plate reuses its id.
pub fn decode_record(line: &str, fleet: &mut Fleet) -> Result<TaxiRecord, CsvError> {
    let fields: Vec<&str> = line.trim_end_matches(['\r', '\n']).split(',').collect();
    if fields.len() != 12 {
        return Err(CsvError::FieldCount(fields.len()));
    }
    let plate = fields[0];
    let lon6: i64 = fields[1].trim().parse().map_err(|_| CsvError::Field(2))?;
    let lat6: i64 = fields[2].trim().parse().map_err(|_| CsvError::Field(3))?;
    let time = Timestamp::parse(fields[3].trim()).map_err(|_| CsvError::Field(4))?;
    let device_id: u32 = fields[4].trim().parse().map_err(|_| CsvError::Field(5))?;
    let speed_kmh: f64 = fields[5].trim().parse().map_err(|_| CsvError::Field(6))?;
    let heading_deg: f64 = fields[6].trim().parse().map_err(|_| CsvError::Field(7))?;
    let gps = fields[7]
        .trim()
        .parse::<u8>()
        .ok()
        .and_then(GpsCondition::from_wire)
        .ok_or(CsvError::Field(8))?;
    let overspeed = match fields[8].trim() {
        "0" => false,
        "1" => true,
        _ => return Err(CsvError::Field(9)),
    };
    let sim = fields[9];
    let passenger = fields[10]
        .trim()
        .parse::<u8>()
        .ok()
        .and_then(PassengerState::from_wire)
        .ok_or(CsvError::Field(11))?;
    let color = BodyColor::from_str_loose(fields[11].trim()).ok_or(CsvError::Field(12))?;

    let taxi = match fleet.find_by_plate(plate) {
        Some(id) => id,
        None => fleet.insert(plate, device_id, sim, color).expect("plate was checked absent"),
    };

    Ok(TaxiRecord {
        taxi,
        position: GeoPoint::from_micro_degrees(lat6, lon6),
        time,
        speed_kmh,
        heading_deg,
        gps,
        overspeed,
        passenger,
    })
}

/// Encodes many records, one line each, newline-terminated.
pub fn encode_log(records: &[TaxiRecord], fleet: &Fleet) -> Result<String, CsvError> {
    let mut out = String::with_capacity(records.len() * 96);
    for r in records {
        out.push_str(&encode_record(r, fleet)?);
        out.push('\n');
    }
    Ok(out)
}

/// Decodes a multi-line Table-I CSV document, skipping blank lines. Returns
/// the records plus the index (0-based line number) and error of every
/// rejected line — real feeds contain garbage and the paper's preprocessing
/// drops it rather than aborting.
pub fn decode_log(text: &str, fleet: &mut Fleet) -> (Vec<TaxiRecord>, Vec<(usize, CsvError)>) {
    let mut records = Vec::new();
    let mut errors = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match decode_record(line, fleet) {
            Ok(r) => records.push(r),
            Err(e) => errors.push((i, e)),
        }
    }
    (records, errors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TaxiId;

    fn fixture() -> (TaxiRecord, Fleet) {
        let mut fleet = Fleet::new();
        let taxi = fleet.register();
        let record = TaxiRecord {
            taxi,
            position: GeoPoint::new(22.547123, 114.125456),
            time: Timestamp::civil(2014, 12, 5, 15, 22, 0),
            speed_kmh: 36.5,
            heading_deg: 270.0,
            gps: GpsCondition::Available,
            overspeed: false,
            passenger: PassengerState::Occupied,
        };
        (record, fleet)
    }

    #[test]
    fn encode_produces_table1_layout() {
        let (record, fleet) = fixture();
        let line = encode_record(&record, &fleet).unwrap();
        assert_eq!(
            line,
            "YB-00001,114125456,22547123,2014-12-05 15:22:00,100000,36.5,270.0,1,0,138000000001,1,yellow"
        );
    }

    #[test]
    fn decode_round_trip() {
        let (record, fleet) = fixture();
        let line = encode_record(&record, &fleet).unwrap();
        let mut fleet2 = Fleet::new();
        let back = decode_record(&line, &mut fleet2).unwrap();
        assert_eq!(back.time, record.time);
        assert!((back.position.lat - record.position.lat).abs() < 1e-6);
        assert!((back.position.lon - record.position.lon).abs() < 1e-6);
        assert_eq!(back.speed_kmh, record.speed_kmh);
        assert_eq!(back.heading_deg, record.heading_deg);
        assert_eq!(back.gps, record.gps);
        assert_eq!(back.overspeed, record.overspeed);
        assert_eq!(back.passenger, record.passenger);
        // The new fleet learned the taxi.
        let info = fleet2.info(back.taxi).unwrap();
        assert_eq!(info.plate, "YB-00001");
        assert_eq!(info.device_id, 100_000);
        assert_eq!(info.color, BodyColor::Yellow);
    }

    #[test]
    fn decode_reuses_known_plate() {
        let (record, fleet) = fixture();
        let line = encode_record(&record, &fleet).unwrap();
        let mut fleet2 = Fleet::new();
        let a = decode_record(&line, &mut fleet2).unwrap();
        let b = decode_record(&line, &mut fleet2).unwrap();
        assert_eq!(a.taxi, b.taxi);
        assert_eq!(fleet2.len(), 1);
    }

    #[test]
    fn encode_unknown_taxi_fails() {
        let (mut record, fleet) = fixture();
        record.taxi = TaxiId(99);
        assert_eq!(encode_record(&record, &fleet), Err(CsvError::UnknownTaxi(99)));
    }

    #[test]
    fn decode_rejects_malformed_fields() {
        let good = "YB-1,114125456,22547123,2014-12-05 15:22:00,100000,36.5,270.0,1,0,138,1,yellow";
        let mut fleet = Fleet::new();
        assert!(decode_record(good, &mut fleet).is_ok());

        let cases: Vec<(String, CsvError)> = vec![
            ("a,b,c".to_string(), CsvError::FieldCount(3)),
            (good.replace("114125456", "oops"), CsvError::Field(2)),
            (good.replace("22547123", "oops"), CsvError::Field(3)),
            (good.replace("2014-12-05 15:22:00", "2014-13-05 15:22:00"), CsvError::Field(4)),
            (good.replace(",100000,", ",dev,"), CsvError::Field(5)),
            (good.replace(",36.5,", ",fast,"), CsvError::Field(6)),
            (good.replace(",270.0,", ",west,"), CsvError::Field(7)),
            (good.replace(",1,0,138,", ",7,0,138,"), CsvError::Field(8)),
            (good.replace(",0,138,", ",maybe,138,"), CsvError::Field(9)),
            (good.replace(",1,yellow", ",5,yellow"), CsvError::Field(11)),
            (good.replace("yellow", "plaid"), CsvError::Field(12)),
        ];
        for (line, want) in cases {
            let got = decode_record(&line, &mut Fleet::new()).unwrap_err();
            assert_eq!(got, want, "line: {line}");
        }
    }

    #[test]
    fn error_display_messages() {
        assert!(CsvError::FieldCount(3).to_string().contains("12 fields"));
        assert!(CsvError::Field(6).to_string().contains("field 6"));
        assert!(CsvError::UnknownTaxi(4).to_string().contains("4"));
    }

    #[test]
    fn log_round_trip_and_error_collection() {
        let mut fleet = Fleet::new();
        let taxis = fleet.register_many(3);
        let t0 = Timestamp::civil(2014, 5, 21, 8, 0, 0);
        let records: Vec<TaxiRecord> = taxis
            .iter()
            .enumerate()
            .map(|(k, &taxi)| TaxiRecord {
                taxi,
                position: GeoPoint::new(22.5 + k as f64 * 0.001, 114.1),
                time: t0.offset(k as i64 * 30),
                speed_kmh: 10.0 * k as f64,
                heading_deg: 45.0,
                gps: GpsCondition::Available,
                overspeed: k == 2,
                passenger: PassengerState::Vacant,
            })
            .collect();
        let mut text = encode_log(&records, &fleet).unwrap();
        text.push_str("\ncorrupted,line\n\n");
        let mut fleet2 = Fleet::new();
        let (decoded, errors) = decode_log(&text, &mut fleet2);
        assert_eq!(decoded.len(), 3);
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].1, CsvError::FieldCount(2));
        assert_eq!(fleet2.len(), 3);
        assert!(decoded[2].overspeed);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn arbitrary_record_round_trips(
                lat in 22.0f64..23.0,
                lon in 113.5f64..114.5,
                secs in 1_400_000_000i64..1_450_000_000,
                speed10 in 0u32..1200,
                heading10 in 0u32..3599,
                gps_ok in proptest::bool::ANY,
                overspeed in proptest::bool::ANY,
                occupied in proptest::bool::ANY,
            ) {
                let mut fleet = Fleet::new();
                let taxi = fleet.register();
                // Quantise to wire resolution so equality is exact.
                let record = TaxiRecord {
                    taxi,
                    position: GeoPoint::from_micro_degrees(
                        (lat * 1e6) as i64, (lon * 1e6) as i64),
                    time: Timestamp(secs),
                    speed_kmh: speed10 as f64 / 10.0,
                    heading_deg: heading10 as f64 / 10.0,
                    gps: if gps_ok { GpsCondition::Available } else { GpsCondition::Unavailable },
                    overspeed,
                    passenger: if occupied { PassengerState::Occupied } else { PassengerState::Vacant },
                };
                let line = encode_record(&record, &fleet).unwrap();
                let back = decode_record(&line, &mut Fleet::new()).unwrap();
                prop_assert_eq!(back.time, record.time);
                prop_assert!((back.speed_kmh - record.speed_kmh).abs() < 1e-9);
                prop_assert!((back.heading_deg - record.heading_deg).abs() < 1e-9);
                prop_assert_eq!(back.gps, record.gps);
                prop_assert_eq!(back.overspeed, record.overspeed);
                prop_assert_eq!(back.passenger, record.passenger);
                prop_assert!(back.position.distance_m(record.position) < 0.2);
            }
        }
    }
}
