//! Geodesy primitives: WGS-84 points, haversine distances, bearings, and a
//! local tangent-plane projection for metric geometry near an intersection.
//!
//! Table I transmits coordinates as integers scaled by 10⁶
//! ("longitude × 1000000"); [`GeoPoint`] stores degrees as `f64` and
//! converts losslessly to/from that wire encoding at micro-degree
//! resolution (~0.1 m in Shenzhen).

/// Mean Earth radius in meters (IUGG).
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// A WGS-84 position in decimal degrees.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GeoPoint {
    /// Latitude in degrees, positive north.
    pub lat: f64,
    /// Longitude in degrees, positive east.
    pub lon: f64,
}

impl GeoPoint {
    /// Creates a point from decimal degrees.
    pub const fn new(lat: f64, lon: f64) -> Self {
        GeoPoint { lat, lon }
    }

    /// Decodes the Table-I wire encoding (micro-degrees as integers).
    pub fn from_micro_degrees(lat_e6: i64, lon_e6: i64) -> Self {
        GeoPoint { lat: lat_e6 as f64 / 1e6, lon: lon_e6 as f64 / 1e6 }
    }

    /// Encodes to the Table-I wire encoding, rounding to micro-degrees.
    pub fn to_micro_degrees(self) -> (i64, i64) {
        ((self.lat * 1e6).round() as i64, (self.lon * 1e6).round() as i64)
    }

    /// Great-circle (haversine) distance to `other` in meters.
    pub fn distance_m(self, other: GeoPoint) -> f64 {
        let lat1 = self.lat.to_radians();
        let lat2 = other.lat.to_radians();
        let dlat = (other.lat - self.lat).to_radians();
        let dlon = (other.lon - self.lon).to_radians();
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_M * a.sqrt().asin()
    }

    /// Initial great-circle bearing toward `other`, degrees clockwise from
    /// north in `[0, 360)` — the Table-I "car heading" convention.
    pub fn bearing_to(self, other: GeoPoint) -> f64 {
        let lat1 = self.lat.to_radians();
        let lat2 = other.lat.to_radians();
        let dlon = (other.lon - self.lon).to_radians();
        let y = dlon.sin() * lat2.cos();
        let x = lat1.cos() * lat2.sin() - lat1.sin() * lat2.cos() * dlon.cos();
        y.atan2(x).to_degrees().rem_euclid(360.0)
    }

    /// Point reached by travelling `distance_m` meters along `bearing_deg`
    /// (degrees clockwise from north). Accurate for the intra-city
    /// distances this workspace deals in.
    pub fn destination(self, bearing_deg: f64, distance_m: f64) -> GeoPoint {
        let delta = distance_m / EARTH_RADIUS_M;
        let theta = bearing_deg.to_radians();
        let lat1 = self.lat.to_radians();
        let lon1 = self.lon.to_radians();
        let lat2 = (lat1.sin() * delta.cos() + lat1.cos() * delta.sin() * theta.cos()).asin();
        let lon2 = lon1
            + (theta.sin() * delta.sin() * lat1.cos()).atan2(delta.cos() - lat1.sin() * lat2.sin());
        GeoPoint { lat: lat2.to_degrees(), lon: lon2.to_degrees() }
    }

    /// True when both coordinates are finite and within valid ranges.
    pub fn is_valid(self) -> bool {
        self.lat.is_finite()
            && self.lon.is_finite()
            && (-90.0..=90.0).contains(&self.lat)
            && (-180.0..=180.0).contains(&self.lon)
    }
}

/// Smallest absolute difference between two headings, degrees in `[0, 180]`.
pub fn heading_difference(a_deg: f64, b_deg: f64) -> f64 {
    let d = (a_deg - b_deg).rem_euclid(360.0);
    if d > 180.0 {
        360.0 - d
    } else {
        d
    }
}

/// An equirectangular local projection around a reference point.
///
/// Within a few kilometres of the reference (one intersection and its
/// approach arms) this is centimetre-accurate and makes segment
/// point-to-line distance computations plain 2-D geometry.
#[derive(Debug, Clone, Copy)]
pub struct LocalProjection {
    origin: GeoPoint,
    meters_per_deg_lat: f64,
    meters_per_deg_lon: f64,
}

impl LocalProjection {
    /// Creates a projection centred on `origin`.
    pub fn new(origin: GeoPoint) -> Self {
        let meters_per_deg_lat = EARTH_RADIUS_M * std::f64::consts::PI / 180.0;
        LocalProjection {
            origin,
            meters_per_deg_lat,
            meters_per_deg_lon: meters_per_deg_lat * origin.lat.to_radians().cos(),
        }
    }

    /// The reference point.
    pub fn origin(&self) -> GeoPoint {
        self.origin
    }

    /// Projects to local `(x_east_m, y_north_m)` coordinates.
    pub fn project(&self, p: GeoPoint) -> (f64, f64) {
        (
            (p.lon - self.origin.lon) * self.meters_per_deg_lon,
            (p.lat - self.origin.lat) * self.meters_per_deg_lat,
        )
    }

    /// Inverse of [`LocalProjection::project`].
    pub fn unproject(&self, x_east_m: f64, y_north_m: f64) -> GeoPoint {
        GeoPoint {
            lat: self.origin.lat + y_north_m / self.meters_per_deg_lat,
            lon: self.origin.lon + x_east_m / self.meters_per_deg_lon,
        }
    }
}

/// Distance in meters from point `p` to the segment `a`–`b`, evaluated in
/// the local projection around `a`, together with the clamped parameter
/// `t ∈ [0,1]` of the closest point.
pub fn point_segment_distance_m(p: GeoPoint, a: GeoPoint, b: GeoPoint) -> (f64, f64) {
    let proj = LocalProjection::new(a);
    let (px, py) = proj.project(p);
    let (bx, by) = proj.project(b);
    let len_sq = bx * bx + by * by;
    let t = if len_sq == 0.0 { 0.0 } else { ((px * bx + py * by) / len_sq).clamp(0.0, 1.0) };
    let (cx, cy) = (bx * t, by * t);
    (((px - cx).powi(2) + (py - cy).powi(2)).sqrt(), t)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shenzhen city centre, near the paper's Table-II intersections.
    const SHENZHEN: GeoPoint = GeoPoint::new(22.547, 114.125);

    #[test]
    fn micro_degree_round_trip() {
        let p = GeoPoint::new(22.547123, 114.125456);
        let (lat6, lon6) = p.to_micro_degrees();
        assert_eq!(lat6, 22_547_123);
        assert_eq!(lon6, 114_125_456);
        let back = GeoPoint::from_micro_degrees(lat6, lon6);
        assert!((back.lat - p.lat).abs() < 1e-9);
        assert!((back.lon - p.lon).abs() < 1e-9);
    }

    #[test]
    fn zero_distance_to_self() {
        assert_eq!(SHENZHEN.distance_m(SHENZHEN), 0.0);
    }

    #[test]
    fn known_distance_one_degree_latitude() {
        // 1° of latitude ≈ 111.19 km on the mean sphere.
        let a = GeoPoint::new(22.0, 114.0);
        let b = GeoPoint::new(23.0, 114.0);
        let d = a.distance_m(b);
        assert!((d - 111_195.0).abs() < 50.0, "got {d}");
    }

    #[test]
    fn distance_is_symmetric() {
        let a = GeoPoint::new(22.547, 114.125);
        let b = GeoPoint::new(22.558, 114.104);
        assert!((a.distance_m(b) - b.distance_m(a)).abs() < 1e-9);
    }

    #[test]
    fn table2_intersections_are_kilometres_apart() {
        // ShenNan-WenJin (ID 1) to FuHua-FuTian (ID 2) from Table II.
        let id1 = GeoPoint::new(22.547, 114.125);
        let id2 = GeoPoint::new(22.538, 114.072);
        let d = id1.distance_m(id2);
        assert!(d > 4_000.0 && d < 7_000.0, "got {d}");
    }

    #[test]
    fn bearings_cardinal_directions() {
        let p = SHENZHEN;
        let north = p.destination(0.0, 1000.0);
        let east = p.destination(90.0, 1000.0);
        let south = p.destination(180.0, 1000.0);
        let west = p.destination(270.0, 1000.0);
        assert!(heading_difference(p.bearing_to(north), 0.0) < 0.2);
        assert!(heading_difference(p.bearing_to(east), 90.0) < 0.2);
        assert!(heading_difference(p.bearing_to(south), 180.0) < 0.2);
        assert!(heading_difference(p.bearing_to(west), 270.0) < 0.2);
    }

    #[test]
    fn destination_distance_round_trip() {
        for bearing in [0.0, 37.0, 123.0, 250.0, 359.0] {
            for dist in [50.0, 500.0, 5_000.0] {
                let q = SHENZHEN.destination(bearing, dist);
                assert!(
                    (SHENZHEN.distance_m(q) - dist).abs() < 0.5,
                    "bearing {bearing} dist {dist}: {}",
                    SHENZHEN.distance_m(q)
                );
            }
        }
    }

    #[test]
    fn heading_difference_wraps() {
        assert_eq!(heading_difference(10.0, 350.0), 20.0);
        assert_eq!(heading_difference(350.0, 10.0), 20.0);
        assert_eq!(heading_difference(0.0, 180.0), 180.0);
        assert_eq!(heading_difference(90.0, 90.0), 0.0);
    }

    #[test]
    fn validity_checks() {
        assert!(SHENZHEN.is_valid());
        assert!(!GeoPoint::new(f64::NAN, 0.0).is_valid());
        assert!(!GeoPoint::new(91.0, 0.0).is_valid());
        assert!(!GeoPoint::new(0.0, 181.0).is_valid());
    }

    #[test]
    fn projection_round_trip() {
        let proj = LocalProjection::new(SHENZHEN);
        assert_eq!(proj.origin(), SHENZHEN);
        let p = GeoPoint::new(22.551, 114.120);
        let (x, y) = proj.project(p);
        let back = proj.unproject(x, y);
        assert!(SHENZHEN.distance_m(back) - SHENZHEN.distance_m(p) < 0.01);
        assert!(p.distance_m(back) < 0.01);
    }

    #[test]
    fn projection_matches_haversine_locally() {
        let proj = LocalProjection::new(SHENZHEN);
        let p = SHENZHEN.destination(63.0, 800.0);
        let (x, y) = proj.project(p);
        let planar = (x * x + y * y).sqrt();
        assert!((planar - 800.0).abs() < 1.0, "planar {planar}");
    }

    #[test]
    fn point_segment_distance_endpoints_and_middle() {
        let a = SHENZHEN;
        let b = SHENZHEN.destination(90.0, 1000.0);
        // A point 100 m north of the segment middle.
        let mid = SHENZHEN.destination(90.0, 500.0).destination(0.0, 100.0);
        let (d, t) = point_segment_distance_m(mid, a, b);
        assert!((d - 100.0).abs() < 1.0, "d = {d}");
        assert!((t - 0.5).abs() < 0.01, "t = {t}");
        // A point beyond the far endpoint clamps to t = 1.
        let past = SHENZHEN.destination(90.0, 1500.0);
        let (d2, t2) = point_segment_distance_m(past, a, b);
        assert!((d2 - 500.0).abs() < 2.0);
        assert_eq!(t2, 1.0);
        // Degenerate zero-length segment.
        let (d3, t3) = point_segment_distance_m(past, a, a);
        assert!((d3 - 1500.0).abs() < 2.0);
        assert_eq!(t3, 0.0);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        fn city_point() -> impl Strategy<Value = GeoPoint> {
            (22.4f64..22.7, 113.9f64..114.3).prop_map(|(lat, lon)| GeoPoint::new(lat, lon))
        }

        proptest! {
            #[test]
            fn triangle_inequality(a in city_point(), b in city_point(), c in city_point()) {
                prop_assert!(a.distance_m(c) <= a.distance_m(b) + b.distance_m(c) + 1e-6);
            }

            #[test]
            fn destination_round_trip(p in city_point(),
                                      bearing in 0.0f64..360.0,
                                      dist in 1.0f64..10_000.0) {
                let q = p.destination(bearing, dist);
                prop_assert!((p.distance_m(q) - dist).abs() < dist * 0.001 + 0.5);
            }

            #[test]
            fn heading_difference_symmetric_bounded(a in 0.0f64..720.0, b in -360.0f64..360.0) {
                let d1 = heading_difference(a, b);
                let d2 = heading_difference(b, a);
                prop_assert!((d1 - d2).abs() < 1e-9);
                prop_assert!((0.0..=180.0).contains(&d1));
            }

            #[test]
            fn micro_degrees_quantize_below_20cm(p in city_point()) {
                let (lat6, lon6) = p.to_micro_degrees();
                let back = GeoPoint::from_micro_degrees(lat6, lon6);
                prop_assert!(p.distance_m(back) < 0.2);
            }
        }
    }
}
