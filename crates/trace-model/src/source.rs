//! Bounded-memory record sources: the out-of-core ingestion contract.
//!
//! The paper's real workload is ~28 000 taxis emitting ~80 M records/day
//! (~10 GB of CSV); holding a day in a `Vec<TaxiRecord>` is exactly the
//! thing a deployment cannot do. A [`RecordSource`] yields the day as a
//! sequence of *record batches* decoded into one caller-owned
//! [`RecordBatch`] that is recycled between calls, so the resident set of
//! an ingestion loop is `O(chunk size)` — independent of the feed length.
//!
//! Two sources cover the pipeline's needs:
//!
//! * [`MemorySource`] — wraps an in-memory slice and serves it in chunks
//!   of a configurable record count. This is the *reference* source: the
//!   differential test harness proves every streaming consumer produces
//!   bit-identical results whether records arrive through a
//!   [`MemorySource`] of any chunk size or through a whole-day `Vec`.
//! * [`CsvChunkReader`] — streams Table-I CSV from any [`Read`] in
//!   bounded *byte* chunks, decoding complete lines into compact binary
//!   [`TaxiRecord`]s and carrying a partial trailing line across chunk
//!   boundaries. Malformed rows — including rows garbled *across* a
//!   boundary — are reported per line, never fatal, with the same line
//!   numbering as the whole-file reader in [`crate::io`].
//!
//! ## Chunk-boundary semantics
//!
//! A byte chunk almost never ends on a line boundary. The reader keeps
//! the unterminated tail in a carry buffer and prepends it to the next
//! chunk, so every line is decoded exactly once from its complete bytes.
//! The record *sequence* (and the bad-line sequence) is therefore a pure
//! function of the input bytes, identical for every `chunk_bytes ≥ 1` —
//! pinned by the proptests in `tests/chunked_reader.rs`. Memory is
//! bounded by `chunk_bytes` plus the longest single line of the input.

use crate::csv::{decode_record, CsvError};
use crate::io::TraceFileError;
use crate::record::{Fleet, TaxiRecord};
use std::io::Read;
use std::path::Path;

/// A rejected row: 0-based line number over the whole feed plus the
/// decode error (same numbering as [`crate::io::TraceReader`]).
pub type BadLine = (usize, CsvError);

/// One decoded chunk of a record feed. Reused across
/// [`RecordSource::next_batch`] calls: the vectors are cleared, not
/// reallocated, so steady-state ingestion does not grow the heap.
#[derive(Debug, Clone, Default)]
pub struct RecordBatch {
    /// Records decoded from this chunk, in feed order.
    pub records: Vec<TaxiRecord>,
    /// Rejected rows as `(line_number, error)`, 0-based over the whole
    /// feed (same numbering as [`crate::io::TraceReader`]). Empty for
    /// sources that never decode text.
    pub bad_lines: Vec<BadLine>,
}

impl RecordBatch {
    /// An empty batch.
    pub fn new() -> Self {
        RecordBatch::default()
    }

    /// Clears both vectors, keeping their capacity.
    pub fn clear(&mut self) {
        self.records.clear();
        self.bad_lines.clear();
    }

    /// Records in this batch.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the batch holds no records (it may still hold bad lines).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// A bounded-memory record feed.
///
/// ## Contract
///
/// * `next_batch` clears `batch`, fills it with the next chunk of the
///   feed, and returns `Ok(true)`; it returns `Ok(false)` — with `batch`
///   cleared — once the feed is exhausted. After the first `Ok(false)`
///   every further call also returns `Ok(false)`.
/// * Concatenating `batch.records` over all calls yields the feed's
///   exact record sequence; likewise `batch.bad_lines` for rejects. The
///   split into batches is an implementation detail consumers must not
///   depend on — the differential harness deliberately varies it.
/// * A batch may be empty while the source is not exhausted (e.g. a byte
///   chunk that closed zero lines); consumers must key on the return
///   value, not on `batch.is_empty()`.
pub trait RecordSource {
    /// Fills `batch` with the next chunk. `Ok(false)` means exhausted.
    fn next_batch(&mut self, batch: &mut RecordBatch) -> Result<bool, TraceFileError>;
}

/// Serves an in-memory record slice in chunks of `chunk_records` — the
/// reference source for the streaming-vs-in-memory differential proofs.
#[derive(Debug, Clone)]
pub struct MemorySource<'a> {
    records: &'a [TaxiRecord],
    chunk_records: usize,
    pos: usize,
}

impl<'a> MemorySource<'a> {
    /// A source over `records`, yielding at most `chunk_records` per
    /// batch (`0` is treated as 1).
    pub fn new(records: &'a [TaxiRecord], chunk_records: usize) -> Self {
        MemorySource { records, chunk_records: chunk_records.max(1), pos: 0 }
    }
}

impl RecordSource for MemorySource<'_> {
    fn next_batch(&mut self, batch: &mut RecordBatch) -> Result<bool, TraceFileError> {
        batch.clear();
        if self.pos >= self.records.len() {
            return Ok(false);
        }
        let end = (self.pos + self.chunk_records).min(self.records.len());
        batch.records.extend_from_slice(&self.records[self.pos..end]);
        self.pos = end;
        Ok(true)
    }
}

/// Streams Table-I CSV from a [`Read`] in bounded byte chunks.
///
/// Unknown plates are registered into the internal [`Fleet`] in feed
/// order — the same learning rule as [`crate::csv::decode_record`] — so
/// the fleet, like the record sequence, is independent of the chunk
/// size. See the module docs for the chunk-boundary semantics.
pub struct CsvChunkReader<R: Read> {
    reader: R,
    fleet: Fleet,
    /// Bytes to request per chunk.
    chunk_bytes: usize,
    /// Read buffer, recycled across chunks.
    buf: Vec<u8>,
    /// Unterminated tail of the previous chunk.
    carry: Vec<u8>,
    /// Next line number (0-based, counts every line incl. blank ones —
    /// identical to [`crate::io::TraceReader`]).
    line_no: usize,
    /// Cumulative rejected-line count over the whole feed.
    bad_line_total: u64,
    /// Cumulative decoded-record count over the whole feed.
    record_total: u64,
    /// The underlying reader hit EOF; only the carry may remain.
    eof: bool,
    /// Fully exhausted (EOF seen and carry flushed).
    done: bool,
}

impl CsvChunkReader<std::io::BufReader<std::fs::File>> {
    /// Opens a file for chunked streaming decode.
    pub fn open(path: &Path, chunk_bytes: usize) -> Result<Self, TraceFileError> {
        let file = std::fs::File::open(path)?;
        Ok(CsvChunkReader::new(std::io::BufReader::new(file), chunk_bytes))
    }
}

impl<R: Read> CsvChunkReader<R> {
    /// Wraps any reader; each batch decodes the lines completed by one
    /// `chunk_bytes`-sized read (`0` is treated as 1).
    pub fn new(reader: R, chunk_bytes: usize) -> Self {
        let chunk_bytes = chunk_bytes.max(1);
        CsvChunkReader {
            reader,
            fleet: Fleet::new(),
            chunk_bytes,
            buf: vec![0u8; chunk_bytes],
            carry: Vec::new(),
            line_no: 0,
            bad_line_total: 0,
            record_total: 0,
            eof: false,
            done: false,
        }
    }

    /// The fleet learned from the feed so far.
    pub fn fleet(&self) -> &Fleet {
        &self.fleet
    }

    /// Consumes the reader, returning the learned fleet.
    pub fn into_fleet(self) -> Fleet {
        self.fleet
    }

    /// Rejected lines seen so far across the whole feed.
    pub fn bad_line_total(&self) -> u64 {
        self.bad_line_total
    }

    /// Records decoded so far across the whole feed.
    pub fn record_total(&self) -> u64 {
        self.record_total
    }

    /// Decodes one complete line (terminating `\n` stripped; a trailing
    /// `\r` may remain — [`decode_record`] trims it, exactly like the
    /// whole-file reader). Split out of `next_batch` with disjoint field
    /// borrows so the line slice may alias `self.buf`.
    fn decode_line_into(
        line: &[u8],
        line_no: &mut usize,
        fleet: &mut Fleet,
        record_total: &mut u64,
        bad_line_total: &mut u64,
        batch: &mut RecordBatch,
    ) {
        let n = *line_no;
        *line_no += 1;
        // Lossy decode: the wire format is ASCII, and a line that lost
        // UTF-8 validity in transit is exactly the garbage the per-row
        // error path exists for (the replacement char fails a field
        // parse, never a panic).
        let text = String::from_utf8_lossy(line);
        if text.trim().is_empty() {
            return;
        }
        match decode_record(&text, fleet) {
            Ok(r) => {
                *record_total += 1;
                batch.records.push(r);
            }
            Err(e) => {
                *bad_line_total += 1;
                batch.bad_lines.push((n, e));
            }
        }
    }
}

impl<R: Read> RecordSource for CsvChunkReader<R> {
    fn next_batch(&mut self, batch: &mut RecordBatch) -> Result<bool, TraceFileError> {
        batch.clear();
        if self.done {
            return Ok(false);
        }
        // One bounded read per batch. `read` may return short; that only
        // changes the batch split, never the decoded sequence.
        let mut filled = 0;
        if !self.eof {
            while filled < self.chunk_bytes {
                match self.reader.read(&mut self.buf[filled..]) {
                    Ok(0) => {
                        self.eof = true;
                        break;
                    }
                    Ok(n) => filled += n,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(TraceFileError::Io(e)),
                }
            }
        }

        // Split carry + chunk on '\n'; the last fragment (no terminator)
        // becomes the next carry.
        let mut start = 0;
        for k in 0..filled {
            if self.buf[k] == b'\n' {
                if self.carry.is_empty() {
                    Self::decode_line_into(
                        &self.buf[start..k],
                        &mut self.line_no,
                        &mut self.fleet,
                        &mut self.record_total,
                        &mut self.bad_line_total,
                        batch,
                    );
                } else {
                    self.carry.extend_from_slice(&self.buf[start..k]);
                    Self::decode_line_into(
                        &self.carry,
                        &mut self.line_no,
                        &mut self.fleet,
                        &mut self.record_total,
                        &mut self.bad_line_total,
                        batch,
                    );
                    self.carry.clear();
                }
                start = k + 1;
            }
        }
        self.carry.extend_from_slice(&self.buf[start..filled]);

        if self.eof {
            // Flush the final unterminated line, if any.
            if !self.carry.is_empty() {
                Self::decode_line_into(
                    &self.carry,
                    &mut self.line_no,
                    &mut self.fleet,
                    &mut self.record_total,
                    &mut self.bad_line_total,
                    batch,
                );
                self.carry.clear();
            }
            self.done = true;
        }
        Ok(true)
    }
}

/// Drains a source into one `Vec`, for tests and small feeds — the
/// convenience that deliberately gives up the memory bound.
pub fn collect_source(
    src: &mut impl RecordSource,
) -> Result<(Vec<TaxiRecord>, Vec<BadLine>), TraceFileError> {
    let mut records = Vec::new();
    let mut bad = Vec::new();
    let mut batch = RecordBatch::new();
    while src.next_batch(&mut batch)? {
        records.extend_from_slice(&batch.records);
        bad.extend_from_slice(&batch.bad_lines);
    }
    Ok((records, bad))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csv::encode_log;
    use crate::record::{GpsCondition, PassengerState};
    use crate::time::Timestamp;
    use crate::GeoPoint;
    use std::io::Cursor;

    fn sample(n: usize) -> (Vec<TaxiRecord>, Fleet) {
        let mut fleet = Fleet::new();
        let taxis = fleet.register_many(4);
        let records = (0..n)
            .map(|k| TaxiRecord {
                taxi: taxis[k % 4],
                position: GeoPoint::new(22.5 + k as f64 * 1e-4, 114.05),
                time: Timestamp::civil(2014, 12, 5, 9, 0, 0).offset(k as i64 * 7),
                speed_kmh: (k % 60) as f64,
                heading_deg: (k * 31 % 360) as f64,
                gps: GpsCondition::Available,
                overspeed: k % 17 == 0,
                passenger: if k % 3 == 0 {
                    PassengerState::Occupied
                } else {
                    PassengerState::Vacant
                },
            })
            .collect();
        (records, fleet)
    }

    #[test]
    fn memory_source_round_trips_any_chunk() {
        let (records, _) = sample(53);
        for chunk in [1, 2, 7, 53, 100, 0] {
            let mut src = MemorySource::new(&records, chunk);
            let (got, bad) = collect_source(&mut src).unwrap();
            assert_eq!(got, records, "chunk_records={chunk}");
            assert!(bad.is_empty());
            // Exhausted stays exhausted.
            let mut batch = RecordBatch::new();
            assert!(!src.next_batch(&mut batch).unwrap());
            assert!(!src.next_batch(&mut batch).unwrap());
        }
    }

    #[test]
    fn csv_chunk_reader_matches_whole_file_decode() {
        let (records, fleet) = sample(40);
        let text = encode_log(&records, &fleet).unwrap();
        for chunk_bytes in [1, 3, 64, 1 << 20] {
            let mut src = CsvChunkReader::new(Cursor::new(text.as_bytes()), chunk_bytes);
            let (got, bad) = collect_source(&mut src).unwrap();
            assert!(bad.is_empty());
            assert_eq!(got.len(), records.len());
            assert_eq!(got, records, "chunk_bytes={chunk_bytes}");
            assert_eq!(src.record_total(), records.len() as u64);
            assert_eq!(src.fleet().len(), fleet.len());
        }
    }

    #[test]
    fn bad_lines_keep_whole_file_numbering() {
        let (records, fleet) = sample(5);
        let mut text = encode_log(&records, &fleet).unwrap();
        text.push_str("not,a,record\n\nYB-1,bad,22500000,x,1,1.0,0.0,1,0,138,0,yellow\n");
        // Whole-file reference.
        let mut ref_fleet = Fleet::new();
        let (ref_records, ref_errors) = crate::csv::decode_log(&text, &mut ref_fleet);
        for chunk_bytes in [1, 5, 37, 4096] {
            let mut src = CsvChunkReader::new(Cursor::new(text.as_bytes()), chunk_bytes);
            let (got, bad) = collect_source(&mut src).unwrap();
            assert_eq!(got, ref_records, "chunk_bytes={chunk_bytes}");
            assert_eq!(bad, ref_errors, "chunk_bytes={chunk_bytes}");
            assert_eq!(src.bad_line_total(), ref_errors.len() as u64);
        }
    }

    #[test]
    fn final_line_without_newline_is_flushed() {
        let (records, fleet) = sample(3);
        let mut text = encode_log(&records, &fleet).unwrap();
        text.pop(); // strip the trailing '\n'
        let mut src = CsvChunkReader::new(Cursor::new(text.as_bytes()), 8);
        let (got, bad) = collect_source(&mut src).unwrap();
        assert_eq!(got, records);
        assert!(bad.is_empty());
    }

    #[test]
    fn crlf_lines_decode_like_lf() {
        let (records, fleet) = sample(4);
        let lf = encode_log(&records, &fleet).unwrap();
        let crlf = lf.replace('\n', "\r\n");
        let mut src = CsvChunkReader::new(Cursor::new(crlf.as_bytes()), 11);
        let (got, bad) = collect_source(&mut src).unwrap();
        assert_eq!(got, records);
        assert!(bad.is_empty());
    }

    #[test]
    fn open_missing_file_is_io_error() {
        match CsvChunkReader::open(Path::new("/nonexistent/feed.csv"), 4096) {
            Err(TraceFileError::Io(_)) => {}
            Err(other) => panic!("expected Io error, got {other}"),
            Ok(_) => panic!("open of a missing file succeeded"),
        }
    }

    #[test]
    fn batch_reuse_does_not_grow() {
        let (records, fleet) = sample(64);
        let text = encode_log(&records, &fleet).unwrap();
        let mut src = CsvChunkReader::new(Cursor::new(text.as_bytes()), 256);
        let mut batch = RecordBatch::new();
        let mut caps = Vec::new();
        while src.next_batch(&mut batch).unwrap() {
            caps.push(batch.records.capacity());
        }
        // Capacity stabilizes: the last batch never exceeds the max seen
        // before it (cleared, not reallocated).
        let max = caps.iter().copied().max().unwrap_or(0);
        assert!(batch.records.capacity() <= max.max(4));
    }
}
