//! Calendar timestamps for taxi records.
//!
//! The upload format (Table I, field 4) stamps every record with a local
//! `YYYY-MM-DD HH:mm:ss` string. [`Timestamp`] stores seconds since the Unix
//! epoch (no time zone — the fleet reports local time and all analysis is
//! local) and converts to/from the civil calendar with the standard
//! Gregorian day-count algorithms, implemented here from scratch.

/// Seconds since `1970-01-01 00:00:00` (local civil time, no leap seconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub i64);

/// A broken-down civil date-time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CivilDateTime {
    /// Calendar year (e.g. 2014).
    pub year: i32,
    /// Month 1–12.
    pub month: u8,
    /// Day of month 1–31.
    pub day: u8,
    /// Hour 0–23.
    pub hour: u8,
    /// Minute 0–59.
    pub minute: u8,
    /// Second 0–59.
    pub second: u8,
}

/// Days from the epoch for a civil date (Gregorian, proleptic).
/// Howard Hinnant's `days_from_civil`.
fn days_from_civil(y: i32, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y } as i64;
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (m as i64 + 9) % 12; // Mar=0 … Feb=11
    let doy = (153 * mp + 2) / 5 + d as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe - 719468
}

/// Civil date for a day count from the epoch. Inverse of `days_from_civil`.
fn civil_from_days(z: i64) -> (i32, u8, u8) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u8; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u8; // [1, 12]
    ((if m <= 2 { y + 1 } else { y }) as i32, m, d)
}

/// Days in `month` of `year`.
fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if (year % 4 == 0 && year % 100 != 0) || year % 400 == 0 {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// Error parsing a `YYYY-MM-DD HH:mm:ss` string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTimeError(pub String);

impl std::fmt::Display for ParseTimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid timestamp: {}", self.0)
    }
}

impl std::error::Error for ParseTimeError {}

impl Timestamp {
    /// Builds a timestamp from civil fields, validating ranges (including
    /// month lengths and leap years).
    pub fn from_civil(dt: CivilDateTime) -> Result<Timestamp, ParseTimeError> {
        let CivilDateTime { year, month, day, hour, minute, second } = dt;
        if !(1..=12).contains(&month)
            || day == 0
            || day > days_in_month(year, month)
            || hour > 23
            || minute > 59
            || second > 59
        {
            return Err(ParseTimeError(format!("{dt:?}")));
        }
        let days = days_from_civil(year, month as u32, day as u32);
        Ok(Timestamp(days * 86_400 + hour as i64 * 3600 + minute as i64 * 60 + second as i64))
    }

    /// Convenience constructor: `Timestamp::civil(2014, 12, 5, 15, 22, 0)`.
    pub fn civil(year: i32, month: u8, day: u8, hour: u8, minute: u8, second: u8) -> Timestamp {
        Timestamp::from_civil(CivilDateTime { year, month, day, hour, minute, second })
            .expect("invalid civil date-time")
    }

    /// Broken-down civil representation.
    pub fn to_civil(self) -> CivilDateTime {
        let days = self.0.div_euclid(86_400);
        let secs = self.0.rem_euclid(86_400);
        let (year, month, day) = civil_from_days(days);
        CivilDateTime {
            year,
            month,
            day,
            hour: (secs / 3600) as u8,
            minute: (secs % 3600 / 60) as u8,
            second: (secs % 60) as u8,
        }
    }

    /// Parses `YYYY-MM-DD HH:mm:ss` (the Table-I wire format).
    pub fn parse(s: &str) -> Result<Timestamp, ParseTimeError> {
        let bytes = s.as_bytes();
        if bytes.len() != 19
            || bytes[4] != b'-'
            || bytes[7] != b'-'
            || bytes[10] != b' '
            || bytes[13] != b':'
            || bytes[16] != b':'
        {
            return Err(ParseTimeError(s.to_string()));
        }
        let num = |range: std::ops::Range<usize>| -> Result<i64, ParseTimeError> {
            s[range].parse::<i64>().map_err(|_| ParseTimeError(s.to_string()))
        };
        let dt = CivilDateTime {
            year: num(0..4)? as i32,
            month: num(5..7)? as u8,
            day: num(8..10)? as u8,
            hour: num(11..13)? as u8,
            minute: num(14..16)? as u8,
            second: num(17..19)? as u8,
        };
        Timestamp::from_civil(dt)
    }

    /// Formats as `YYYY-MM-DD HH:mm:ss`.
    pub fn format(self) -> String {
        let c = self.to_civil();
        format!(
            "{:04}-{:02}-{:02} {:02}:{:02}:{:02}",
            c.year, c.month, c.day, c.hour, c.minute, c.second
        )
    }

    /// Seconds since local midnight, `[0, 86400)`.
    pub fn seconds_of_day(self) -> u32 {
        self.0.rem_euclid(86_400) as u32
    }

    /// Index of the 10-minute slot within the day, `[0, 144)` — the binning
    /// of the paper's Fig. 2(a).
    pub fn ten_minute_slot(self) -> u32 {
        self.seconds_of_day() / 600
    }

    /// Hour of day `[0, 24)`.
    pub fn hour_of_day(self) -> u32 {
        self.seconds_of_day() / 3600
    }

    /// Midnight of the same civil day.
    pub fn start_of_day(self) -> Timestamp {
        Timestamp(self.0.div_euclid(86_400) * 86_400)
    }

    /// Timestamp advanced by `secs` (may be negative).
    pub fn offset(self, secs: i64) -> Timestamp {
        Timestamp(self.0 + secs)
    }

    /// Signed difference `self - other` in seconds.
    pub fn delta(self, other: Timestamp) -> i64 {
        self.0 - other.0
    }
}

impl std::fmt::Display for Timestamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.format())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_1970() {
        let c = Timestamp(0).to_civil();
        assert_eq!((c.year, c.month, c.day, c.hour, c.minute, c.second), (1970, 1, 1, 0, 0, 0));
    }

    #[test]
    fn known_date_round_trip() {
        // The paper's randomly selected evaluation instant: 15:22 Dec 05, 2014.
        let t = Timestamp::civil(2014, 12, 5, 15, 22, 0);
        assert_eq!(t.format(), "2014-12-05 15:22:00");
        assert_eq!(Timestamp::parse("2014-12-05 15:22:00").unwrap(), t);
        let c = t.to_civil();
        assert_eq!((c.year, c.month, c.day), (2014, 12, 5));
        assert_eq!((c.hour, c.minute, c.second), (15, 22, 0));
    }

    #[test]
    fn leap_year_handling() {
        assert!(Timestamp::from_civil(CivilDateTime {
            year: 2016,
            month: 2,
            day: 29,
            hour: 0,
            minute: 0,
            second: 0
        })
        .is_ok());
        assert!(Timestamp::from_civil(CivilDateTime {
            year: 2015,
            month: 2,
            day: 29,
            hour: 0,
            minute: 0,
            second: 0
        })
        .is_err());
        assert!(Timestamp::from_civil(CivilDateTime {
            year: 1900,
            month: 2,
            day: 29,
            hour: 0,
            minute: 0,
            second: 0
        })
        .is_err()); // century non-leap
        assert!(Timestamp::from_civil(CivilDateTime {
            year: 2000,
            month: 2,
            day: 29,
            hour: 0,
            minute: 0,
            second: 0
        })
        .is_ok()); // 400-year leap
    }

    #[test]
    fn rejects_invalid_fields() {
        for s in [
            "2014-13-01 00:00:00",
            "2014-00-01 00:00:00",
            "2014-04-31 00:00:00",
            "2014-01-01 24:00:00",
            "2014-01-01 00:60:00",
            "2014-01-01 00:00:60",
            "2014-1-01 00:00:00",
            "garbage",
            "2014-01-01T00:00:00",
        ] {
            assert!(Timestamp::parse(s).is_err(), "{s} should be rejected");
        }
    }

    #[test]
    fn parse_error_display() {
        let e = Timestamp::parse("nope").unwrap_err();
        assert!(e.to_string().contains("nope"));
    }

    #[test]
    fn day_arithmetic() {
        let t = Timestamp::civil(2014, 5, 21, 8, 30, 15);
        assert_eq!(t.seconds_of_day(), 8 * 3600 + 30 * 60 + 15);
        assert_eq!(t.hour_of_day(), 8);
        assert_eq!(t.ten_minute_slot(), (8 * 60 + 30) / 10);
        assert_eq!(t.start_of_day(), Timestamp::civil(2014, 5, 21, 0, 0, 0));
        assert_eq!(t.offset(3600), Timestamp::civil(2014, 5, 21, 9, 30, 15));
        assert_eq!(t.offset(3600).delta(t), 3600);
    }

    #[test]
    fn ten_minute_slots_cover_day() {
        let midnight = Timestamp::civil(2014, 12, 5, 0, 0, 0);
        assert_eq!(midnight.ten_minute_slot(), 0);
        assert_eq!(midnight.offset(599).ten_minute_slot(), 0);
        assert_eq!(midnight.offset(600).ten_minute_slot(), 1);
        assert_eq!(midnight.offset(86_399).ten_minute_slot(), 143);
    }

    #[test]
    fn crossing_midnight_and_month() {
        let t = Timestamp::civil(2014, 5, 31, 23, 59, 59);
        let next = t.offset(1);
        let c = next.to_civil();
        assert_eq!((c.year, c.month, c.day, c.hour), (2014, 6, 1, 0));
    }

    #[test]
    fn display_matches_format() {
        let t = Timestamp::civil(2014, 12, 5, 9, 5, 3);
        assert_eq!(format!("{t}"), "2014-12-05 09:05:03");
    }

    #[test]
    fn ordering_follows_time() {
        let a = Timestamp::civil(2014, 5, 21, 0, 0, 0);
        let b = Timestamp::civil(2014, 5, 24, 0, 0, 0);
        assert!(a < b);
        assert_eq!(b.delta(a), 3 * 86_400);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn civil_round_trip(secs in -2_000_000_000i64..4_000_000_000i64) {
                let t = Timestamp(secs);
                let back = Timestamp::from_civil(t.to_civil()).unwrap();
                prop_assert_eq!(back, t);
            }

            #[test]
            fn parse_format_round_trip(secs in 0i64..4_000_000_000i64) {
                let t = Timestamp(secs);
                prop_assert_eq!(Timestamp::parse(&t.format()).unwrap(), t);
            }
        }
    }
}
