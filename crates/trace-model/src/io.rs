//! File I/O for Table-I trace logs.
//!
//! Real deployments exchange day-sized CSV files (the paper's feed is
//! ~10 GB/day); this module provides buffered whole-file and streaming
//! readers/writers over the [`crate::csv`] wire codec.

use crate::csv::{decode_record, encode_record, CsvError};
use crate::record::{Fleet, TaxiRecord};
use crate::stream::TraceLog;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Errors from trace-file operations.
#[derive(Debug)]
pub enum TraceFileError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// A record failed to encode (unknown taxi id).
    Encode(CsvError),
}

impl std::fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceFileError::Io(e) => write!(f, "trace file I/O: {e}"),
            TraceFileError::Encode(e) => write!(f, "trace encode: {e}"),
        }
    }
}

impl std::error::Error for TraceFileError {}

impl From<std::io::Error> for TraceFileError {
    fn from(e: std::io::Error) -> Self {
        TraceFileError::Io(e)
    }
}

/// Writes records to `path` in the Table-I CSV format, one per line.
pub fn write_trace_file(
    path: &Path,
    records: &[TaxiRecord],
    fleet: &Fleet,
) -> Result<(), TraceFileError> {
    let file = std::fs::File::create(path)?;
    let mut out = BufWriter::new(file);
    for r in records {
        let line = encode_record(r, fleet).map_err(TraceFileError::Encode)?;
        out.write_all(line.as_bytes())?;
        out.write_all(b"\n")?;
    }
    out.flush()?;
    Ok(())
}

/// Result of reading a trace file: the log, the fleet learned from it,
/// and any malformed lines as `(line_number, error)`.
pub type ReadOutcome = (TraceLog, Fleet, Vec<(usize, CsvError)>);

/// Reads a Table-I CSV file into a sorted [`TraceLog`], learning the fleet
/// from the plates it sees. Malformed lines are collected, not fatal.
pub fn read_trace_file(path: &Path) -> Result<ReadOutcome, TraceFileError> {
    let mut fleet = Fleet::new();
    let mut records = Vec::new();
    let mut errors = Vec::new();
    for (line_no, record) in TraceReader::open(path, &mut fleet)? {
        match record {
            Ok(r) => records.push(r),
            Err(e) => errors.push((line_no, e)),
        }
    }
    Ok((TraceLog::from_records(records), fleet, errors))
}

/// A streaming reader: yields `(line_number, Result<record>)` without
/// buffering the whole file, suitable for day-scale feeds.
pub struct TraceReader<'f, R: BufRead> {
    reader: R,
    fleet: &'f mut Fleet,
    line_no: usize,
    buf: String,
}

impl<'f> TraceReader<'f, BufReader<std::fs::File>> {
    /// Opens a file for streaming decode.
    pub fn open(path: &Path, fleet: &'f mut Fleet) -> Result<Self, TraceFileError> {
        let file = std::fs::File::open(path)?;
        Ok(TraceReader { reader: BufReader::new(file), fleet, line_no: 0, buf: String::new() })
    }
}

impl<'f, R: BufRead> TraceReader<'f, R> {
    /// Wraps any buffered reader (e.g. an in-memory cursor in tests).
    pub fn new(reader: R, fleet: &'f mut Fleet) -> Self {
        TraceReader { reader, fleet, line_no: 0, buf: String::new() }
    }
}

impl<R: BufRead> Iterator for TraceReader<'_, R> {
    type Item = (usize, Result<TaxiRecord, CsvError>);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            self.buf.clear();
            match self.reader.read_line(&mut self.buf) {
                Ok(0) => return None,
                Ok(_) => {
                    let line_no = self.line_no;
                    self.line_no += 1;
                    if self.buf.trim().is_empty() {
                        continue;
                    }
                    return Some((line_no, decode_record(&self.buf, self.fleet)));
                }
                Err(_) => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{GpsCondition, PassengerState, TaxiRecord};
    use crate::time::Timestamp;
    use crate::GeoPoint;
    use std::io::Cursor;

    fn sample_records(n: usize) -> (Vec<TaxiRecord>, Fleet) {
        let mut fleet = Fleet::new();
        let taxis = fleet.register_many(3);
        let records: Vec<TaxiRecord> = (0..n)
            .map(|k| TaxiRecord {
                taxi: taxis[k % 3],
                position: GeoPoint::new(22.5 + k as f64 * 1e-4, 114.05),
                time: Timestamp::civil(2014, 12, 5, 9, 0, 0).offset(k as i64 * 15),
                speed_kmh: (k % 50) as f64,
                heading_deg: (k * 37 % 360) as f64,
                gps: GpsCondition::Available,
                overspeed: false,
                passenger: if k % 2 == 0 {
                    PassengerState::Vacant
                } else {
                    PassengerState::Occupied
                },
            })
            .collect();
        (records, fleet)
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("taxilight-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn file_round_trip() {
        let (records, fleet) = sample_records(200);
        let path = temp_path("roundtrip.csv");
        write_trace_file(&path, &records, &fleet).unwrap();
        let (mut log, fleet2, errors) = read_trace_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(errors.is_empty());
        assert_eq!(log.len(), 200);
        assert_eq!(fleet2.len(), 3);
        // Spot-check a record after the sort.
        let any = log.records()[0];
        assert!(any.position.is_valid());
    }

    #[test]
    fn malformed_lines_are_collected() {
        let (records, fleet) = sample_records(5);
        let path = temp_path("malformed.csv");
        write_trace_file(&path, &records, &fleet).unwrap();
        // Append garbage.
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        writeln!(f, "not,a,record").unwrap();
        writeln!(f).unwrap();
        writeln!(f, "YB-1,bad_lon,22500000,2014-12-05 09:00:00,1,10.0,0.0,1,0,138,0,yellow")
            .unwrap();
        drop(f);
        let (log, _, errors) = read_trace_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(log.len(), 5);
        assert_eq!(errors.len(), 2);
        assert_eq!(errors[0].0, 5, "line numbers are 0-based and skip nothing");
    }

    #[test]
    fn streaming_reader_over_cursor() {
        let (records, fleet) = sample_records(10);
        let mut text = String::new();
        for r in &records {
            text.push_str(&crate::csv::encode_record(r, &fleet).unwrap());
            text.push('\n');
        }
        text.push('\n'); // trailing blank line is skipped
        let mut fleet2 = Fleet::new();
        let reader = TraceReader::new(Cursor::new(text), &mut fleet2);
        let decoded: Vec<_> = reader.collect();
        assert_eq!(decoded.len(), 10);
        assert!(decoded.iter().all(|(_, r)| r.is_ok()));
        assert_eq!(decoded.last().unwrap().0, 9);
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_trace_file(Path::new("/nonexistent/taxilight.csv")).unwrap_err();
        assert!(matches!(err, TraceFileError::Io(_)));
        assert!(err.to_string().contains("I/O"));
    }

    #[test]
    fn encode_error_propagates() {
        let (mut records, fleet) = sample_records(1);
        records[0].taxi = crate::record::TaxiId(99); // not in fleet
        let path = temp_path("encode-err.csv");
        let err = write_trace_file(&path, &records, &fleet).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, TraceFileError::Encode(_)));
    }
}
