//! # taxilight-trace
//!
//! The taxi-trace data model for the `taxilight` workspace: the exact
//! 12-field record format of the paper's Table I, calendar timestamps, geo
//! primitives (haversine distances, bearings, a local tangent-plane
//! projection), a CSV codec for the upload format, per-taxi trace streams,
//! and the fleet-level statistics of the paper's Fig. 2.
//!
//! Layering: this crate depends only on [`taxilight_signal`] (for summary
//! statistics/histograms) and is depended on by the road network, the
//! simulator and the identification pipeline.

#![warn(missing_docs)]

pub mod corrupt;
pub mod csv;
pub mod geo;
pub mod io;
pub mod privacy;
pub mod record;
pub mod source;
pub mod stats;
pub mod stream;
pub mod time;

pub use geo::GeoPoint;
pub use record::{BodyColor, Fleet, GpsCondition, PassengerState, TaxiId, TaxiInfo, TaxiRecord};
pub use source::{BadLine, CsvChunkReader, MemorySource, RecordBatch, RecordSource};
pub use stream::TraceLog;
pub use time::Timestamp;
