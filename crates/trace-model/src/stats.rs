//! Fleet-level trace statistics — the paper's Sec. II / Fig. 2 analysis.
//!
//! For the Shenzhen feed the paper reports: records cover all 24 h but are
//! unbalanced (Fig. 2a); per-taxi update intervals cluster at 15/30/60 s
//! with mean 20.41 s and σ 20.54 (Fig. 2b); 42.66 % of consecutive updates
//! show no movement — red-light waits — and moving taxis cover 50–500 m with
//! mean 100.69 m (Fig. 2c); consecutive speed differences fit `N(0, 40)`
//! (Fig. 2d). [`TraceStatistics::compute`] reproduces every one of those
//! numbers for any [`TraceLog`], and the simulator's acceptance tests pin
//! them against the paper's values.

use crate::stream::TraceLog;
use taxilight_signal::stats::{fit_normal, Summary};

/// Number of 10-minute slots in a day (Fig. 2a's x-axis).
pub const SLOTS_PER_DAY: usize = 144;

/// Consecutive updates closer than this are "stationary" (GPS jitter while
/// waiting at a light still moves the fix a few meters).
pub const STATIONARY_THRESHOLD_M: f64 = 10.0;

/// Records per 10-minute slot-of-day, aggregated across days (Fig. 2a).
pub fn records_per_slot(log: &mut TraceLog) -> [u64; SLOTS_PER_DAY] {
    let mut slots = [0u64; SLOTS_PER_DAY];
    for r in log.records() {
        slots[r.time.ten_minute_slot() as usize] += 1;
    }
    slots
}

/// Seconds between consecutive same-taxi updates (Fig. 2b).
pub fn update_intervals(log: &mut TraceLog) -> Vec<f64> {
    log.consecutive_pairs().map(|(a, b)| b.time.delta(a.time) as f64).collect()
}

/// Meters travelled between consecutive same-taxi updates (Fig. 2c).
pub fn update_distances(log: &mut TraceLog) -> Vec<f64> {
    log.consecutive_pairs().map(|(a, b)| a.position.distance_m(b.position)).collect()
}

/// Speed difference (km/h, later minus earlier) between consecutive
/// same-taxi updates (Fig. 2d). Positive = accelerating.
pub fn speed_diffs(log: &mut TraceLog) -> Vec<f64> {
    log.consecutive_pairs().map(|(a, b)| b.speed_kmh - a.speed_kmh).collect()
}

/// The Fig. 2 summary bundle.
#[derive(Debug, Clone)]
pub struct TraceStatistics {
    /// Total records analysed.
    pub record_count: usize,
    /// Distinct taxis.
    pub taxi_count: usize,
    /// Mean records per minute over the covered time range.
    pub records_per_minute: f64,
    /// Records per 10-minute slot-of-day (Fig. 2a).
    pub slot_counts: [u64; SLOTS_PER_DAY],
    /// Summary of consecutive-update intervals in seconds (Fig. 2b; paper:
    /// mean 20.41, σ 20.54).
    pub interval: Summary,
    /// Summary of consecutive-update travel distances in meters (Fig. 2c;
    /// paper: mean 100.69 m over moving pairs).
    pub moving_distance: Summary,
    /// Fraction of consecutive updates that are stationary (paper: 42.66 %).
    pub stationary_fraction: f64,
    /// `(μ, σ)` of the normal fit to speed differences (Fig. 2d; paper:
    /// μ = 0, σ = 40).
    pub speed_diff_normal: (f64, f64),
}

impl TraceStatistics {
    /// Computes the full Fig. 2 statistics bundle.
    pub fn compute(log: &mut TraceLog) -> TraceStatistics {
        let record_count = log.len();
        let taxi_count = log.taxi_count();
        let slot_counts = records_per_slot(log);
        let intervals = update_intervals(log);
        let distances = update_distances(log);
        let diffs = speed_diffs(log);

        let stationary = distances.iter().filter(|&&d| d < STATIONARY_THRESHOLD_M).count();
        let stationary_fraction =
            if distances.is_empty() { 0.0 } else { stationary as f64 / distances.len() as f64 };
        let moving: Vec<f64> =
            distances.iter().copied().filter(|&d| d >= STATIONARY_THRESHOLD_M).collect();

        let records_per_minute = match log.time_range() {
            Some((t0, t1)) if t1 > t0 => record_count as f64 / (t1.delta(t0) as f64 / 60.0),
            _ => 0.0,
        };

        TraceStatistics {
            record_count,
            taxi_count,
            records_per_minute,
            slot_counts,
            interval: Summary::of(&intervals),
            moving_distance: Summary::of(&moving),
            stationary_fraction,
            speed_diff_normal: fit_normal(&diffs).unwrap_or((0.0, 0.0)),
        }
    }

    /// Ratio of the busiest to the idlest *non-empty* slot — the imbalance
    /// the paper calls out in Fig. 2a / Table II. 1.0 when uniform, `None`
    /// when no records.
    pub fn slot_imbalance(&self) -> Option<f64> {
        let max = *self.slot_counts.iter().max()?;
        let min = self.slot_counts.iter().copied().filter(|&c| c > 0).min()?;
        if max == 0 {
            None
        } else {
            Some(max as f64 / min as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{GpsCondition, PassengerState, TaxiId, TaxiRecord};
    use crate::time::Timestamp;
    use crate::GeoPoint;

    fn rec(taxi: u32, time: Timestamp, pos: GeoPoint, speed: f64) -> TaxiRecord {
        TaxiRecord {
            taxi: TaxiId(taxi),
            position: pos,
            time,
            speed_kmh: speed,
            heading_deg: 0.0,
            gps: GpsCondition::Available,
            overspeed: false,
            passenger: PassengerState::Vacant,
        }
    }

    /// One taxi driving north at 36 km/h (10 m/s), reporting every 30 s,
    /// plus a second taxi parked the whole time.
    fn two_taxi_log() -> TraceLog {
        let origin = GeoPoint::new(22.547, 114.125);
        let t0 = Timestamp::civil(2014, 12, 5, 8, 0, 0);
        let mut records = Vec::new();
        for k in 0..20i64 {
            let pos = origin.destination(0.0, 300.0 * k as f64); // 10 m/s × 30 s
            records.push(rec(0, t0.offset(30 * k), pos, 36.0));
            records.push(rec(1, t0.offset(30 * k), origin, 0.0));
        }
        TraceLog::from_records(records)
    }

    #[test]
    fn intervals_match_reporting_period() {
        let mut log = two_taxi_log();
        let intervals = update_intervals(&mut log);
        assert_eq!(intervals.len(), 38); // 19 pairs per taxi
        assert!(intervals.iter().all(|&i| i == 30.0));
    }

    #[test]
    fn distances_separate_moving_from_stationary() {
        let mut log = two_taxi_log();
        let distances = update_distances(&mut log);
        let moving = distances.iter().filter(|&&d| d > 250.0).count();
        let parked = distances.iter().filter(|&&d| d < 1.0).count();
        assert_eq!(moving, 19);
        assert_eq!(parked, 19);
    }

    #[test]
    fn speed_diffs_zero_for_constant_speeds() {
        let mut log = two_taxi_log();
        let diffs = speed_diffs(&mut log);
        assert!(diffs.iter().all(|&d| d == 0.0));
    }

    #[test]
    fn slot_counts_land_in_morning_slot() {
        let mut log = two_taxi_log();
        let slots = records_per_slot(&mut log);
        // 08:00–08:09:59 is slot 48.
        assert_eq!(slots[48], 40);
        assert_eq!(slots.iter().sum::<u64>(), 40);
    }

    #[test]
    fn full_statistics_bundle() {
        let mut log = two_taxi_log();
        let stats = TraceStatistics::compute(&mut log);
        assert_eq!(stats.record_count, 40);
        assert_eq!(stats.taxi_count, 2);
        assert!((stats.interval.mean - 30.0).abs() < 1e-9);
        assert!(stats.interval.stddev < 1e-9);
        assert!((stats.stationary_fraction - 0.5).abs() < 1e-9);
        assert!((stats.moving_distance.mean - 300.0).abs() < 1.0);
        let (mu, sigma) = stats.speed_diff_normal;
        assert_eq!((mu, sigma), (0.0, 0.0));
        // 40 records over 570 s ≈ 4.2 records/min.
        assert!((stats.records_per_minute - 40.0 / 9.5).abs() < 0.01);
    }

    #[test]
    fn empty_log_statistics() {
        let mut log = TraceLog::new();
        let stats = TraceStatistics::compute(&mut log);
        assert_eq!(stats.record_count, 0);
        assert_eq!(stats.taxi_count, 0);
        assert_eq!(stats.records_per_minute, 0.0);
        assert_eq!(stats.stationary_fraction, 0.0);
        assert_eq!(stats.slot_imbalance(), None);
    }

    #[test]
    fn slot_imbalance_detects_skew() {
        let origin = GeoPoint::new(22.5, 114.1);
        let mut records = Vec::new();
        // 30 records at 08:00 hour slot, 2 records at 03:00.
        for k in 0..30i64 {
            records.push(rec(0, Timestamp::civil(2014, 5, 21, 8, 0, 0).offset(k), origin, 0.0));
        }
        for k in 0..2i64 {
            records.push(rec(0, Timestamp::civil(2014, 5, 21, 3, 0, 0).offset(k), origin, 0.0));
        }
        let mut log = TraceLog::from_records(records);
        let stats = TraceStatistics::compute(&mut log);
        assert_eq!(stats.slot_imbalance(), Some(15.0));
    }

    #[test]
    fn acceleration_sign_convention() {
        let origin = GeoPoint::new(22.5, 114.1);
        let t0 = Timestamp::civil(2014, 5, 21, 9, 0, 0);
        let mut log = TraceLog::from_records(vec![
            rec(0, t0, origin, 10.0),
            rec(0, t0.offset(30), origin, 25.0), // accelerating: +15
            rec(0, t0.offset(60), origin, 5.0),  // decelerating: -20
        ]);
        assert_eq!(speed_diffs(&mut log), vec![15.0, -20.0]);
    }
}
