//! Privacy utilities for trace sharing.
//!
//! The paper motivates taxi traces partly because high-frequency
//! smartphone collection "may raise user privacy … concerns"; even fleet
//! traces identify drivers through plates and fine-grained positions.
//! These helpers make a [`Fleet`]/trace pair shareable: keyed
//! pseudonymization of the identity fields and spatial cloaking of
//! positions. Both are deterministic so two parties holding the same key
//! produce linkable outputs.

use crate::record::{Fleet, TaxiRecord};
use crate::GeoPoint;

/// Keyed 64-bit mix (SplitMix64 over a simple byte fold) — NOT a
/// cryptographic primitive; it prevents casual re-identification, not a
/// determined adversary with auxiliary data.
fn keyed_hash(key: u64, bytes: &[u8]) -> u64 {
    let mut acc = key ^ 0x9E3779B97F4A7C15;
    for &b in bytes {
        acc = (acc ^ b as u64).wrapping_mul(0x100000001B3);
        acc ^= acc >> 29;
    }
    // Final avalanche.
    let mut z = acc.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Returns a fleet whose plates, device ids and SIM numbers are replaced
/// by key-derived pseudonyms. [`TaxiId`]s — and therefore all record
/// linkage — are preserved; body colours are kept (they are visible on
/// the street anyway).
///
/// [`TaxiId`]: crate::record::TaxiId
pub fn pseudonymize_fleet(fleet: &Fleet, key: u64) -> Fleet {
    let mut out = Fleet::new();
    for info in fleet.iter() {
        let h = keyed_hash(key, info.plate.as_bytes());
        let inserted = out.insert(
            &format!("ANON-{h:016x}"),
            (h >> 32) as u32,
            &format!("SIM-{:08x}", (h & 0xFFFF_FFFF) as u32),
            info.color,
        );
        // Pseudonyms are unique for distinct plates up to hash collisions;
        // a collision would silently merge identities, so fail loudly.
        assert!(inserted.is_some(), "pseudonym collision for {}", info.plate);
        assert_eq!(inserted.unwrap(), info.id, "fleet order must be preserved");
    }
    out
}

/// Snaps every record's position to the centre of a `grid_m`-sized cell
/// (spatial cloaking). Displacement is bounded by `grid_m·√2/2`.
///
/// # Panics
/// Panics when `grid_m` is not positive.
pub fn cloak_positions(records: &mut [TaxiRecord], grid_m: f64) {
    assert!(grid_m > 0.0, "grid size must be positive");
    // Degrees per meter at the records' latitude band. The reference
    // latitude is quantised to 0.1° bands so that all records in a band
    // share the exact same longitude grid — otherwise every record would
    // get its own grid and nothing would ever share a cell.
    for r in records.iter_mut() {
        let lat_step = grid_m / 111_195.0;
        let band_lat = (r.position.lat * 10.0).round() / 10.0;
        let lon_step = grid_m / (111_195.0 * band_lat.to_radians().cos().max(1e-6));
        let snap = |v: f64, step: f64| (v / step).floor() * step + step / 2.0;
        r.position = GeoPoint::new(snap(r.position.lat, lat_step), snap(r.position.lon, lon_step));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{GpsCondition, PassengerState, TaxiId};
    use crate::time::Timestamp;

    fn fleet(n: usize) -> Fleet {
        let mut f = Fleet::new();
        f.register_many(n);
        f
    }

    #[test]
    fn pseudonyms_preserve_ids_and_linkage() {
        let original = fleet(50);
        let anon = pseudonymize_fleet(&original, 42);
        assert_eq!(anon.len(), original.len());
        for info in original.iter() {
            let masked = anon.info(info.id).unwrap();
            assert_ne!(masked.plate, info.plate);
            assert!(masked.plate.starts_with("ANON-"));
            assert_ne!(masked.sim, info.sim);
            assert_eq!(masked.color, info.color);
            assert_eq!(masked.id, info.id);
        }
    }

    #[test]
    fn pseudonymization_is_keyed_and_deterministic() {
        let original = fleet(10);
        let a = pseudonymize_fleet(&original, 7);
        let b = pseudonymize_fleet(&original, 7);
        let c = pseudonymize_fleet(&original, 8);
        for info in original.iter() {
            assert_eq!(a.info(info.id).unwrap().plate, b.info(info.id).unwrap().plate);
            assert_ne!(a.info(info.id).unwrap().plate, c.info(info.id).unwrap().plate);
        }
    }

    #[test]
    fn cloaking_bounds_displacement_and_buckets() {
        let mut records: Vec<TaxiRecord> = (0..200)
            .map(|k| TaxiRecord {
                taxi: TaxiId(0),
                position: GeoPoint::new(22.5 + k as f64 * 1.7e-4, 114.0 + k as f64 * 2.3e-4),
                time: Timestamp(k as i64),
                speed_kmh: 10.0,
                heading_deg: 0.0,
                gps: GpsCondition::Available,
                overspeed: false,
                passenger: PassengerState::Vacant,
            })
            .collect();
        let originals: Vec<GeoPoint> = records.iter().map(|r| r.position).collect();
        cloak_positions(&mut records, 200.0);
        let mut distinct: Vec<(i64, i64)> =
            records.iter().map(|r| r.position.to_micro_degrees()).collect();
        distinct.sort_unstable();
        distinct.dedup();
        // Cloaking coarsens: many records share a cell centre.
        assert!(distinct.len() < records.len());
        for (r, orig) in records.iter().zip(&originals) {
            let d = r.position.distance_m(*orig);
            assert!(d <= 200.0 * std::f64::consts::SQRT_2 / 2.0 + 1.0, "moved {d} m");
        }
        // Determinism.
        let mut again: Vec<TaxiRecord> = records.clone();
        cloak_positions(&mut again, 200.0);
        for (a, b) in records.iter().zip(&again) {
            // Already-snapped positions stay put.
            assert!(a.position.distance_m(b.position) < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "grid size")]
    fn cloaking_rejects_zero_grid() {
        cloak_positions(&mut [], 0.0);
    }
}
