//! Uniform-grid spatial index over segments, backing the map-matching
//! nearest-segment query.
//!
//! Map matching (paper Sec. IV / Fig. 5) assigns each GPS fix to the
//! nearest road segment *whose orientation is compatible with the reported
//! driving direction*: a fix whose heading conflicts with the nearest
//! segment is matched to the next-nearest segment with the same
//! orientation (`v2 → m2`, not `m2'`). [`SegmentIndex::match_point`]
//! implements exactly that rule.

use crate::graph::{RoadNetwork, SegmentId};
use taxilight_trace::geo::{
    heading_difference, point_segment_distance_m, GeoPoint, LocalProjection,
};

/// Result of matching one GPS fix onto the network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentMatch {
    /// The matched segment.
    pub segment: SegmentId,
    /// Perpendicular distance from the fix to the segment, meters.
    pub distance_m: f64,
    /// Position along the segment, `0` at `from`, `1` at `to`.
    pub along: f64,
}

/// A uniform grid over the network's bounding box indexing segments by the
/// cells their geometry passes through.
#[derive(Debug, Clone)]
pub struct SegmentIndex {
    proj: LocalProjection,
    cell_m: f64,
    cols: usize,
    rows: usize,
    min_x: f64,
    min_y: f64,
    cells: Vec<Vec<SegmentId>>,
}

impl SegmentIndex {
    /// Builds the index with the given cell size (meters). 250 m works well
    /// for city blocks.
    ///
    /// # Panics
    /// Panics when the network has no nodes or `cell_m` is not positive.
    pub fn build(net: &RoadNetwork, cell_m: f64) -> Self {
        assert!(cell_m > 0.0, "cell size must be positive");
        let (min, max) = net.bounding_box().expect("cannot index an empty network");
        let centre = GeoPoint::new((min.lat + max.lat) / 2.0, (min.lon + max.lon) / 2.0);
        let proj = LocalProjection::new(centre);
        let (x0, y0) = proj.project(min);
        let (x1, y1) = proj.project(max);
        // One cell of margin on every side so boundary fixes still index.
        let min_x = x0 - cell_m;
        let min_y = y0 - cell_m;
        let cols = (((x1 - min_x) / cell_m).ceil() as usize + 2).max(1);
        let rows = (((y1 - min_y) / cell_m).ceil() as usize + 2).max(1);
        let mut index = SegmentIndex {
            proj,
            cell_m,
            cols,
            rows,
            min_x,
            min_y,
            cells: vec![Vec::new(); cols * rows],
        };
        for seg in net.segments() {
            let a = net.node(seg.from).position;
            let b = net.node(seg.to).position;
            index.insert_segment(seg.id, a, b);
        }
        index
    }

    fn cell_of(&self, x: f64, y: f64) -> Option<usize> {
        let cx = ((x - self.min_x) / self.cell_m).floor();
        let cy = ((y - self.min_y) / self.cell_m).floor();
        if cx < 0.0 || cy < 0.0 {
            return None;
        }
        let (cx, cy) = (cx as usize, cy as usize);
        if cx >= self.cols || cy >= self.rows {
            return None;
        }
        Some(cy * self.cols + cx)
    }

    fn insert_segment(&mut self, id: SegmentId, a: GeoPoint, b: GeoPoint) {
        // Walk the segment in half-cell steps, inserting into every cell
        // touched (dedup at insertion since steps may revisit a cell).
        let (ax, ay) = self.proj.project(a);
        let (bx, by) = self.proj.project(b);
        let len = ((bx - ax).powi(2) + (by - ay).powi(2)).sqrt();
        let steps = ((len / (self.cell_m / 2.0)).ceil() as usize).max(1);
        let mut last_cell = usize::MAX;
        for k in 0..=steps {
            let t = k as f64 / steps as f64;
            let x = ax + (bx - ax) * t;
            let y = ay + (by - ay) * t;
            if let Some(cell) = self.cell_of(x, y) {
                if cell != last_cell && !self.cells[cell].contains(&id) {
                    self.cells[cell].push(id);
                    last_cell = cell;
                }
            }
        }
    }

    /// Candidate segments near `p` within `radius_m` (conservative: the
    /// cells overlapping the search disc).
    pub fn candidates(&self, p: GeoPoint, radius_m: f64) -> Vec<SegmentId> {
        let (x, y) = self.proj.project(p);
        let r = radius_m.max(0.0);
        let lo_cx = ((x - r - self.min_x) / self.cell_m).floor().max(0.0) as usize;
        let hi_cx = (((x + r - self.min_x) / self.cell_m).floor().max(0.0) as usize)
            .min(self.cols.saturating_sub(1));
        let lo_cy = ((y - r - self.min_y) / self.cell_m).floor().max(0.0) as usize;
        let hi_cy = (((y + r - self.min_y) / self.cell_m).floor().max(0.0) as usize)
            .min(self.rows.saturating_sub(1));
        let mut out = Vec::new();
        if lo_cx > hi_cx || lo_cy > hi_cy {
            return out;
        }
        for cy in lo_cy..=hi_cy {
            for cx in lo_cx..=hi_cx {
                for &id in &self.cells[cy * self.cols + cx] {
                    if !out.contains(&id) {
                        out.push(id);
                    }
                }
            }
        }
        out
    }

    /// Nearest segment to `p` within `radius_m`, regardless of heading.
    pub fn nearest_segment(
        &self,
        net: &RoadNetwork,
        p: GeoPoint,
        radius_m: f64,
    ) -> Option<SegmentMatch> {
        self.best_match(net, p, radius_m, None)
    }

    /// The paper's map-matching rule: nearest segment whose orientation is
    /// within `max_heading_diff_deg` of the reported `heading_deg`;
    /// segments with conflicting orientation are skipped even when nearer.
    pub fn match_point(
        &self,
        net: &RoadNetwork,
        p: GeoPoint,
        heading_deg: f64,
        radius_m: f64,
        max_heading_diff_deg: f64,
    ) -> Option<SegmentMatch> {
        self.best_match(net, p, radius_m, Some((heading_deg, max_heading_diff_deg)))
    }

    fn best_match(
        &self,
        net: &RoadNetwork,
        p: GeoPoint,
        radius_m: f64,
        heading: Option<(f64, f64)>,
    ) -> Option<SegmentMatch> {
        let mut best: Option<SegmentMatch> = None;
        for id in self.candidates(p, radius_m) {
            let seg = net.segment(id);
            if let Some((h, max_diff)) = heading {
                if heading_difference(seg.heading_deg, h) > max_diff {
                    continue;
                }
            }
            let a = net.node(seg.from).position;
            let b = net.node(seg.to).position;
            let (d, t) = point_segment_distance_m(p, a, b);
            if d > radius_m {
                continue;
            }
            if best.is_none_or(|m| d < m.distance_m) {
                best = Some(SegmentMatch { segment: id, distance_m: d, along: t });
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeId;

    /// Two parallel one-way eastbound/westbound roads 60 m apart, plus one
    /// northbound cross street — enough structure for the Fig. 5 scenario.
    fn fig5_network() -> (RoadNetwork, SegmentId, SegmentId, SegmentId) {
        let origin = GeoPoint::new(22.547, 114.125);
        let mut net = RoadNetwork::new();
        // Eastbound road (heading 90°) at y = 0.
        let a = net.add_node(origin);
        let b = net.add_node(origin.destination(90.0, 1000.0));
        let east = net.add_segment(a, b, 50.0);
        // Westbound road (heading 270°) 60 m north.
        let c = net.add_node(origin.destination(0.0, 60.0).destination(90.0, 1000.0));
        let d = net.add_node(origin.destination(0.0, 60.0));
        let west = net.add_segment(c, d, 50.0);
        // Northbound cross street at x = 500 m, starting 200 m south.
        let e = net.add_node(origin.destination(90.0, 500.0).destination(180.0, 200.0));
        let f = net.add_node(origin.destination(90.0, 500.0).destination(0.0, 300.0));
        let north = net.add_segment(e, f, 50.0);
        (net, east, west, north)
    }

    #[test]
    fn nearest_without_heading_is_geometric() {
        let (net, east, _, _) = fig5_network();
        let index = SegmentIndex::build(&net, 250.0);
        // 10 m north of the eastbound road, 300 m along.
        let p = GeoPoint::new(22.547, 114.125).destination(90.0, 300.0).destination(0.0, 10.0);
        let m = index.nearest_segment(&net, p, 100.0).unwrap();
        assert_eq!(m.segment, east);
        assert!((m.distance_m - 10.0).abs() < 1.0);
        assert!((m.along - 0.3).abs() < 0.01);
    }

    #[test]
    fn heading_conflict_skips_nearest_segment() {
        let (net, east, west, _) = fig5_network();
        let index = SegmentIndex::build(&net, 250.0);
        // A fix 20 m *north* of the westbound road (so the westbound road is
        // nearest) but the taxi reports heading east → must match eastbound.
        let p = GeoPoint::new(22.547, 114.125).destination(90.0, 300.0).destination(0.0, 55.0);
        let unconstrained = index.nearest_segment(&net, p, 200.0).unwrap();
        assert_eq!(unconstrained.segment, west);
        let eastbound = index.match_point(&net, p, 88.0, 200.0, 45.0).unwrap();
        assert_eq!(eastbound.segment, east);
        let westbound = index.match_point(&net, p, 272.0, 200.0, 45.0).unwrap();
        assert_eq!(westbound.segment, west);
    }

    #[test]
    fn cross_street_matched_by_heading() {
        let (net, _, _, north) = fig5_network();
        let index = SegmentIndex::build(&net, 250.0);
        // Near the crossing, heading north.
        let p = GeoPoint::new(22.547, 114.125).destination(90.0, 505.0);
        let m = index.match_point(&net, p, 2.0, 150.0, 45.0).unwrap();
        assert_eq!(m.segment, north);
    }

    #[test]
    fn out_of_radius_returns_none() {
        let (net, _, _, _) = fig5_network();
        let index = SegmentIndex::build(&net, 250.0);
        let far = GeoPoint::new(22.547, 114.125).destination(0.0, 5_000.0);
        assert!(index.nearest_segment(&net, far, 100.0).is_none());
        // And with an impossible heading constraint.
        let p = GeoPoint::new(22.547, 114.125).destination(0.0, 5.0);
        assert!(index.match_point(&net, p, 45.0, 100.0, 10.0).is_none());
    }

    #[test]
    fn candidates_cover_long_segments() {
        let (net, east, _, _) = fig5_network();
        let index = SegmentIndex::build(&net, 100.0);
        // Query in the middle of the 1 km eastbound segment: the segment
        // must be indexed there, not just at its endpoints.
        let mid = GeoPoint::new(22.547, 114.125).destination(90.0, 500.0);
        assert!(index.candidates(mid, 50.0).contains(&east));
    }

    #[test]
    #[should_panic(expected = "empty network")]
    fn empty_network_rejected() {
        SegmentIndex::build(&RoadNetwork::new(), 100.0);
    }

    #[test]
    #[should_panic(expected = "cell size must be positive")]
    fn bad_cell_size_rejected() {
        let mut net = RoadNetwork::new();
        let a = net.add_node(GeoPoint::new(22.5, 114.1));
        let b = net.add_node(GeoPoint::new(22.51, 114.1));
        net.add_segment(a, b, 50.0);
        SegmentIndex::build(&net, 0.0);
    }

    #[test]
    fn single_node_network_indexes() {
        // Degenerate but legal: one node, no segments.
        let mut net = RoadNetwork::new();
        net.add_node(GeoPoint::new(22.5, 114.1));
        let index = SegmentIndex::build(&net, 100.0);
        assert!(index.candidates(GeoPoint::new(22.5, 114.1), 50.0).is_empty());
    }

    #[test]
    fn matches_are_stable_under_index_granularity() {
        let (net, _, _, _) = fig5_network();
        let coarse = SegmentIndex::build(&net, 500.0);
        let fine = SegmentIndex::build(&net, 50.0);
        let probes = [
            GeoPoint::new(22.547, 114.125).destination(90.0, 123.0).destination(0.0, 7.0),
            GeoPoint::new(22.547, 114.125).destination(90.0, 700.0).destination(0.0, 40.0),
            GeoPoint::new(22.547, 114.125).destination(90.0, 505.0).destination(180.0, 100.0),
        ];
        for p in probes {
            let a = coarse.nearest_segment(&net, p, 150.0);
            let b = fine.nearest_segment(&net, p, 150.0);
            assert_eq!(a.map(|m| m.segment), b.map(|m| m.segment));
        }
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            #[test]
            fn index_agrees_with_brute_force(east_m in 0.0f64..1000.0,
                                             north_m in -150.0f64..200.0,
                                             radius in 20.0f64..400.0) {
                let (net, _, _, _) = fig5_network();
                let index = SegmentIndex::build(&net, 150.0);
                let p = GeoPoint::new(22.547, 114.125)
                    .destination(90.0, east_m)
                    .destination(0.0, north_m);
                // Brute force over all segments.
                let mut best: Option<(SegmentId, f64)> = None;
                for seg in net.segments() {
                    let a = net.node(seg.from).position;
                    let b = net.node(seg.to).position;
                    let (d, _) = taxilight_trace::geo::point_segment_distance_m(p, a, b);
                    if d <= radius && best.is_none_or(|(_, bd)| d < bd) {
                        best = Some((seg.id, d));
                    }
                }
                let got = index.nearest_segment(&net, p, radius);
                match (best, got) {
                    (None, None) => {}
                    (Some((id, d)), Some(m)) => {
                        prop_assert_eq!(id, m.segment);
                        prop_assert!((d - m.distance_m).abs() < 1e-6);
                    }
                    (a, b) => prop_assert!(false, "mismatch: {:?} vs {:?}", a, b),
                }
            }
        }
    }

    // Silence an unused-import lint in non-test builds of this module tree.
    #[allow(dead_code)]
    fn _use(_: NodeId) {}
}
