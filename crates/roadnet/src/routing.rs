//! Free-flow shortest-path routing (Dijkstra).
//!
//! The taxi simulator routes vehicles between random endpoints, and the
//! navigation experiment's conventional baseline is "shortest-time
//! navigation considering only traffic speed" — both are plain Dijkstra
//! over free-flow segment times. Light-aware routing (the paper's
//! contribution demo) lives in `taxilight-navsim` on top of this.

use crate::graph::{NodeId, RoadNetwork, SegmentId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A routed path.
#[derive(Debug, Clone, PartialEq)]
pub struct Route {
    /// Segments in travel order.
    pub segments: Vec<SegmentId>,
    /// Nodes visited, starting at the origin (`segments.len() + 1` entries).
    pub nodes: Vec<NodeId>,
    /// Total free-flow time, seconds.
    pub time_s: f64,
    /// Total length, meters.
    pub length_m: f64,
}

#[derive(Debug, PartialEq)]
struct HeapEntry {
    cost: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by cost.
        other.cost.total_cmp(&self.cost)
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Shortest free-flow-time route from `from` to `to`; `None` when
/// unreachable. `from == to` yields an empty route.
pub fn shortest_time_route(net: &RoadNetwork, from: NodeId, to: NodeId) -> Option<Route> {
    let n = net.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<SegmentId>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[from.0 as usize] = 0.0;
    heap.push(HeapEntry { cost: 0.0, node: from });

    while let Some(HeapEntry { cost, node }) = heap.pop() {
        if node == to {
            break;
        }
        if cost > dist[node.0 as usize] {
            continue; // stale entry
        }
        for &seg_id in net.out_of(node) {
            let seg = net.segment(seg_id);
            let next = seg.to;
            let next_cost = cost + seg.free_flow_time_s();
            if next_cost < dist[next.0 as usize] {
                dist[next.0 as usize] = next_cost;
                prev[next.0 as usize] = Some(seg_id);
                heap.push(HeapEntry { cost: next_cost, node: next });
            }
        }
    }

    if dist[to.0 as usize].is_infinite() {
        return None;
    }

    // Reconstruct.
    let mut segments = Vec::new();
    let mut nodes = vec![to];
    let mut cursor = to;
    while cursor != from {
        let seg_id = prev[cursor.0 as usize].expect("reached node must have a predecessor");
        segments.push(seg_id);
        cursor = net.segment(seg_id).from;
        nodes.push(cursor);
    }
    segments.reverse();
    nodes.reverse();
    let length_m = segments.iter().map(|&s| net.segment(s).length_m).sum();
    Some(Route { segments, nodes, time_s: dist[to.0 as usize], length_m })
}

/// Shortest free-flow times from `from` to every node (`INFINITY` when
/// unreachable).
pub fn shortest_times_from(net: &RoadNetwork, from: NodeId) -> Vec<f64> {
    let n = net.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut heap = BinaryHeap::new();
    dist[from.0 as usize] = 0.0;
    heap.push(HeapEntry { cost: 0.0, node: from });
    while let Some(HeapEntry { cost, node }) = heap.pop() {
        if cost > dist[node.0 as usize] {
            continue;
        }
        for &seg_id in net.out_of(node) {
            let seg = net.segment(seg_id);
            let next_cost = cost + seg.free_flow_time_s();
            if next_cost < dist[seg.to.0 as usize] {
                dist[seg.to.0 as usize] = next_cost;
                heap.push(HeapEntry { cost: next_cost, node: seg.to });
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{grid_city, GridConfig};
    use taxilight_trace::geo::GeoPoint;

    fn city() -> crate::generators::GeneratedCity {
        grid_city(&GridConfig { rows: 4, cols: 4, spacing_m: 1000.0, ..GridConfig::default() })
    }

    #[test]
    fn route_to_self_is_empty() {
        let city = city();
        let n = city.node(0, 0);
        let r = shortest_time_route(&city.net, n, n).unwrap();
        assert!(r.segments.is_empty());
        assert_eq!(r.nodes, vec![n]);
        assert_eq!(r.time_s, 0.0);
        assert_eq!(r.length_m, 0.0);
    }

    #[test]
    fn manhattan_route_has_expected_length() {
        let city = city();
        let r = shortest_time_route(&city.net, city.node(0, 0), city.node(3, 3)).unwrap();
        // 6 blocks of 1 km each.
        assert_eq!(r.segments.len(), 6);
        assert!((r.length_m - 6_000.0).abs() < 10.0);
        // 6 km at 50 km/h.
        assert!((r.time_s - 6_000.0 / (50.0 / 3.6)).abs() < 1.0);
        // Nodes chain matches segments.
        assert_eq!(r.nodes.len(), 7);
        for (k, &seg_id) in r.segments.iter().enumerate() {
            let seg = city.net.segment(seg_id);
            assert_eq!(seg.from, r.nodes[k]);
            assert_eq!(seg.to, r.nodes[k + 1]);
        }
    }

    #[test]
    fn route_is_optimal_among_alternatives() {
        let city = city();
        let r = shortest_time_route(&city.net, city.node(0, 0), city.node(0, 3)).unwrap();
        assert_eq!(r.segments.len(), 3);
        assert!((r.length_m - 3_000.0).abs() < 5.0);
    }

    #[test]
    fn unreachable_returns_none() {
        // Two disconnected components.
        let mut net = RoadNetwork::new();
        let a = net.add_node(GeoPoint::new(22.5, 114.0));
        let b = net.add_node(GeoPoint::new(22.51, 114.0));
        net.add_segment(a, b, 50.0);
        let c = net.add_node(GeoPoint::new(22.6, 114.2));
        let d = net.add_node(GeoPoint::new(22.61, 114.2));
        net.add_segment(c, d, 50.0);
        assert!(shortest_time_route(&net, a, c).is_none());
        // One-way street: b → a is unreachable.
        assert!(shortest_time_route(&net, b, a).is_none());
    }

    #[test]
    fn respects_one_way_directions() {
        let mut net = RoadNetwork::new();
        let a = net.add_node(GeoPoint::new(22.5, 114.0));
        let b = net.add_node(GeoPoint::new(22.509, 114.0));
        let c = net.add_node(GeoPoint::new(22.509, 114.009));
        // a→b one-way, b→c one-way, and a long way back c→a.
        net.add_segment(a, b, 50.0);
        net.add_segment(b, c, 50.0);
        net.add_segment(c, a, 50.0);
        let r = shortest_time_route(&net, a, c).unwrap();
        assert_eq!(r.segments.len(), 2);
        let back = shortest_time_route(&net, c, a).unwrap();
        assert_eq!(back.segments.len(), 1);
    }

    #[test]
    fn faster_roads_win_over_shorter() {
        // Two parallel paths a→b: direct slow (40 km/h, 1000 m) vs detour
        // fast (100 km/h, 700+700 m).
        let mut net = RoadNetwork::new();
        let origin = GeoPoint::new(22.5, 114.0);
        let a = net.add_node(origin);
        let b = net.add_node(origin.destination(90.0, 1000.0));
        let mid = net.add_node(origin.destination(90.0, 500.0).destination(0.0, 480.0));
        net.add_segment(a, b, 40.0); // 90 s
        net.add_segment(a, mid, 100.0);
        net.add_segment(mid, b, 100.0); // ≈ 2×693 m at 100 km/h ≈ 50 s
        let r = shortest_time_route(&net, a, b).unwrap();
        assert_eq!(r.segments.len(), 2, "should take the fast detour");
    }

    #[test]
    fn all_pairs_times_match_point_queries() {
        let city = city();
        let from = city.node(1, 1);
        let dist = shortest_times_from(&city.net, from);
        for r in 0..4 {
            for c in 0..4 {
                let to = city.node(r, c);
                let direct = shortest_time_route(&city.net, from, to).unwrap();
                assert!(
                    (dist[to.0 as usize] - direct.time_s).abs() < 1e-9,
                    "mismatch at ({r},{c})"
                );
            }
        }
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]
            #[test]
            fn triangle_inequality_on_grid(r1 in 0usize..4, c1 in 0usize..4,
                                           r2 in 0usize..4, c2 in 0usize..4,
                                           r3 in 0usize..4, c3 in 0usize..4) {
                let city = city();
                let (a, b, c) = (city.node(r1, c1), city.node(r2, c2), city.node(r3, c3));
                let ab = shortest_time_route(&city.net, a, b).unwrap().time_s;
                let bc = shortest_time_route(&city.net, b, c).unwrap().time_s;
                let ac = shortest_time_route(&city.net, a, c).unwrap().time_s;
                prop_assert!(ac <= ab + bc + 1e-6);
            }

            #[test]
            fn route_time_equals_segment_sum(r1 in 0usize..4, c1 in 0usize..4,
                                             r2 in 0usize..4, c2 in 0usize..4) {
                let city = city();
                let route = shortest_time_route(&city.net, city.node(r1, c1), city.node(r2, c2)).unwrap();
                let sum: f64 = route.segments.iter()
                    .map(|&s| city.net.segment(s).free_flow_time_s())
                    .sum();
                prop_assert!((route.time_s - sum).abs() < 1e-9);
            }
        }
    }
}
