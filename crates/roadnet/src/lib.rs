//! # taxilight-roadnet
//!
//! The road-network substrate standing in for the paper's OpenStreetMap
//! layer: a directed road graph with per-segment geometry
//! ([`graph`]), signalized intersections whose approach lights are the
//! partitioning targets of the identification pipeline, a uniform-grid
//! spatial index for the nearest-segment queries map matching needs
//! ([`spatial`]), synthetic city generators ([`generators`]), and free-flow
//! Dijkstra routing used by the taxi simulator ([`routing`]).

#![warn(missing_docs)]

pub mod generators;
pub mod geojson;
pub mod graph;
pub mod io;
pub mod routing;
pub mod spatial;

pub use graph::{
    ApproachLight, Intersection, IntersectionId, LightId, Node, NodeId, RoadNetwork, Segment,
    SegmentId,
};
pub use spatial::SegmentIndex;
