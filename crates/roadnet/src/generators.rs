//! Synthetic city generators.
//!
//! The paper's substrate is the Shenzhen road network from OpenStreetMap;
//! we generate networks with the same structural features instead: a
//! regular Manhattan grid (also the topology of the paper's Fig. 15
//! navigation experiment) and an irregular "Shenzhen-like" variant with
//! jittered geometry, mixed road classes and missing links.
#![allow(clippy::needless_range_loop)] // (row, col) index pairs read clearer than zipped iterators here

use crate::graph::{IntersectionId, NodeId, RoadNetwork};
use taxilight_trace::geo::GeoPoint;

/// Default origin: Shenzhen city centre, near the paper's Table-II
/// intersections.
pub const SHENZHEN_ORIGIN: GeoPoint = GeoPoint::new(22.53, 114.05);

/// Configuration for [`grid_city`].
#[derive(Debug, Clone, Copy)]
pub struct GridConfig {
    /// Number of east-west streets.
    pub rows: usize,
    /// Number of north-south streets.
    pub cols: usize,
    /// Block edge length in meters.
    pub spacing_m: f64,
    /// South-west corner of the grid.
    pub origin: GeoPoint,
    /// Speed limit applied to every street, km/h.
    pub speed_limit_kmh: f64,
    /// When true every node (including the boundary) is signalized;
    /// otherwise only interior nodes get lights.
    pub signalize_boundary: bool,
}

impl Default for GridConfig {
    fn default() -> Self {
        GridConfig {
            rows: 4,
            cols: 4,
            spacing_m: 1_000.0,
            origin: SHENZHEN_ORIGIN,
            speed_limit_kmh: 50.0,
            signalize_boundary: false,
        }
    }
}

/// A generated city plus bookkeeping that the simulator and experiments
/// need: which node sits at each `(row, col)` and the signalized
/// intersections in grid order.
#[derive(Debug, Clone)]
pub struct GeneratedCity {
    /// The network.
    pub net: RoadNetwork,
    /// `node_at[row][col]` (row 0 = southernmost).
    pub node_at: Vec<Vec<NodeId>>,
    /// Signalized intersections in creation (row-major) order.
    pub intersections: Vec<IntersectionId>,
}

impl GeneratedCity {
    /// Node at grid coordinates.
    ///
    /// # Panics
    /// Panics when out of range.
    pub fn node(&self, row: usize, col: usize) -> NodeId {
        self.node_at[row][col]
    }
}

/// Generates a rows×cols Manhattan grid of two-way streets.
///
/// # Panics
/// Panics when `rows` or `cols` is < 2 or spacing is not positive.
pub fn grid_city(cfg: &GridConfig) -> GeneratedCity {
    assert!(cfg.rows >= 2 && cfg.cols >= 2, "grid needs at least 2×2 nodes");
    assert!(cfg.spacing_m > 0.0, "spacing must be positive");
    let mut net = RoadNetwork::new();
    let mut node_at = Vec::with_capacity(cfg.rows);
    for r in 0..cfg.rows {
        let mut row_nodes = Vec::with_capacity(cfg.cols);
        for c in 0..cfg.cols {
            let pos = cfg
                .origin
                .destination(0.0, cfg.spacing_m * r as f64)
                .destination(90.0, cfg.spacing_m * c as f64);
            row_nodes.push(net.add_node(pos));
        }
        node_at.push(row_nodes);
    }
    for r in 0..cfg.rows {
        for c in 0..cfg.cols {
            if c + 1 < cfg.cols {
                net.add_two_way(node_at[r][c], node_at[r][c + 1], cfg.speed_limit_kmh);
            }
            if r + 1 < cfg.rows {
                net.add_two_way(node_at[r][c], node_at[r + 1][c], cfg.speed_limit_kmh);
            }
        }
    }
    let mut intersections = Vec::new();
    for r in 0..cfg.rows {
        for c in 0..cfg.cols {
            let interior = r > 0 && r + 1 < cfg.rows && c > 0 && c + 1 < cfg.cols;
            if interior || cfg.signalize_boundary {
                intersections.push(net.signalize(node_at[r][c]));
            }
        }
    }
    GeneratedCity { net, node_at, intersections }
}

/// Configuration for [`irregular_city`].
#[derive(Debug, Clone, Copy)]
pub struct IrregularConfig {
    /// Underlying grid dimensions.
    pub rows: usize,
    /// Underlying grid dimensions.
    pub cols: usize,
    /// Mean block edge length in meters.
    pub spacing_m: f64,
    /// South-west corner.
    pub origin: GeoPoint,
    /// Positional jitter as a fraction of spacing (0 = regular grid).
    pub jitter: f64,
    /// Fraction of interior links to delete (creates irregular topology).
    pub missing_link_fraction: f64,
    /// Every `arterial_every`-th row/column becomes a faster arterial.
    pub arterial_every: usize,
    /// Arterial speed limit, km/h.
    pub arterial_kmh: f64,
    /// Minor street speed limit, km/h.
    pub minor_kmh: f64,
}

impl Default for IrregularConfig {
    fn default() -> Self {
        IrregularConfig {
            rows: 6,
            cols: 6,
            spacing_m: 700.0,
            origin: SHENZHEN_ORIGIN,
            jitter: 0.15,
            missing_link_fraction: 0.1,
            arterial_every: 3,
            arterial_kmh: 60.0,
            minor_kmh: 40.0,
        }
    }
}

/// A tiny deterministic xorshift generator so the crate stays free of the
/// `rand` dependency in non-dev builds; city generation must be
/// reproducible from a seed.
#[derive(Debug, Clone)]
pub(crate) struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    pub(crate) fn new(seed: u64) -> Self {
        XorShift64 { state: seed.max(1) }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// Uniform in `[0, 1)`.
    pub(crate) fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Generates an irregular city: jittered node positions, mixed road
/// classes, and a fraction of missing links. Deterministic in `seed`.
///
/// Connectivity note: links are only removed when both endpoints retain at
/// least two remaining incident roads, which keeps the network connected
/// for every seed exercised in the tests; taxi routing still tolerates
/// unreachable pairs by resampling.
pub fn irregular_city(cfg: &IrregularConfig, seed: u64) -> GeneratedCity {
    assert!(cfg.rows >= 2 && cfg.cols >= 2, "grid needs at least 2×2 nodes");
    assert!((0.0..0.5).contains(&cfg.jitter), "jitter must be in [0, 0.5)");
    assert!(
        (0.0..0.5).contains(&cfg.missing_link_fraction),
        "missing_link_fraction must be in [0, 0.5)"
    );
    let mut rng = XorShift64::new(seed);
    let mut net = RoadNetwork::new();
    let mut node_at = Vec::with_capacity(cfg.rows);
    for r in 0..cfg.rows {
        let mut row_nodes = Vec::with_capacity(cfg.cols);
        for c in 0..cfg.cols {
            let jx = (rng.next_f64() - 0.5) * 2.0 * cfg.jitter * cfg.spacing_m;
            let jy = (rng.next_f64() - 0.5) * 2.0 * cfg.jitter * cfg.spacing_m;
            let pos = cfg
                .origin
                .destination(0.0, cfg.spacing_m * r as f64 + jy)
                .destination(90.0, cfg.spacing_m * c as f64 + jx);
            row_nodes.push(net.add_node(pos));
        }
        node_at.push(row_nodes);
    }

    // Candidate links with their road class.
    let arterial = |i: usize| cfg.arterial_every > 0 && i % cfg.arterial_every == 0;
    let mut links: Vec<(NodeId, NodeId, f64)> = Vec::new();
    for r in 0..cfg.rows {
        for c in 0..cfg.cols {
            if c + 1 < cfg.cols {
                let kmh = if arterial(r) { cfg.arterial_kmh } else { cfg.minor_kmh };
                links.push((node_at[r][c], node_at[r][c + 1], kmh));
            }
            if r + 1 < cfg.rows {
                let kmh = if arterial(c) { cfg.arterial_kmh } else { cfg.minor_kmh };
                links.push((node_at[r][c], node_at[r + 1][c], kmh));
            }
        }
    }

    // Decide deletions while tracking remaining degree.
    let mut degree = vec![0usize; cfg.rows * cfg.cols];
    for &(a, b, _) in &links {
        degree[a.0 as usize] += 1;
        degree[b.0 as usize] += 1;
    }
    let mut kept = Vec::with_capacity(links.len());
    for (a, b, kmh) in links {
        let removable = degree[a.0 as usize] > 2 && degree[b.0 as usize] > 2;
        if removable && rng.next_f64() < cfg.missing_link_fraction {
            degree[a.0 as usize] -= 1;
            degree[b.0 as usize] -= 1;
        } else {
            kept.push((a, b, kmh));
        }
    }
    for (a, b, kmh) in kept {
        net.add_two_way(a, b, kmh);
    }

    let mut intersections = Vec::new();
    for r in 0..cfg.rows {
        for c in 0..cfg.cols {
            let node = node_at[r][c];
            // Signalize real junctions: at least 3 incident roads.
            if net.into_node(node).len() >= 3 {
                intersections.push(net.signalize(node));
            }
        }
    }
    GeneratedCity { net, node_at, intersections }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_city_counts() {
        let city = grid_city(&GridConfig { rows: 4, cols: 5, ..GridConfig::default() });
        assert_eq!(city.net.node_count(), 20);
        // Links: 4 rows × 4 horizontal + 3 vertical × 5 cols = 31 two-way = 62 segments.
        assert_eq!(city.net.segment_count(), 62);
        // Interior nodes: 2 × 3 = 6 intersections, each with 4 approaches.
        assert_eq!(city.intersections.len(), 6);
        assert_eq!(city.net.light_count(), 24);
    }

    #[test]
    fn grid_city_boundary_signalization() {
        let city = grid_city(&GridConfig {
            rows: 3,
            cols: 3,
            signalize_boundary: true,
            ..GridConfig::default()
        });
        assert_eq!(city.intersections.len(), 9);
        // Corner nodes have 2 approaches, edges 3, centre 4: 4·2+4·3+1·4 = 24.
        assert_eq!(city.net.light_count(), 24);
    }

    #[test]
    fn grid_spacing_is_respected() {
        let cfg = GridConfig { rows: 3, cols: 3, spacing_m: 800.0, ..GridConfig::default() };
        let city = grid_city(&cfg);
        let a = city.net.node(city.node(0, 0)).position;
        let b = city.net.node(city.node(0, 1)).position;
        let c = city.net.node(city.node(1, 0)).position;
        assert!((a.distance_m(b) - 800.0).abs() < 1.0);
        assert!((a.distance_m(c) - 800.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "at least 2×2")]
    fn tiny_grid_rejected() {
        grid_city(&GridConfig { rows: 1, cols: 5, ..GridConfig::default() });
    }

    #[test]
    fn irregular_city_is_deterministic() {
        let cfg = IrregularConfig::default();
        let a = irregular_city(&cfg, 42);
        let b = irregular_city(&cfg, 42);
        assert_eq!(a.net.node_count(), b.net.node_count());
        assert_eq!(a.net.segment_count(), b.net.segment_count());
        for (x, y) in a.net.segments().iter().zip(b.net.segments()) {
            assert_eq!(x.from, y.from);
            assert_eq!(x.to, y.to);
        }
        let c = irregular_city(&cfg, 43);
        // A different seed jitters geometry differently.
        let pa = a.net.node(a.node(1, 1)).position;
        let pc = c.net.node(c.node(1, 1)).position;
        assert!(pa.distance_m(pc) > 1.0);
    }

    #[test]
    fn irregular_city_removes_links_but_keeps_degree() {
        let cfg = IrregularConfig { missing_link_fraction: 0.2, ..IrregularConfig::default() };
        let full = irregular_city(&IrregularConfig { missing_link_fraction: 0.0, ..cfg }, 7);
        let sparse = irregular_city(&cfg, 7);
        assert!(sparse.net.segment_count() < full.net.segment_count());
        // No node is left isolated or dangling below degree 2.
        for node in sparse.net.nodes() {
            let deg = sparse.net.out_of(node.id).len();
            assert!(deg >= 2, "node {:?} has degree {deg}", node.id);
        }
    }

    #[test]
    fn irregular_city_has_mixed_speed_limits() {
        let city = irregular_city(&IrregularConfig::default(), 11);
        let speeds: Vec<f64> = city.net.segments().iter().map(|s| s.speed_limit_kmh).collect();
        assert!(speeds.contains(&60.0));
        assert!(speeds.contains(&40.0));
    }

    #[test]
    fn irregular_city_signalizes_junctions() {
        let city = irregular_city(&IrregularConfig::default(), 3);
        assert!(!city.intersections.is_empty());
        for &ix in &city.intersections {
            assert!(city.net.intersection(ix).lights.len() >= 3);
        }
    }

    #[test]
    fn xorshift_is_uniformish() {
        let mut rng = XorShift64::new(1);
        let mut sum = 0.0;
        let n = 10_000;
        for _ in 0..n {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.02);
    }
}
