//! Textual serialization of road networks.
//!
//! A line-oriented format playing the role OpenStreetMap extracts play for
//! the paper: cities can be generated once, saved, and shared between the
//! simulator and the identification CLI.
//!
//! ```text
//! # taxilight road network v1
//! node <lat> <lon>
//! segment <from> <to> <speed_kmh>
//! signalize <node>
//! ```
//!
//! Ids are implicit (declaration order), which makes the format trivially
//! round-trippable: nodes, segments and lights are re-created in the same
//! order and therefore keep their ids.

use crate::graph::{NodeId, RoadNetwork};
use std::path::Path;
use taxilight_trace::geo::GeoPoint;

/// Errors from parsing a network document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkParseError {
    /// A line had an unknown directive or wrong field count; carries the
    /// 0-based line number.
    Malformed(usize),
    /// A referenced node id was out of range; carries the line number.
    BadReference(usize),
}

impl std::fmt::Display for NetworkParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetworkParseError::Malformed(l) => write!(f, "malformed network line {l}"),
            NetworkParseError::BadReference(l) => write!(f, "bad node reference at line {l}"),
        }
    }
}

impl std::error::Error for NetworkParseError {}

/// Serializes a network to the v1 text format.
pub fn write_network(net: &RoadNetwork) -> String {
    let mut out = String::with_capacity(64 * (net.node_count() + net.segment_count()));
    out.push_str("# taxilight road network v1\n");
    for node in net.nodes() {
        out.push_str(&format!("node {:.7} {:.7}\n", node.position.lat, node.position.lon));
    }
    for seg in net.segments() {
        out.push_str(&format!("segment {} {} {}\n", seg.from.0, seg.to.0, seg.speed_limit_kmh));
    }
    for intersection in net.intersections() {
        out.push_str(&format!("signalize {}\n", intersection.node.0));
    }
    out
}

/// Parses the v1 text format back into a network.
pub fn read_network(text: &str) -> Result<RoadNetwork, NetworkParseError> {
    let mut net = RoadNetwork::new();
    for (line_no, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        match fields.as_slice() {
            ["node", lat, lon] => {
                let lat: f64 = lat.parse().map_err(|_| NetworkParseError::Malformed(line_no))?;
                let lon: f64 = lon.parse().map_err(|_| NetworkParseError::Malformed(line_no))?;
                net.add_node(GeoPoint::new(lat, lon));
            }
            ["segment", from, to, kmh] => {
                let from: u32 = from.parse().map_err(|_| NetworkParseError::Malformed(line_no))?;
                let to: u32 = to.parse().map_err(|_| NetworkParseError::Malformed(line_no))?;
                let kmh: f64 = kmh.parse().map_err(|_| NetworkParseError::Malformed(line_no))?;
                if from as usize >= net.node_count() || to as usize >= net.node_count() {
                    return Err(NetworkParseError::BadReference(line_no));
                }
                net.add_segment(NodeId(from), NodeId(to), kmh);
            }
            ["signalize", node] => {
                let node: u32 = node.parse().map_err(|_| NetworkParseError::Malformed(line_no))?;
                if node as usize >= net.node_count() {
                    return Err(NetworkParseError::BadReference(line_no));
                }
                net.signalize(NodeId(node));
            }
            _ => return Err(NetworkParseError::Malformed(line_no)),
        }
    }
    Ok(net)
}

/// Writes a network to a file.
pub fn save_network(net: &RoadNetwork, path: &Path) -> std::io::Result<()> {
    std::fs::write(path, write_network(net))
}

/// Loads a network from a file.
pub fn load_network(path: &Path) -> std::io::Result<Result<RoadNetwork, NetworkParseError>> {
    Ok(read_network(&std::fs::read_to_string(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{grid_city, GridConfig};

    #[test]
    fn round_trip_preserves_everything() {
        let city = grid_city(&GridConfig { rows: 4, cols: 3, ..GridConfig::default() });
        let text = write_network(&city.net);
        let back = read_network(&text).unwrap();

        assert_eq!(back.node_count(), city.net.node_count());
        assert_eq!(back.segment_count(), city.net.segment_count());
        assert_eq!(back.intersections().len(), city.net.intersections().len());
        assert_eq!(back.light_count(), city.net.light_count());

        for (a, b) in city.net.nodes().iter().zip(back.nodes()) {
            assert_eq!(a.id, b.id);
            assert!(a.position.distance_m(b.position) < 0.05);
        }
        for (a, b) in city.net.segments().iter().zip(back.segments()) {
            assert_eq!(a.from, b.from);
            assert_eq!(a.to, b.to);
            assert_eq!(a.speed_limit_kmh, b.speed_limit_kmh);
            assert!((a.length_m - b.length_m).abs() < 0.1);
        }
        // Lights keep their ids: same segment mapping.
        for light in city.net.lights() {
            let other = back.light(light.id).unwrap();
            assert_eq!(other.segment, light.segment);
            assert_eq!(other.intersection, light.intersection);
        }
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let text = "# header\n\nnode 22.5 114.0\nnode 22.51 114.0\n# mid\nsegment 0 1 50\n";
        let net = read_network(text).unwrap();
        assert_eq!(net.node_count(), 2);
        assert_eq!(net.segment_count(), 1);
    }

    #[test]
    fn malformed_lines_are_rejected_with_position() {
        assert_eq!(read_network("bogus 1 2\n").unwrap_err(), NetworkParseError::Malformed(0));
        assert_eq!(
            read_network("node 22.5 114.0\nsegment 0 zero 50\n").unwrap_err(),
            NetworkParseError::Malformed(1)
        );
        assert_eq!(read_network("node 22.5\n").unwrap_err(), NetworkParseError::Malformed(0));
    }

    #[test]
    fn bad_references_are_rejected() {
        assert_eq!(
            read_network("node 22.5 114.0\nsegment 0 7 50\n").unwrap_err(),
            NetworkParseError::BadReference(1)
        );
        assert_eq!(
            read_network("node 22.5 114.0\nsignalize 9\n").unwrap_err(),
            NetworkParseError::BadReference(1)
        );
    }

    #[test]
    fn file_helpers_round_trip() {
        let city = grid_city(&GridConfig::default());
        let mut path = std::env::temp_dir();
        path.push(format!("taxilight-net-{}.txt", std::process::id()));
        save_network(&city.net, &path).unwrap();
        let loaded = load_network(&path).unwrap().unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.segment_count(), city.net.segment_count());
    }

    #[test]
    fn error_display() {
        assert!(NetworkParseError::Malformed(3).to_string().contains("line 3"));
        assert!(NetworkParseError::BadReference(9).to_string().contains("line 9"));
    }
}
