//! The directed road graph.
//!
//! Roads are modelled as *directed segments* between nodes — a two-way
//! street is two segments. Every segment carries its geometry (length,
//! heading), so map matching can compare a taxi's reported heading against
//! the road orientation, exactly the disambiguation rule of the paper's
//! Fig. 5. A subset of nodes are *signalized intersections*; each incoming
//! segment at such a node terminates at an [`ApproachLight`], and those
//! lights are the units the identification pipeline partitions data by.

use taxilight_trace::geo::GeoPoint;

/// Identifier of a graph node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Identifier of a directed segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SegmentId(pub u32);

/// Identifier of a signalized intersection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IntersectionId(pub u32);

/// Identifier of one traffic light head (one per approach segment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LightId(pub u32);

/// A graph node (road junction or dead end).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Node {
    /// This node's id.
    pub id: NodeId,
    /// Geographic position.
    pub position: GeoPoint,
}

/// A directed road segment `from → to`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// This segment's id.
    pub id: SegmentId,
    /// Upstream node.
    pub from: NodeId,
    /// Downstream node.
    pub to: NodeId,
    /// Great-circle length in meters.
    pub length_m: f64,
    /// Travel heading, degrees clockwise from north.
    pub heading_deg: f64,
    /// Free-flow speed limit, km/h.
    pub speed_limit_kmh: f64,
}

impl Segment {
    /// Free-flow traversal time in seconds.
    pub fn free_flow_time_s(&self) -> f64 {
        self.length_m / (self.speed_limit_kmh / 3.6)
    }
}

/// One traffic light head: controls traffic arriving at `intersection` via
/// `segment`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproachLight {
    /// This light's id (unique across the network).
    pub id: LightId,
    /// The intersection it belongs to.
    pub intersection: IntersectionId,
    /// The incoming segment it controls.
    pub segment: SegmentId,
    /// Approach heading (the segment's heading), degrees from north.
    pub heading_deg: f64,
}

/// A signalized intersection and its approach lights.
#[derive(Debug, Clone, PartialEq)]
pub struct Intersection {
    /// This intersection's id.
    pub id: IntersectionId,
    /// The graph node it sits on.
    pub node: NodeId,
    /// One light per incoming segment.
    pub lights: Vec<ApproachLight>,
}

impl Intersection {
    /// Position of the intersection (the node's position).
    pub fn position(&self, net: &RoadNetwork) -> GeoPoint {
        net.node(self.node).position
    }
}

/// The road network: nodes, directed segments, adjacency, and signalized
/// intersections.
#[derive(Debug, Clone, Default)]
pub struct RoadNetwork {
    nodes: Vec<Node>,
    segments: Vec<Segment>,
    out_segments: Vec<Vec<SegmentId>>,
    in_segments: Vec<Vec<SegmentId>>,
    intersections: Vec<Intersection>,
    /// `segment id → light id` for incoming segments of signalized nodes.
    segment_light: Vec<Option<LightId>>,
}

impl RoadNetwork {
    /// An empty network.
    pub fn new() -> Self {
        RoadNetwork::default()
    }

    /// Adds a node at `position`, returning its id.
    pub fn add_node(&mut self, position: GeoPoint) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { id, position });
        self.out_segments.push(Vec::new());
        self.in_segments.push(Vec::new());
        id
    }

    /// Adds a directed segment `from → to` with the given speed limit.
    /// Length and heading are derived from node positions.
    ///
    /// # Panics
    /// Panics if either node id is out of range or the nodes coincide.
    pub fn add_segment(&mut self, from: NodeId, to: NodeId, speed_limit_kmh: f64) -> SegmentId {
        assert!(from != to, "self-loop segments are not allowed");
        let a = self.node(from).position;
        let b = self.node(to).position;
        let length_m = a.distance_m(b);
        assert!(length_m > 0.0, "segment endpoints coincide");
        let id = SegmentId(self.segments.len() as u32);
        self.segments.push(Segment {
            id,
            from,
            to,
            length_m,
            heading_deg: a.bearing_to(b),
            speed_limit_kmh,
        });
        self.out_segments[from.0 as usize].push(id);
        self.in_segments[to.0 as usize].push(id);
        self.segment_light.push(None);
        id
    }

    /// Adds both directions of a two-way road, returning `(a→b, b→a)`.
    pub fn add_two_way(
        &mut self,
        a: NodeId,
        b: NodeId,
        speed_limit_kmh: f64,
    ) -> (SegmentId, SegmentId) {
        (self.add_segment(a, b, speed_limit_kmh), self.add_segment(b, a, speed_limit_kmh))
    }

    /// Declares `node` a signalized intersection: every incoming segment
    /// gets an [`ApproachLight`]. Returns the intersection id.
    ///
    /// # Panics
    /// Panics if the node has no incoming segments or is already signalized.
    pub fn signalize(&mut self, node: NodeId) -> IntersectionId {
        assert!(
            !self.intersections.iter().any(|i| i.node == node),
            "node {node:?} already signalized"
        );
        let incoming = self.in_segments[node.0 as usize].clone();
        assert!(!incoming.is_empty(), "cannot signalize node {node:?} with no incoming segments");
        let id = IntersectionId(self.intersections.len() as u32);
        let base = self.total_lights() as u32;
        let mut lights = Vec::with_capacity(incoming.len());
        for (k, seg_id) in incoming.into_iter().enumerate() {
            let light = LightId(base + k as u32);
            let seg = self.segment(seg_id);
            lights.push(ApproachLight {
                id: light,
                intersection: id,
                segment: seg_id,
                heading_deg: seg.heading_deg,
            });
            self.segment_light[seg_id.0 as usize] = Some(light);
        }
        self.intersections.push(Intersection { id, node, lights });
        id
    }

    fn total_lights(&self) -> usize {
        self.intersections.iter().map(|i| i.lights.len()).sum()
    }

    /// Node lookup.
    ///
    /// # Panics
    /// Panics on an out-of-range id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Segment lookup.
    ///
    /// # Panics
    /// Panics on an out-of-range id.
    pub fn segment(&self, id: SegmentId) -> &Segment {
        &self.segments[id.0 as usize]
    }

    /// Intersection lookup.
    ///
    /// # Panics
    /// Panics on an out-of-range id.
    pub fn intersection(&self, id: IntersectionId) -> &Intersection {
        &self.intersections[id.0 as usize]
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All segments.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// All signalized intersections.
    pub fn intersections(&self) -> &[Intersection] {
        &self.intersections
    }

    /// Segments leaving `node`.
    pub fn out_of(&self, node: NodeId) -> &[SegmentId] {
        &self.out_segments[node.0 as usize]
    }

    /// Segments entering `node`.
    pub fn into_node(&self, node: NodeId) -> &[SegmentId] {
        &self.in_segments[node.0 as usize]
    }

    /// The light controlling the downstream end of `segment`, if its end
    /// node is signalized.
    pub fn light_of_segment(&self, segment: SegmentId) -> Option<LightId> {
        self.segment_light[segment.0 as usize]
    }

    /// Looks up a light by id.
    pub fn light(&self, id: LightId) -> Option<&ApproachLight> {
        self.intersections.iter().flat_map(|i| i.lights.iter()).find(|l| l.id == id)
    }

    /// All lights across all intersections, in id order.
    pub fn lights(&self) -> Vec<&ApproachLight> {
        let mut all: Vec<&ApproachLight> =
            self.intersections.iter().flat_map(|i| i.lights.iter()).collect();
        all.sort_by_key(|l| l.id);
        all
    }

    /// Total number of lights.
    pub fn light_count(&self) -> usize {
        self.total_lights()
    }

    /// The node count.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The segment count.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Bounding box `(min, max)` over node positions; `None` when empty.
    pub fn bounding_box(&self) -> Option<(GeoPoint, GeoPoint)> {
        if self.nodes.is_empty() {
            return None;
        }
        let mut min = GeoPoint::new(f64::INFINITY, f64::INFINITY);
        let mut max = GeoPoint::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
        for n in &self.nodes {
            min.lat = min.lat.min(n.position.lat);
            min.lon = min.lon.min(n.position.lon);
            max.lat = max.lat.max(n.position.lat);
            max.lon = max.lon.max(n.position.lon);
        }
        Some((min, max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxilight_trace::geo::heading_difference;

    /// A plus-shaped intersection: centre node with four arms of 500 m.
    fn plus_network() -> (RoadNetwork, NodeId) {
        let mut net = RoadNetwork::new();
        let centre_pos = GeoPoint::new(22.547, 114.125);
        let centre = net.add_node(centre_pos);
        for bearing in [0.0, 90.0, 180.0, 270.0] {
            let arm = net.add_node(centre_pos.destination(bearing, 500.0));
            net.add_two_way(centre, arm, 50.0);
        }
        (net, centre)
    }

    #[test]
    fn segment_geometry_is_derived() {
        let (net, centre) = plus_network();
        assert_eq!(net.node_count(), 5);
        assert_eq!(net.segment_count(), 8);
        for &seg_id in net.out_of(centre) {
            let seg = net.segment(seg_id);
            assert!((seg.length_m - 500.0).abs() < 1.0);
            assert!((seg.free_flow_time_s() - 500.0 / (50.0 / 3.6)).abs() < 0.1);
        }
        // Opposite directions have opposite headings.
        let out0 = net.segment(net.out_of(centre)[0]);
        let back0 = net.segments().iter().find(|s| s.from == out0.to && s.to == centre).unwrap();
        assert!(heading_difference(out0.heading_deg, back0.heading_deg + 180.0) < 0.5);
    }

    #[test]
    fn signalize_creates_one_light_per_incoming_segment() {
        let (mut net, centre) = plus_network();
        let ix = net.signalize(centre);
        let intersection = net.intersection(ix);
        assert_eq!(intersection.lights.len(), 4);
        assert_eq!(net.light_count(), 4);
        // Each incoming segment maps to its light.
        for light in &intersection.lights {
            assert_eq!(net.light_of_segment(light.segment), Some(light.id));
            let found = net.light(light.id).unwrap();
            assert_eq!(found.intersection, ix);
        }
        // Outgoing segments have no light.
        for &seg in net.out_of(centre) {
            assert_eq!(net.light_of_segment(seg), None);
        }
        assert_eq!(intersection.position(&net), net.node(centre).position);
    }

    #[test]
    fn lights_listing_is_id_ordered() {
        let (mut net, centre) = plus_network();
        // Signalize an arm end too (it has one incoming segment from centre).
        net.signalize(centre);
        let arm_node = net.segment(net.out_of(centre)[0]).to;
        net.signalize(arm_node);
        let lights = net.lights();
        assert_eq!(lights.len(), 5);
        for (k, l) in lights.iter().enumerate() {
            assert_eq!(l.id, LightId(k as u32));
        }
    }

    #[test]
    #[should_panic(expected = "already signalized")]
    fn double_signalize_rejected() {
        let (mut net, centre) = plus_network();
        net.signalize(centre);
        net.signalize(centre);
    }

    #[test]
    #[should_panic(expected = "no incoming segments")]
    fn signalize_isolated_node_rejected() {
        let mut net = RoadNetwork::new();
        let n = net.add_node(GeoPoint::new(22.5, 114.1));
        net.signalize(n);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        let mut net = RoadNetwork::new();
        let n = net.add_node(GeoPoint::new(22.5, 114.1));
        net.add_segment(n, n, 50.0);
    }

    #[test]
    fn adjacency_is_consistent() {
        let (net, centre) = plus_network();
        assert_eq!(net.out_of(centre).len(), 4);
        assert_eq!(net.into_node(centre).len(), 4);
        for seg in net.segments() {
            assert!(net.out_of(seg.from).contains(&seg.id));
            assert!(net.into_node(seg.to).contains(&seg.id));
        }
    }

    #[test]
    fn bounding_box_covers_all_nodes() {
        let (net, _) = plus_network();
        let (min, max) = net.bounding_box().unwrap();
        for n in net.nodes() {
            assert!(n.position.lat >= min.lat && n.position.lat <= max.lat);
            assert!(n.position.lon >= min.lon && n.position.lon <= max.lon);
        }
        assert_eq!(RoadNetwork::new().bounding_box(), None);
    }
}
