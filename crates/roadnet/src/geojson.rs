//! GeoJSON export — the paper's Fig. 1 is an overlay of aggregated taxi
//! updates on the road network; these exporters produce the same picture
//! for any GeoJSON viewer (kepler.gl, QGIS, geojson.io).
//!
//! Output is constructed with a minimal purpose-built writer rather than a
//! serde dependency: the GeoJSON subset needed here is tiny and the
//! workspace keeps its dependency surface minimal (DESIGN.md §5).

use crate::graph::RoadNetwork;
use taxilight_trace::geo::GeoPoint;

fn fmt_coord(p: GeoPoint) -> String {
    // GeoJSON is [lon, lat].
    format!("[{:.6},{:.6}]", p.lon, p.lat)
}

/// Escapes a string for embedding in a JSON literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Exports the road network as a GeoJSON `FeatureCollection`: one
/// `LineString` per directed segment (with speed limit and light-control
/// properties) and one `Point` per signalized intersection.
pub fn network_to_geojson(net: &RoadNetwork) -> String {
    let mut features = Vec::new();
    for seg in net.segments() {
        let a = net.node(seg.from).position;
        let b = net.node(seg.to).position;
        let signalized = net.light_of_segment(seg.id).is_some();
        features.push(format!(
            "{{\"type\":\"Feature\",\"geometry\":{{\"type\":\"LineString\",\"coordinates\":[{},{}]}},\
             \"properties\":{{\"segment\":{},\"speed_kmh\":{},\"signalized\":{}}}}}",
            fmt_coord(a),
            fmt_coord(b),
            seg.id.0,
            seg.speed_limit_kmh,
            signalized
        ));
    }
    for intersection in net.intersections() {
        let p = net.node(intersection.node).position;
        features.push(format!(
            "{{\"type\":\"Feature\",\"geometry\":{{\"type\":\"Point\",\"coordinates\":{}}},\
             \"properties\":{{\"intersection\":{},\"lights\":{}}}}}",
            fmt_coord(p),
            intersection.id.0,
            intersection.lights.len()
        ));
    }
    format!("{{\"type\":\"FeatureCollection\",\"features\":[{}]}}", features.join(","))
}

/// Exports a point cloud (e.g. aggregated taxi fixes) as a GeoJSON
/// `FeatureCollection` of `Point`s with an optional label per point.
pub fn points_to_geojson(points: &[(GeoPoint, Option<&str>)]) -> String {
    let features: Vec<String> = points
        .iter()
        .map(|(p, label)| {
            let props = match label {
                Some(l) => format!("{{\"label\":\"{}\"}}", json_escape(l)),
                None => "{}".to_string(),
            };
            format!(
                "{{\"type\":\"Feature\",\"geometry\":{{\"type\":\"Point\",\"coordinates\":{}}},\
                 \"properties\":{props}}}",
                fmt_coord(*p)
            )
        })
        .collect();
    format!("{{\"type\":\"FeatureCollection\",\"features\":[{}]}}", features.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{grid_city, GridConfig};

    /// A tiny structural validator: balanced braces/brackets and
    /// quote-paired strings — enough to catch broken emission without a
    /// JSON dependency.
    fn assert_structurally_valid_json(s: &str) {
        let mut depth_brace = 0i64;
        let mut depth_bracket = 0i64;
        let mut in_string = false;
        let mut escaped = false;
        for c in s.chars() {
            if in_string {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_string = false;
                }
                continue;
            }
            match c {
                '"' => in_string = true,
                '{' => depth_brace += 1,
                '}' => depth_brace -= 1,
                '[' => depth_bracket += 1,
                ']' => depth_bracket -= 1,
                _ => {}
            }
            assert!(depth_brace >= 0 && depth_bracket >= 0, "unbalanced at …{c}");
        }
        assert_eq!(depth_brace, 0, "unbalanced braces");
        assert_eq!(depth_bracket, 0, "unbalanced brackets");
        assert!(!in_string, "unterminated string");
    }

    #[test]
    fn network_export_is_wellformed_and_complete() {
        let city = grid_city(&GridConfig { rows: 3, cols: 3, ..GridConfig::default() });
        let geo = network_to_geojson(&city.net);
        assert_structurally_valid_json(&geo);
        assert!(geo.starts_with("{\"type\":\"FeatureCollection\""));
        assert_eq!(geo.matches("\"LineString\"").count(), city.net.segment_count());
        assert_eq!(geo.matches("\"Point\"").count(), city.net.intersections().len());
        assert!(geo.contains("\"signalized\":true"));
        assert!(geo.contains("\"signalized\":false"));
    }

    #[test]
    fn points_export_with_labels() {
        let pts = vec![
            (GeoPoint::new(22.5, 114.0), Some("taxi \"A\"\n")),
            (GeoPoint::new(22.6, 114.1), None),
        ];
        let geo = points_to_geojson(&pts);
        assert_structurally_valid_json(&geo);
        assert_eq!(geo.matches("\"Point\"").count(), 2);
        // Quotes and newline in the label are escaped.
        assert!(geo.contains("taxi \\\"A\\\"\\n"));
        assert!(geo.contains("[114.000000,22.500000]"), "lon-lat order");
    }

    #[test]
    fn empty_points_is_valid() {
        let geo = points_to_geojson(&[]);
        assert_structurally_valid_json(&geo);
        assert!(geo.contains("\"features\":[]"));
    }

    #[test]
    fn json_escape_handles_control_chars() {
        assert_eq!(json_escape("a\"b"), "a\\\"b");
        assert_eq!(json_escape("a\\b"), "a\\\\b");
        assert_eq!(json_escape("a\u{01}b"), "a\\u0001b");
    }
}
