//! Bit-identity of the plan-cached/workspace hot path against the
//! allocating reference functions, over arbitrary lengths and contents.
//!
//! The identification pipeline's correctness contract for the workspace
//! layer is *exact* equality — same summation order, same bin grid — not
//! approximate agreement. Every comparison here is on `f64::to_bits`.

use proptest::prelude::*;
use taxilight_signal::fft::{eq1_spectrum, fft, ifft};
use taxilight_signal::interpolate::{resample, Method};
use taxilight_signal::periodogram::{
    band_candidates_with, dominant_period_refined_with, dominant_period_with, PeriodBand,
    SpectrumPath,
};
use taxilight_signal::plan::FftPlan;
use taxilight_signal::{Complex64, SignalWorkspace};

fn complex_bits(v: &[Complex64]) -> Vec<(u64, u64)> {
    v.iter().map(|c| (c.re.to_bits(), c.im.to_bits())).collect()
}

/// Arbitrary lengths spanning the interesting regimes: arbitrary short
/// vectors, a prime length, a power of two, and the paper's 3600-sample
/// window (content still varies via the drawn vector).
fn arbitrary_signal() -> impl Strategy<Value = Vec<f64>> {
    (0usize..4, prop::collection::vec(-60.0f64..60.0, 1..300)).prop_map(|(sel, xs)| {
        let stretch = |n: usize| -> Vec<f64> {
            (0..n).map(|k| xs[k % xs.len()] + (k / xs.len()) as f64).collect()
        };
        match sel {
            0 => xs,
            1 => stretch(3600),
            2 => stretch(2048),
            _ => stretch(997),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn plan_fft_bit_identical_to_reference(sig in arbitrary_signal()) {
        let input: Vec<Complex64> =
            sig.iter().map(|&v| Complex64::new(v, -0.5 * v)).collect();
        let reference = fft(&input);

        let mut ws = SignalWorkspace::new();
        let mut buf = input.clone();
        ws.fft_in_place(&mut buf);
        prop_assert_eq!(complex_bits(&buf), complex_bits(&reference));

        // Direct plan use (no cache) must agree too.
        let mut buf2 = input;
        let mut scratch = Vec::new();
        FftPlan::new(buf2.len()).fft_in_place(&mut buf2, &mut scratch);
        prop_assert_eq!(complex_bits(&buf2), complex_bits(&reference));
    }

    #[test]
    fn plan_ifft_bit_identical_to_reference(sig in arbitrary_signal()) {
        let spectrum: Vec<Complex64> =
            sig.iter().map(|&v| Complex64::new(v, 0.25 * v + 1.0)).collect();
        let reference = ifft(&spectrum);
        let mut ws = SignalWorkspace::new();
        let mut buf = spectrum;
        ws.ifft_in_place(&mut buf);
        prop_assert_eq!(complex_bits(&buf), complex_bits(&reference));
    }

    #[test]
    fn plan_eq1_spectrum_bit_identical_to_reference(sig in arbitrary_signal()) {
        let reference = eq1_spectrum(&sig);
        let mut ws = SignalWorkspace::new();
        let mut out = Vec::new();
        ws.eq1_spectrum_into(&sig, &mut out);
        prop_assert_eq!(complex_bits(&out), complex_bits(&reference));
    }

    #[test]
    fn workspace_period_search_bit_identical(
        sig in arbitrary_signal(),
        refine in prop::bool::ANY,
        padded in prop::bool::ANY,
    ) {
        let path = if padded { SpectrumPath::PaddedPow2 } else { SpectrumPath::Exact };
        let band = PeriodBand::TRAFFIC_LIGHTS;
        let reference = if refine {
            dominant_period_refined_with(&sig, 1.0, band, path)
        } else {
            dominant_period_with(&sig, 1.0, band, path)
        };
        let mut ws = SignalWorkspace::new();
        let got = ws.dominant_period(&sig, 1.0, band, refine, path);
        match (got, reference) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                prop_assert_eq!(a.bin, b.bin);
                prop_assert_eq!(a.period.to_bits(), b.period.to_bits());
                prop_assert_eq!(a.magnitude.to_bits(), b.magnitude.to_bits());
                prop_assert_eq!(a.snr.to_bits(), b.snr.to_bits());
            }
            (a, b) => prop_assert!(false, "mismatch: {:?} vs {:?}", a, b),
        }
    }

    #[test]
    fn workspace_band_candidates_bit_identical(
        sig in arbitrary_signal(),
        k in 0usize..12,
        padded in prop::bool::ANY,
    ) {
        let path = if padded { SpectrumPath::PaddedPow2 } else { SpectrumPath::Exact };
        let band = PeriodBand::TRAFFIC_LIGHTS;
        let reference = band_candidates_with(&sig, 1.0, band, k, path);
        let mut ws = SignalWorkspace::new();
        let mut out = Vec::new();
        ws.band_candidates_into(&sig, 1.0, band, k, path, &mut out);
        prop_assert_eq!(out.len(), reference.len());
        for (a, b) in out.iter().zip(&reference) {
            prop_assert_eq!(a.bin, b.bin);
            prop_assert_eq!(a.period.to_bits(), b.period.to_bits());
            prop_assert_eq!(a.magnitude.to_bits(), b.magnitude.to_bits());
            prop_assert_eq!(a.snr.to_bits(), b.snr.to_bits());
        }
    }

    #[test]
    fn workspace_resample_bit_identical(
        raw in prop::collection::vec((0.0f64..600.0, -20.0f64..60.0), 0..80),
        count in 1usize..400,
    ) {
        let mut ws = SignalWorkspace::new();
        let mut out = Vec::new();
        for method in [Method::NearestOrZero, Method::Linear, Method::CubicSpline] {
            let reference = resample(&raw, 0.0, 1.0, count, method);
            let got = ws.resample_into(&raw, 0.0, 1.0, count, method, &mut out);
            match (&got, &reference) {
                (Ok(()), Ok(reference_grid)) => {
                    prop_assert_eq!(out.len(), reference_grid.len());
                    for (a, b) in out.iter().zip(reference_grid) {
                        prop_assert_eq!(a.to_bits(), b.to_bits());
                    }
                }
                (Err(e), Err(re)) => prop_assert_eq!(e, re),
                _ => prop_assert!(false, "mismatch: {:?} vs {:?}", got, reference.is_ok()),
            }
        }
    }
}

/// One workspace, 100 heterogeneous calls — mixed lengths, methods, and
/// spectrum paths — must keep producing exactly what a fresh workspace (and
/// the allocating reference) produces. Any state leaking between calls
/// (stale buffer tails, wrong plan, dirty scratch) shows up as a bit
/// mismatch.
#[test]
fn workspace_reused_across_100_heterogeneous_calls_never_leaks_state() {
    let mut ws = SignalWorkspace::new();
    let band = PeriodBand::TRAFFIC_LIGHTS;
    let mut candidates = Vec::new();
    let mut grid = Vec::new();
    let mut spectrum = Vec::new();

    for call in 0..100u64 {
        // Deterministic per-call shape: length cycles through pow2, prime,
        // the paper's 3600, and small odd sizes; contents vary per call.
        let n = match call % 5 {
            0 => 256,
            1 => 997,
            2 => 3600,
            3 => 64,
            _ => 131 + (call as usize % 7) * 10,
        };
        let sig: Vec<f64> =
            (0..n).map(|k| ((k as u64 * 2654435761 + call * 97) % 1013) as f64 / 9.0).collect();
        let path = if call % 3 == 0 { SpectrumPath::PaddedPow2 } else { SpectrumPath::Exact };
        let refine = call % 4 == 1;

        // Period search vs the allocating reference.
        let reference = if refine {
            dominant_period_refined_with(&sig, 1.0, band, path)
        } else {
            dominant_period_with(&sig, 1.0, band, path)
        };
        let got = ws.dominant_period(&sig, 1.0, band, refine, path);
        assert_eq!(
            got.map(|e| (e.bin, e.period.to_bits(), e.magnitude.to_bits(), e.snr.to_bits())),
            reference.map(|e| (e.bin, e.period.to_bits(), e.magnitude.to_bits(), e.snr.to_bits())),
            "call {call}: period search diverged"
        );

        // Candidate ranking vs reference.
        let k = 1 + (call as usize % 6);
        ws.band_candidates_into(&sig, 1.0, band, k, path, &mut candidates);
        let reference_cands = band_candidates_with(&sig, 1.0, band, k, path);
        assert_eq!(candidates.len(), reference_cands.len(), "call {call}");
        for (a, b) in candidates.iter().zip(&reference_cands) {
            assert_eq!(a.period.to_bits(), b.period.to_bits(), "call {call}");
        }

        // Eq. (1) spectrum vs reference.
        ws.eq1_spectrum_into(&sig, &mut spectrum);
        assert_eq!(complex_bits(&spectrum), complex_bits(&eq1_spectrum(&sig)), "call {call}");

        // Resample vs reference, rotating through every method.
        let method = match call % 3 {
            0 => Method::NearestOrZero,
            1 => Method::Linear,
            _ => Method::CubicSpline,
        };
        let samples: Vec<(f64, f64)> = (0..30)
            .map(|k| (k as f64 * 13.3 + (call % 2) as f64 * 0.4, (k * 7 % 19) as f64))
            .collect();
        ws.resample_into(&samples, 0.0, 1.0, 400, method, &mut grid).unwrap();
        let reference_grid = resample(&samples, 0.0, 1.0, 400, method).unwrap();
        assert_eq!(grid.len(), reference_grid.len(), "call {call}");
        for (a, b) in grid.iter().zip(&reference_grid) {
            assert_eq!(a.to_bits(), b.to_bits(), "call {call}: resample diverged");
        }
    }

    // Plans were actually reused: far fewer builds than lookups.
    let stats = ws.plan_stats();
    assert!(stats.hits() > stats.misses(), "expected cache reuse, got {stats:?}");
}
