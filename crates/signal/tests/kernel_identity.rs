//! Differential proptests for the kernel layer: every kernel's SIMD path
//! must match its scalar twin **bit for bit** (`f64::to_bits`) on arbitrary
//! finite inputs — including non-multiple-of-lane-width tails, empty, and
//! 1-element slices — and the dispatching wrapper must agree with both
//! under either [`force`] setting.
//!
//! This holds for *all* kernels, not only the "bit-identity class": the
//! reassociating reductions changed their order relative to the pre-kernel
//! code, but the scalar 4-lane fallback and the SIMD path reassociate
//! *identically*, so scalar-vs-SIMD equality is still exact. That is also
//! what makes the process-global `force` knob safe to flip from tests that
//! run concurrently with the rest of the suite.

use proptest::prelude::*;
use taxilight_signal::kernels::{self, force, scalar, simd, KernelDispatch};
use taxilight_signal::Complex64;

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn cbits(v: &[Complex64]) -> Vec<(u64, u64)> {
    v.iter().map(|c| (c.re.to_bits(), c.im.to_bits())).collect()
}

/// Lengths that exercise empty, single-element, sub-lane, exact-lane, and
/// ragged-tail regimes (the drawn vector is cycled/stretched to `len`).
fn vec_with_ragged_len(max: usize) -> impl Strategy<Value = Vec<f64>> {
    (0usize..=max, prop::collection::vec(-1.0e6f64..1.0e6, 1..64)).prop_map(|(len, xs)| {
        (0..len).map(|k| xs[k % xs.len()] * (1.0 + (k / xs.len()) as f64 * 0.01)).collect()
    })
}

fn complex_vec(max: usize) -> impl Strategy<Value = Vec<Complex64>> {
    (vec_with_ragged_len(max), 0u64..u64::MAX).prop_map(|(xs, salt)| {
        xs.iter()
            .enumerate()
            .map(|(k, &re)| Complex64::new(re, re * 0.7 - (k as f64) - (salt % 97) as f64))
            .collect()
    })
}

/// Strictly increasing finite sample points plus a regular query grid.
fn points_and_grid() -> impl Strategy<Value = (Vec<(f64, f64)>, f64, f64, usize)> {
    (
        prop::collection::vec((0.1f64..20.0, -500.0f64..500.0), 1..60),
        -100.0f64..100.0,
        0.01f64..30.0,
        0usize..300,
    )
        .prop_map(|(deltas, t0, dt, count)| {
            let mut t = -50.0;
            let points: Vec<(f64, f64)> = deltas
                .into_iter()
                .map(|(d, y)| {
                    t += d;
                    (t, y)
                })
                .collect();
            (points, t0, dt, count)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sum_paths_bitwise_equal(xs in vec_with_ragged_len(300)) {
        prop_assert_eq!(scalar::sum(&xs).to_bits(), simd::sum(&xs).to_bits());
    }

    #[test]
    fn dot_paths_bitwise_equal(xs in vec_with_ragged_len(300)) {
        let ys: Vec<f64> = xs.iter().rev().map(|v| v * 0.3 + 1.0).collect();
        prop_assert_eq!(scalar::dot(&xs, &ys).to_bits(), simd::dot(&xs, &ys).to_bits());
    }

    #[test]
    fn sum_sq_diff_paths_bitwise_equal(xs in vec_with_ragged_len(300), m in -100.0f64..100.0) {
        prop_assert_eq!(
            scalar::sum_sq_diff(&xs, m).to_bits(),
            simd::sum_sq_diff(&xs, m).to_bits()
        );
    }

    #[test]
    fn magnitudes_paths_bitwise_equal(spec in complex_vec(257)) {
        let (mut a, mut b) = (Vec::new(), Vec::new());
        scalar::magnitudes_into(&spec, &mut a);
        simd::magnitudes_into(&spec, &mut b);
        prop_assert_eq!(bits(&a), bits(&b));
    }

    #[test]
    fn subtract_scalar_paths_bitwise_equal(xs in vec_with_ragged_len(257), m in -50.0f64..50.0) {
        let (mut a, mut b) = (Vec::new(), Vec::new());
        scalar::subtract_scalar_into(&xs, m, &mut a);
        simd::subtract_scalar_into(&xs, m, &mut b);
        prop_assert_eq!(bits(&a), bits(&b));
    }

    #[test]
    fn divide_paths_bitwise_equal(xs in vec_with_ragged_len(257), d in 0.001f64..1000.0) {
        let mut a = xs.clone();
        let mut b = xs;
        scalar::divide_in_place(&mut a, d);
        simd::divide_in_place(&mut b, d);
        prop_assert_eq!(bits(&a), bits(&b));
    }

    #[test]
    fn butterfly_paths_bitwise_equal(buf in complex_vec(128), stage_sel in 0usize..8) {
        // Pad to ≥ 2 elements, then round down to a power-of-two length
        // and pick a valid stage half-size for it.
        let mut buf = buf;
        while buf.len() < 2 {
            buf.push(Complex64::new(1.5, -2.5));
        }
        let n = if buf.len().is_power_of_two() {
            buf.len()
        } else {
            buf.len().next_power_of_two() / 2
        };
        let buf = &buf[..n];
        let half = 1usize << (stage_sel % n.trailing_zeros() as usize);
        let step = -std::f64::consts::PI / half as f64;
        let w_base = Complex64::cis(step);
        let mut w = Complex64::ONE;
        let tw: Vec<Complex64> = (0..half)
            .map(|_| {
                let cur = w;
                w *= w_base;
                cur
            })
            .collect();
        let mut a = buf.to_vec();
        let mut b = buf.to_vec();
        scalar::butterfly_stage(&mut a, half, &tw);
        simd::butterfly_stage(&mut b, half, &tw);
        prop_assert_eq!(cbits(&a), cbits(&b));
    }

    #[test]
    fn cmul_paths_bitwise_equal(a in complex_vec(257)) {
        let b: Vec<Complex64> =
            a.iter().rev().map(|c| Complex64::new(c.im * 0.9, c.re + 2.0)).collect();
        let mut out_s = vec![Complex64::ZERO; a.len()];
        let mut out_v = vec![Complex64::ZERO; a.len()];
        scalar::cmul_into(&a, &b, &mut out_s);
        simd::cmul_into(&a, &b, &mut out_v);
        prop_assert_eq!(cbits(&out_s), cbits(&out_v));

        let mut in_s = a.clone();
        let mut in_v = a;
        scalar::cmul_in_place(&mut in_s, &b);
        simd::cmul_in_place(&mut in_v, &b);
        prop_assert_eq!(cbits(&in_s), cbits(&in_v));
    }

    #[test]
    fn conj_paths_bitwise_equal(a in complex_vec(257), k in -10.0f64..10.0) {
        let mut c_s = a.clone();
        let mut c_v = a.clone();
        scalar::conj_in_place(&mut c_s);
        simd::conj_in_place(&mut c_v);
        prop_assert_eq!(cbits(&c_s), cbits(&c_v));

        let mut s_s = a.clone();
        let mut s_v = a;
        scalar::conj_scale_in_place(&mut s_s, k);
        simd::conj_scale_in_place(&mut s_v, k);
        prop_assert_eq!(cbits(&s_s), cbits(&s_v));
    }

    #[test]
    fn lerp_grid_paths_match_legacy_eval(input in points_and_grid()) {
        let (points, t0, dt, count) = input;
        let (mut a, mut b) = (Vec::new(), Vec::new());
        scalar::lerp_grid_into(&points, t0, dt, count, &mut a);
        simd::lerp_grid_into(&points, t0, dt, count, &mut b);
        prop_assert_eq!(bits(&a), bits(&b));
        // Both paths must also reproduce the legacy per-point binary-search
        // evaluation (the bit-identity-class contract).
        let legacy: Vec<f64> = (0..count)
            .map(|k| {
                taxilight_signal::interpolate::linear_interpolate(
                    &points,
                    &[t0 + dt * k as f64],
                )
                .unwrap()[0]
            })
            .collect();
        prop_assert_eq!(bits(&a), bits(&legacy));
    }

    #[test]
    fn spline_grid_paths_match_legacy_eval(input in points_and_grid()) {
        let (points, t0, dt, count) = input;
        let spline = taxilight_signal::interpolate::CubicSpline::new(&points).unwrap();
        // Recover the knot second-derivatives via the free resample path:
        // compare kernel output against `sample_grid`, which evaluates the
        // legacy per-point expression.
        let legacy = spline.sample_grid(t0, dt, count);
        let ws_out = {
            let mut ws = taxilight_signal::SignalWorkspace::new();
            let mut out = Vec::new();
            ws.resample_into(
                &points,
                t0,
                dt.max(0.01),
                count,
                taxilight_signal::interpolate::Method::CubicSpline,
                &mut out,
            )
            .ok();
            out
        };
        // `resample_into` merges same-slot points first, so only compare
        // when merging is a no-op (all knots in distinct unit slots).
        let distinct_slots = points
            .windows(2)
            .all(|w| w[0].0.floor() != w[1].0.floor());
        let all_on_slots = points.iter().all(|&(t, _)| t == t.floor());
        if distinct_slots && all_on_slots {
            prop_assert_eq!(bits(&ws_out), bits(&legacy));
        }
    }

    #[test]
    fn circular_moving_average_paths_bitwise_equal(
        xs in vec_with_ragged_len(257),
        w in 0usize..400,
    ) {
        let (mut a, mut b) = (Vec::new(), Vec::new());
        scalar::circular_moving_average_into(&xs, w, &mut a);
        simd::circular_moving_average_into(&xs, w, &mut b);
        prop_assert_eq!(bits(&a), bits(&b));
    }

    #[test]
    fn dispatch_wrapper_agrees_with_both_paths_under_force(xs in vec_with_ragged_len(200)) {
        // The wrapper must return the same bits whichever path is forced —
        // the whole-suite guarantee that TAXILIGHT_KERNELS cannot change
        // results, only speed.
        let before = kernels::dispatch();
        force(KernelDispatch::Scalar);
        let via_scalar = kernels::sum(&xs).to_bits();
        let mut mags_scalar = Vec::new();
        kernels::magnitudes_into(
            &xs.iter().map(|&v| Complex64::new(v, -v)).collect::<Vec<_>>(),
            &mut mags_scalar,
        );
        force(KernelDispatch::Simd);
        let via_simd = kernels::sum(&xs).to_bits();
        let mut mags_simd = Vec::new();
        kernels::magnitudes_into(
            &xs.iter().map(|&v| Complex64::new(v, -v)).collect::<Vec<_>>(),
            &mut mags_simd,
        );
        force(before);
        prop_assert_eq!(via_scalar, via_simd);
        prop_assert_eq!(bits(&mags_scalar), bits(&mags_simd));
    }
}

#[test]
fn empty_and_single_element_inputs() {
    assert_eq!(scalar::sum(&[]).to_bits(), simd::sum(&[]).to_bits());
    assert_eq!(scalar::sum(&[3.5]).to_bits(), simd::sum(&[3.5]).to_bits());
    assert_eq!(scalar::dot(&[], &[]).to_bits(), simd::dot(&[], &[]).to_bits());
    assert_eq!(scalar::dot(&[2.0], &[-4.0]).to_bits(), simd::dot(&[2.0], &[-4.0]).to_bits());

    let (mut a, mut b) = (Vec::new(), Vec::new());
    scalar::magnitudes_into(&[], &mut a);
    simd::magnitudes_into(&[], &mut b);
    assert!(a.is_empty() && b.is_empty());
    let one = [Complex64::new(3.0, -4.0)];
    scalar::magnitudes_into(&one, &mut a);
    simd::magnitudes_into(&one, &mut b);
    assert_eq!(bits(&a), bits(&b));
    assert_eq!(a, vec![5.0]);

    scalar::circular_moving_average_into(&[], 5, &mut a);
    simd::circular_moving_average_into(&[], 5, &mut b);
    assert!(a.is_empty() && b.is_empty());
    scalar::circular_moving_average_into(&[7.0], 0, &mut a);
    simd::circular_moving_average_into(&[7.0], 0, &mut b);
    assert_eq!(bits(&a), bits(&b));
    assert_eq!(a, vec![7.0]);
}

#[test]
fn lerp_grid_non_monotone_fallback_matches() {
    // dt <= 0 routes both paths through the legacy per-point evaluation
    // (queries are not nondecreasing); outputs must still agree bitwise.
    // Non-finite t0 is excluded: the legacy evaluator itself panics on a
    // NaN query, and both paths share that evaluator.
    let points = vec![(0.0, 1.0), (10.0, 5.0), (20.0, -3.0)];
    for (t0, dt) in [(5.0, -1.0), (5.0, 0.0), (-3.0, -0.25)] {
        let (mut a, mut b) = (Vec::new(), Vec::new());
        scalar::lerp_grid_into(&points, t0, dt, 7, &mut a);
        simd::lerp_grid_into(&points, t0, dt, 7, &mut b);
        assert_eq!(bits(&a), bits(&b), "t0={t0} dt={dt}");
    }
}

#[test]
fn active_path_name_is_consistent_with_dispatch() {
    let before = kernels::dispatch();
    force(KernelDispatch::Scalar);
    assert_eq!(kernels::active_path_name(), "scalar");
    force(KernelDispatch::Simd);
    assert!(["sse2", "neon", "portable"].contains(&kernels::active_path_name()));
    force(before);
}
