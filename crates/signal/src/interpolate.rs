//! Interpolation of sparse, irregular samples onto a regular grid.
//!
//! Taxi updates arrive tens of seconds apart and several taxis can report in
//! the same second. The paper (Sec. V-A) first merges same-second reports by
//! their mean, then uses **spline interpolation** to build a smooth 1 Hz
//! speed signal as DFT input — negative interpolated speeds are explicitly
//! tolerated because only the periodicity matters. This module provides that
//! machinery: same-time merging ([`merge_coincident`]), linear
//! interpolation, and a natural cubic spline (tridiagonal/Thomas solve).

/// Errors from constructing an interpolant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpolateError {
    /// No input samples were supplied.
    Empty,
    /// Sample abscissae must be strictly increasing; the offending index is
    /// the later of the two conflicting samples.
    NotStrictlyIncreasing(usize),
    /// A sample coordinate was NaN or infinite.
    NonFinite(usize),
}

impl std::fmt::Display for InterpolateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpolateError::Empty => write!(f, "no samples to interpolate"),
            InterpolateError::NotStrictlyIncreasing(i) => {
                write!(f, "sample times not strictly increasing at index {i}")
            }
            InterpolateError::NonFinite(i) => write!(f, "non-finite sample at index {i}"),
        }
    }
}

impl std::error::Error for InterpolateError {}

pub(crate) fn validate(points: &[(f64, f64)]) -> Result<(), InterpolateError> {
    if points.is_empty() {
        return Err(InterpolateError::Empty);
    }
    for (i, &(x, y)) in points.iter().enumerate() {
        if !x.is_finite() || !y.is_finite() {
            return Err(InterpolateError::NonFinite(i));
        }
        if i > 0 && points[i - 1].0 >= x {
            return Err(InterpolateError::NotStrictlyIncreasing(i));
        }
    }
    Ok(())
}

/// Merges samples whose abscissae fall in the same unit-width slot
/// (`t.floor()`), replacing each group by `(slot, mean value)`.
///
/// This is the paper's rule for "more than one record in a second": the mean
/// is used as the interpolation input. Input need not be sorted; output is
/// sorted and strictly increasing, ready for the interpolants here.
pub fn merge_coincident(samples: &[(f64, f64)]) -> Vec<(f64, f64)> {
    let mut sorted: Vec<(f64, f64)> =
        samples.iter().copied().filter(|(t, v)| t.is_finite() && v.is_finite()).collect();
    sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut out: Vec<(f64, f64)> = Vec::with_capacity(sorted.len());
    let mut i = 0;
    while i < sorted.len() {
        let slot = sorted[i].0.floor();
        let mut sum = 0.0;
        let mut count = 0.0;
        while i < sorted.len() && sorted[i].0.floor() == slot {
            sum += sorted[i].1;
            count += 1.0;
            i += 1;
        }
        out.push((slot, sum / count));
    }
    out
}

/// Piecewise-linear interpolation of `points` (strictly increasing in x) at
/// each query in `xs`. Queries outside the sample range are clamped to the
/// boundary values.
pub fn linear_interpolate(points: &[(f64, f64)], xs: &[f64]) -> Result<Vec<f64>, InterpolateError> {
    validate(points)?;
    Ok(xs.iter().map(|&x| linear_eval(points, x)).collect())
}

pub(crate) fn linear_eval(points: &[(f64, f64)], x: f64) -> f64 {
    let n = points.len();
    if x <= points[0].0 {
        return points[0].1;
    }
    if x >= points[n - 1].0 {
        return points[n - 1].1;
    }
    // partition_point returns the first index with t > x; the segment is
    // [idx-1, idx].
    let idx = points.partition_point(|&(t, _)| t <= x);
    let (x0, y0) = points[idx - 1];
    let (x1, y1) = points[idx];
    let w = (x - x0) / (x1 - x0);
    y0 + w * (y1 - y0)
}

/// A natural cubic spline through strictly increasing sample points.
///
/// "Natural" boundary conditions (zero second derivative at both ends) match
/// the standard textbook construction; evaluation outside the sample range
/// clamps to the boundary values, which is the safe choice when the caller's
/// analysis window slightly overhangs the data.
#[derive(Debug, Clone)]
pub struct CubicSpline {
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// Second derivatives at the knots (zero at both ends).
    m: Vec<f64>,
}

impl CubicSpline {
    /// Builds the spline. With one point the spline is constant; with two it
    /// degenerates to the connecting line.
    pub fn new(points: &[(f64, f64)]) -> Result<Self, InterpolateError> {
        validate(points)?;
        let n = points.len();
        let xs: Vec<f64> = points.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = points.iter().map(|p| p.1).collect();
        if n < 3 {
            return Ok(CubicSpline { xs, ys, m: vec![0.0; n] });
        }

        // Solve the tridiagonal system for interior second derivatives
        // (Thomas algorithm). Natural BCs: m[0] = m[n-1] = 0.
        let h: Vec<f64> = xs.windows(2).map(|w| w[1] - w[0]).collect();
        let interior = n - 2;
        let mut diag = vec![0.0; interior];
        let mut rhs = vec![0.0; interior];
        let mut sub = vec![0.0; interior]; // sub[i] couples unknown i to i-1
        let mut sup = vec![0.0; interior]; // sup[i] couples unknown i to i+1
        for i in 0..interior {
            let hi = h[i];
            let hi1 = h[i + 1];
            diag[i] = 2.0 * (hi + hi1);
            sub[i] = hi;
            sup[i] = hi1;
            rhs[i] = 6.0 * ((ys[i + 2] - ys[i + 1]) / hi1 - (ys[i + 1] - ys[i]) / hi);
        }
        // Forward elimination.
        for i in 1..interior {
            let w = sub[i] / diag[i - 1];
            diag[i] -= w * sup[i - 1];
            rhs[i] -= w * rhs[i - 1];
        }
        // Back substitution.
        let mut m = vec![0.0; n];
        if interior > 0 {
            m[n - 2] = rhs[interior - 1] / diag[interior - 1];
            for i in (0..interior - 1).rev() {
                m[i + 1] = (rhs[i] - sup[i] * m[i + 2]) / diag[i];
            }
        }
        Ok(CubicSpline { xs, ys, m })
    }

    /// Number of knots.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// True if the spline has no knots (never constructible; kept for API
    /// symmetry with `len`).
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Evaluates the spline at `x`, clamping outside the knot range.
    pub fn eval(&self, x: f64) -> f64 {
        let n = self.xs.len();
        if n == 1 || x <= self.xs[0] {
            return if x <= self.xs[0] { self.ys[0] } else { self.ys[n - 1] };
        }
        if x >= self.xs[n - 1] {
            return self.ys[n - 1];
        }
        let idx = self.xs.partition_point(|&t| t <= x);
        let (x0, x1) = (self.xs[idx - 1], self.xs[idx]);
        let (y0, y1) = (self.ys[idx - 1], self.ys[idx]);
        let (m0, m1) = (self.m[idx - 1], self.m[idx]);
        let h = x1 - x0;
        let a = (x1 - x) / h;
        let b = (x - x0) / h;
        a * y0 + b * y1 + ((a * a * a - a) * m0 + (b * b * b - b) * m1) * h * h / 6.0
    }

    /// Evaluates the spline at many points.
    pub fn eval_many(&self, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| self.eval(x)).collect()
    }

    /// Samples the spline on the regular grid `t0, t0+dt, …` with `count`
    /// points.
    pub fn sample_grid(&self, t0: f64, dt: f64, count: usize) -> Vec<f64> {
        (0..count).map(|k| self.eval(t0 + dt * k as f64)).collect()
    }
}

/// How to turn irregular samples into a regular grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// No interpolation: grid slots without a sample become 0. Used as the
    /// DESIGN.md ablation baseline.
    NearestOrZero,
    /// Piecewise linear.
    Linear,
    /// Natural cubic spline (the paper's choice).
    CubicSpline,
}

/// Resamples irregular `(t, v)` samples onto the regular grid
/// `t0, t0+dt, …` (`count` points) after same-slot mean-merging.
///
/// Returns `Err(Empty)` when no finite samples exist.
pub fn resample(
    samples: &[(f64, f64)],
    t0: f64,
    dt: f64,
    count: usize,
    method: Method,
) -> Result<Vec<f64>, InterpolateError> {
    let merged = merge_coincident(samples);
    if merged.is_empty() {
        return Err(InterpolateError::Empty);
    }
    match method {
        Method::NearestOrZero => {
            let mut grid = vec![0.0; count];
            for &(t, v) in &merged {
                let slot = ((t - t0) / dt).round();
                if slot >= 0.0 && (slot as usize) < count {
                    grid[slot as usize] = v;
                }
            }
            Ok(grid)
        }
        Method::Linear => {
            // The kernel's monotone-scan grid evaluation is bit-identical to
            // `linear_interpolate` on the same grid, without materialising
            // the query vector.
            validate(&merged)?;
            let mut out = Vec::with_capacity(count);
            crate::kernels::lerp_grid_into(&merged, t0, dt, count, &mut out);
            Ok(out)
        }
        Method::CubicSpline => {
            let spline = CubicSpline::new(&merged)?;
            Ok(spline.sample_grid(t0, dt, count))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_averages_same_second() {
        let s = vec![(10.2, 4.0), (10.7, 6.0), (20.0, 3.0)];
        let merged = merge_coincident(&s);
        assert_eq!(merged, vec![(10.0, 5.0), (20.0, 3.0)]);
    }

    #[test]
    fn merge_sorts_and_drops_non_finite() {
        let s = vec![(30.0, 1.0), (f64::NAN, 2.0), (10.0, 3.0), (20.0, f64::INFINITY)];
        let merged = merge_coincident(&s);
        assert_eq!(merged, vec![(10.0, 3.0), (30.0, 1.0)]);
    }

    #[test]
    fn merge_empty() {
        assert!(merge_coincident(&[]).is_empty());
    }

    #[test]
    fn linear_hits_knots_and_midpoints() {
        let pts = vec![(0.0, 0.0), (10.0, 20.0), (20.0, 0.0)];
        let out = linear_interpolate(&pts, &[0.0, 5.0, 10.0, 15.0, 20.0]).unwrap();
        assert_eq!(out, vec![0.0, 10.0, 20.0, 10.0, 0.0]);
    }

    #[test]
    fn linear_clamps_outside_range() {
        let pts = vec![(0.0, 1.0), (10.0, 3.0)];
        let out = linear_interpolate(&pts, &[-5.0, 15.0]).unwrap();
        assert_eq!(out, vec![1.0, 3.0]);
    }

    #[test]
    fn errors_are_reported() {
        assert_eq!(linear_interpolate(&[], &[0.0]).unwrap_err(), InterpolateError::Empty);
        assert_eq!(
            linear_interpolate(&[(0.0, 1.0), (0.0, 2.0)], &[0.0]).unwrap_err(),
            InterpolateError::NotStrictlyIncreasing(1)
        );
        assert_eq!(
            CubicSpline::new(&[(0.0, f64::NAN)]).unwrap_err(),
            InterpolateError::NonFinite(0)
        );
        // Display formatting is exercised for coverage of error paths.
        assert!(InterpolateError::Empty.to_string().contains("no samples"));
    }

    #[test]
    fn spline_single_point_is_constant() {
        let s = CubicSpline::new(&[(5.0, 7.0)]).unwrap();
        assert_eq!(s.eval(0.0), 7.0);
        assert_eq!(s.eval(5.0), 7.0);
        assert_eq!(s.eval(100.0), 7.0);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn spline_two_points_is_linear() {
        let s = CubicSpline::new(&[(0.0, 0.0), (10.0, 5.0)]).unwrap();
        assert!((s.eval(4.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn spline_interpolates_knots_exactly() {
        let pts = vec![(0.0, 1.0), (1.0, -1.0), (2.5, 4.0), (4.0, 0.0), (6.0, 2.0)];
        let s = CubicSpline::new(&pts).unwrap();
        for &(x, y) in &pts {
            assert!((s.eval(x) - y).abs() < 1e-10, "knot ({x},{y}) missed: {}", s.eval(x));
        }
    }

    #[test]
    fn spline_reproduces_a_line_exactly() {
        // A natural cubic spline through collinear points is that line.
        let pts: Vec<(f64, f64)> = (0..8).map(|k| (k as f64, 3.0 * k as f64 - 2.0)).collect();
        let s = CubicSpline::new(&pts).unwrap();
        for k in 0..70 {
            let x = k as f64 * 0.1;
            assert!((s.eval(x) - (3.0 * x - 2.0)).abs() < 1e-9);
        }
    }

    #[test]
    fn spline_is_smooth_between_knots() {
        // The spline of sin(x) sampled coarsely should track sin closely.
        let pts: Vec<(f64, f64)> = (0..=12)
            .map(|k| {
                let x = k as f64 * 0.5;
                (x, x.sin())
            })
            .collect();
        let s = CubicSpline::new(&pts).unwrap();
        let mut max_err: f64 = 0.0;
        for k in 0..=120 {
            let x = 0.5 + k as f64 * (5.0 / 120.0); // stay inside, skip edges
            max_err = max_err.max((s.eval(x) - x.sin()).abs());
        }
        assert!(max_err < 0.01, "spline error too large: {max_err}");
    }

    #[test]
    fn spline_clamps_outside() {
        let s = CubicSpline::new(&[(0.0, 2.0), (1.0, 3.0), (2.0, 1.0)]).unwrap();
        assert_eq!(s.eval(-10.0), 2.0);
        assert_eq!(s.eval(10.0), 1.0);
    }

    #[test]
    fn sample_grid_matches_eval() {
        let s = CubicSpline::new(&[(0.0, 0.0), (5.0, 10.0), (10.0, 0.0)]).unwrap();
        let grid = s.sample_grid(0.0, 2.5, 5);
        assert_eq!(grid.len(), 5);
        for (k, g) in grid.iter().enumerate() {
            assert_eq!(*g, s.eval(2.5 * k as f64));
        }
    }

    #[test]
    fn resample_methods_agree_on_knots() {
        let samples = vec![(0.0, 5.0), (10.0, 15.0), (20.0, 5.0)];
        for method in [Method::Linear, Method::CubicSpline] {
            let grid = resample(&samples, 0.0, 10.0, 3, method).unwrap();
            assert!((grid[0] - 5.0).abs() < 1e-10);
            assert!((grid[1] - 15.0).abs() < 1e-10);
            assert!((grid[2] - 5.0).abs() < 1e-10);
        }
    }

    #[test]
    fn resample_nearest_or_zero_leaves_gaps_at_zero() {
        let samples = vec![(0.0, 5.0), (3.0, 7.0)];
        let grid = resample(&samples, 0.0, 1.0, 5, Method::NearestOrZero).unwrap();
        assert_eq!(grid, vec![5.0, 0.0, 0.0, 7.0, 0.0]);
    }

    #[test]
    fn resample_empty_is_error() {
        assert!(resample(&[], 0.0, 1.0, 10, Method::CubicSpline).is_err());
        assert!(resample(&[(f64::NAN, 1.0)], 0.0, 1.0, 10, Method::Linear).is_err());
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        fn strictly_increasing_points() -> impl Strategy<Value = Vec<(f64, f64)>> {
            prop::collection::vec((0.1f64..5.0, -50.0f64..50.0), 1..40).prop_map(|steps| {
                let mut x = 0.0;
                steps
                    .into_iter()
                    .map(|(dx, y)| {
                        x += dx;
                        (x, y)
                    })
                    .collect()
            })
        }

        proptest! {
            #[test]
            fn spline_passes_through_all_knots(pts in strictly_increasing_points()) {
                let s = CubicSpline::new(&pts).unwrap();
                for &(x, y) in &pts {
                    prop_assert!((s.eval(x) - y).abs() < 1e-6);
                }
            }

            #[test]
            fn linear_stays_within_segment_bounds(pts in strictly_increasing_points(),
                                                  q in 0.0f64..200.0) {
                let v = linear_interpolate(&pts, &[q]).unwrap()[0];
                let lo = pts.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
                let hi = pts.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
                prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
            }

            #[test]
            fn merge_output_strictly_increasing(raw in prop::collection::vec(
                (0.0f64..1000.0, -10.0f64..100.0), 0..100)) {
                let merged = merge_coincident(&raw);
                for w in merged.windows(2) {
                    prop_assert!(w[0].0 < w[1].0);
                }
            }
        }
    }
}
