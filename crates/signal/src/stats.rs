//! Descriptive statistics shared across the workspace.
//!
//! The reductions (mean, variance, weighted mean) run through the
//! [`crate::kernels`] 4-lane sums — they reassociate relative to a plain
//! sequential `iter().sum()` and are covered by the accuracy-gate
//! discipline, not bit-identity to the pre-kernel code.

/// Arithmetic mean; `None` for an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(crate::kernels::sum(xs) / xs.len() as f64)
    }
}

/// Population variance (divides by `n`); `None` for an empty slice.
pub fn variance(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    Some(crate::kernels::sum_sq_diff(xs, m) / xs.len() as f64)
}

/// Sample variance (divides by `n-1`); `None` when fewer than two samples.
pub fn sample_variance(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    Some(crate::kernels::sum_sq_diff(xs, m) / (xs.len() - 1) as f64)
}

/// Population standard deviation.
pub fn stddev(xs: &[f64]) -> Option<f64> {
    variance(xs).map(f64::sqrt)
}

/// Weighted mean; `None` when weights sum to zero or inputs are empty or of
/// mismatched length.
pub fn weighted_mean(xs: &[f64], ws: &[f64]) -> Option<f64> {
    if xs.is_empty() || xs.len() != ws.len() {
        return None;
    }
    let wsum: f64 = crate::kernels::sum(ws);
    if wsum == 0.0 {
        return None;
    }
    Some(crate::kernels::dot(xs, ws) / wsum)
}

/// Median (average of central pair for even lengths); `None` when empty.
pub fn median(xs: &[f64]) -> Option<f64> {
    percentile(xs, 50.0)
}

/// Percentile `p ∈ [0, 100]` with linear interpolation between order
/// statistics; `None` when empty.
///
/// # Panics
/// Panics when `p` is outside `[0, 100]`.
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0,100], got {p}");
    if xs.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let w = rank - lo as f64;
        Some(sorted[lo] * (1.0 - w) + sorted[hi] * w)
    }
}

/// Minimum by total order; `None` when empty.
pub fn min(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().min_by(f64::total_cmp)
}

/// Maximum by total order; `None` when empty.
pub fn max(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().max_by(f64::total_cmp)
}

/// Maximum-likelihood fit of a normal distribution: `(μ, σ)` with the
/// population σ. Used to reproduce the paper's Fig. 2(d) observation that
/// consecutive-update speed differences fit `N(0, 40)`.
pub fn fit_normal(xs: &[f64]) -> Option<(f64, f64)> {
    Some((mean(xs)?, stddev(xs)?))
}

/// One-pass summary of a data set.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Population standard deviation (0 when empty).
    pub stddev: f64,
    /// Minimum (0 when empty).
    pub min: f64,
    /// Maximum (0 when empty).
    pub max: f64,
}

impl Summary {
    /// Computes the summary of `xs`.
    pub fn of(xs: &[f64]) -> Summary {
        if xs.is_empty() {
            return Summary::default();
        }
        Summary {
            count: xs.len(),
            mean: mean(xs).unwrap(),
            stddev: stddev(xs).unwrap(),
            min: min(xs).unwrap(),
            max: max(xs).unwrap(),
        }
    }
}

/// Streaming mean/variance accumulator (Welford's algorithm), usable when
/// samples arrive one at a time — e.g. the continuous monitor.
#[derive(Debug, Clone, Copy, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford::default()
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean; `None` before any sample.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// Running population variance; `None` before any sample.
    pub fn variance(&self) -> Option<f64> {
        (self.n > 0).then(|| self.m2 / self.n as f64)
    }

    /// Running population standard deviation; `None` before any sample.
    pub fn stddev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_inputs_give_none() {
        assert_eq!(mean(&[]), None);
        assert_eq!(variance(&[]), None);
        assert_eq!(stddev(&[]), None);
        assert_eq!(median(&[]), None);
        assert_eq!(min(&[]), None);
        assert_eq!(max(&[]), None);
        assert_eq!(fit_normal(&[]), None);
        assert_eq!(weighted_mean(&[], &[]), None);
        assert_eq!(sample_variance(&[1.0]), None);
    }

    #[test]
    fn basic_mean_variance() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), Some(5.0));
        assert_eq!(variance(&xs), Some(4.0));
        assert_eq!(stddev(&xs), Some(2.0));
        assert!((sample_variance(&xs).unwrap() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn median_even_and_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), Some(2.5));
        assert_eq!(median(&[7.0]), Some(7.0));
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(percentile(&xs, 0.0), Some(10.0));
        assert_eq!(percentile(&xs, 100.0), Some(50.0));
        assert_eq!(percentile(&xs, 25.0), Some(20.0));
        assert_eq!(percentile(&xs, 62.5), Some(35.0));
    }

    #[test]
    #[should_panic(expected = "percentile must be in [0,100]")]
    fn percentile_rejects_out_of_range() {
        percentile(&[1.0], 101.0);
    }

    #[test]
    fn weighted_mean_weights_matter() {
        assert_eq!(weighted_mean(&[1.0, 3.0], &[1.0, 1.0]), Some(2.0));
        assert_eq!(weighted_mean(&[1.0, 3.0], &[3.0, 1.0]), Some(1.5));
        assert_eq!(weighted_mean(&[1.0, 3.0], &[0.0, 0.0]), None);
        assert_eq!(weighted_mean(&[1.0], &[1.0, 2.0]), None);
    }

    #[test]
    fn min_max_handle_negatives() {
        let xs = [-3.0, 7.0, -10.0, 2.0];
        assert_eq!(min(&xs), Some(-10.0));
        assert_eq!(max(&xs), Some(7.0));
    }

    #[test]
    fn fit_normal_recovers_parameters() {
        // Symmetric data around 5 with known spread.
        let xs = [3.0, 4.0, 5.0, 6.0, 7.0];
        let (mu, sigma) = fit_normal(&xs).unwrap();
        assert_eq!(mu, 5.0);
        assert!((sigma - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_matches_components() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let s = Summary::of(&xs);
        assert_eq!(s.count, 4);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(Summary::of(&[]), Summary::default());
    }

    #[test]
    fn welford_matches_batch() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        assert_eq!(w.mean(), None);
        assert_eq!(w.variance(), None);
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean().unwrap() - 5.0).abs() < 1e-12);
        assert!((w.variance().unwrap() - 4.0).abs() < 1e-12);
        assert!((w.stddev().unwrap() - 2.0).abs() < 1e-12);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn mean_bounded_by_min_max(xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
                let m = mean(&xs).unwrap();
                prop_assert!(m >= min(&xs).unwrap() - 1e-6);
                prop_assert!(m <= max(&xs).unwrap() + 1e-6);
            }

            #[test]
            fn welford_agrees_with_batch(xs in prop::collection::vec(-1e3f64..1e3, 1..200)) {
                let mut w = Welford::new();
                for &x in &xs {
                    w.push(x);
                }
                prop_assert!((w.mean().unwrap() - mean(&xs).unwrap()).abs() < 1e-6);
                prop_assert!((w.variance().unwrap() - variance(&xs).unwrap()).abs() < 1e-4);
            }

            #[test]
            fn percentile_monotone(xs in prop::collection::vec(-100.0f64..100.0, 1..100),
                                   p1 in 0.0f64..100.0, p2 in 0.0f64..100.0) {
                let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
                prop_assert!(percentile(&xs, lo).unwrap() <= percentile(&xs, hi).unwrap() + 1e-9);
            }

            #[test]
            fn variance_nonnegative(xs in prop::collection::vec(-1e4f64..1e4, 1..100)) {
                prop_assert!(variance(&xs).unwrap() >= 0.0);
            }
        }
    }
}
