//! # taxilight-signal
//!
//! Self-contained digital-signal-processing substrate for the `taxilight`
//! workspace. Everything here is implemented from scratch (no external
//! numeric dependencies):
//!
//! * [`complex`] — a minimal `Complex64` type.
//! * [`dft`] — the plain *O(N²)* discrete Fourier transform exactly as the
//!   paper's Eq. (1) states it.
//! * [`fft`] — *O(N log N)* radix-2 FFT plus Bluestein's algorithm so any
//!   input length is supported.
//! * [`interpolate`] — linear and natural-cubic-spline interpolation used to
//!   densify sparse taxi-speed samples onto a 1 Hz grid.
//! * [`convolution`] — direct and FFT-based convolution, and the circular
//!   moving average used by the sliding-window change-point detector.
//! * [`periodogram`] — magnitude spectra, dominant-period extraction
//!   (paper Eq. (2)) with period-band constraints.
//! * [`stats`] — descriptive statistics (mean/variance/percentiles/weighted
//!   means) shared by every layer above.
//! * [`histogram`] — fixed-width histograms and empirical CDFs used by the
//!   red-light-duration classifier and the evaluation section.
//! * [`autocorr`] — time-domain period detection via the autocorrelation,
//!   an alternative estimator kept for the method ablation.
//! * [`plan`] — precomputed FFT plans (radix-2 twiddles, Bluestein chirp +
//!   b-spectrum) cached per transform length.
//! * [`workspace`] — [`SignalWorkspace`], per-thread reusable scratch making
//!   the resample → Eq. (1) → period-search chain allocation-free in steady
//!   state while staying bit-identical to the free functions.

#![warn(missing_docs)]

pub mod autocorr;
pub mod complex;
pub mod convolution;
pub mod dft;
pub mod fft;
pub mod histogram;
pub mod interpolate;
pub mod kernels;
pub mod periodogram;
pub mod plan;
pub mod stats;
pub mod workspace;

pub use complex::Complex64;
pub use plan::{FftPlan, PlanCache, PlanCacheStats};
pub use workspace::SignalWorkspace;
