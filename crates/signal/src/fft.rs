//! Fast Fourier transform: iterative radix-2 plus Bluestein's algorithm for
//! arbitrary lengths.
//!
//! Conventions: [`fft`] computes the standard engineering forward transform
//! `Y_n = Σ_k X_k e^{-i2πkn/N}` (no normalisation); [`ifft`] inverts it with
//! the `1/N` factor. [`eq1_spectrum`] adapts the output to the paper's
//! Eq. (1) convention (positive exponent, `1/N` normalisation) so the
//! cycle-length identifier can use either this module or [`crate::dft`]
//! interchangeably — the plain DFT is kept as the property-test oracle and
//! as a benchmark baseline.

use crate::complex::Complex64;

/// Returns `true` if `n` is a power of two (zero is not).
#[inline]
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// Smallest power of two `>= n` (`n = 0` maps to 1).
#[inline]
pub fn next_power_of_two(n: usize) -> usize {
    n.next_power_of_two().max(1)
}

/// In-place iterative radix-2 Cooley–Tukey FFT.
///
/// # Panics
/// Panics if `buf.len()` is not a power of two. Use [`fft`] for arbitrary
/// lengths.
pub fn fft_pow2_in_place(buf: &mut [Complex64]) {
    let n = buf.len();
    assert!(is_power_of_two(n), "fft_pow2_in_place requires a power-of-two length, got {n}");
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if i < j {
            buf.swap(i, j);
        }
    }

    // Butterflies. Twiddle for stage of half-size `half`: w = e^{-iπ/half}.
    // Each stage's twiddles are materialised with the same incremental
    // `w *= w_base` chain the loop used to carry inline (every block
    // restarts at ONE, so one table serves all blocks), then the stage runs
    // through the dispatched kernel — bit-identical by construction.
    let mut twiddles: Vec<Complex64> = Vec::with_capacity(n / 2);
    let mut half = 1;
    while half < n {
        let step = -std::f64::consts::PI / half as f64;
        let w_base = Complex64::cis(step);
        twiddles.clear();
        let mut w = Complex64::ONE;
        for _ in 0..half {
            twiddles.push(w);
            w *= w_base;
        }
        crate::kernels::butterfly_stage(buf, half, &twiddles);
        half *= 2;
    }
}

/// Forward FFT of a complex signal of arbitrary length.
///
/// Power-of-two lengths use radix-2 directly; other lengths go through
/// Bluestein's chirp-z reformulation (still `O(N log N)`).
pub fn fft(signal: &[Complex64]) -> Vec<Complex64> {
    let n = signal.len();
    if n == 0 {
        return Vec::new();
    }
    if is_power_of_two(n) {
        let mut buf = signal.to_vec();
        fft_pow2_in_place(&mut buf);
        buf
    } else {
        bluestein(signal)
    }
}

/// Forward FFT of a real signal (convenience wrapper over [`fft`]).
pub fn fft_real(signal: &[f64]) -> Vec<Complex64> {
    let buf: Vec<Complex64> = signal.iter().map(|&v| Complex64::from_real(v)).collect();
    fft(&buf)
}

/// Inverse FFT: recovers the time-domain signal from [`fft`] output,
/// including the `1/N` normalisation.
pub fn ifft(spectrum: &[Complex64]) -> Vec<Complex64> {
    let n = spectrum.len();
    if n == 0 {
        return Vec::new();
    }
    // IFFT(x) = conj(FFT(conj(x))) / N.
    let mut conj = spectrum.to_vec();
    crate::kernels::conj_in_place(&mut conj);
    let mut out = fft(&conj);
    let inv_n = 1.0 / n as f64;
    crate::kernels::conj_scale_in_place(&mut out, inv_n);
    out
}

/// The paper's Eq. (1) spectrum computed via FFT.
///
/// Eq. (1) uses a positive exponent and a `1/N` factor. For a real input
/// `X`, `Eq1_n = (1/N)·conj(FFT(X)_n)`, so magnitudes are identical to the
/// standard convention and only phases flip.
pub fn eq1_spectrum(signal: &[f64]) -> Vec<Complex64> {
    let n = signal.len();
    if n == 0 {
        return Vec::new();
    }
    let inv_n = 1.0 / n as f64;
    let mut out = fft_real(signal);
    crate::kernels::conj_scale_in_place(&mut out, inv_n);
    out
}

/// Bluestein's algorithm: expresses an arbitrary-N DFT as a circular
/// convolution of length `m = next_pow2(2N-1)`, evaluated with radix-2 FFTs.
fn bluestein(signal: &[Complex64]) -> Vec<Complex64> {
    let n = signal.len();
    debug_assert!(n > 0);
    let m = next_power_of_two(2 * n - 1);

    // Chirp w_k = e^{-iπk²/n}. Reduce k² mod 2n to keep angles accurate:
    // e^{-iπk²/n} has period 2n in k².
    let chirp: Vec<Complex64> = (0..n)
        .map(|k| {
            let k2 = (k as u128 * k as u128) % (2 * n as u128);
            Complex64::cis(-std::f64::consts::PI * k2 as f64 / n as f64)
        })
        .collect();

    // a_k = x_k · w_k, zero-padded to m.
    let mut a = vec![Complex64::ZERO; m];
    crate::kernels::cmul_into(signal, &chirp, &mut a[..n]);

    // b_k = conj(w_k) arranged circularly: b[0] = conj(w_0), b[k] = b[m-k] = conj(w_k).
    let mut b = vec![Complex64::ZERO; m];
    b[0] = chirp[0].conj();
    for k in 1..n {
        let c = chirp[k].conj();
        b[k] = c;
        b[m - k] = c;
    }

    fft_pow2_in_place(&mut a);
    fft_pow2_in_place(&mut b);
    crate::kernels::cmul_in_place(&mut a, &b);
    // Inverse FFT of the product.
    let conv = ifft(&a);

    // Y_k = w_k · conv_k (complex × is bitwise commutative, so the kernel's
    // operand order matches the legacy `chirp[k] * conv[k]`).
    let mut out = vec![Complex64::ZERO; n];
    crate::kernels::cmul_into(&chirp, &conv[..n], &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft;

    fn assert_spec_close(a: &[Complex64], b: &[Complex64], eps: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (*x - *y).abs() < eps,
                "bin {i} differs: {x:?} vs {y:?} (|Δ| = {})",
                (*x - *y).abs()
            );
        }
    }

    #[test]
    fn power_of_two_helpers() {
        assert!(is_power_of_two(1));
        assert!(is_power_of_two(2));
        assert!(is_power_of_two(1024));
        assert!(!is_power_of_two(0));
        assert!(!is_power_of_two(3));
        assert!(!is_power_of_two(1023));
        assert_eq!(next_power_of_two(0), 1);
        assert_eq!(next_power_of_two(1), 1);
        assert_eq!(next_power_of_two(5), 8);
        assert_eq!(next_power_of_two(8), 8);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(fft(&[]).is_empty());
        assert!(ifft(&[]).is_empty());
        let one = [Complex64::new(2.0, -3.0)];
        assert_eq!(fft(&one), vec![one[0]]);
    }

    #[test]
    fn impulse_gives_flat_spectrum() {
        let mut x = vec![Complex64::ZERO; 16];
        x[0] = Complex64::ONE;
        let spec = fft(&x);
        for c in spec {
            assert!((c - Complex64::ONE).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn in_place_rejects_non_pow2() {
        let mut x = vec![Complex64::ZERO; 6];
        fft_pow2_in_place(&mut x);
    }

    #[test]
    fn pow2_matches_plain_dft() {
        // Compare against the O(N²) oracle with the conjugate/normalisation
        // conversion: standard FFT = N·conj(Eq1) for real input.
        let x: Vec<f64> = (0..32).map(|k| ((k * k) % 17) as f64 - 8.0).collect();
        let fast = fft_real(&x);
        let slow = dft::dft_real(&x);
        let n = x.len() as f64;
        let converted: Vec<Complex64> = slow.iter().map(|c| c.conj().scale(n)).collect();
        assert_spec_close(&fast, &converted, 1e-8);
    }

    #[test]
    fn bluestein_matches_plain_dft_many_sizes() {
        for n in [2usize, 3, 5, 6, 7, 9, 11, 12, 13, 17, 30, 45, 97, 100] {
            let x: Vec<f64> = (0..n).map(|k| ((3 * k + 1) % 7) as f64 * 0.5 - 1.0).collect();
            let fast = fft_real(&x);
            let slow = dft::dft_real(&x);
            let converted: Vec<Complex64> = slow.iter().map(|c| c.conj().scale(n as f64)).collect();
            assert_spec_close(&fast, &converted, 1e-7);
        }
    }

    #[test]
    fn round_trip_pow2() {
        let x: Vec<Complex64> =
            (0..64).map(|k| Complex64::new((k as f64).sin(), (k as f64 * 0.3).cos())).collect();
        let back = ifft(&fft(&x));
        assert_spec_close(&back, &x, 1e-10);
    }

    #[test]
    fn round_trip_arbitrary_length() {
        for n in [3usize, 10, 37, 60, 101] {
            let x: Vec<Complex64> = (0..n)
                .map(|k| Complex64::new((k as f64 * 0.7).sin(), (k as f64 * 1.1).cos()))
                .collect();
            let back = ifft(&fft(&x));
            assert_spec_close(&back, &x, 1e-8);
        }
    }

    #[test]
    fn eq1_spectrum_matches_paper_dft() {
        for n in [16usize, 24, 60] {
            let x: Vec<f64> = (0..n)
                .map(|k| (2.0 * std::f64::consts::PI * 3.0 * k as f64 / n as f64).sin() + 0.3)
                .collect();
            let via_fft = eq1_spectrum(&x);
            let via_dft = dft::dft_real(&x);
            assert_spec_close(&via_fft, &via_dft, 1e-9);
        }
    }

    #[test]
    fn tone_detection_at_non_pow2_length() {
        // 7 cycles in 90 samples → dominant bin 7.
        let n = 90;
        let x: Vec<f64> = (0..n)
            .map(|k| (2.0 * std::f64::consts::PI * 7.0 * k as f64 / n as f64).cos())
            .collect();
        let mags: Vec<f64> = eq1_spectrum(&x).iter().map(|c| c.abs()).collect();
        let argmax =
            mags[..n / 2].iter().enumerate().skip(1).max_by(|a, b| a.1.total_cmp(b.1)).unwrap().0;
        assert_eq!(argmax, 7);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn fft_matches_dft_oracle(xs in prop::collection::vec(-100.0f64..100.0, 1..80)) {
                let fast = eq1_spectrum(&xs);
                let slow = dft::dft_real(&xs);
                for (a, b) in fast.iter().zip(&slow) {
                    prop_assert!((*a - *b).abs() < 1e-6 * (1.0 + b.abs()));
                }
            }

            #[test]
            fn fft_ifft_round_trip(xs in prop::collection::vec(-50.0f64..50.0, 1..128)) {
                let sig: Vec<Complex64> = xs.iter().map(|&v| Complex64::from_real(v)).collect();
                let back = ifft(&fft(&sig));
                for (a, b) in back.iter().zip(&sig) {
                    prop_assert!((*a - *b).abs() < 1e-7);
                }
            }

            #[test]
            fn parseval_holds(xs in prop::collection::vec(-10.0f64..10.0, 1..100)) {
                let n = xs.len() as f64;
                let time: f64 = xs.iter().map(|v| v * v).sum();
                let freq: f64 = fft_real(&xs).iter().map(|c| c.norm_sqr()).sum::<f64>() / n;
                prop_assert!((time - freq).abs() < 1e-6 * (1.0 + time));
            }
        }
    }
}
