//! The plain *O(N²)* discrete Fourier transform.
//!
//! The paper (Eq. 1) defines the transform it uses as
//!
//! ```text
//! x_n = (1/N) Σ_{k=0}^{N-1} X_k · e^{i2πkn/N}
//! ```
//!
//! i.e. a *forward* analysis with a `1/N` normalisation and a positive
//! exponent. For period detection only bin magnitudes matter, so the sign of
//! the exponent is irrelevant; we keep the paper's convention here and offer
//! the usual engineering convention (negative exponent, no normalisation) in
//! [`crate::fft`]. This module is the reference implementation the FFT is
//! property-tested against, and is also benchmarked against the FFT as a
//! DESIGN.md ablation.

use crate::complex::Complex64;

/// Computes the paper's Eq. (1) transform of a real-valued signal.
///
/// Returns the `N` complex coefficients `x_0 … x_{N-1}` with the paper's
/// `1/N` normalisation. An empty input yields an empty output.
pub fn dft_real(signal: &[f64]) -> Vec<Complex64> {
    let n = signal.len();
    if n == 0 {
        return Vec::new();
    }
    let inv_n = 1.0 / n as f64;
    let step = 2.0 * std::f64::consts::PI / n as f64;
    let mut out = Vec::with_capacity(n);
    for bin in 0..n {
        let mut acc = Complex64::ZERO;
        for (k, &xk) in signal.iter().enumerate() {
            // e^{i·2π·k·bin/N}; reduce k*bin mod N first to keep the angle
            // small and the trigonometry accurate for long signals.
            let idx = (k * bin) % n;
            acc += Complex64::cis(step * idx as f64).scale(xk);
        }
        out.push(acc.scale(inv_n));
    }
    out
}

/// Computes Eq. (1) for a complex-valued signal.
pub fn dft_complex(signal: &[Complex64]) -> Vec<Complex64> {
    let n = signal.len();
    if n == 0 {
        return Vec::new();
    }
    let inv_n = 1.0 / n as f64;
    let step = 2.0 * std::f64::consts::PI / n as f64;
    let mut out = Vec::with_capacity(n);
    for bin in 0..n {
        let mut acc = Complex64::ZERO;
        for (k, &xk) in signal.iter().enumerate() {
            let idx = (k * bin) % n;
            acc += Complex64::cis(step * idx as f64) * xk;
        }
        out.push(acc.scale(inv_n));
    }
    out
}

/// Magnitudes `|x_n|` of the Eq. (1) spectrum of a real signal.
pub fn dft_magnitudes(signal: &[f64]) -> Vec<f64> {
    dft_real(signal).into_iter().map(Complex64::abs).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn empty_input() {
        assert!(dft_real(&[]).is_empty());
        assert!(dft_complex(&[]).is_empty());
    }

    #[test]
    fn dc_signal_has_only_bin_zero() {
        let x = vec![3.0; 16];
        let spec = dft_real(&x);
        assert!((spec[0].re - 3.0).abs() < EPS);
        assert!(spec[0].im.abs() < EPS);
        for bin in &spec[1..] {
            assert!(bin.abs() < EPS, "leakage in non-DC bin: {bin:?}");
        }
    }

    #[test]
    fn single_tone_peaks_at_its_frequency() {
        // cos(2π·5·k/64): energy in bins 5 and 64-5 = 59, each of magnitude ½.
        let n = 64;
        let x: Vec<f64> = (0..n)
            .map(|k| (2.0 * std::f64::consts::PI * 5.0 * k as f64 / n as f64).cos())
            .collect();
        let mags = dft_magnitudes(&x);
        assert!((mags[5] - 0.5).abs() < EPS);
        assert!((mags[59] - 0.5).abs() < EPS);
        for (i, m) in mags.iter().enumerate() {
            if i != 5 && i != 59 {
                assert!(*m < EPS, "bin {i} leaked: {m}");
            }
        }
    }

    #[test]
    fn spectrum_of_real_signal_is_conjugate_symmetric() {
        let x = vec![1.0, 4.0, -2.0, 0.5, 3.0, -1.0, 0.0, 2.0];
        let spec = dft_real(&x);
        let n = x.len();
        for k in 1..n {
            let a = spec[k];
            let b = spec[n - k].conj();
            assert!((a.re - b.re).abs() < EPS && (a.im - b.im).abs() < EPS);
        }
    }

    #[test]
    fn linearity() {
        let a = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let b = vec![-2.0, 0.0, 1.0, 7.0, -3.0];
        let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| 2.0 * x + 3.0 * y).collect();
        let sa = dft_real(&a);
        let sb = dft_real(&b);
        let ssum = dft_real(&sum);
        for k in 0..a.len() {
            let expect = sa[k].scale(2.0) + sb[k].scale(3.0);
            assert!((ssum[k] - expect).abs() < EPS);
        }
    }

    #[test]
    fn complex_version_matches_real_on_real_input() {
        let x = vec![0.3, -1.2, 2.5, 0.0, 4.4, -0.7];
        let xc: Vec<Complex64> = x.iter().map(|&v| Complex64::from_real(v)).collect();
        let sr = dft_real(&x);
        let sc = dft_complex(&xc);
        for (a, b) in sr.iter().zip(&sc) {
            assert!((*a - *b).abs() < EPS);
        }
    }

    #[test]
    fn parseval_energy_relation() {
        // With the 1/N forward normalisation, Parseval reads
        // (1/N)·Σ|X_k|² = Σ|x_n|².
        let x = vec![1.0, -2.0, 0.5, 3.25, -1.75, 0.0, 2.0, 1.0];
        let n = x.len() as f64;
        let time_energy: f64 = x.iter().map(|v| v * v).sum::<f64>() / n;
        let freq_energy: f64 = dft_real(&x).iter().map(|c| c.norm_sqr()).sum();
        assert!((time_energy - freq_energy).abs() < EPS);
    }
}
