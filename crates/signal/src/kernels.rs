//! Explicit-width SIMD kernels for the signal hot path.
//!
//! Every inner loop that dominates a per-light identification lap — complex
//! magnitudes, radix-2 butterfly passes, Bluestein's pointwise complex
//! products, the grid-resample evaluations, the 4-lane sums/dot products
//! behind means and variances, and the circular moving average — lives here
//! twice: once as a portable **4-lane-chunked scalar** implementation
//! (written so the autovectorizer can lift it), and once as an
//! **explicit-width SIMD** implementation (`x86_64` SSE2 — part of the
//! baseline ABI, so no feature detection — or aarch64 NEON, both via
//! `core::arch`; other targets reuse the scalar lanes).
//!
//! # Dispatch contract
//!
//! A single process-global dispatch point selects the path:
//!
//! * `TAXILIGHT_KERNELS=scalar|simd` (read once, lazily) — the differential
//!   knob CI uses to run the whole workspace test suite under both paths;
//! * [`force`] overrides it at runtime, which is how the in-process
//!   differential proptests compare both paths in one run;
//! * the default (no env var) is [`KernelDispatch::Simd`].
//!
//! # Numeric contract
//!
//! **The scalar and SIMD paths are bit-identical on finite inputs for every
//! kernel in this module** (pinned by `tests/kernel_identity.rs`): the
//! scalar fallback performs the same IEEE-754 operations in the same order,
//! including the 4-lane accumulator structure of the reductions (two 2-lane
//! registers combined as `(l0+l2)+(l1+l3)`, remainder appended
//! sequentially). Relative to the *legacy* (pre-kernel) code two classes
//! exist:
//!
//! * **bit-identity class** — element-wise kernels (butterflies, complex
//!   products, conjugate/scale, resample evaluations, the circular moving
//!   average, demean subtraction) preserve the legacy summation order and
//!   stay bit-identical to it;
//! * **accuracy-gated class** — reductions ([`sum`], [`dot`],
//!   [`sum_sq_diff`]) reassociate into four lanes, and [`magnitudes_into`]
//!   computes `sqrt(re² + im²)` instead of `f64::hypot`; these change
//!   low-order bits vs. the legacy code and are validated end-to-end by the
//!   `evalsuite` accuracy and robustness gates, the same discipline as
//!   `SpectrumPath::PaddedPow2`.
//!
//! Kernels never allocate: callers pass slices or reuse output `Vec`s
//! (cleared/resized, so warm calls stay inside the zero-alloc gate).

use crate::complex::Complex64;
use std::sync::atomic::{AtomicU8, Ordering};

/// Which kernel implementation the process-global dispatch point selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelDispatch {
    /// The portable 4-lane-chunked scalar fallback.
    Scalar,
    /// The explicit-width SIMD path for this target (SSE2 on `x86_64`,
    /// NEON on aarch64; the scalar lanes elsewhere).
    Simd,
}

const UNINIT: u8 = 0;
const SCALAR: u8 = 1;
const SIMD: u8 = 2;

static ACTIVE: AtomicU8 = AtomicU8::new(UNINIT);

#[cold]
fn init_from_env() -> u8 {
    let code = match std::env::var("TAXILIGHT_KERNELS") {
        Ok(v) if v.eq_ignore_ascii_case("scalar") => SCALAR,
        Ok(v) if v.eq_ignore_ascii_case("simd") => SIMD,
        Ok(v) => panic!("TAXILIGHT_KERNELS must be \"scalar\" or \"simd\", got {v:?}"),
        Err(_) => SIMD,
    };
    ACTIVE.store(code, Ordering::Relaxed);
    code
}

/// The currently selected dispatch, initialised from `TAXILIGHT_KERNELS`
/// on first use.
///
/// # Panics
/// Panics when the environment variable is set to anything other than
/// `scalar` or `simd` — a typo must not silently pick a path.
#[inline]
pub fn dispatch() -> KernelDispatch {
    match ACTIVE.load(Ordering::Relaxed) {
        SCALAR => KernelDispatch::Scalar,
        SIMD => KernelDispatch::Simd,
        _ => {
            if init_from_env() == SCALAR {
                KernelDispatch::Scalar
            } else {
                KernelDispatch::Simd
            }
        }
    }
}

/// Overrides the process-global dispatch (used by differential tests and
/// the kernel microbench; normal code lets the env default stand).
pub fn force(d: KernelDispatch) {
    let code = match d {
        KernelDispatch::Scalar => SCALAR,
        KernelDispatch::Simd => SIMD,
    };
    ACTIVE.store(code, Ordering::Relaxed);
}

/// Human-readable name of the active instruction path, for benchmark
/// environment capture: `"scalar"`, `"sse2"`, `"neon"`, or `"portable"`.
pub fn active_path_name() -> &'static str {
    match dispatch() {
        KernelDispatch::Scalar => "scalar",
        KernelDispatch::Simd => simd::PATH_NAME,
    }
}

// ---------------------------------------------------------------------------
// Dispatching wrappers. Each forwards to the selected path; both paths are
// bit-identical, so the choice is a pure performance decision.
// ---------------------------------------------------------------------------

/// 4-lane-chunked sum. Reassociates relative to a sequential `iter().sum()`
/// (accuracy-gated class).
#[inline]
pub fn sum(xs: &[f64]) -> f64 {
    match dispatch() {
        KernelDispatch::Scalar => scalar::sum(xs),
        KernelDispatch::Simd => simd::sum(xs),
    }
}

/// 4-lane-chunked dot product (no FMA contraction — multiply then add, so
/// both paths round identically). Accuracy-gated class.
///
/// # Panics
/// Panics when the slices differ in length.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot requires equal-length slices");
    match dispatch() {
        KernelDispatch::Scalar => scalar::dot(a, b),
        KernelDispatch::Simd => simd::dot(a, b),
    }
}

/// 4-lane-chunked `Σ (x − m)²` — the variance numerator. Accuracy-gated
/// class.
#[inline]
pub fn sum_sq_diff(xs: &[f64], m: f64) -> f64 {
    match dispatch() {
        KernelDispatch::Scalar => scalar::sum_sq_diff(xs, m),
        KernelDispatch::Simd => simd::sum_sq_diff(xs, m),
    }
}

/// Complex magnitudes `sqrt(re² + im²)` into `out` (cleared first).
/// Element-wise, but `sqrt(re² + im²)` differs from the legacy
/// `f64::hypot` in low-order bits — accuracy-gated class.
#[inline]
pub fn magnitudes_into(spec: &[Complex64], out: &mut Vec<f64>) {
    match dispatch() {
        KernelDispatch::Scalar => scalar::magnitudes_into(spec, out),
        KernelDispatch::Simd => simd::magnitudes_into(spec, out),
    }
}

/// `out[i] = src[i] − m` (cleared first) — the demean loop. Bit-identity
/// class.
#[inline]
pub fn subtract_scalar_into(src: &[f64], m: f64, out: &mut Vec<f64>) {
    match dispatch() {
        KernelDispatch::Scalar => scalar::subtract_scalar_into(src, m, out),
        KernelDispatch::Simd => simd::subtract_scalar_into(src, m, out),
    }
}

/// `xs[i] /= d` in place. Bit-identity class.
#[inline]
pub fn divide_in_place(xs: &mut [f64], d: f64) {
    match dispatch() {
        KernelDispatch::Scalar => scalar::divide_in_place(xs, d),
        KernelDispatch::Simd => simd::divide_in_place(xs, d),
    }
}

/// One radix-2 butterfly stage over the whole buffer: for every block of
/// `2·half` elements, `buf[k] = even + odd`, `buf[k+half] = even − odd`
/// with `odd = buf[k+half] · twiddles[j]`. Bit-identity class (the complex
/// product preserves the `Complex64: Mul` operand order).
///
/// # Panics
/// Panics when `twiddles.len() != half` or `buf.len()` is not a multiple
/// of `2·half`.
#[inline]
pub fn butterfly_stage(buf: &mut [Complex64], half: usize, twiddles: &[Complex64]) {
    assert_eq!(twiddles.len(), half, "stage twiddle table must have `half` entries");
    assert!(
        half > 0 && buf.len() % (2 * half) == 0,
        "buffer length {} is not a multiple of 2*half = {}",
        buf.len(),
        2 * half
    );
    match dispatch() {
        KernelDispatch::Scalar => scalar::butterfly_stage(buf, half, twiddles),
        KernelDispatch::Simd => simd::butterfly_stage(buf, half, twiddles),
    }
}

/// Pointwise complex product `out[i] = a[i] · b[i]`. Bit-identity class
/// (complex multiplication is bitwise commutative — IEEE `×` and `+` are —
/// so one kernel serves both operand orders).
///
/// # Panics
/// Panics when the slices differ in length.
#[inline]
pub fn cmul_into(a: &[Complex64], b: &[Complex64], out: &mut [Complex64]) {
    assert!(a.len() == b.len() && a.len() == out.len(), "cmul_into requires equal-length slices");
    match dispatch() {
        KernelDispatch::Scalar => scalar::cmul_into(a, b, out),
        KernelDispatch::Simd => simd::cmul_into(a, b, out),
    }
}

/// Pointwise complex product `a[i] *= b[i]`. Bit-identity class.
///
/// # Panics
/// Panics when the slices differ in length.
#[inline]
pub fn cmul_in_place(a: &mut [Complex64], b: &[Complex64]) {
    assert_eq!(a.len(), b.len(), "cmul_in_place requires equal-length slices");
    match dispatch() {
        KernelDispatch::Scalar => scalar::cmul_in_place(a, b),
        KernelDispatch::Simd => simd::cmul_in_place(a, b),
    }
}

/// Conjugates every element in place. Bit-identity class.
#[inline]
pub fn conj_in_place(buf: &mut [Complex64]) {
    match dispatch() {
        KernelDispatch::Scalar => scalar::conj_in_place(buf),
        KernelDispatch::Simd => simd::conj_in_place(buf),
    }
}

/// `buf[i] = conj(buf[i]) · k` in place — the IFFT epilogue. Bit-identity
/// class.
#[inline]
pub fn conj_scale_in_place(buf: &mut [Complex64], k: f64) {
    match dispatch() {
        KernelDispatch::Scalar => scalar::conj_scale_in_place(buf, k),
        KernelDispatch::Simd => simd::conj_scale_in_place(buf, k),
    }
}

/// Piecewise-linear evaluation of `points` on the regular grid
/// `t0, t0+dt, …` (`count` points) into `out` (cleared first),
/// bit-identical to per-point [`crate::interpolate::linear_eval`] —
/// including the boundary clamping — but using a monotone segment scan
/// (`O(n + count)`) instead of a binary search per query when `dt > 0`.
/// Bit-identity class.
///
/// # Panics
/// Panics when `points` is empty.
#[inline]
pub fn lerp_grid_into(points: &[(f64, f64)], t0: f64, dt: f64, count: usize, out: &mut Vec<f64>) {
    assert!(!points.is_empty(), "lerp_grid_into requires at least one point");
    match dispatch() {
        KernelDispatch::Scalar => scalar::lerp_grid_into(points, t0, dt, count, out),
        KernelDispatch::Simd => simd::lerp_grid_into(points, t0, dt, count, out),
    }
}

/// Natural-cubic-spline evaluation of (`points`, second derivatives `m2`)
/// on the regular grid into `out` (cleared first), bit-identical to the
/// per-point spline evaluation used by `SignalWorkspace::resample_into`
/// and `CubicSpline::eval`. Bit-identity class.
///
/// # Panics
/// Panics when `points` is empty or `m2.len() != points.len()`.
#[inline]
pub fn spline_grid_into(
    points: &[(f64, f64)],
    m2: &[f64],
    t0: f64,
    dt: f64,
    count: usize,
    out: &mut Vec<f64>,
) {
    assert!(!points.is_empty(), "spline_grid_into requires at least one point");
    assert_eq!(m2.len(), points.len(), "one second derivative per knot");
    match dispatch() {
        KernelDispatch::Scalar => scalar::spline_grid_into(points, m2, t0, dt, count, out),
        KernelDispatch::Simd => simd::spline_grid_into(points, m2, t0, dt, count, out),
    }
}

/// Circular (wrap-around) moving average into `out` (cleared first),
/// bit-identical to [`crate::convolution::circular_moving_average`]: the
/// rolling-sum chain is kept sequential (it is a true dependency chain) and
/// only the final division pass is vectorized — same sums, same divisions.
/// Bit-identity class.
#[inline]
pub fn circular_moving_average_into(signal: &[f64], window: usize, out: &mut Vec<f64>) {
    match dispatch() {
        KernelDispatch::Scalar => scalar::circular_moving_average_into(signal, window, out),
        KernelDispatch::Simd => simd::circular_moving_average_into(signal, window, out),
    }
}

/// The sequential rolling-sum pass shared by both circular-moving-average
/// paths: pushes the *sums* (not yet divided), reproducing the legacy
/// rolling chain bit for bit.
fn cma_rolling_sums(signal: &[f64], window: usize, out: &mut Vec<f64>) -> f64 {
    out.clear();
    let n = signal.len();
    if n == 0 {
        return 1.0;
    }
    let w = window.clamp(1, n);
    let mut sum: f64 = signal[..w].iter().sum();
    for i in 0..n {
        out.push(sum);
        sum -= signal[i];
        sum += signal[(i + w) % n];
    }
    w as f64
}

// ---------------------------------------------------------------------------
// Portable scalar path: 4-lane-chunked, autovectorizer-friendly. The lane
// structure is not cosmetic — it fixes the reduction order the SIMD paths
// reproduce, which is what makes the two paths bit-identical.
// ---------------------------------------------------------------------------

/// Portable 4-lane-chunked scalar implementations (the `Scalar` dispatch
/// target, and the `Simd` target on architectures without an explicit
/// path). Exposed so differential tests can compare paths directly.
#[doc(hidden)]
pub mod scalar {
    use crate::complex::Complex64;

    /// 4-lane-chunked sum; lanes combine as `(l0+l2)+(l1+l3)`.
    pub fn sum(xs: &[f64]) -> f64 {
        let mut lanes = [0.0f64; 4];
        let mut chunks = xs.chunks_exact(4);
        for c in chunks.by_ref() {
            lanes[0] += c[0];
            lanes[1] += c[1];
            lanes[2] += c[2];
            lanes[3] += c[3];
        }
        let mut total = (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
        for &x in chunks.remainder() {
            total += x;
        }
        total
    }

    /// 4-lane-chunked dot product (separate multiply and add; no FMA).
    pub fn dot(a: &[f64], b: &[f64]) -> f64 {
        let mut lanes = [0.0f64; 4];
        let mut ca = a.chunks_exact(4);
        let mut cb = b.chunks_exact(4);
        for (x, y) in ca.by_ref().zip(cb.by_ref()) {
            lanes[0] += x[0] * y[0];
            lanes[1] += x[1] * y[1];
            lanes[2] += x[2] * y[2];
            lanes[3] += x[3] * y[3];
        }
        let mut total = (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
        for (&x, &y) in ca.remainder().iter().zip(cb.remainder()) {
            total += x * y;
        }
        total
    }

    /// 4-lane-chunked `Σ (x − m)²`.
    pub fn sum_sq_diff(xs: &[f64], m: f64) -> f64 {
        let mut lanes = [0.0f64; 4];
        let mut chunks = xs.chunks_exact(4);
        for c in chunks.by_ref() {
            let d0 = c[0] - m;
            let d1 = c[1] - m;
            let d2 = c[2] - m;
            let d3 = c[3] - m;
            lanes[0] += d0 * d0;
            lanes[1] += d1 * d1;
            lanes[2] += d2 * d2;
            lanes[3] += d3 * d3;
        }
        let mut total = (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
        for &x in chunks.remainder() {
            let d = x - m;
            total += d * d;
        }
        total
    }

    /// `out[i] = sqrt(re² + im²)` (cleared first).
    pub fn magnitudes_into(spec: &[Complex64], out: &mut Vec<f64>) {
        out.clear();
        out.extend(spec.iter().map(|c| (c.re * c.re + c.im * c.im).sqrt()));
    }

    /// `out[i] = src[i] − m` (cleared first).
    pub fn subtract_scalar_into(src: &[f64], m: f64, out: &mut Vec<f64>) {
        out.clear();
        out.extend(src.iter().map(|&v| v - m));
    }

    /// `xs[i] /= d` in place.
    pub fn divide_in_place(xs: &mut [f64], d: f64) {
        for x in xs {
            *x /= d;
        }
    }

    /// One radix-2 butterfly stage (see the dispatching wrapper).
    pub fn butterfly_stage(buf: &mut [Complex64], half: usize, twiddles: &[Complex64]) {
        let n = buf.len();
        let mut start = 0;
        while start < n {
            for (j, &w) in twiddles.iter().enumerate() {
                let k = start + j;
                let even = buf[k];
                let odd = buf[k + half] * w;
                buf[k] = even + odd;
                buf[k + half] = even - odd;
            }
            start += half * 2;
        }
    }

    /// Pointwise `out[i] = a[i] · b[i]`.
    pub fn cmul_into(a: &[Complex64], b: &[Complex64], out: &mut [Complex64]) {
        for ((x, y), o) in a.iter().zip(b).zip(out) {
            *o = *x * *y;
        }
    }

    /// Pointwise `a[i] *= b[i]`.
    pub fn cmul_in_place(a: &mut [Complex64], b: &[Complex64]) {
        for (x, y) in a.iter_mut().zip(b) {
            *x *= *y;
        }
    }

    /// Conjugate in place.
    pub fn conj_in_place(buf: &mut [Complex64]) {
        for c in buf {
            *c = c.conj();
        }
    }

    /// `buf[i] = conj(buf[i]) · k` in place.
    pub fn conj_scale_in_place(buf: &mut [Complex64], k: f64) {
        for c in buf {
            *c = c.conj().scale(k);
        }
    }

    /// Linear grid evaluation with a monotone segment scan.
    pub fn lerp_grid_into(
        points: &[(f64, f64)],
        t0: f64,
        dt: f64,
        count: usize,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        if dt <= 0.0 || dt.is_nan() || !t0.is_finite() {
            // Non-monotone grid: fall back to the per-point binary search
            // (identical arithmetic — this *is* the legacy evaluation).
            out.extend(
                (0..count).map(|k| crate::interpolate::linear_eval(points, t0 + dt * k as f64)),
            );
            return;
        }
        let n = points.len();
        let (t_first, y_first) = points[0];
        let (t_last, y_last) = points[n - 1];
        let mut idx = 1usize;
        for k in 0..count {
            let x = t0 + dt * k as f64;
            let y = if x <= t_first {
                y_first
            } else if x >= t_last {
                y_last
            } else {
                while points[idx].0 <= x {
                    idx += 1;
                }
                let (x0, y0) = points[idx - 1];
                let (x1, y1) = points[idx];
                let w = (x - x0) / (x1 - x0);
                y0 + w * (y1 - y0)
            };
            out.push(y);
        }
    }

    /// Cubic-spline grid evaluation with a monotone segment scan.
    pub fn spline_grid_into(
        points: &[(f64, f64)],
        m2: &[f64],
        t0: f64,
        dt: f64,
        count: usize,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        let n = points.len();
        if n == 1 {
            // `spline_eval` returns the single knot value on both sides of
            // its clamp branch.
            out.extend(std::iter::repeat_n(points[0].1, count));
            return;
        }
        if dt <= 0.0 || dt.is_nan() || !t0.is_finite() {
            out.extend(
                (0..count).map(|k| crate::workspace::spline_eval(points, m2, t0 + dt * k as f64)),
            );
            return;
        }
        let (t_first, y_first) = points[0];
        let (t_last, y_last) = points[n - 1];
        let mut idx = 1usize;
        for k in 0..count {
            let x = t0 + dt * k as f64;
            let y = if x <= t_first {
                y_first
            } else if x >= t_last {
                y_last
            } else {
                while points[idx].0 <= x {
                    idx += 1;
                }
                let (x0, y0) = points[idx - 1];
                let (x1, y1) = points[idx];
                let (m0, m1) = (m2[idx - 1], m2[idx]);
                let h = x1 - x0;
                let a = (x1 - x) / h;
                let b = (x - x0) / h;
                a * y0 + b * y1 + ((a * a * a - a) * m0 + (b * b * b - b) * m1) * h * h / 6.0
            };
            out.push(y);
        }
    }

    /// Circular moving average: sequential rolling sums, then division.
    pub fn circular_moving_average_into(signal: &[f64], window: usize, out: &mut Vec<f64>) {
        let w = super::cma_rolling_sums(signal, window, out);
        divide_in_place(out, w);
    }
}

// ---------------------------------------------------------------------------
// x86_64: SSE2 (baseline ABI — every x86_64 CPU has it, no detection).
// ---------------------------------------------------------------------------

/// SSE2 implementations (the `Simd` dispatch target on `x86_64`).
/// Bit-identical to [`scalar`] on finite inputs. Exposed so differential
/// tests can compare paths directly.
#[cfg(target_arch = "x86_64")]
#[doc(hidden)]
pub mod simd {
    use crate::complex::Complex64;
    use std::arch::x86_64::*;

    /// Instruction-path name for benchmark environment capture.
    pub const PATH_NAME: &str = "sse2";

    /// Complex product of two `[re, im]` registers with the exact
    /// `Complex64: Mul` rounding: `re = a.re·b.re − a.im·b.im`,
    /// `im = a.re·b.im + a.im·b.re`. SSE2 has no `addsubpd` (that is
    /// SSE3), so the subtraction in lane 0 is an `xorpd` sign flip plus
    /// `addpd` — exact, because IEEE `x − y ≡ x + (−y)`.
    ///
    /// # Safety
    /// SSE2 is part of the `x86_64` baseline; no extra invariants.
    #[inline(always)]
    unsafe fn cmul(a: __m128d, b: __m128d, sign_lo: __m128d) -> __m128d {
        let are = _mm_unpacklo_pd(a, a); // [a.re, a.re]
        let aim = _mm_unpackhi_pd(a, a); // [a.im, a.im]
        let bsw = _mm_shuffle_pd::<0b01>(b, b); // [b.im, b.re]
        let v1 = _mm_mul_pd(are, b); // [a.re·b.re, a.re·b.im]
        let v2 = _mm_mul_pd(aim, bsw); // [a.im·b.im, a.im·b.re]
        _mm_add_pd(v1, _mm_xor_pd(v2, sign_lo))
    }

    #[inline(always)]
    fn sign_lo() -> __m128d {
        // Lane 0 carries the sign bit: xor negates lane 0 only.
        unsafe { _mm_set_pd(0.0, -0.0) }
    }

    #[inline(always)]
    fn sign_hi() -> __m128d {
        // Lane 1 carries the sign bit: xor negates the imaginary part.
        unsafe { _mm_set_pd(-0.0, 0.0) }
    }

    /// Two-accumulator sum; combines as `(l0+l2)+(l1+l3)` like the scalar
    /// lanes.
    pub fn sum(xs: &[f64]) -> f64 {
        unsafe {
            let mut acc0 = _mm_setzero_pd();
            let mut acc1 = _mm_setzero_pd();
            let quads = xs.len() / 4;
            let ptr = xs.as_ptr();
            for q in 0..quads {
                let p = ptr.add(4 * q);
                acc0 = _mm_add_pd(acc0, _mm_loadu_pd(p));
                acc1 = _mm_add_pd(acc1, _mm_loadu_pd(p.add(2)));
            }
            let pair = _mm_add_pd(acc0, acc1);
            let mut total = _mm_cvtsd_f64(pair) + _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
            for &x in &xs[4 * quads..] {
                total += x;
            }
            total
        }
    }

    /// Two-accumulator dot product (mulpd + addpd — no FMA contraction).
    pub fn dot(a: &[f64], b: &[f64]) -> f64 {
        unsafe {
            let mut acc0 = _mm_setzero_pd();
            let mut acc1 = _mm_setzero_pd();
            let quads = a.len().min(b.len()) / 4;
            let pa = a.as_ptr();
            let pb = b.as_ptr();
            for q in 0..quads {
                let qa = pa.add(4 * q);
                let qb = pb.add(4 * q);
                acc0 = _mm_add_pd(acc0, _mm_mul_pd(_mm_loadu_pd(qa), _mm_loadu_pd(qb)));
                acc1 =
                    _mm_add_pd(acc1, _mm_mul_pd(_mm_loadu_pd(qa.add(2)), _mm_loadu_pd(qb.add(2))));
            }
            let pair = _mm_add_pd(acc0, acc1);
            let mut total = _mm_cvtsd_f64(pair) + _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
            for (&x, &y) in a[4 * quads..].iter().zip(&b[4 * quads..]) {
                total += x * y;
            }
            total
        }
    }

    /// Two-accumulator `Σ (x − m)²`.
    pub fn sum_sq_diff(xs: &[f64], m: f64) -> f64 {
        unsafe {
            let mv = _mm_set1_pd(m);
            let mut acc0 = _mm_setzero_pd();
            let mut acc1 = _mm_setzero_pd();
            let quads = xs.len() / 4;
            let ptr = xs.as_ptr();
            for q in 0..quads {
                let p = ptr.add(4 * q);
                let d0 = _mm_sub_pd(_mm_loadu_pd(p), mv);
                let d1 = _mm_sub_pd(_mm_loadu_pd(p.add(2)), mv);
                acc0 = _mm_add_pd(acc0, _mm_mul_pd(d0, d0));
                acc1 = _mm_add_pd(acc1, _mm_mul_pd(d1, d1));
            }
            let pair = _mm_add_pd(acc0, acc1);
            let mut total = _mm_cvtsd_f64(pair) + _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
            for &x in &xs[4 * quads..] {
                let d = x - m;
                total += d * d;
            }
            total
        }
    }

    /// Two complex magnitudes per iteration via `sqrtpd`.
    pub fn magnitudes_into(spec: &[Complex64], out: &mut Vec<f64>) {
        out.clear();
        out.resize(spec.len(), 0.0);
        unsafe {
            let src = spec.as_ptr() as *const f64;
            let dst = out.as_mut_ptr();
            let pairs = spec.len() / 2;
            for p in 0..pairs {
                let c0 = _mm_loadu_pd(src.add(4 * p)); // [re0, im0]
                let c1 = _mm_loadu_pd(src.add(4 * p + 2)); // [re1, im1]
                let sq0 = _mm_mul_pd(c0, c0);
                let sq1 = _mm_mul_pd(c1, c1);
                let re2 = _mm_unpacklo_pd(sq0, sq1); // [re0², re1²]
                let im2 = _mm_unpackhi_pd(sq0, sq1); // [im0², im1²]
                let mag = _mm_sqrt_pd(_mm_add_pd(re2, im2));
                _mm_storeu_pd(dst.add(2 * p), mag);
            }
            if spec.len() % 2 == 1 {
                let c = spec[spec.len() - 1];
                out[spec.len() - 1] = (c.re * c.re + c.im * c.im).sqrt();
            }
        }
    }

    /// Vectorized `out[i] = src[i] − m`.
    pub fn subtract_scalar_into(src: &[f64], m: f64, out: &mut Vec<f64>) {
        out.clear();
        out.resize(src.len(), 0.0);
        unsafe {
            let mv = _mm_set1_pd(m);
            let sp = src.as_ptr();
            let dp = out.as_mut_ptr();
            let pairs = src.len() / 2;
            for p in 0..pairs {
                _mm_storeu_pd(dp.add(2 * p), _mm_sub_pd(_mm_loadu_pd(sp.add(2 * p)), mv));
            }
            if src.len() % 2 == 1 {
                out[src.len() - 1] = src[src.len() - 1] - m;
            }
        }
    }

    /// Vectorized `xs[i] /= d`.
    pub fn divide_in_place(xs: &mut [f64], d: f64) {
        unsafe {
            let dv = _mm_set1_pd(d);
            let p = xs.as_mut_ptr();
            let pairs = xs.len() / 2;
            for q in 0..pairs {
                _mm_storeu_pd(p.add(2 * q), _mm_div_pd(_mm_loadu_pd(p.add(2 * q)), dv));
            }
            if xs.len() % 2 == 1 {
                let last = xs.len() - 1;
                xs[last] /= d;
            }
        }
    }

    /// Butterfly stage: one complex element is exactly one `__m128d`, so
    /// `even ± odd` are plain `addpd`/`subpd`.
    pub fn butterfly_stage(buf: &mut [Complex64], half: usize, twiddles: &[Complex64]) {
        unsafe {
            let n = buf.len();
            let p = buf.as_mut_ptr() as *mut f64;
            let tw = twiddles.as_ptr() as *const f64;
            let sign = sign_lo();
            let mut start = 0;
            while start < n {
                for j in 0..half {
                    let k = start + j;
                    let w = _mm_loadu_pd(tw.add(2 * j));
                    let even = _mm_loadu_pd(p.add(2 * k));
                    let odd_raw = _mm_loadu_pd(p.add(2 * (k + half)));
                    let odd = cmul(odd_raw, w, sign);
                    _mm_storeu_pd(p.add(2 * k), _mm_add_pd(even, odd));
                    _mm_storeu_pd(p.add(2 * (k + half)), _mm_sub_pd(even, odd));
                }
                start += half * 2;
            }
        }
    }

    /// Pointwise `out[i] = a[i] · b[i]`.
    pub fn cmul_into(a: &[Complex64], b: &[Complex64], out: &mut [Complex64]) {
        unsafe {
            let pa = a.as_ptr() as *const f64;
            let pb = b.as_ptr() as *const f64;
            let po = out.as_mut_ptr() as *mut f64;
            let sign = sign_lo();
            for k in 0..a.len().min(b.len()).min(out.len()) {
                let x = _mm_loadu_pd(pa.add(2 * k));
                let y = _mm_loadu_pd(pb.add(2 * k));
                _mm_storeu_pd(po.add(2 * k), cmul(x, y, sign));
            }
        }
    }

    /// Pointwise `a[i] *= b[i]`.
    pub fn cmul_in_place(a: &mut [Complex64], b: &[Complex64]) {
        unsafe {
            let pa = a.as_mut_ptr() as *mut f64;
            let pb = b.as_ptr() as *const f64;
            let sign = sign_lo();
            for k in 0..a.len().min(b.len()) {
                let x = _mm_loadu_pd(pa.add(2 * k));
                let y = _mm_loadu_pd(pb.add(2 * k));
                _mm_storeu_pd(pa.add(2 * k), cmul(x, y, sign));
            }
        }
    }

    /// Conjugate in place (sign flip of the imaginary lane).
    pub fn conj_in_place(buf: &mut [Complex64]) {
        unsafe {
            let p = buf.as_mut_ptr() as *mut f64;
            let sign = sign_hi();
            for k in 0..buf.len() {
                _mm_storeu_pd(p.add(2 * k), _mm_xor_pd(_mm_loadu_pd(p.add(2 * k)), sign));
            }
        }
    }

    /// `buf[i] = conj(buf[i]) · k`: sign flip then `mulpd` — the exact ops
    /// of `c.conj().scale(k)` (`re·k`, `(−im)·k`).
    pub fn conj_scale_in_place(buf: &mut [Complex64], k: f64) {
        unsafe {
            let p = buf.as_mut_ptr() as *mut f64;
            let sign = sign_hi();
            let kv = _mm_set1_pd(k);
            for i in 0..buf.len() {
                let t = _mm_xor_pd(_mm_loadu_pd(p.add(2 * i)), sign);
                _mm_storeu_pd(p.add(2 * i), _mm_mul_pd(t, kv));
            }
        }
    }

    /// Linear grid evaluation: monotone segment scan + two queries per
    /// `__m128d` within each segment run (per-lane ops identical to the
    /// scalar formula, so bit-identity holds).
    pub fn lerp_grid_into(
        points: &[(f64, f64)],
        t0: f64,
        dt: f64,
        count: usize,
        out: &mut Vec<f64>,
    ) {
        if dt <= 0.0 || dt.is_nan() || !t0.is_finite() {
            super::scalar::lerp_grid_into(points, t0, dt, count, out);
            return;
        }
        out.clear();
        out.resize(count, 0.0);
        let o = out.as_mut_slice();
        let n = points.len();
        let (t_first, y_first) = points[0];
        let (t_last, y_last) = points[n - 1];
        let mut idx = 1usize;
        let mut k = 0usize;
        while k < count {
            let x = t0 + dt * k as f64;
            if x <= t_first {
                o[k] = y_first;
                k += 1;
                continue;
            }
            if x >= t_last {
                // The grid is nondecreasing: every remaining query clamps.
                for slot in &mut o[k..] {
                    *slot = y_last;
                }
                break;
            }
            while points[idx].0 <= x {
                idx += 1;
            }
            let (x0, y0) = points[idx - 1];
            let (x1, y1) = points[idx];
            // Extent of the run of queries inside [x0, x1).
            let mut k_end = k + 1;
            while k_end < count && t0 + dt * (k_end as f64) < x1 {
                k_end += 1;
            }
            // Broadcasting the segment constants only pays off on longer
            // query runs; short runs (dense points vs. the grid) take the
            // scalar expression directly — bit-identical either way.
            if k_end - k >= 4 {
                unsafe {
                    let x0v = _mm_set1_pd(x0);
                    let dxv = _mm_set1_pd(x1 - x0);
                    let y0v = _mm_set1_pd(y0);
                    let dyv = _mm_set1_pd(y1 - y0);
                    let mut j = k;
                    while j + 2 <= k_end {
                        let xa = t0 + dt * j as f64;
                        let xb = t0 + dt * (j + 1) as f64;
                        let xv = _mm_set_pd(xb, xa);
                        let wv = _mm_div_pd(_mm_sub_pd(xv, x0v), dxv);
                        let yv = _mm_add_pd(y0v, _mm_mul_pd(wv, dyv));
                        _mm_storeu_pd(o.as_mut_ptr().add(j), yv);
                        j += 2;
                    }
                    while j < k_end {
                        let xj = t0 + dt * j as f64;
                        let w = (xj - x0) / (x1 - x0);
                        o[j] = y0 + w * (y1 - y0);
                        j += 1;
                    }
                }
            } else {
                let mut j = k;
                while j < k_end {
                    let xj = t0 + dt * j as f64;
                    let w = (xj - x0) / (x1 - x0);
                    o[j] = y0 + w * (y1 - y0);
                    j += 1;
                }
            }
            k = k_end;
        }
    }

    /// Spline grid evaluation: monotone segment scan + two queries per
    /// `__m128d`, with the exact `CubicSpline::eval` expression tree.
    pub fn spline_grid_into(
        points: &[(f64, f64)],
        m2: &[f64],
        t0: f64,
        dt: f64,
        count: usize,
        out: &mut Vec<f64>,
    ) {
        let n = points.len();
        if n == 1 || dt <= 0.0 || dt.is_nan() || !t0.is_finite() {
            super::scalar::spline_grid_into(points, m2, t0, dt, count, out);
            return;
        }
        out.clear();
        out.resize(count, 0.0);
        let o = out.as_mut_slice();
        let (t_first, y_first) = points[0];
        let (t_last, y_last) = points[n - 1];
        let mut idx = 1usize;
        let mut k = 0usize;
        while k < count {
            let x = t0 + dt * k as f64;
            if x <= t_first {
                o[k] = y_first;
                k += 1;
                continue;
            }
            if x >= t_last {
                for slot in &mut o[k..] {
                    *slot = y_last;
                }
                break;
            }
            while points[idx].0 <= x {
                idx += 1;
            }
            let (x0, y0) = points[idx - 1];
            let (x1, y1) = points[idx];
            let (m0, m1) = (m2[idx - 1], m2[idx]);
            let h = x1 - x0;
            let mut k_end = k + 1;
            while k_end < count && t0 + dt * (k_end as f64) < x1 {
                k_end += 1;
            }
            // Eight broadcasts per segment only pay off on longer query
            // runs; short runs take the scalar expression directly —
            // bit-identical either way.
            if k_end - k >= 4 {
                unsafe {
                    let x0v = _mm_set1_pd(x0);
                    let x1v = _mm_set1_pd(x1);
                    let y0v = _mm_set1_pd(y0);
                    let y1v = _mm_set1_pd(y1);
                    let m0v = _mm_set1_pd(m0);
                    let m1v = _mm_set1_pd(m1);
                    let hv = _mm_set1_pd(h);
                    let sixv = _mm_set1_pd(6.0);
                    let mut j = k;
                    while j + 2 <= k_end {
                        let xa = t0 + dt * j as f64;
                        let xb = t0 + dt * (j + 1) as f64;
                        let xv = _mm_set_pd(xb, xa);
                        let av = _mm_div_pd(_mm_sub_pd(x1v, xv), hv);
                        let bv = _mm_div_pd(_mm_sub_pd(xv, x0v), hv);
                        // a·y0 + b·y1 + ((a³−a)·m0 + (b³−b)·m1)·h·h/6 with the
                        // scalar expression's exact association.
                        let a3 = _mm_mul_pd(_mm_mul_pd(av, av), av);
                        let b3 = _mm_mul_pd(_mm_mul_pd(bv, bv), bv);
                        let inner = _mm_add_pd(
                            _mm_mul_pd(_mm_sub_pd(a3, av), m0v),
                            _mm_mul_pd(_mm_sub_pd(b3, bv), m1v),
                        );
                        let tail = _mm_div_pd(_mm_mul_pd(_mm_mul_pd(inner, hv), hv), sixv);
                        let head = _mm_add_pd(_mm_mul_pd(av, y0v), _mm_mul_pd(bv, y1v));
                        _mm_storeu_pd(o.as_mut_ptr().add(j), _mm_add_pd(head, tail));
                        j += 2;
                    }
                    while j < k_end {
                        let xj = t0 + dt * j as f64;
                        let a = (x1 - xj) / h;
                        let b = (xj - x0) / h;
                        o[j] = a * y0
                            + b * y1
                            + ((a * a * a - a) * m0 + (b * b * b - b) * m1) * h * h / 6.0;
                        j += 1;
                    }
                }
            } else {
                let mut j = k;
                while j < k_end {
                    let xj = t0 + dt * j as f64;
                    let a = (x1 - xj) / h;
                    let b = (xj - x0) / h;
                    o[j] = a * y0
                        + b * y1
                        + ((a * a * a - a) * m0 + (b * b * b - b) * m1) * h * h / 6.0;
                    j += 1;
                }
            }
            k = k_end;
        }
    }

    /// Circular moving average: shared sequential rolling sums, vectorized
    /// division pass.
    pub fn circular_moving_average_into(signal: &[f64], window: usize, out: &mut Vec<f64>) {
        let w = super::cma_rolling_sums(signal, window, out);
        divide_in_place(out, w);
    }
}

// ---------------------------------------------------------------------------
// aarch64: NEON (mandatory on AArch64 — no feature detection needed).
// ---------------------------------------------------------------------------

/// NEON implementations (the `Simd` dispatch target on aarch64).
/// Bit-identical to [`scalar`] on finite inputs.
#[cfg(target_arch = "aarch64")]
#[doc(hidden)]
pub mod simd {
    use crate::complex::Complex64;
    use std::arch::aarch64::*;

    /// Instruction-path name for benchmark environment capture.
    pub const PATH_NAME: &str = "neon";

    /// Sign mask negating lane 0 only (via `eor`).
    #[inline(always)]
    unsafe fn sign_lo() -> uint64x2_t {
        vcombine_u64(vcreate_u64(0x8000_0000_0000_0000), vcreate_u64(0))
    }

    /// Sign mask negating lane 1 only (the imaginary part).
    #[inline(always)]
    unsafe fn sign_hi() -> uint64x2_t {
        vcombine_u64(vcreate_u64(0), vcreate_u64(0x8000_0000_0000_0000))
    }

    /// Complex product with the exact `Complex64: Mul` rounding — the NEON
    /// mirror of the SSE2 kernel: `v1 + (±)v2` with the lane-0 sign flip
    /// done by `eor` (exact, since IEEE `x − y ≡ x + (−y)`).
    #[inline(always)]
    unsafe fn cmul(a: float64x2_t, b: float64x2_t, sign: uint64x2_t) -> float64x2_t {
        let are = vdupq_laneq_f64::<0>(a);
        let aim = vdupq_laneq_f64::<1>(a);
        let bsw = vextq_f64::<1>(b, b); // [b.im, b.re]
        let v1 = vmulq_f64(are, b);
        let v2 = vmulq_f64(aim, bsw);
        let v2f = vreinterpretq_f64_u64(veorq_u64(vreinterpretq_u64_f64(v2), sign));
        vaddq_f64(v1, v2f)
    }

    /// Two-accumulator sum; combines as `(l0+l2)+(l1+l3)`.
    pub fn sum(xs: &[f64]) -> f64 {
        unsafe {
            let mut acc0 = vdupq_n_f64(0.0);
            let mut acc1 = vdupq_n_f64(0.0);
            let quads = xs.len() / 4;
            let ptr = xs.as_ptr();
            for q in 0..quads {
                let p = ptr.add(4 * q);
                acc0 = vaddq_f64(acc0, vld1q_f64(p));
                acc1 = vaddq_f64(acc1, vld1q_f64(p.add(2)));
            }
            let pair = vaddq_f64(acc0, acc1);
            let mut total = vgetq_lane_f64::<0>(pair) + vgetq_lane_f64::<1>(pair);
            for &x in &xs[4 * quads..] {
                total += x;
            }
            total
        }
    }

    /// Two-accumulator dot product (separate multiply and add; no FMA).
    pub fn dot(a: &[f64], b: &[f64]) -> f64 {
        unsafe {
            let mut acc0 = vdupq_n_f64(0.0);
            let mut acc1 = vdupq_n_f64(0.0);
            let quads = a.len().min(b.len()) / 4;
            let pa = a.as_ptr();
            let pb = b.as_ptr();
            for q in 0..quads {
                let qa = pa.add(4 * q);
                let qb = pb.add(4 * q);
                acc0 = vaddq_f64(acc0, vmulq_f64(vld1q_f64(qa), vld1q_f64(qb)));
                acc1 = vaddq_f64(acc1, vmulq_f64(vld1q_f64(qa.add(2)), vld1q_f64(qb.add(2))));
            }
            let pair = vaddq_f64(acc0, acc1);
            let mut total = vgetq_lane_f64::<0>(pair) + vgetq_lane_f64::<1>(pair);
            for (&x, &y) in a[4 * quads..].iter().zip(&b[4 * quads..]) {
                total += x * y;
            }
            total
        }
    }

    /// Two-accumulator `Σ (x − m)²`.
    pub fn sum_sq_diff(xs: &[f64], m: f64) -> f64 {
        unsafe {
            let mv = vdupq_n_f64(m);
            let mut acc0 = vdupq_n_f64(0.0);
            let mut acc1 = vdupq_n_f64(0.0);
            let quads = xs.len() / 4;
            let ptr = xs.as_ptr();
            for q in 0..quads {
                let p = ptr.add(4 * q);
                let d0 = vsubq_f64(vld1q_f64(p), mv);
                let d1 = vsubq_f64(vld1q_f64(p.add(2)), mv);
                acc0 = vaddq_f64(acc0, vmulq_f64(d0, d0));
                acc1 = vaddq_f64(acc1, vmulq_f64(d1, d1));
            }
            let pair = vaddq_f64(acc0, acc1);
            let mut total = vgetq_lane_f64::<0>(pair) + vgetq_lane_f64::<1>(pair);
            for &x in &xs[4 * quads..] {
                let d = x - m;
                total += d * d;
            }
            total
        }
    }

    /// Two complex magnitudes per iteration via `vsqrtq_f64`.
    pub fn magnitudes_into(spec: &[Complex64], out: &mut Vec<f64>) {
        out.clear();
        out.resize(spec.len(), 0.0);
        unsafe {
            let src = spec.as_ptr() as *const f64;
            let dst = out.as_mut_ptr();
            let pairs = spec.len() / 2;
            for p in 0..pairs {
                let c0 = vld1q_f64(src.add(4 * p)); // [re0, im0]
                let c1 = vld1q_f64(src.add(4 * p + 2)); // [re1, im1]
                let sq0 = vmulq_f64(c0, c0);
                let sq1 = vmulq_f64(c1, c1);
                let re2 = vzip1q_f64(sq0, sq1); // [re0², re1²]
                let im2 = vzip2q_f64(sq0, sq1); // [im0², im1²]
                let mag = vsqrtq_f64(vaddq_f64(re2, im2));
                vst1q_f64(dst.add(2 * p), mag);
            }
            if spec.len() % 2 == 1 {
                let c = spec[spec.len() - 1];
                out[spec.len() - 1] = (c.re * c.re + c.im * c.im).sqrt();
            }
        }
    }

    /// Vectorized `out[i] = src[i] − m`.
    pub fn subtract_scalar_into(src: &[f64], m: f64, out: &mut Vec<f64>) {
        out.clear();
        out.resize(src.len(), 0.0);
        unsafe {
            let mv = vdupq_n_f64(m);
            let sp = src.as_ptr();
            let dp = out.as_mut_ptr();
            let pairs = src.len() / 2;
            for p in 0..pairs {
                vst1q_f64(dp.add(2 * p), vsubq_f64(vld1q_f64(sp.add(2 * p)), mv));
            }
            if src.len() % 2 == 1 {
                out[src.len() - 1] = src[src.len() - 1] - m;
            }
        }
    }

    /// Vectorized `xs[i] /= d`.
    pub fn divide_in_place(xs: &mut [f64], d: f64) {
        unsafe {
            let dv = vdupq_n_f64(d);
            let p = xs.as_mut_ptr();
            let pairs = xs.len() / 2;
            for q in 0..pairs {
                vst1q_f64(p.add(2 * q), vdivq_f64(vld1q_f64(p.add(2 * q)), dv));
            }
            if xs.len() % 2 == 1 {
                let last = xs.len() - 1;
                xs[last] /= d;
            }
        }
    }

    /// Butterfly stage: one complex element per `float64x2_t`.
    pub fn butterfly_stage(buf: &mut [Complex64], half: usize, twiddles: &[Complex64]) {
        unsafe {
            let n = buf.len();
            let p = buf.as_mut_ptr() as *mut f64;
            let tw = twiddles.as_ptr() as *const f64;
            let sign = sign_lo();
            let mut start = 0;
            while start < n {
                for j in 0..half {
                    let k = start + j;
                    let w = vld1q_f64(tw.add(2 * j));
                    let even = vld1q_f64(p.add(2 * k));
                    let odd_raw = vld1q_f64(p.add(2 * (k + half)));
                    let odd = cmul(odd_raw, w, sign);
                    vst1q_f64(p.add(2 * k), vaddq_f64(even, odd));
                    vst1q_f64(p.add(2 * (k + half)), vsubq_f64(even, odd));
                }
                start += half * 2;
            }
        }
    }

    /// Pointwise `out[i] = a[i] · b[i]`.
    pub fn cmul_into(a: &[Complex64], b: &[Complex64], out: &mut [Complex64]) {
        unsafe {
            let pa = a.as_ptr() as *const f64;
            let pb = b.as_ptr() as *const f64;
            let po = out.as_mut_ptr() as *mut f64;
            let sign = sign_lo();
            for k in 0..a.len().min(b.len()).min(out.len()) {
                let x = vld1q_f64(pa.add(2 * k));
                let y = vld1q_f64(pb.add(2 * k));
                vst1q_f64(po.add(2 * k), cmul(x, y, sign));
            }
        }
    }

    /// Pointwise `a[i] *= b[i]`.
    pub fn cmul_in_place(a: &mut [Complex64], b: &[Complex64]) {
        unsafe {
            let pa = a.as_mut_ptr() as *mut f64;
            let pb = b.as_ptr() as *const f64;
            let sign = sign_lo();
            for k in 0..a.len().min(b.len()) {
                let x = vld1q_f64(pa.add(2 * k));
                let y = vld1q_f64(pb.add(2 * k));
                vst1q_f64(pa.add(2 * k), cmul(x, y, sign));
            }
        }
    }

    /// Conjugate in place (sign flip of the imaginary lane).
    pub fn conj_in_place(buf: &mut [Complex64]) {
        unsafe {
            let p = buf.as_mut_ptr() as *mut f64;
            let sign = sign_hi();
            for k in 0..buf.len() {
                let v = vld1q_f64(p.add(2 * k));
                let f = vreinterpretq_f64_u64(veorq_u64(vreinterpretq_u64_f64(v), sign));
                vst1q_f64(p.add(2 * k), f);
            }
        }
    }

    /// `buf[i] = conj(buf[i]) · k`.
    pub fn conj_scale_in_place(buf: &mut [Complex64], k: f64) {
        unsafe {
            let p = buf.as_mut_ptr() as *mut f64;
            let sign = sign_hi();
            let kv = vdupq_n_f64(k);
            for i in 0..buf.len() {
                let v = vld1q_f64(p.add(2 * i));
                let t = vreinterpretq_f64_u64(veorq_u64(vreinterpretq_u64_f64(v), sign));
                vst1q_f64(p.add(2 * i), vmulq_f64(t, kv));
            }
        }
    }

    /// Linear grid evaluation: monotone segment scan + two queries per
    /// register within each segment run.
    pub fn lerp_grid_into(
        points: &[(f64, f64)],
        t0: f64,
        dt: f64,
        count: usize,
        out: &mut Vec<f64>,
    ) {
        if dt <= 0.0 || dt.is_nan() || !t0.is_finite() {
            super::scalar::lerp_grid_into(points, t0, dt, count, out);
            return;
        }
        out.clear();
        out.resize(count, 0.0);
        let o = out.as_mut_slice();
        let n = points.len();
        let (t_first, y_first) = points[0];
        let (t_last, y_last) = points[n - 1];
        let mut idx = 1usize;
        let mut k = 0usize;
        while k < count {
            let x = t0 + dt * k as f64;
            if x <= t_first {
                o[k] = y_first;
                k += 1;
                continue;
            }
            if x >= t_last {
                for slot in &mut o[k..] {
                    *slot = y_last;
                }
                break;
            }
            while points[idx].0 <= x {
                idx += 1;
            }
            let (x0, y0) = points[idx - 1];
            let (x1, y1) = points[idx];
            let mut k_end = k + 1;
            while k_end < count && t0 + dt * (k_end as f64) < x1 {
                k_end += 1;
            }
            // Broadcasting the segment constants only pays off on longer
            // query runs; short runs take the scalar expression directly —
            // bit-identical either way.
            if k_end - k >= 4 {
                unsafe {
                    let x0v = vdupq_n_f64(x0);
                    let dxv = vdupq_n_f64(x1 - x0);
                    let y0v = vdupq_n_f64(y0);
                    let dyv = vdupq_n_f64(y1 - y0);
                    let mut j = k;
                    while j + 2 <= k_end {
                        let xa = t0 + dt * j as f64;
                        let xb = t0 + dt * (j + 1) as f64;
                        let xv = vsetq_lane_f64::<1>(xb, vdupq_n_f64(xa));
                        let wv = vdivq_f64(vsubq_f64(xv, x0v), dxv);
                        let yv = vaddq_f64(y0v, vmulq_f64(wv, dyv));
                        vst1q_f64(o.as_mut_ptr().add(j), yv);
                        j += 2;
                    }
                    while j < k_end {
                        let xj = t0 + dt * j as f64;
                        let w = (xj - x0) / (x1 - x0);
                        o[j] = y0 + w * (y1 - y0);
                        j += 1;
                    }
                }
            } else {
                let mut j = k;
                while j < k_end {
                    let xj = t0 + dt * j as f64;
                    let w = (xj - x0) / (x1 - x0);
                    o[j] = y0 + w * (y1 - y0);
                    j += 1;
                }
            }
            k = k_end;
        }
    }

    /// Spline grid evaluation: monotone segment scan + two queries per
    /// register, with the exact `CubicSpline::eval` expression tree.
    pub fn spline_grid_into(
        points: &[(f64, f64)],
        m2: &[f64],
        t0: f64,
        dt: f64,
        count: usize,
        out: &mut Vec<f64>,
    ) {
        let n = points.len();
        if n == 1 || dt <= 0.0 || dt.is_nan() || !t0.is_finite() {
            super::scalar::spline_grid_into(points, m2, t0, dt, count, out);
            return;
        }
        out.clear();
        out.resize(count, 0.0);
        let o = out.as_mut_slice();
        let (t_first, y_first) = points[0];
        let (t_last, y_last) = points[n - 1];
        let mut idx = 1usize;
        let mut k = 0usize;
        while k < count {
            let x = t0 + dt * k as f64;
            if x <= t_first {
                o[k] = y_first;
                k += 1;
                continue;
            }
            if x >= t_last {
                for slot in &mut o[k..] {
                    *slot = y_last;
                }
                break;
            }
            while points[idx].0 <= x {
                idx += 1;
            }
            let (x0, y0) = points[idx - 1];
            let (x1, y1) = points[idx];
            let (m0, m1) = (m2[idx - 1], m2[idx]);
            let h = x1 - x0;
            let mut k_end = k + 1;
            while k_end < count && t0 + dt * (k_end as f64) < x1 {
                k_end += 1;
            }
            // Eight broadcasts per segment only pay off on longer query
            // runs; short runs take the scalar expression directly —
            // bit-identical either way.
            if k_end - k >= 4 {
                unsafe {
                    let x0v = vdupq_n_f64(x0);
                    let x1v = vdupq_n_f64(x1);
                    let y0v = vdupq_n_f64(y0);
                    let y1v = vdupq_n_f64(y1);
                    let m0v = vdupq_n_f64(m0);
                    let m1v = vdupq_n_f64(m1);
                    let hv = vdupq_n_f64(h);
                    let sixv = vdupq_n_f64(6.0);
                    let mut j = k;
                    while j + 2 <= k_end {
                        let xa = t0 + dt * j as f64;
                        let xb = t0 + dt * (j + 1) as f64;
                        let xv = vsetq_lane_f64::<1>(xb, vdupq_n_f64(xa));
                        let av = vdivq_f64(vsubq_f64(x1v, xv), hv);
                        let bv = vdivq_f64(vsubq_f64(xv, x0v), hv);
                        let a3 = vmulq_f64(vmulq_f64(av, av), av);
                        let b3 = vmulq_f64(vmulq_f64(bv, bv), bv);
                        let inner = vaddq_f64(
                            vmulq_f64(vsubq_f64(a3, av), m0v),
                            vmulq_f64(vsubq_f64(b3, bv), m1v),
                        );
                        let tail = vdivq_f64(vmulq_f64(vmulq_f64(inner, hv), hv), sixv);
                        let head = vaddq_f64(vmulq_f64(av, y0v), vmulq_f64(bv, y1v));
                        vst1q_f64(o.as_mut_ptr().add(j), vaddq_f64(head, tail));
                        j += 2;
                    }
                    while j < k_end {
                        let xj = t0 + dt * j as f64;
                        let a = (x1 - xj) / h;
                        let b = (xj - x0) / h;
                        o[j] = a * y0
                            + b * y1
                            + ((a * a * a - a) * m0 + (b * b * b - b) * m1) * h * h / 6.0;
                        j += 1;
                    }
                }
            } else {
                let mut j = k;
                while j < k_end {
                    let xj = t0 + dt * j as f64;
                    let a = (x1 - xj) / h;
                    let b = (xj - x0) / h;
                    o[j] = a * y0
                        + b * y1
                        + ((a * a * a - a) * m0 + (b * b * b - b) * m1) * h * h / 6.0;
                    j += 1;
                }
            }
            k = k_end;
        }
    }

    /// Circular moving average: shared sequential rolling sums, vectorized
    /// division pass.
    pub fn circular_moving_average_into(signal: &[f64], window: usize, out: &mut Vec<f64>) {
        let w = super::cma_rolling_sums(signal, window, out);
        divide_in_place(out, w);
    }
}

// ---------------------------------------------------------------------------
// Other architectures: the Simd dispatch reuses the scalar lanes.
// ---------------------------------------------------------------------------

/// Fallback `Simd` target on architectures without an explicit path: the
/// scalar 4-lane kernels (still bit-identical — they *are* the definition).
#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
#[doc(hidden)]
pub mod simd {
    /// Instruction-path name for benchmark environment capture.
    pub const PATH_NAME: &str = "portable";

    pub use super::scalar::*;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f64_bits_eq(a: f64, b: f64) -> bool {
        a.to_bits() == b.to_bits()
    }

    #[test]
    fn dispatch_force_round_trips() {
        let before = dispatch();
        force(KernelDispatch::Scalar);
        assert_eq!(dispatch(), KernelDispatch::Scalar);
        assert_eq!(active_path_name(), "scalar");
        force(KernelDispatch::Simd);
        assert_eq!(dispatch(), KernelDispatch::Simd);
        assert_ne!(active_path_name(), "scalar");
        force(before);
    }

    #[test]
    fn sum_matches_both_paths_and_is_exact_on_integers() {
        let xs: Vec<f64> = (0..103).map(|k| (k % 17) as f64 - 8.0).collect();
        let a = scalar::sum(&xs);
        let b = simd::sum(&xs);
        assert!(f64_bits_eq(a, b));
        // Integer-valued doubles sum exactly regardless of association.
        let expect: f64 = xs.iter().sum();
        assert_eq!(a, expect);
    }

    #[test]
    fn dot_matches_both_paths() {
        let a: Vec<f64> = (0..57).map(|k| (k as f64).sin() * 20.0).collect();
        let b: Vec<f64> = (0..57).map(|k| (k as f64 * 0.3).cos() * 5.0).collect();
        assert!(f64_bits_eq(scalar::dot(&a, &b), simd::dot(&a, &b)));
    }

    #[test]
    fn magnitudes_match_both_paths() {
        let spec: Vec<Complex64> = (0..31)
            .map(|k| Complex64::new((k as f64).sin() * 9.0, (k as f64).cos() * 4.0))
            .collect();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        scalar::magnitudes_into(&spec, &mut a);
        simd::magnitudes_into(&spec, &mut b);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert!(f64_bits_eq(*x, *y));
        }
    }

    #[test]
    fn butterfly_matches_both_paths() {
        for n in [2usize, 4, 8, 32] {
            let base: Vec<Complex64> = (0..n)
                .map(|k| Complex64::new((k as f64 * 0.7).sin(), (k as f64 * 1.1).cos()))
                .collect();
            let mut half = 1;
            while half < n {
                let step = -std::f64::consts::PI / half as f64;
                let w_base = Complex64::cis(step);
                let mut w = Complex64::ONE;
                let tw: Vec<Complex64> = (0..half)
                    .map(|_| {
                        let cur = w;
                        w *= w_base;
                        cur
                    })
                    .collect();
                let mut a = base.clone();
                let mut b = base.clone();
                scalar::butterfly_stage(&mut a, half, &tw);
                simd::butterfly_stage(&mut b, half, &tw);
                for (x, y) in a.iter().zip(&b) {
                    assert!(f64_bits_eq(x.re, y.re) && f64_bits_eq(x.im, y.im));
                }
                half *= 2;
            }
        }
    }

    #[test]
    fn cma_matches_legacy_bitwise() {
        let xs: Vec<f64> = (0..97).map(|k| ((k * 31) % 17) as f64 - 8.0).collect();
        let mut out = Vec::new();
        for w in [1usize, 2, 40, 97, 200] {
            circular_moving_average_into(&xs, w, &mut out);
            let legacy = crate::convolution::circular_moving_average(&xs, w);
            assert_eq!(out.len(), legacy.len());
            for (a, b) in out.iter().zip(&legacy) {
                assert!(f64_bits_eq(*a, *b));
            }
        }
    }

    #[test]
    fn lerp_grid_matches_legacy_eval_bitwise() {
        let points: Vec<(f64, f64)> =
            (0..25).map(|k| (k as f64 * 7.3 + 2.0, ((k * 13) % 29) as f64 - 10.0)).collect();
        let (t0, dt, count) = (-10.0, 0.9, 250);
        let mut out = Vec::new();
        for path in [KernelDispatch::Scalar, KernelDispatch::Simd] {
            let before = dispatch();
            force(path);
            lerp_grid_into(&points, t0, dt, count, &mut out);
            force(before);
            assert_eq!(out.len(), count);
            for (k, v) in out.iter().enumerate() {
                let legacy = crate::interpolate::linear_eval(&points, t0 + dt * k as f64);
                assert!(f64_bits_eq(*v, legacy), "path {path:?} k={k}");
            }
        }
    }

    #[test]
    fn invalid_env_value_panics() {
        // Exercised via the documented contract on `init_from_env` by
        // calling through a child-free shim: force() bypasses env, so
        // directly assert the match arms here.
        let err = std::panic::catch_unwind(|| {
            std::env::set_var("TAXILIGHT_KERNELS_TEST_PROBE", "neither");
            match std::env::var("TAXILIGHT_KERNELS_TEST_PROBE") {
                Ok(v) if v.eq_ignore_ascii_case("scalar") => 1,
                Ok(v) if v.eq_ignore_ascii_case("simd") => 2,
                Ok(v) => panic!("TAXILIGHT_KERNELS must be \"scalar\" or \"simd\", got {v:?}"),
                Err(_) => 2,
            }
        });
        assert!(err.is_err());
    }
}
