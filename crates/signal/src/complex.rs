//! A minimal double-precision complex number.
//!
//! Only the operations needed by the FFT/DFT machinery are provided; this is
//! deliberately not a general-purpose complex library.

use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from its cartesian parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// `e^{iθ}` — the unit phasor with angle `theta` (radians).
    #[inline]
    pub fn cis(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Complex64 { re: c, im: s }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64 { re: self.re, im: -self.im }
    }

    /// Magnitude (absolute value).
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude; avoids the `sqrt` of [`Complex64::abs`].
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase angle) in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex64 { re: self.re * k, im: self.im * k }
    }

    /// Returns `true` if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Complex64 { re: self.re + rhs.re, im: self.im + rhs.im }
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Complex64 { re: self.re - rhs.re, im: self.im - rhs.im }
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Complex64 {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        Complex64 { re: self.re / rhs, im: self.im / rhs }
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: Self) -> Self {
        let d = rhs.norm_sqr();
        Complex64 {
            re: (self.re * rhs.re + self.im * rhs.im) / d,
            im: (self.im * rhs.re - self.re * rhs.im) / d,
        }
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Self {
        Complex64 { re: -self.re, im: -self.im }
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Complex64::from_real(re)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn constructors() {
        let z = Complex64::new(3.0, -4.0);
        assert_eq!(z.re, 3.0);
        assert_eq!(z.im, -4.0);
        assert_eq!(Complex64::from_real(2.5), Complex64::new(2.5, 0.0));
        assert_eq!(Complex64::from(2.5), Complex64::new(2.5, 0.0));
    }

    #[test]
    fn add_sub() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -1.0);
        assert_eq!(a + b, Complex64::new(4.0, 1.0));
        assert_eq!(a - b, Complex64::new(-2.0, 3.0));
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn mul_matches_expansion() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, 4.0);
        // (1+2i)(3+4i) = 3 + 4i + 6i + 8i² = -5 + 10i
        assert_eq!(a * b, Complex64::new(-5.0, 10.0));
    }

    #[test]
    fn div_is_mul_inverse() {
        let a = Complex64::new(-2.0, 7.0);
        let b = Complex64::new(3.0, 4.0);
        let q = a / b;
        let back = q * b;
        assert!(close(back.re, a.re) && close(back.im, a.im));
    }

    #[test]
    fn abs_and_norm() {
        let z = Complex64::new(3.0, 4.0);
        assert!(close(z.abs(), 5.0));
        assert!(close(z.norm_sqr(), 25.0));
    }

    #[test]
    fn cis_lands_on_unit_circle() {
        for k in 0..16 {
            let theta = k as f64 * std::f64::consts::PI / 8.0;
            let z = Complex64::cis(theta);
            assert!(close(z.abs(), 1.0));
            assert!(close(
                z.arg().rem_euclid(2.0 * std::f64::consts::PI),
                theta.rem_euclid(2.0 * std::f64::consts::PI)
            ));
        }
    }

    #[test]
    fn conj_negates_imaginary() {
        let z = Complex64::new(1.5, -2.5);
        assert_eq!(z.conj(), Complex64::new(1.5, 2.5));
        // z * conj(z) is purely real and equals |z|².
        let p = z * z.conj();
        assert!(close(p.re, z.norm_sqr()));
        assert!(close(p.im, 0.0));
    }

    #[test]
    fn neg_and_scale() {
        let z = Complex64::new(1.0, -2.0);
        assert_eq!(-z, Complex64::new(-1.0, 2.0));
        assert_eq!(z.scale(2.0), Complex64::new(2.0, -4.0));
        assert_eq!(z * 2.0, z.scale(2.0));
        assert_eq!(z / 2.0, Complex64::new(0.5, -1.0));
    }

    #[test]
    fn nan_detection() {
        assert!(Complex64::new(f64::NAN, 0.0).is_nan());
        assert!(Complex64::new(0.0, f64::NAN).is_nan());
        assert!(!Complex64::new(1.0, 2.0).is_nan());
    }
}
