//! Autocorrelation-based period detection — an alternative to the paper's
//! frequency-domain estimator, included for the DESIGN.md method ablation.
//!
//! The autocorrelation of a periodic signal peaks at lags that are
//! multiples of the period; scanning the admissible lag band for the
//! strongest normalized peak yields the period directly in the time
//! domain. Computed via FFT (Wiener–Khinchin) in `O(N log N)`.

use crate::fft::{fft, ifft, next_power_of_two};
use crate::periodogram::{PeriodBand, PeriodEstimate};
use crate::Complex64;

/// Biased, mean-removed autocorrelation `r[k]` for lags `0 ..= max_lag`,
/// normalized so `r[0] = 1`. Returns an empty vector for signals shorter
/// than 2 samples or with zero variance.
pub fn autocorrelation(signal: &[f64], max_lag: usize) -> Vec<f64> {
    let n = signal.len();
    if n < 2 {
        return Vec::new();
    }
    let mean = signal.iter().sum::<f64>() / n as f64;
    let centered: Vec<f64> = signal.iter().map(|v| v - mean).collect();
    let energy: f64 = centered.iter().map(|v| v * v).sum();
    if energy <= 1e-12 {
        return Vec::new();
    }
    // Wiener–Khinchin with zero padding to avoid circular wrap.
    let m = next_power_of_two(2 * n);
    let mut buf = vec![Complex64::ZERO; m];
    for (dst, &src) in buf.iter_mut().zip(&centered) {
        *dst = Complex64::from_real(src);
    }
    let spec = fft(&buf);
    let power: Vec<Complex64> = spec.iter().map(|c| Complex64::from_real(c.norm_sqr())).collect();
    let corr = ifft(&power);
    let max_lag = max_lag.min(n - 1);
    (0..=max_lag).map(|k| corr[k].re / energy).collect()
}

/// Finds the dominant period via the strongest autocorrelation peak whose
/// lag falls inside `band`. Returns `None` when the signal is too short,
/// flat, or no local peak exists in the band.
///
/// The `snr` of the estimate is the peak value divided by the median
/// autocorrelation magnitude in the band (mirroring the periodogram's
/// convention), and `magnitude` is the raw `r[lag] ∈ [-1, 1]`.
pub fn dominant_period_autocorr(
    signal: &[f64],
    sample_dt: f64,
    band: PeriodBand,
) -> Option<PeriodEstimate> {
    assert!(sample_dt > 0.0, "sample_dt must be positive");
    let lo = (band.min_period / sample_dt).floor().max(1.0) as usize;
    let hi = (band.max_period / sample_dt).ceil() as usize;
    let r = autocorrelation(signal, hi + 1);
    if r.len() <= lo + 1 {
        return None;
    }
    let hi = hi.min(r.len().saturating_sub(2));

    // Strongest *local* maximum in the band (endpoints excluded so the
    // r[0] = 1 peak cannot leak in).
    let mut best: Option<(usize, f64)> = None;
    for k in lo.max(1)..=hi {
        if r[k] >= r[k - 1] && r[k] >= r[k + 1] && best.is_none_or(|(_, v)| r[k] > v) {
            best = Some((k, r[k]));
        }
    }
    let (lag, value) = best?;
    if value <= 0.0 {
        return None;
    }
    let mut mags: Vec<f64> = r[lo..=hi].iter().map(|v| v.abs()).collect();
    mags.sort_by(f64::total_cmp);
    let median = mags[mags.len() / 2];
    Some(PeriodEstimate {
        period: lag as f64 * sample_dt,
        bin: lag,
        magnitude: value,
        snr: if median > 0.0 { value / median } else { f64::INFINITY },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square(n: usize, period: usize, duty: f64) -> Vec<f64> {
        (0..n)
            .map(|k| if (k % period) < (period as f64 * duty) as usize { 2.0 } else { 40.0 })
            .collect()
    }

    #[test]
    fn r0_is_one_and_bounded() {
        let x = square(1000, 90, 0.4);
        let r = autocorrelation(&x, 300);
        assert!((r[0] - 1.0).abs() < 1e-9);
        for (k, &v) in r.iter().enumerate() {
            assert!(v <= 1.0 + 1e-9, "r[{k}] = {v}");
        }
    }

    #[test]
    fn peak_at_the_period() {
        let x = square(3600, 98, 0.4);
        let est = dominant_period_autocorr(&x, 1.0, PeriodBand::TRAFFIC_LIGHTS).unwrap();
        assert!((est.period - 98.0).abs() <= 1.0, "period {}", est.period);
        assert!(est.magnitude > 0.5);
        assert!(est.snr > 1.5);
    }

    #[test]
    fn sine_period_recovered() {
        let x: Vec<f64> = (0..2400)
            .map(|k| 20.0 + 5.0 * (2.0 * std::f64::consts::PI * k as f64 / 130.0).sin())
            .collect();
        let est = dominant_period_autocorr(&x, 1.0, PeriodBand::TRAFFIC_LIGHTS).unwrap();
        assert!((est.period - 130.0).abs() <= 1.5, "period {}", est.period);
    }

    #[test]
    fn agrees_with_periodogram_on_clean_signals() {
        use crate::periodogram::dominant_period;
        for period in [60.0f64, 97.0, 151.0, 240.0] {
            let x: Vec<f64> = (0..3600)
                .map(|k| 15.0 + 8.0 * (2.0 * std::f64::consts::PI * k as f64 / period).cos())
                .collect();
            let a = dominant_period_autocorr(&x, 1.0, PeriodBand::TRAFFIC_LIGHTS).unwrap();
            let d = dominant_period(&x, 1.0, PeriodBand::TRAFFIC_LIGHTS).unwrap();
            assert!(
                (a.period - d.period).abs() < 4.0,
                "period {period}: autocorr {} vs dft {}",
                a.period,
                d.period
            );
        }
    }

    #[test]
    fn degenerate_inputs() {
        assert!(autocorrelation(&[], 10).is_empty());
        assert!(autocorrelation(&[1.0], 10).is_empty());
        assert!(autocorrelation(&[5.0; 100], 10).is_empty(), "flat signal has no variance");
        assert!(dominant_period_autocorr(&[1.0; 40], 1.0, PeriodBand::TRAFFIC_LIGHTS).is_none());
        // Too short to hold the band.
        let x = square(40, 20, 0.5);
        assert!(dominant_period_autocorr(&x, 1.0, PeriodBand::new(100.0, 300.0)).is_none());
    }

    #[test]
    fn sample_dt_scales_lag() {
        let x = square(1800, 45, 0.4); // 45 samples/period at dt = 2 s → 90 s
        let est = dominant_period_autocorr(&x, 2.0, PeriodBand::TRAFFIC_LIGHTS).unwrap();
        assert!((est.period - 90.0).abs() <= 2.0, "period {}", est.period);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]
            #[test]
            fn planted_square_recovered(period in 40usize..250, duty in 0.25f64..0.75) {
                let x = square(period * 25, period, duty);
                let est = dominant_period_autocorr(&x, 1.0, PeriodBand::TRAFFIC_LIGHTS).unwrap();
                prop_assert!((est.period - period as f64).abs() <= 2.0,
                             "period {} est {}", period, est.period);
            }

            #[test]
            fn autocorr_values_bounded(xs in prop::collection::vec(-30.0f64..60.0, 2..400)) {
                for v in autocorrelation(&xs, 100) {
                    prop_assert!(v.abs() <= 1.0 + 1e-6);
                }
            }
        }
    }
}
