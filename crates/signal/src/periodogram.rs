//! Dominant-period extraction — the frequency-domain core of cycle-length
//! identification (paper Sec. V, Eqs. 1–2).
//!
//! The paper feeds the interpolated 1 Hz speed signal through the DFT,
//! scans bins `n ∈ [0, N/2]` for the largest magnitude, and reports the
//! cycle length `l = N / argmax_n |x_n|`. We add two practical guards that
//! the paper applies implicitly:
//!
//! * the DC bin (and any period longer than the plausible traffic-light
//!   band) is excluded — speed has a huge mean component that is not a
//!   cycle;
//! * a period *band* restricts the search to physically plausible cycle
//!   lengths (urban lights run tens of seconds to a few minutes).
//!
//! An optional parabolic peak refinement gives sub-bin resolution; the
//! paper's integer-bin estimator is the default and the refinement is an
//! extension benchmarked as a DESIGN.md ablation.

use crate::fft::{eq1_spectrum, next_power_of_two};

/// How the magnitude spectrum behind the dominant-period search is computed.
///
/// The paper's Eq. (1) transform is taken at the *exact* window length `N`
/// (3600 for the canonical one-hour window), which for non-power-of-two `N`
/// routes through Bluestein's algorithm — three FFTs of length
/// `next_pow2(2N−1)`. [`SpectrumPath::PaddedPow2`] instead zero-pads the
/// demeaned signal to `next_pow2(N)` and runs a single radix-2 pass: cheaper,
/// but the bin grid changes (`period = padded_total / bin`), so integer-bin
/// period estimates can shift by a fraction of a bin. It is therefore opt-in
/// and validated end-to-end by the accuracy/robustness eval gates rather than
/// by bit-identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpectrumPath {
    /// Exact-length Eq. (1) spectrum (paper semantics; the default).
    #[default]
    Exact,
    /// Zero-pad to the next power of two and use one radix-2 FFT pass.
    PaddedPow2,
}

/// Plausible period range for the dominant-period search, in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeriodBand {
    /// Shortest admissible period (seconds).
    pub min_period: f64,
    /// Longest admissible period (seconds).
    pub max_period: f64,
}

impl PeriodBand {
    /// Traffic lights in the paper's ground truth run roughly 30 s – 300 s
    /// cycles; this is the default search band.
    pub const TRAFFIC_LIGHTS: PeriodBand = PeriodBand { min_period: 30.0, max_period: 300.0 };

    /// Creates a band, panicking on an inverted or non-positive range.
    pub fn new(min_period: f64, max_period: f64) -> Self {
        assert!(
            min_period > 0.0 && max_period > min_period,
            "invalid period band [{min_period}, {max_period}]"
        );
        PeriodBand { min_period, max_period }
    }
}

/// Result of a dominant-period search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeriodEstimate {
    /// Estimated period in seconds (Eq. 2: `N·dt / bin`, possibly refined).
    pub period: f64,
    /// Winning DFT bin index.
    pub bin: usize,
    /// Magnitude of the winning bin.
    pub magnitude: f64,
    /// Peak magnitude divided by the median magnitude of the searched band —
    /// a crude signal-to-noise figure; ~1 means no clear periodicity.
    pub snr: f64,
}

/// Magnitudes of the Eq. (1) spectrum, bins `0 ..= N/2` (the meaningful half
/// for a real signal).
pub fn magnitude_spectrum(signal: &[f64]) -> Vec<f64> {
    let spec = eq1_spectrum(signal);
    let half = (spec.len() / 2 + 1).min(spec.len());
    let mut mags = Vec::new();
    crate::kernels::magnitudes_into(&spec[..half], &mut mags);
    mags
}

/// Removes the mean from a signal (returns a new vector). Demeaning before
/// the DFT keeps the DC component from dwarfing the cycle peak.
pub fn demean(signal: &[f64]) -> Vec<f64> {
    if signal.is_empty() {
        return Vec::new();
    }
    let mean = crate::kernels::sum(signal) / signal.len() as f64;
    let mut out = Vec::new();
    crate::kernels::subtract_scalar_into(signal, mean, &mut out);
    out
}

/// Finds the dominant period of `signal` sampled every `sample_dt` seconds,
/// searching only periods inside `band`.
///
/// Implements Eq. (2): the winning bin `n` maps to period `N·dt/n`. Returns
/// `None` when the signal is too short for the band (no bin falls inside
/// it) or empty.
pub fn dominant_period(signal: &[f64], sample_dt: f64, band: PeriodBand) -> Option<PeriodEstimate> {
    search(signal, sample_dt, band, false, SpectrumPath::Exact)
}

/// Like [`dominant_period`] but with an explicit [`SpectrumPath`].
pub fn dominant_period_with(
    signal: &[f64],
    sample_dt: f64,
    band: PeriodBand,
    path: SpectrumPath,
) -> Option<PeriodEstimate> {
    search(signal, sample_dt, band, false, path)
}

/// Like [`dominant_period`] but applies parabolic interpolation around the
/// winning bin for sub-bin period resolution.
pub fn dominant_period_refined(
    signal: &[f64],
    sample_dt: f64,
    band: PeriodBand,
) -> Option<PeriodEstimate> {
    search(signal, sample_dt, band, true, SpectrumPath::Exact)
}

/// Like [`dominant_period_refined`] but with an explicit [`SpectrumPath`].
pub fn dominant_period_refined_with(
    signal: &[f64],
    sample_dt: f64,
    band: PeriodBand,
    path: SpectrumPath,
) -> Option<PeriodEstimate> {
    search(signal, sample_dt, band, true, path)
}

/// The `k` strongest in-band bins, strongest first. Useful when the raw
/// argmax is ambiguous and the caller wants to re-rank candidates with an
/// orthogonal criterion (e.g. epoch-folding contrast).
pub fn band_candidates(
    signal: &[f64],
    sample_dt: f64,
    band: PeriodBand,
    k: usize,
) -> Vec<PeriodEstimate> {
    band_candidates_with(signal, sample_dt, band, k, SpectrumPath::Exact)
}

/// Like [`band_candidates`] but with an explicit [`SpectrumPath`].
pub fn band_candidates_with(
    signal: &[f64],
    sample_dt: f64,
    band: PeriodBand,
    k: usize,
    path: SpectrumPath,
) -> Vec<PeriodEstimate> {
    assert!(sample_dt > 0.0, "sample_dt must be positive");
    let n = signal.len();
    if n < 4 || k == 0 {
        return Vec::new();
    }
    let (mags, total) = banded_spectrum(signal, sample_dt, path);
    let lo_bin = ((total / band.max_period).ceil() as usize).max(1);
    let hi_bin = ((total / band.min_period).floor() as usize).min(mags.len().saturating_sub(1));
    if lo_bin > hi_bin {
        return Vec::new();
    }
    let mut band_mags: Vec<f64> = mags[lo_bin..=hi_bin].to_vec();
    band_mags.sort_by(f64::total_cmp);
    let median = band_mags[band_mags.len() / 2];

    let mut bins: Vec<(usize, f64)> =
        (lo_bin..=hi_bin).map(|b| (b, mags[b])).filter(|&(_, m)| m > 0.0).collect();
    bins.sort_by(|a, b| b.1.total_cmp(&a.1));
    bins.truncate(k);
    bins.into_iter()
        .map(|(bin, magnitude)| PeriodEstimate {
            period: total / bin as f64,
            bin,
            magnitude,
            snr: if median > 0.0 { magnitude / median } else { f64::INFINITY },
        })
        .collect()
}

/// The demeaned magnitude spectrum and total duration used for the bin→period
/// mapping, for the chosen [`SpectrumPath`]. With `PaddedPow2` the spectrum
/// (and the bin grid) is that of the zero-padded, power-of-two-length signal.
fn banded_spectrum(signal: &[f64], sample_dt: f64, path: SpectrumPath) -> (Vec<f64>, f64) {
    let mut demeaned = demean(signal);
    if path == SpectrumPath::PaddedPow2 {
        demeaned.resize(next_power_of_two(demeaned.len()), 0.0);
    }
    let total = demeaned.len() as f64 * sample_dt;
    (magnitude_spectrum(&demeaned), total)
}

fn search(
    signal: &[f64],
    sample_dt: f64,
    band: PeriodBand,
    refine: bool,
    path: SpectrumPath,
) -> Option<PeriodEstimate> {
    assert!(sample_dt > 0.0, "sample_dt must be positive");
    let n = signal.len();
    if n < 4 {
        return None;
    }
    let (mags, total) = banded_spectrum(signal, sample_dt, path);

    // Bin k corresponds to period total/k; the band maps to a bin range.
    let lo_bin = ((total / band.max_period).ceil() as usize).max(1);
    let hi_bin = ((total / band.min_period).floor() as usize).min(mags.len().saturating_sub(1));
    if lo_bin > hi_bin {
        return None;
    }

    let (mut best_bin, mut best_mag) = (lo_bin, mags[lo_bin]);
    for (k, &mag) in mags.iter().enumerate().take(hi_bin + 1).skip(lo_bin) {
        if mag > best_mag {
            best_mag = mag;
            best_bin = k;
        }
    }
    if best_mag == 0.0 {
        return None;
    }

    // Median magnitude in the band as the noise floor.
    let mut band_mags: Vec<f64> = mags[lo_bin..=hi_bin].to_vec();
    band_mags.sort_by(f64::total_cmp);
    let median = band_mags[band_mags.len() / 2];
    let snr = if median > 0.0 { best_mag / median } else { f64::INFINITY };

    let mut bin_pos = best_bin as f64;
    if refine && best_bin > lo_bin && best_bin < hi_bin {
        // Parabolic (quadratic) interpolation on the three bins around the
        // peak: offset = ½(α−γ)/(α−2β+γ).
        let alpha = mags[best_bin - 1];
        let beta = mags[best_bin];
        let gamma = mags[best_bin + 1];
        let denom = alpha - 2.0 * beta + gamma;
        if denom.abs() > 1e-12 {
            let delta = 0.5 * (alpha - gamma) / denom;
            if delta.abs() <= 0.5 {
                bin_pos += delta;
            }
        }
    }

    Some(PeriodEstimate { period: total / bin_pos, bin: best_bin, magnitude: best_mag, snr })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(n: usize, period: f64, amp: f64, dc: f64) -> Vec<f64> {
        (0..n).map(|k| dc + amp * (2.0 * std::f64::consts::PI * k as f64 / period).sin()).collect()
    }

    #[test]
    fn band_constructor_validates() {
        let b = PeriodBand::new(10.0, 100.0);
        assert_eq!(b.min_period, 10.0);
    }

    #[test]
    #[should_panic(expected = "invalid period band")]
    fn band_rejects_inverted() {
        PeriodBand::new(100.0, 10.0);
    }

    #[test]
    fn finds_exact_integer_cycle() {
        // 1800 s of signal with a 90 s cycle → bin 20 exactly.
        let sig = tone(1800, 90.0, 5.0, 20.0);
        let est = dominant_period(&sig, 1.0, PeriodBand::TRAFFIC_LIGHTS).unwrap();
        assert_eq!(est.bin, 20);
        assert!((est.period - 90.0).abs() < 1e-9);
        assert!(est.snr > 10.0, "snr was {}", est.snr);
    }

    #[test]
    fn paper_worked_example_97_of_98() {
        // Paper Sec. V-A: one hour of data, ground-truth cycle 98 s; the
        // strongest bin is 37 (3600/37 ≈ 97.3 s).
        let sig = tone(3600, 98.0, 5.0, 15.0);
        let est = dominant_period(&sig, 1.0, PeriodBand::TRAFFIC_LIGHTS).unwrap();
        assert_eq!(est.bin, 37);
        assert!((est.period - 3600.0 / 37.0).abs() < 1e-9);
        // Integer-bin quantisation leaves ≲1 s of error, as in the paper.
        assert!((est.period - 98.0).abs() < 1.0);
    }

    #[test]
    fn refinement_reduces_quantisation_error() {
        let sig = tone(3600, 98.0, 5.0, 15.0);
        let coarse = dominant_period(&sig, 1.0, PeriodBand::TRAFFIC_LIGHTS).unwrap();
        let fine = dominant_period_refined(&sig, 1.0, PeriodBand::TRAFFIC_LIGHTS).unwrap();
        assert!(
            (fine.period - 98.0).abs() <= (coarse.period - 98.0).abs() + 1e-12,
            "refined {} vs coarse {}",
            fine.period,
            coarse.period
        );
    }

    #[test]
    fn dc_alone_yields_no_confident_peak() {
        // Constant signal: after demeaning everything is ~0.
        let sig = vec![30.0; 1200];
        assert!(dominant_period(&sig, 1.0, PeriodBand::TRAFFIC_LIGHTS).is_none());
    }

    #[test]
    fn band_excludes_out_of_range_period() {
        // 20 s cycle lies below the 30 s minimum → the search must not pick
        // its bin even though it is the strongest.
        let sig = tone(1200, 20.0, 5.0, 10.0);
        let est = dominant_period(&sig, 1.0, PeriodBand::TRAFFIC_LIGHTS);
        if let Some(e) = est {
            assert!(e.period >= 30.0 && e.period <= 300.0);
            assert!(e.snr < 5.0, "no confident in-band peak expected, snr={}", e.snr);
        }
    }

    #[test]
    fn too_short_signal_returns_none() {
        assert!(dominant_period(&[1.0, 2.0], 1.0, PeriodBand::TRAFFIC_LIGHTS).is_none());
        // 60 samples at 1 s cannot hold a 300 s period band lower bin.
        let sig = tone(40, 35.0, 3.0, 5.0);
        assert!(dominant_period(&sig, 1.0, PeriodBand::new(100.0, 300.0)).is_none());
    }

    #[test]
    fn sample_dt_scales_period() {
        // Same bin content at dt = 2 s → period doubles.
        let sig = tone(900, 45.0, 4.0, 10.0); // 45 samples/cycle
        let est = dominant_period(&sig, 2.0, PeriodBand::TRAFFIC_LIGHTS).unwrap();
        assert!((est.period - 90.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "sample_dt must be positive")]
    fn rejects_nonpositive_dt() {
        dominant_period(&[1.0; 100], 0.0, PeriodBand::TRAFFIC_LIGHTS);
    }

    #[test]
    fn demean_removes_mean() {
        let d = demean(&[1.0, 2.0, 3.0]);
        assert!((d.iter().sum::<f64>()).abs() < 1e-12);
        assert!(demean(&[]).is_empty());
    }

    #[test]
    fn magnitude_spectrum_is_half_length() {
        let sig = tone(128, 16.0, 1.0, 0.0);
        let m = magnitude_spectrum(&sig);
        assert_eq!(m.len(), 65);
    }

    #[test]
    fn padded_pow2_matches_exact_on_pow2_lengths() {
        // For a power-of-two window, padding is a no-op and the two paths
        // must agree bit for bit.
        let sig = tone(2048, 64.0, 5.0, 12.0);
        let exact = dominant_period(&sig, 1.0, PeriodBand::TRAFFIC_LIGHTS).unwrap();
        let padded =
            dominant_period_with(&sig, 1.0, PeriodBand::TRAFFIC_LIGHTS, SpectrumPath::PaddedPow2)
                .unwrap();
        assert_eq!(exact.bin, padded.bin);
        assert_eq!(exact.period.to_bits(), padded.period.to_bits());
        assert_eq!(exact.magnitude.to_bits(), padded.magnitude.to_bits());
    }

    #[test]
    fn padded_pow2_recovers_planted_period_on_paper_window() {
        // One-hour window (3600 samples, not a power of two): the padded
        // path pads to 4096 and must still land within one padded bin of
        // the planted 98 s cycle.
        let sig = tone(3600, 98.0, 5.0, 15.0);
        let est =
            dominant_period_with(&sig, 1.0, PeriodBand::TRAFFIC_LIGHTS, SpectrumPath::PaddedPow2)
                .unwrap();
        // Padded bin grid: period = 4096/bin; bin 42 → 97.5 s.
        assert!((est.period - 98.0).abs() < 3.0, "got {}", est.period);
        assert!(est.snr > 5.0, "snr was {}", est.snr);
    }

    #[test]
    fn padded_band_candidates_rank_planted_period_first() {
        let sig = tone(3600, 120.0, 6.0, 20.0);
        let cands = band_candidates_with(
            &sig,
            1.0,
            PeriodBand::TRAFFIC_LIGHTS,
            5,
            SpectrumPath::PaddedPow2,
        );
        assert!(!cands.is_empty());
        assert!((cands[0].period - 120.0).abs() < 3.0, "got {}", cands[0].period);
    }

    #[test]
    fn square_wave_traffic_pattern_detected() {
        // Speed alternating red (≈0) / green (≈40 km/h) with period 106 s —
        // harmonically rich, like real stop-and-go traffic.
        let n = 2120; // 20 cycles
        let sig: Vec<f64> = (0..n).map(|k| if (k % 106) < 63 { 2.0 } else { 40.0 }).collect();
        let est = dominant_period(&sig, 1.0, PeriodBand::TRAFFIC_LIGHTS).unwrap();
        assert!((est.period - 106.0).abs() < 2.0, "got {}", est.period);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]
            #[test]
            fn planted_period_recovered(period in 40.0f64..250.0, amp in 1.0f64..20.0) {
                // 30 cycles of signal, integer length.
                let n = (period * 30.0) as usize;
                let sig = tone(n, period, amp, 25.0);
                let est = dominant_period(&sig, 1.0, PeriodBand::TRAFFIC_LIGHTS).unwrap();
                // Bin quantisation error bound: period²/total.
                let tol = period * period / (n as f64) + 1e-9;
                prop_assert!((est.period - period).abs() <= tol.max(1.0),
                             "period {} est {} tol {}", period, est.period, tol);
            }

            #[test]
            fn estimate_always_inside_band(xs in prop::collection::vec(0.0f64..60.0, 64..512)) {
                if let Some(est) = dominant_period(&xs, 1.0, PeriodBand::TRAFFIC_LIGHTS) {
                    prop_assert!(est.period >= 30.0 - 1e-9);
                    prop_assert!(est.period <= 300.0 + 1e-9);
                }
            }
        }
    }
}
