//! Fixed-width histograms and empirical CDFs.
//!
//! Used throughout the evaluation: Fig. 2's distribution plots, the
//! red-light-duration classifier's mean-sample-interval bins (Fig. 9), and
//! the error CDFs of Fig. 14.

/// A histogram with uniform bin width over `[lo, hi)`.
///
/// Values below `lo` land in an underflow counter, values at or above `hi`
/// in an overflow counter, so no sample is silently dropped.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    width: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram covering `[lo, hi)` with `bins` equal bins.
    ///
    /// # Panics
    /// Panics when `bins == 0` or `hi <= lo` or bounds are non-finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo.is_finite() && hi.is_finite() && hi > lo, "invalid histogram range [{lo},{hi})");
        Histogram {
            lo,
            width: (hi - lo) / bins as f64,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Creates a histogram whose bins are `width` wide starting at `lo`,
    /// with enough bins to cover `hi`.
    ///
    /// This mirrors the paper's red-light classifier, which divides a cycle
    /// into *mean-sample-interval*-wide bins.
    pub fn with_bin_width(lo: f64, hi: f64, width: f64) -> Self {
        assert!(width > 0.0 && width.is_finite(), "bin width must be positive");
        assert!(hi > lo, "invalid histogram range [{lo},{hi})");
        let bins = ((hi - lo) / width).ceil().max(1.0) as usize;
        Histogram { lo, width, counts: vec![0; bins], underflow: 0, overflow: 0 }
    }

    /// Adds one sample.
    pub fn add(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        let idx = ((x - self.lo) / self.width) as usize;
        if idx >= self.counts.len() {
            self.overflow += 1;
        } else {
            self.counts[idx] += 1;
        }
    }

    /// Adds many samples.
    pub fn extend(&mut self, xs: &[f64]) {
        for &x in xs {
            self.add(x);
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Bin width.
    pub fn bin_width(&self) -> f64 {
        self.width
    }

    /// Count in bin `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// All bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the range end.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples including under/overflow.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// `[start, end)` interval covered by bin `i`.
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        let start = self.lo + self.width * i as f64;
        (start, start + self.width)
    }

    /// Midpoint of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let (a, b) = self.bin_range(i);
        0.5 * (a + b)
    }

    /// Index of the fullest bin (earliest on ties); `None` when all bins are
    /// empty.
    pub fn mode_bin(&self) -> Option<usize> {
        let max = *self.counts.iter().max()?;
        if max == 0 {
            return None;
        }
        self.counts.iter().position(|&c| c == max)
    }

    /// Fraction of in-range samples in bin `i` (0 when no in-range samples).
    pub fn fraction(&self, i: usize) -> f64 {
        let in_range: u64 = self.counts.iter().sum();
        if in_range == 0 {
            0.0
        } else {
            self.counts[i] as f64 / in_range as f64
        }
    }
}

/// An empirical cumulative distribution function built from samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds the ECDF; NaNs are dropped.
    pub fn new(samples: &[f64]) -> Self {
        let mut sorted: Vec<f64> = samples.iter().copied().filter(|v| !v.is_nan()).collect();
        sorted.sort_by(f64::total_cmp);
        Ecdf { sorted }
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when no samples were retained.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X <= x)`; 0 for an empty ECDF.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Smallest sample `x` with `P(X <= x) >= q`, `q ∈ (0, 1]`; `None` when
    /// empty.
    ///
    /// # Panics
    /// Panics when `q` is outside `(0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!(q > 0.0 && q <= 1.0, "quantile must be in (0,1], got {q}");
        if self.sorted.is_empty() {
            return None;
        }
        let idx = ((q * self.sorted.len() as f64).ceil() as usize).max(1) - 1;
        Some(self.sorted[idx.min(self.sorted.len() - 1)])
    }

    /// The sorted samples (useful for plotting the CDF curve).
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// Evaluates the CDF at evenly spaced points across the sample range —
    /// `points` pairs of `(x, P(X <= x))` — convenient for printing Fig. 14
    /// style curves. Empty when no samples.
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || points == 0 {
            return Vec::new();
        }
        let lo = self.sorted[0];
        let hi = *self.sorted.last().unwrap();
        if points == 1 || hi == lo {
            return vec![(hi, 1.0)];
        }
        (0..points)
            .map(|k| {
                let x = lo + (hi - lo) * k as f64 / (points - 1) as f64;
                (x, self.fraction_at_or_below(x))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_places_samples_in_bins() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.extend(&[0.0, 1.9, 2.0, 5.5, 9.9]);
        assert_eq!(h.counts(), &[2, 1, 1, 0, 1]);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn under_overflow_counted() {
        let mut h = Histogram::new(0.0, 10.0, 2);
        h.extend(&[-1.0, 10.0, 100.0, 5.0, f64::NAN]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 4); // NaN dropped
    }

    #[test]
    fn with_bin_width_covers_range() {
        let h = Histogram::with_bin_width(0.0, 106.0, 20.14);
        assert_eq!(h.bins(), 6); // ceil(106/20.14)
        assert!((h.bin_width() - 20.14).abs() < 1e-12);
        let (a, b) = h.bin_range(0);
        assert_eq!(a, 0.0);
        assert!((b - 20.14).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_rejected() {
        Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "invalid histogram range")]
    fn inverted_range_rejected() {
        Histogram::new(1.0, 0.0, 4);
    }

    #[test]
    fn mode_and_fraction() {
        let mut h = Histogram::new(0.0, 3.0, 3);
        h.extend(&[0.5, 1.5, 1.6, 2.5]);
        assert_eq!(h.mode_bin(), Some(1));
        assert_eq!(h.fraction(1), 0.5);
        assert_eq!(h.count(1), 2);
        assert_eq!(h.bin_center(1), 1.5);

        let empty = Histogram::new(0.0, 1.0, 2);
        assert_eq!(empty.mode_bin(), None);
        assert_eq!(empty.fraction(0), 0.0);
    }

    #[test]
    fn ecdf_basic() {
        let e = Ecdf::new(&[3.0, 1.0, 2.0, 2.0]);
        assert_eq!(e.len(), 4);
        assert!(!e.is_empty());
        assert_eq!(e.fraction_at_or_below(0.5), 0.0);
        assert_eq!(e.fraction_at_or_below(1.0), 0.25);
        assert_eq!(e.fraction_at_or_below(2.0), 0.75);
        assert_eq!(e.fraction_at_or_below(10.0), 1.0);
    }

    #[test]
    fn ecdf_quantiles() {
        let e = Ecdf::new(&[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(e.quantile(0.25), Some(10.0));
        assert_eq!(e.quantile(0.5), Some(20.0));
        assert_eq!(e.quantile(1.0), Some(40.0));
        assert_eq!(Ecdf::new(&[]).quantile(0.5), None);
    }

    #[test]
    #[should_panic(expected = "quantile must be in (0,1]")]
    fn ecdf_quantile_range_checked() {
        Ecdf::new(&[1.0]).quantile(0.0);
    }

    #[test]
    fn ecdf_drops_nan() {
        let e = Ecdf::new(&[1.0, f64::NAN, 2.0]);
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn ecdf_curve_monotone_and_ends_at_one() {
        let e = Ecdf::new(&[0.0, 1.0, 2.0, 5.0, 9.0]);
        let curve = e.curve(20);
        assert_eq!(curve.len(), 20);
        for w in curve.windows(2) {
            assert!(w[0].1 <= w[1].1);
            assert!(w[0].0 <= w[1].0);
        }
        assert_eq!(curve.last().unwrap().1, 1.0);
        assert!(Ecdf::new(&[]).curve(5).is_empty());
        assert_eq!(Ecdf::new(&[7.0]).curve(3), vec![(7.0, 1.0)]);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn histogram_conserves_samples(xs in prop::collection::vec(-50.0f64..150.0, 0..300)) {
                let mut h = Histogram::new(0.0, 100.0, 10);
                h.extend(&xs);
                prop_assert_eq!(h.total() as usize, xs.len());
            }

            #[test]
            fn ecdf_is_monotone(xs in prop::collection::vec(-100.0f64..100.0, 1..100),
                                a in -120.0f64..120.0, b in -120.0f64..120.0) {
                let e = Ecdf::new(&xs);
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                prop_assert!(e.fraction_at_or_below(lo) <= e.fraction_at_or_below(hi));
            }

            #[test]
            fn quantile_of_fraction_round_trip(xs in prop::collection::vec(0.0f64..100.0, 1..100),
                                               q in 0.01f64..1.0) {
                let e = Ecdf::new(&xs);
                let x = e.quantile(q).unwrap();
                prop_assert!(e.fraction_at_or_below(x) >= q - 1e-9);
            }
        }
    }
}
