//! Convolution and moving averages.
//!
//! The change-point identifier (paper Sec. VI-C) slides a red-light-duration
//! window over the superposed one-cycle speed series "using convolution
//! operation" and looks for the minimum of the moving average. Because the
//! superposed series is one *cycle* of a periodic signal, the window must
//! wrap around the cycle boundary — that is [`circular_moving_average`].
//! General linear convolution (direct and FFT-based) is provided for
//! completeness and as a benchmark ablation.

use crate::complex::Complex64;
use crate::fft::{fft, ifft, next_power_of_two};

/// Full linear convolution computed directly in `O(n·m)`.
///
/// The result has length `a.len() + b.len() - 1`; empty inputs produce an
/// empty result.
pub fn convolve_direct(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0.0; a.len() + b.len() - 1];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            out[i + j] += ai * bj;
        }
    }
    out
}

/// Full linear convolution via zero-padded FFT in `O(N log N)`.
pub fn convolve_fft(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let out_len = a.len() + b.len() - 1;
    let m = next_power_of_two(out_len);
    let mut fa = vec![Complex64::ZERO; m];
    let mut fb = vec![Complex64::ZERO; m];
    for (dst, &src) in fa.iter_mut().zip(a) {
        *dst = Complex64::from_real(src);
    }
    for (dst, &src) in fb.iter_mut().zip(b) {
        *dst = Complex64::from_real(src);
    }
    let sa = fft(&fa);
    let sb = fft(&fb);
    let prod: Vec<Complex64> = sa.iter().zip(&sb).map(|(x, y)| *x * *y).collect();
    ifft(&prod).into_iter().take(out_len).map(|c| c.re).collect()
}

/// Full linear convolution, dispatching to the direct method for small
/// inputs and the FFT method for large ones.
pub fn convolve(a: &[f64], b: &[f64]) -> Vec<f64> {
    // Empirical crossover: direct wins while n·m is small.
    if a.len().saturating_mul(b.len()) <= 4096 {
        convolve_direct(a, b)
    } else {
        convolve_fft(a, b)
    }
}

/// Centred moving average with edge truncation.
///
/// `out[i]` is the mean of the samples within `window` positions centred on
/// `i`, truncated at the signal edges (so edge outputs average fewer
/// samples). `window` must be ≥ 1; a window of 1 returns the input.
pub fn moving_average(signal: &[f64], window: usize) -> Vec<f64> {
    assert!(window >= 1, "moving_average window must be >= 1");
    let n = signal.len();
    if n == 0 {
        return Vec::new();
    }
    let half_left = (window - 1) / 2;
    let half_right = window / 2;
    let mut out = Vec::with_capacity(n);
    // Prefix sums for O(n) evaluation.
    let mut prefix = Vec::with_capacity(n + 1);
    prefix.push(0.0);
    for &v in signal {
        prefix.push(prefix.last().unwrap() + v);
    }
    for i in 0..n {
        let lo = i.saturating_sub(half_left);
        let hi = (i + half_right + 1).min(n);
        out.push((prefix[hi] - prefix[lo]) / (hi - lo) as f64);
    }
    out
}

/// Circular (wrap-around) moving average over one period of a cyclic signal.
///
/// `out[i]` is the mean of `signal[i], signal[i+1], …, signal[i+window-1]`
/// with indices taken modulo the signal length. This is the paper's sliding
/// red-light window over the superposed cycle: the window starting at the
/// red-onset position covers exactly the red phase.
///
/// `window` is clamped to the signal length.
pub fn circular_moving_average(signal: &[f64], window: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(signal.len());
    crate::kernels::circular_moving_average_into(signal, window, &mut out);
    out
}

/// [`circular_moving_average`] into a caller-supplied buffer (cleared
/// first). Identical arithmetic — same rolling sum, same division — so the
/// output is bit-identical; allocation-free once `out` has capacity.
pub fn circular_moving_average_into(signal: &[f64], window: usize, out: &mut Vec<f64>) {
    crate::kernels::circular_moving_average_into(signal, window, out);
}

/// Index of the minimum value; ties resolve to the earliest index. Returns
/// `None` for an empty slice.
pub fn argmin(values: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in values.iter().enumerate() {
        match best {
            Some((_, bv)) if bv <= v => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// Index of the maximum value; ties resolve to the earliest index. Returns
/// `None` for an empty slice.
pub fn argmax(values: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in values.iter().enumerate() {
        match best {
            Some((_, bv)) if bv >= v => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_small_example() {
        // [1,2,3] * [1,1] = [1,3,5,3]
        assert_eq!(convolve_direct(&[1.0, 2.0, 3.0], &[1.0, 1.0]), vec![1.0, 3.0, 5.0, 3.0]);
    }

    #[test]
    fn empty_inputs() {
        assert!(convolve_direct(&[], &[1.0]).is_empty());
        assert!(convolve_fft(&[1.0], &[]).is_empty());
        assert!(convolve(&[], &[]).is_empty());
        assert!(moving_average(&[], 3).is_empty());
        assert!(circular_moving_average(&[], 3).is_empty());
        assert_eq!(argmin(&[]), None);
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn identity_kernel() {
        let x = vec![4.0, -1.0, 2.5];
        assert_eq!(convolve_direct(&x, &[1.0]), x);
    }

    #[test]
    fn fft_matches_direct() {
        let a: Vec<f64> = (0..50).map(|k| ((k * 7) % 11) as f64 - 5.0).collect();
        let b: Vec<f64> = (0..23).map(|k| ((k * 3) % 5) as f64 * 0.5).collect();
        let d = convolve_direct(&a, &b);
        let f = convolve_fft(&a, &b);
        assert_eq!(d.len(), f.len());
        for (x, y) in d.iter().zip(&f) {
            assert!((x - y).abs() < 1e-8, "{x} vs {y}");
        }
    }

    #[test]
    fn dispatcher_picks_both_paths() {
        let small = convolve(&[1.0, 2.0], &[3.0]);
        assert_eq!(small, vec![3.0, 6.0]);
        let a = vec![1.0; 200];
        let b = vec![1.0; 100];
        let big = convolve(&a, &b);
        // Peak of the trapezoid is min(len) = 100.
        assert!((big[150] - 100.0).abs() < 1e-6);
        assert_eq!(big.len(), 299);
    }

    #[test]
    fn convolution_is_commutative() {
        let a = vec![1.0, -2.0, 0.5, 4.0];
        let b = vec![2.0, 3.0, -1.0];
        let ab = convolve_direct(&a, &b);
        let ba = convolve_direct(&b, &a);
        assert_eq!(ab, ba);
    }

    #[test]
    fn moving_average_window_one_is_identity() {
        let x = vec![3.0, 1.0, 4.0, 1.0, 5.0];
        assert_eq!(moving_average(&x, 1), x);
    }

    #[test]
    fn moving_average_truncates_edges() {
        let x = vec![0.0, 10.0, 20.0];
        let ma = moving_average(&x, 3);
        // i=0 averages [0,10]; i=1 averages all; i=2 averages [10,20].
        assert_eq!(ma, vec![5.0, 10.0, 15.0]);
    }

    #[test]
    #[should_panic(expected = "window must be >= 1")]
    fn moving_average_rejects_zero_window() {
        moving_average(&[1.0], 0);
    }

    #[test]
    fn circular_average_wraps() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let ma = circular_moving_average(&x, 2);
        assert_eq!(ma, vec![1.5, 2.5, 3.5, 2.5]); // last wraps to (4+1)/2
    }

    #[test]
    fn circular_average_full_window_is_global_mean() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let ma = circular_moving_average(&x, 4);
        for v in ma {
            assert!((v - 2.5).abs() < 1e-12);
        }
    }

    #[test]
    fn circular_average_clamps_oversized_window() {
        let x = vec![2.0, 4.0];
        let ma = circular_moving_average(&x, 10);
        assert_eq!(ma, vec![3.0, 3.0]);
    }

    #[test]
    fn circular_window_finds_planted_minimum() {
        // One cycle: low speed (red) from 30..70, high elsewhere.
        let n = 100;
        let w = 40;
        let x: Vec<f64> = (0..n).map(|i| if (30..70).contains(&i) { 0.0 } else { 10.0 }).collect();
        let ma = circular_moving_average(&x, w);
        assert_eq!(argmin(&ma), Some(30));
    }

    #[test]
    fn circular_average_into_matches_allocating() {
        let x: Vec<f64> = (0..97).map(|k| ((k * 31) % 17) as f64 - 8.0).collect();
        let mut out = vec![999.0; 3]; // stale contents must be cleared
        for w in [1usize, 2, 40, 97, 200] {
            circular_moving_average_into(&x, w, &mut out);
            let reference = circular_moving_average(&x, w);
            assert_eq!(out.len(), reference.len());
            for (a, b) in out.iter().zip(&reference) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        circular_moving_average_into(&[], 3, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn argmin_argmax_tie_break_earliest() {
        let x = vec![2.0, 1.0, 1.0, 3.0, 3.0];
        assert_eq!(argmin(&x), Some(1));
        assert_eq!(argmax(&x), Some(3));
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn fft_conv_matches_direct(a in prop::collection::vec(-20.0f64..20.0, 1..60),
                                       b in prop::collection::vec(-20.0f64..20.0, 1..60)) {
                let d = convolve_direct(&a, &b);
                let f = convolve_fft(&a, &b);
                for (x, y) in d.iter().zip(&f) {
                    prop_assert!((x - y).abs() < 1e-6);
                }
            }

            #[test]
            fn circular_average_preserves_mean(x in prop::collection::vec(-5.0f64..50.0, 1..80),
                                               w in 1usize..90) {
                let ma = circular_moving_average(&x, w);
                let mean_in: f64 = x.iter().sum::<f64>() / x.len() as f64;
                let mean_out: f64 = ma.iter().sum::<f64>() / ma.len() as f64;
                prop_assert!((mean_in - mean_out).abs() < 1e-7);
            }

            #[test]
            fn moving_average_bounded_by_input(x in prop::collection::vec(-30.0f64..30.0, 1..60),
                                               w in 1usize..10) {
                let lo = x.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                for v in moving_average(&x, w) {
                    prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
                }
            }
        }
    }
}
