//! Reusable scratch for the identification hot path.
//!
//! [`SignalWorkspace`] owns a [`PlanCache`] plus every intermediate buffer
//! the per-light pipeline needs from this crate — merge/sort scratch and
//! spline coefficients for [`crate::interpolate::resample`], the complex
//! spectrum and Bluestein convolution buffer behind
//! [`crate::fft::eq1_spectrum`], the magnitude spectrum, and the banded
//! median/candidate buffers of [`crate::periodogram`]. After a warmup call
//! per signal shape, the `*_into`/`*_ws` entry points below perform **zero
//! heap allocations** and return results **bit-identical** to the allocating
//! free functions (same summation order, same bin grid) — pinned by the
//! proptests in `tests/plan_identity.rs`.
//!
//! Ownership rule: one workspace per thread. The type is deliberately not
//! `Sync`-shareable state — give each worker its own and reuse it across
//! calls; never share one behind a lock.

use crate::complex::Complex64;
use crate::fft::next_power_of_two;
use crate::interpolate::{validate, InterpolateError, Method};
use crate::periodogram::{PeriodBand, PeriodEstimate, SpectrumPath};
use crate::plan::{PlanCache, PlanCacheStats};
use taxilight_obs::span;

/// Per-thread scratch + plan cache for allocation-free signal processing.
///
/// See the [module docs](self) for the ownership rules and the bit-identity
/// contract with the allocating free functions.
#[derive(Debug, Default)]
pub struct SignalWorkspace {
    plans: PlanCache,
    /// Bluestein convolution buffer (length `m = next_pow2(2N−1)`).
    conv: Vec<Complex64>,
    /// Complex signal/spectrum buffer for the Eq. (1) transform.
    spec: Vec<Complex64>,
    /// Demeaned (and possibly zero-padded) real signal.
    real: Vec<f64>,
    /// Magnitude spectrum, bins `0 ..= N/2`.
    mags: Vec<f64>,
    /// The one reused banded buffer that replaces the two per-call
    /// allocations in `periodogram::search`/`band_candidates_with`: first
    /// the median copy, then (as `bins`) the candidate ranking.
    band: Vec<f64>,
    bins: Vec<(usize, f64)>,
    /// `(t, v, filtered-index)` sort scratch reproducing the stable
    /// sort order of `merge_coincident` without its allocation.
    tagged: Vec<(f64, f64, usize)>,
    /// Output of same-slot mean-merging; doubles as the spline knots.
    merged: Vec<(f64, f64)>,
    // Natural-cubic-spline scratch (Thomas solve).
    h: Vec<f64>,
    diag: Vec<f64>,
    sub: Vec<f64>,
    sup: Vec<f64>,
    rhs: Vec<f64>,
    m2: Vec<f64>,
    /// Nanoseconds spent inside dispatched [`crate::kernels`] regions since
    /// the last [`take_kernel_nanos`](Self::take_kernel_nanos) call.
    kernel_ns: u64,
}

impl SignalWorkspace {
    /// An empty workspace; buffers grow on first use and are kept after.
    pub fn new() -> Self {
        SignalWorkspace::default()
    }

    /// Hit/miss counters of the owned plan cache.
    pub fn plan_stats(&self) -> PlanCacheStats {
        self.plans.stats()
    }

    /// Resets the plan-cache counters (plans stay cached).
    pub fn reset_plan_stats(&mut self) {
        self.plans.reset_stats();
    }

    /// Drains the nanoseconds accumulated inside dispatched kernel regions
    /// (spectrum + resample grid evaluation) since the last call. The
    /// pipeline folds this into its `stage.kernel` timing so Chrome traces
    /// separate vectorized-kernel time from surrounding orchestration.
    pub fn take_kernel_nanos(&mut self) -> u64 {
        std::mem::take(&mut self.kernel_ns)
    }

    /// In-place forward FFT of `buf` (any length), bit-identical to
    /// [`crate::fft::fft`]. Plans are cached per length; allocation-free
    /// once the plan and scratch for this length exist.
    pub fn fft_in_place(&mut self, buf: &mut [Complex64]) {
        if buf.is_empty() {
            return;
        }
        let plan = self.plans.get_or_build(buf.len());
        plan.fft_in_place(buf, &mut self.conv);
    }

    /// In-place inverse FFT of `buf` (including the `1/N` factor),
    /// bit-identical to [`crate::fft::ifft`].
    pub fn ifft_in_place(&mut self, buf: &mut [Complex64]) {
        if buf.is_empty() {
            return;
        }
        let plan = self.plans.get_or_build(buf.len());
        plan.ifft_in_place(buf, &mut self.conv);
    }

    /// Eq. (1) spectrum of a real signal into `out`, bit-identical to
    /// [`crate::fft::eq1_spectrum`].
    pub fn eq1_spectrum_into(&mut self, signal: &[f64], out: &mut Vec<Complex64>) {
        out.clear();
        let n = signal.len();
        if n == 0 {
            return;
        }
        let inv_n = 1.0 / n as f64;
        out.extend(signal.iter().map(|&v| Complex64::from_real(v)));
        self.fft_in_place(out);
        crate::kernels::conj_scale_in_place(out, inv_n);
    }

    /// Dominant-period search, bit-identical to
    /// [`crate::periodogram::dominant_period_with`] (`refine = false`) /
    /// [`crate::periodogram::dominant_period_refined_with`] (`refine = true`).
    pub fn dominant_period(
        &mut self,
        signal: &[f64],
        sample_dt: f64,
        band: PeriodBand,
        refine: bool,
        path: SpectrumPath,
    ) -> Option<PeriodEstimate> {
        assert!(sample_dt > 0.0, "sample_dt must be positive");
        let _span = span!("signal.dft", n = signal.len(), refine = refine);
        let n = signal.len();
        if n < 4 {
            return None;
        }
        let total = self.banded_spectrum(signal, sample_dt, path);
        let mags = &self.mags;

        let lo_bin = ((total / band.max_period).ceil() as usize).max(1);
        let hi_bin = ((total / band.min_period).floor() as usize).min(mags.len().saturating_sub(1));
        if lo_bin > hi_bin {
            return None;
        }

        let (mut best_bin, mut best_mag) = (lo_bin, mags[lo_bin]);
        for (k, &mag) in mags.iter().enumerate().take(hi_bin + 1).skip(lo_bin) {
            if mag > best_mag {
                best_mag = mag;
                best_bin = k;
            }
        }
        if best_mag == 0.0 {
            return None;
        }

        // Median magnitude in the band as the noise floor — one reused
        // buffer instead of a fresh `to_vec` per call. Sorting by
        // `total_cmp` is a total order, so the unstable sort yields the
        // same array (equal keys are bit-identical) and the same median.
        self.band.clear();
        self.band.extend_from_slice(&mags[lo_bin..=hi_bin]);
        self.band.sort_unstable_by(f64::total_cmp);
        let median = self.band[self.band.len() / 2];
        let snr = if median > 0.0 { best_mag / median } else { f64::INFINITY };

        let mut bin_pos = best_bin as f64;
        if refine && best_bin > lo_bin && best_bin < hi_bin {
            let alpha = mags[best_bin - 1];
            let beta = mags[best_bin];
            let gamma = mags[best_bin + 1];
            let denom = alpha - 2.0 * beta + gamma;
            if denom.abs() > 1e-12 {
                let delta = 0.5 * (alpha - gamma) / denom;
                if delta.abs() <= 0.5 {
                    bin_pos += delta;
                }
            }
        }

        Some(PeriodEstimate { period: total / bin_pos, bin: best_bin, magnitude: best_mag, snr })
    }

    /// The `k` strongest in-band bins into `out` (cleared first),
    /// bit-identical to [`crate::periodogram::band_candidates_with`].
    pub fn band_candidates_into(
        &mut self,
        signal: &[f64],
        sample_dt: f64,
        band: PeriodBand,
        k: usize,
        path: SpectrumPath,
        out: &mut Vec<PeriodEstimate>,
    ) {
        assert!(sample_dt > 0.0, "sample_dt must be positive");
        out.clear();
        let n = signal.len();
        if n < 4 || k == 0 {
            return;
        }
        let total = self.banded_spectrum(signal, sample_dt, path);
        let mags = &self.mags;
        let lo_bin = ((total / band.max_period).ceil() as usize).max(1);
        let hi_bin = ((total / band.min_period).floor() as usize).min(mags.len().saturating_sub(1));
        if lo_bin > hi_bin {
            return;
        }
        self.band.clear();
        self.band.extend_from_slice(&mags[lo_bin..=hi_bin]);
        self.band.sort_unstable_by(f64::total_cmp);
        let median = self.band[self.band.len() / 2];

        self.bins.clear();
        self.bins.extend((lo_bin..=hi_bin).map(|b| (b, mags[b])).filter(|&(_, m)| m > 0.0));
        // The allocating path uses a stable descending sort over bins that
        // were pushed in ascending order; descending magnitude with the bin
        // index as tiebreak reproduces that order without the stable sort's
        // temporary buffer.
        self.bins.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        self.bins.truncate(k);
        out.extend(self.bins.iter().map(|&(bin, magnitude)| PeriodEstimate {
            period: total / bin as f64,
            bin,
            magnitude,
            snr: if median > 0.0 { magnitude / median } else { f64::INFINITY },
        }));
    }

    /// Same-slot mean-merge of irregular `(t, v)` samples into `out`,
    /// bit-identical to [`crate::interpolate::merge_coincident`]. Exposed
    /// for the per-light enhancement stage, which merges the primary and
    /// perpendicular pools before mirroring.
    pub fn merge_coincident_into(&mut self, samples: &[(f64, f64)], out: &mut Vec<(f64, f64)>) {
        merge_coincident_into(samples, &mut self.tagged, out);
    }

    /// Resamples irregular `(t, v)` samples onto the regular grid into
    /// `out`, bit-identical to [`crate::interpolate::resample`].
    pub fn resample_into(
        &mut self,
        samples: &[(f64, f64)],
        t0: f64,
        dt: f64,
        count: usize,
        method: Method,
        out: &mut Vec<f64>,
    ) -> Result<(), InterpolateError> {
        let _span = span!("signal.resample", samples = samples.len(), count = count);
        merge_coincident_into(samples, &mut self.tagged, &mut self.merged);
        if self.merged.is_empty() {
            return Err(InterpolateError::Empty);
        }
        out.clear();
        match method {
            Method::NearestOrZero => {
                out.resize(count, 0.0);
                for &(t, v) in &self.merged {
                    let slot = ((t - t0) / dt).round();
                    if slot >= 0.0 && (slot as usize) < count {
                        out[slot as usize] = v;
                    }
                }
                Ok(())
            }
            Method::Linear => {
                validate(&self.merged)?;
                let _kspan = span!("stage.kernel", kernel = 1, count = count);
                let kstart = std::time::Instant::now();
                crate::kernels::lerp_grid_into(&self.merged, t0, dt, count, out);
                self.kernel_ns += kstart.elapsed().as_nanos() as u64;
                Ok(())
            }
            Method::CubicSpline => {
                validate(&self.merged)?;
                spline_coeffs(
                    &self.merged,
                    &mut self.h,
                    &mut self.diag,
                    &mut self.sub,
                    &mut self.sup,
                    &mut self.rhs,
                    &mut self.m2,
                );
                let _kspan = span!("stage.kernel", kernel = 1, count = count);
                let kstart = std::time::Instant::now();
                crate::kernels::spline_grid_into(&self.merged, &self.m2, t0, dt, count, out);
                self.kernel_ns += kstart.elapsed().as_nanos() as u64;
                Ok(())
            }
        }
    }

    /// Demeaned magnitude spectrum into `self.mags`; returns the total
    /// duration for the bin→period mapping. Mirrors the private
    /// `periodogram::banded_spectrum`.
    fn banded_spectrum(&mut self, signal: &[f64], sample_dt: f64, path: SpectrumPath) -> f64 {
        let _kspan = span!("stage.kernel", kernel = 1, n = signal.len());
        let kstart = std::time::Instant::now();
        if signal.is_empty() {
            self.real.clear();
        } else {
            let mean = crate::kernels::sum(signal) / signal.len() as f64;
            crate::kernels::subtract_scalar_into(signal, mean, &mut self.real);
        }
        if path == SpectrumPath::PaddedPow2 {
            self.real.resize(next_power_of_two(self.real.len()), 0.0);
        }
        let total = self.real.len() as f64 * sample_dt;

        // magnitude_spectrum: Eq. (1) spectrum, then |·| of bins 0 ..= N/2.
        let inv_n = if self.real.is_empty() { 0.0 } else { 1.0 / self.real.len() as f64 };
        self.spec.clear();
        self.spec.extend(self.real.iter().map(|&v| Complex64::from_real(v)));
        if !self.spec.is_empty() {
            let plan = self.plans.get_or_build(self.spec.len());
            plan.fft_in_place(&mut self.spec, &mut self.conv);
            crate::kernels::conj_scale_in_place(&mut self.spec, inv_n);
        }
        let half = (self.spec.len() / 2 + 1).min(self.spec.len());
        crate::kernels::magnitudes_into(&self.spec[..half], &mut self.mags);
        self.kernel_ns += kstart.elapsed().as_nanos() as u64;
        total
    }
}

/// Same-slot mean-merge into `out`, bit-identical to
/// [`crate::interpolate::merge_coincident`]. `tagged` carries the filtered
/// index so an unstable sort reproduces the stable order (ties in `t` keep
/// input order).
fn merge_coincident_into(
    samples: &[(f64, f64)],
    tagged: &mut Vec<(f64, f64, usize)>,
    out: &mut Vec<(f64, f64)>,
) {
    tagged.clear();
    tagged.extend(
        samples
            .iter()
            .filter(|(t, v)| t.is_finite() && v.is_finite())
            .enumerate()
            .map(|(i, &(t, v))| (t, v, i)),
    );
    tagged.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.2.cmp(&b.2)));
    out.clear();
    let mut i = 0;
    while i < tagged.len() {
        let slot = tagged[i].0.floor();
        let mut sum = 0.0;
        let mut count = 0.0;
        while i < tagged.len() && tagged[i].0.floor() == slot {
            sum += tagged[i].1;
            count += 1.0;
            i += 1;
        }
        out.push((slot, sum / count));
    }
}

/// Natural-cubic-spline second derivatives into `m2`, with the identical
/// Thomas-solve arithmetic of [`crate::interpolate::CubicSpline::new`].
#[allow(clippy::too_many_arguments)]
fn spline_coeffs(
    points: &[(f64, f64)],
    h: &mut Vec<f64>,
    diag: &mut Vec<f64>,
    sub: &mut Vec<f64>,
    sup: &mut Vec<f64>,
    rhs: &mut Vec<f64>,
    m2: &mut Vec<f64>,
) {
    let n = points.len();
    m2.clear();
    m2.resize(n, 0.0);
    if n < 3 {
        return;
    }
    h.clear();
    h.extend(points.windows(2).map(|w| w[1].0 - w[0].0));
    let interior = n - 2;
    diag.clear();
    diag.resize(interior, 0.0);
    rhs.clear();
    rhs.resize(interior, 0.0);
    sub.clear();
    sub.resize(interior, 0.0);
    sup.clear();
    sup.resize(interior, 0.0);
    for i in 0..interior {
        let hi = h[i];
        let hi1 = h[i + 1];
        diag[i] = 2.0 * (hi + hi1);
        sub[i] = hi;
        sup[i] = hi1;
        rhs[i] = 6.0
            * ((points[i + 2].1 - points[i + 1].1) / hi1 - (points[i + 1].1 - points[i].1) / hi);
    }
    for i in 1..interior {
        let w = sub[i] / diag[i - 1];
        diag[i] -= w * sup[i - 1];
        rhs[i] -= w * rhs[i - 1];
    }
    m2[n - 2] = rhs[interior - 1] / diag[interior - 1];
    for i in (0..interior - 1).rev() {
        m2[i + 1] = (rhs[i] - sup[i] * m2[i + 2]) / diag[i];
    }
}

/// Spline evaluation with the identical arithmetic of
/// [`crate::interpolate::CubicSpline::eval`], reading knots from `points`.
pub(crate) fn spline_eval(points: &[(f64, f64)], m2: &[f64], x: f64) -> f64 {
    let n = points.len();
    if n == 1 || x <= points[0].0 {
        return if x <= points[0].0 { points[0].1 } else { points[n - 1].1 };
    }
    if x >= points[n - 1].0 {
        return points[n - 1].1;
    }
    let idx = points.partition_point(|&(t, _)| t <= x);
    let (x0, x1) = (points[idx - 1].0, points[idx].0);
    let (y0, y1) = (points[idx - 1].1, points[idx].1);
    let (m0, m1) = (m2[idx - 1], m2[idx]);
    let h = x1 - x0;
    let a = (x1 - x) / h;
    let b = (x - x0) / h;
    a * y0 + b * y1 + ((a * a * a - a) * m0 + (b * b * b - b) * m1) * h * h / 6.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interpolate::{merge_coincident, resample};
    use crate::periodogram::{
        band_candidates_with, dominant_period_refined_with, dominant_period_with,
    };

    fn tone(n: usize, period: f64, amp: f64, dc: f64) -> Vec<f64> {
        (0..n).map(|k| dc + amp * (2.0 * std::f64::consts::PI * k as f64 / period).sin()).collect()
    }

    fn assert_estimates_bit_equal(a: Option<PeriodEstimate>, b: Option<PeriodEstimate>) {
        match (a, b) {
            (None, None) => {}
            (Some(x), Some(y)) => {
                assert_eq!(x.bin, y.bin);
                assert_eq!(x.period.to_bits(), y.period.to_bits());
                assert_eq!(x.magnitude.to_bits(), y.magnitude.to_bits());
                assert_eq!(x.snr.to_bits(), y.snr.to_bits());
            }
            (x, y) => panic!("mismatch: {x:?} vs {y:?}"),
        }
    }

    #[test]
    fn dominant_period_matches_free_function_bitwise() {
        let mut ws = SignalWorkspace::new();
        for n in [1200usize, 2048, 3600] {
            for path in [SpectrumPath::Exact, SpectrumPath::PaddedPow2] {
                for refine in [false, true] {
                    let sig = tone(n, 98.0, 5.0, 15.0);
                    let reference = if refine {
                        dominant_period_refined_with(&sig, 1.0, PeriodBand::TRAFFIC_LIGHTS, path)
                    } else {
                        dominant_period_with(&sig, 1.0, PeriodBand::TRAFFIC_LIGHTS, path)
                    };
                    let ws_est =
                        ws.dominant_period(&sig, 1.0, PeriodBand::TRAFFIC_LIGHTS, refine, path);
                    assert_estimates_bit_equal(ws_est, reference);
                }
            }
        }
    }

    #[test]
    fn band_candidates_match_free_function_bitwise() {
        let mut ws = SignalWorkspace::new();
        let mut out = Vec::new();
        for n in [900usize, 3600] {
            for k in [1usize, 5, 100] {
                let sig = tone(n, 120.0, 6.0, 20.0);
                let reference = band_candidates_with(
                    &sig,
                    1.0,
                    PeriodBand::TRAFFIC_LIGHTS,
                    k,
                    SpectrumPath::Exact,
                );
                ws.band_candidates_into(
                    &sig,
                    1.0,
                    PeriodBand::TRAFFIC_LIGHTS,
                    k,
                    SpectrumPath::Exact,
                    &mut out,
                );
                assert_eq!(out.len(), reference.len());
                for (a, b) in out.iter().zip(&reference) {
                    assert_estimates_bit_equal(Some(*a), Some(*b));
                }
            }
        }
    }

    #[test]
    fn merge_into_matches_free_function() {
        let samples =
            vec![(10.2, 4.0), (10.7, 6.0), (f64::NAN, 1.0), (20.0, 3.0), (10.4, 8.0), (5.9, 2.0)];
        let mut tagged = Vec::new();
        let mut out = Vec::new();
        merge_coincident_into(&samples, &mut tagged, &mut out);
        let reference = merge_coincident(&samples);
        assert_eq!(out.len(), reference.len());
        for (a, b) in out.iter().zip(&reference) {
            assert_eq!(a.0.to_bits(), b.0.to_bits());
            assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
    }

    #[test]
    fn resample_into_matches_free_function_bitwise() {
        let mut ws = SignalWorkspace::new();
        let mut out = Vec::new();
        let samples: Vec<(f64, f64)> =
            (0..40).map(|k| (k as f64 * 19.7, ((k * 13) % 47) as f64)).collect();
        for method in [Method::NearestOrZero, Method::Linear, Method::CubicSpline] {
            let reference = resample(&samples, 0.0, 1.0, 800, method).unwrap();
            ws.resample_into(&samples, 0.0, 1.0, 800, method, &mut out).unwrap();
            assert_eq!(out.len(), reference.len());
            for (a, b) in out.iter().zip(&reference) {
                assert_eq!(a.to_bits(), b.to_bits(), "method {method:?}");
            }
        }
    }

    #[test]
    fn resample_into_propagates_errors() {
        let mut ws = SignalWorkspace::new();
        let mut out = Vec::new();
        assert_eq!(
            ws.resample_into(&[], 0.0, 1.0, 10, Method::CubicSpline, &mut out).unwrap_err(),
            InterpolateError::Empty
        );
        assert_eq!(
            ws.resample_into(&[(f64::NAN, 1.0)], 0.0, 1.0, 10, Method::Linear, &mut out)
                .unwrap_err(),
            InterpolateError::Empty
        );
    }

    #[test]
    fn plan_stats_reflect_reuse() {
        let mut ws = SignalWorkspace::new();
        let sig = tone(3600, 98.0, 5.0, 15.0);
        ws.dominant_period(&sig, 1.0, PeriodBand::TRAFFIC_LIGHTS, false, SpectrumPath::Exact);
        ws.dominant_period(&sig, 1.0, PeriodBand::TRAFFIC_LIGHTS, false, SpectrumPath::Exact);
        let s = ws.plan_stats();
        assert_eq!(s.misses(), 1, "one plan build for N = 3600");
        assert_eq!(s.hits(), 1, "second call must hit the cache");
        ws.reset_plan_stats();
        assert_eq!(ws.plan_stats(), PlanCacheStats::default());
    }
}
