//! The scenario matrix: every conformance run is a fully explicit,
//! seeded recipe, so a failure anywhere — CI, a laptop, a bisect —
//! replays bit-for-bit from the scenario name alone.

use taxilight_roadnet::generators::IrregularConfig;
use taxilight_sim::{CityTopology, ScenarioSpec, ScheduleGenConfig};
use taxilight_trace::time::Timestamp;

/// Which schedule family [`crate::runner::run_scenario`] installs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleFamily {
    /// Fixed plans only (`preprogrammed_fraction = manual_fraction = 0`):
    /// ground truth is single-valued in every window.
    Static,
    /// The paper's Sec.-III category mix (static majority, pre-programmed
    /// downtown, a few manual) — windows are placed off-peak so truth
    /// stays single-valued.
    Mixed,
    /// Every intersection pre-programmed with a peak programme switch;
    /// exercises the Sec.-VII monitor and yields a detection latency.
    PreProgrammedSwitch,
}

impl ScheduleFamily {
    /// Stable identifier used in reports and JSON.
    pub fn tag(self) -> &'static str {
        match self {
            ScheduleFamily::Static => "static",
            ScheduleFamily::Mixed => "mixed",
            ScheduleFamily::PreProgrammedSwitch => "preprogrammed-switch",
        }
    }

    /// The schedule-generator configuration this family stands for.
    pub fn gen_config(self) -> ScheduleGenConfig {
        match self {
            ScheduleFamily::Static => ScheduleGenConfig {
                preprogrammed_fraction: 0.0,
                manual_fraction: 0.0,
                ..ScheduleGenConfig::default()
            },
            ScheduleFamily::Mixed => ScheduleGenConfig::default(),
            ScheduleFamily::PreProgrammedSwitch => ScheduleGenConfig {
                preprogrammed_fraction: 1.0,
                manual_fraction: 0.0,
                ..ScheduleGenConfig::default()
            },
        }
    }
}

/// Per-scenario accuracy tolerances. A scenario passes its gate when every
/// bound holds; bounds follow the paper's headline numbers (≈5 s cycle
/// error, ≈2 sample-interval bins of red error, Figs. 13–14) widened per
/// scenario difficulty.
#[derive(Debug, Clone, Copy)]
pub struct Gates {
    /// Minimum fraction of (light, instant) attempts that must identify.
    pub min_success_rate: f64,
    /// Median cycle-length error bound, seconds.
    pub median_cycle_err_s: f64,
    /// Median red-duration error bound, sample-interval bins.
    pub median_red_bins: f64,
    /// Median change-point (red-onset) circular error bound, seconds.
    pub median_change_err_s: f64,
    /// Schedule-change detection latency bound, seconds; `None` for
    /// scenarios without a programme switch.
    pub max_detect_latency_s: Option<f64>,
}

/// One row of the conformance matrix.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Stable name (JSON key, test name, replay handle).
    pub name: &'static str,
    /// Master seed; the whole world derives from it.
    pub seed: u64,
    /// Street network.
    pub topology: CityTopology,
    /// Fleet size.
    pub taxis: usize,
    /// `(period_s, weight)` reporting mix; `None` keeps the simulator's
    /// default 15/30/60 s blend (paper Fig. 2(b)).
    pub report_periods: Option<Vec<(u32, f64)>>,
    /// Schedule family.
    pub family: ScheduleFamily,
    /// Analysis-window length, seconds.
    pub window_s: u32,
    /// Analysis instants evaluated (identification scenarios only).
    pub instants: usize,
    /// Accuracy tolerances.
    pub gates: Gates,
}

impl Scenario {
    /// The simulator recipe for this scenario.
    pub fn spec(&self) -> ScenarioSpec {
        ScenarioSpec {
            seed: self.seed,
            taxi_count: self.taxis,
            topology: self.topology.clone(),
            schedule: self.family.gen_config(),
            report_period_weights: self.report_periods.clone(),
            start: Timestamp::civil(2014, 12, 5, 0, 0, 0),
        }
    }

    /// Short topology tag for reports.
    pub fn topology_tag(&self) -> String {
        match &self.topology {
            CityTopology::Grid { dim, spacing_m } => format!("grid-{dim}x{spacing_m:.0}m"),
            CityTopology::Irregular(cfg) => {
                format!("irregular-{}x{}x{:.0}m", cfg.rows, cfg.cols, cfg.spacing_m)
            }
        }
    }
}

fn identification_gates(cycle_s: f64, red_bins: f64, change_s: f64, success: f64) -> Gates {
    Gates {
        min_success_rate: success,
        median_cycle_err_s: cycle_s,
        median_red_bins: red_bins,
        median_change_err_s: change_s,
        max_detect_latency_s: None,
    }
}

/// The fast conformance tier: one scenario per matrix axis — dense grid,
/// sparse sampling, irregular topology, mixed schedule families and a
/// monitored programme switch — each finishing in seconds so `cargo test
/// -p taxilight-eval` stays a routine gate.
pub fn matrix() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "grid-static-dense",
            seed: 101,
            topology: CityTopology::Grid { dim: 6, spacing_m: 700.0 },
            taxis: 150,
            report_periods: None,
            family: ScheduleFamily::Static,
            window_s: 3600,
            instants: 1,
            // The paper's headline regime: ~5 s cycle, ~2 bins red.
            gates: identification_gates(4.0, 2.0, 25.0, 0.7),
        },
        Scenario {
            name: "grid-mixed-offpeak",
            seed: 102,
            topology: CityTopology::Grid { dim: 6, spacing_m: 700.0 },
            taxis: 150,
            report_periods: None,
            family: ScheduleFamily::Mixed,
            window_s: 3600,
            instants: 1,
            gates: identification_gates(4.0, 2.0, 25.0, 0.7),
        },
        Scenario {
            name: "grid-sparse-sampling",
            seed: 103,
            topology: CityTopology::Grid { dim: 6, spacing_m: 700.0 },
            taxis: 110,
            // Only the slow reporters: 30/60 s periods, the hard half of
            // Fig. 2(b)'s mix.
            report_periods: Some(vec![(30, 0.5), (60, 0.5)]),
            family: ScheduleFamily::Static,
            window_s: 3600,
            instants: 1,
            gates: identification_gates(6.0, 2.5, 35.0, 0.35),
        },
        Scenario {
            name: "irregular-static",
            seed: 104,
            topology: CityTopology::Irregular(IrregularConfig {
                rows: 5,
                cols: 5,
                spacing_m: 550.0,
                ..IrregularConfig::default()
            }),
            taxis: 140,
            report_periods: None,
            family: ScheduleFamily::Static,
            window_s: 3600,
            instants: 1,
            gates: identification_gates(6.0, 2.5, 35.0, 0.6),
        },
        Scenario {
            name: "grid-change-detection",
            seed: 105,
            topology: CityTopology::Grid { dim: 4, spacing_m: 600.0 },
            taxis: 110,
            report_periods: None,
            family: ScheduleFamily::PreProgrammedSwitch,
            window_s: 1800,
            instants: 0,
            gates: Gates {
                min_success_rate: 0.0,
                median_cycle_err_s: f64::INFINITY,
                median_red_bins: f64::INFINITY,
                median_change_err_s: f64::INFINITY,
                // Window + 2 monitoring intervals, the Sec.-VII bound the
                // seed integration test also asserts.
                max_detect_latency_s: Some(1800.0 + 2.0 * 600.0),
            },
        },
    ]
}

/// The extended tier (`--features slow-eval` / `evalsuite --slow`):
/// multi-seed replicas and fleet-density sweeps over the same axes.
pub fn extended_matrix() -> Vec<Scenario> {
    let mut out = Vec::new();
    // Seed replicas of the headline scenario — regression sensitivity
    // should not hinge on one lucky seed.
    for (k, seed) in [211u64, 212, 213].into_iter().enumerate() {
        out.push(Scenario {
            name: ["grid-static-replica-a", "grid-static-replica-b", "grid-static-replica-c"][k],
            seed,
            topology: CityTopology::Grid { dim: 6, spacing_m: 700.0 },
            taxis: 150,
            report_periods: None,
            family: ScheduleFamily::Static,
            window_s: 3600,
            instants: 2,
            gates: identification_gates(7.0, 2.5, 35.0, 0.4),
        });
    }
    // Fleet-density sweep (the paper's "how many taxis are enough").
    for (name, taxis, gates) in [
        ("grid-fleet-sparse", 60, identification_gates(14.0, 4.0, 45.0, 0.15)),
        ("grid-fleet-dense", 240, identification_gates(6.0, 2.5, 30.0, 0.55)),
    ] {
        out.push(Scenario {
            name,
            seed: 221,
            topology: CityTopology::Grid { dim: 6, spacing_m: 700.0 },
            taxis,
            report_periods: None,
            family: ScheduleFamily::Static,
            window_s: 3600,
            instants: 1,
            gates,
        });
    }
    // Irregular topology with the full category mix.
    out.push(Scenario {
        name: "irregular-mixed",
        seed: 231,
        topology: CityTopology::Irregular(IrregularConfig::default()),
        taxis: 160,
        report_periods: None,
        family: ScheduleFamily::Mixed,
        window_s: 3600,
        instants: 2,
        gates: identification_gates(12.0, 3.5, 45.0, 0.2),
    });
    // Uniform 15 s reporters — the easy extreme of the sampling axis.
    out.push(Scenario {
        name: "grid-fast-sampling",
        seed: 241,
        topology: CityTopology::Grid { dim: 6, spacing_m: 700.0 },
        taxis: 150,
        report_periods: Some(vec![(15, 1.0)]),
        family: ScheduleFamily::Static,
        window_s: 3600,
        instants: 1,
        gates: identification_gates(6.0, 2.5, 30.0, 0.5),
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_names_are_unique_and_stable() {
        let mut names: Vec<&str> =
            matrix().iter().chain(extended_matrix().iter()).map(|s| s.name).collect();
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n, "duplicate scenario names");
    }

    #[test]
    fn every_scenario_has_a_usable_recipe() {
        for s in matrix().into_iter().chain(extended_matrix()) {
            let spec = s.spec();
            assert_eq!(spec.seed, s.seed);
            assert_eq!(spec.taxi_count, s.taxis);
            assert!(s.window_s >= 600, "{}: window too short to identify", s.name);
            if s.family == ScheduleFamily::PreProgrammedSwitch {
                assert!(s.gates.max_detect_latency_s.is_some(), "{}", s.name);
            } else {
                assert!(s.instants >= 1, "{}: no analysis instants", s.name);
                assert!(s.gates.median_cycle_err_s.is_finite(), "{}", s.name);
            }
            assert!(!s.topology_tag().is_empty());
        }
    }
}
